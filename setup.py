"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file only exists so
that fully offline environments (no ``wheel`` package, no index access) can
fall back to a legacy editable install::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
