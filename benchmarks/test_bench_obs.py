"""Overhead gate for the telemetry layer.

Writes ``BENCH_obs.json`` at the repository root.

Two properties make ``--telemetry`` safe to leave reachable in production
code paths, and this harness pins both with numbers:

* **The no-op recorder is free.**  With telemetry off, every instrumented
  site costs one attribute lookup plus a no-op span call.  The enabled run
  tells us exactly how many span/event records a smoke engine run emits
  (``span_count``); micro-timing the null-tracer call bounds the total
  no-op tax at ``span_count x null_call_s``, which must stay under 5% of
  the untraced wall clock.  Raw on/off wall clocks are recorded as context
  (tracing *on* is allowed to cost more — that is the point of the flag).

* **Tracing never changes results.**  The smoke sweep runs once with
  telemetry off and once with it on; after stripping the wall-clock-only
  ``TIMING_FIELDS``, the rows must be bit-identical.
"""

from __future__ import annotations

import json
import time
import timeit
from pathlib import Path

from repro.experiments.runner import RunSpec, run_spec_on_instance
from repro.graphs.generators import random_owned_tree
from repro.obs import NULL_TRACER, Telemetry
from repro.service.api import ServiceConfig, run_spec_sweep
from repro.service.tasks import strip_timing_fields

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_obs.json"

OVERHEAD_BUDGET = 0.05

#: Small engine run for the overhead micro-benchmark.
ENGINE_SPEC = RunSpec(family="tree", n=60, alpha=2.0, k=2, seed=7, solver="greedy")

#: Smoke sweep for the bit-identity leg.
SWEEP_SPECS = [
    RunSpec(family="tree", n=24, alpha=alpha, k=2, seed=seed, solver="greedy")
    for alpha in (0.5, 2.0)
    for seed in range(2)
]


def _time_engine_run(owned, telemetry, repeats: int = 3) -> float:
    """Best wall clock over ``repeats`` runs of the smoke spec."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run_spec_on_instance(ENGINE_SPEC, owned, telemetry=telemetry)
        best = min(best, time.perf_counter() - start)
    return best


def _null_call_cost_s() -> float:
    """Seconds per ``NULL_TRACER.span(...)`` call (the telemetry-off cost)."""
    loops = 200_000
    span = NULL_TRACER.span

    def body():
        with span("engine.best_response", player=3):
            pass

    return min(timeit.repeat(body, repeat=5, number=loops)) / loops


def _run_benchmark() -> dict:
    owned = random_owned_tree(ENGINE_SPEC.n, seed=ENGINE_SPEC.seed)

    # Leg 1: how many instrumented sites does the smoke run actually hit?
    traced_handle = Telemetry(tracing=True)
    run_spec_on_instance(ENGINE_SPEC, owned, telemetry=traced_handle)
    span_count = len(traced_handle.drain_events())

    # Leg 2: bound the no-op tax analytically — site count x null-call cost
    # against the untraced wall clock.  Raw on/off clocks as context.
    t_off = _time_engine_run(owned, telemetry=None)
    t_on = _time_engine_run(owned, telemetry=Telemetry(tracing=True))
    null_call_s = _null_call_cost_s()
    noop_overhead = (span_count * null_call_s) / t_off

    # Leg 3: telemetry-on rows bit-identical to telemetry-off rows.
    rows_off = [
        r.as_row()
        for r in run_spec_sweep(SWEEP_SPECS, ServiceConfig(in_process=True))
    ]
    rows_on = [
        r.as_row()
        for r in run_spec_sweep(
            SWEEP_SPECS, ServiceConfig(in_process=True, telemetry=True)
        )
    ]
    rows_identical = strip_timing_fields(rows_on) == strip_timing_fields(rows_off)

    return {
        "benchmark": "telemetry overhead and identity gates",
        "engine_spec": {"family": "tree", "n": ENGINE_SPEC.n, "alpha": ENGINE_SPEC.alpha},
        "span_count": span_count,
        "null_call_ns": round(null_call_s * 1e9, 1),
        "engine_off_s": round(t_off, 5),
        "engine_on_s": round(t_on, 5),
        "noop_overhead_fraction": round(noop_overhead, 5),
        "overhead_budget": OVERHEAD_BUDGET,
        "sweep_tasks": len(SWEEP_SPECS),
        "rows_identical": rows_identical,
    }


def test_bench_obs(benchmark):
    report = benchmark.pedantic(_run_benchmark, rounds=1, iterations=1)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(json.dumps(report, indent=2))
    # The traced smoke run really hit the instrumented sites.
    assert report["span_count"] > 0
    # No-op recorder tax: well under the 5% budget on the small engine run.
    assert report["noop_overhead_fraction"] < report["overhead_budget"]
    # Telemetry on or off, the sweep rows are bit-identical.
    assert report["rows_identical"]
