"""Benchmarks regenerating Tables I and II (instance statistics).

Paper reference values (means over 20 instances):

* Table I (random trees): diameter grows from ~10.7 (n=20) to ~43.2 (n=200),
  max degree stays in the 4-5.4 range, max bought edges in the 2.8-3.9 range.
* Table II (Erdős–Rényi): e.g. (100, 0.06) has ~301 edges, diameter ~5.3,
  max degree ~12.5, max bought edges ~7.9.

The smoke grids use fewer seeds and smaller sizes but must reproduce the
qualitative shape (diameter grows with n; max bought edges is roughly half
the max degree).
"""

from conftest import run_once

from repro.experiments.tables import (
    Table1Config,
    Table2Config,
    generate_table1,
    generate_table2,
)


def test_bench_table1_random_tree_statistics(benchmark, emit_rows):
    rows = run_once(benchmark, generate_table1, Table1Config.smoke())
    emit_rows(rows, "table1", title="Table I (smoke grid): random tree statistics")
    diameters = [row["diameter_mean"] for row in rows]
    assert diameters == sorted(diameters)  # diameter grows with n
    for row in rows:
        assert 2 <= row["max_degree_mean"] <= 10
        assert row["max_bought_edges_mean"] <= row["max_degree_mean"]


def test_bench_table2_erdos_renyi_statistics(benchmark, emit_rows):
    rows = run_once(benchmark, generate_table2, Table2Config.smoke())
    emit_rows(rows, "table2", title="Table II (smoke grid): Erdős–Rényi statistics")
    for row in rows:
        expected_edges = row["p"] * row["n"] * (row["n"] - 1) / 2
        assert 0.6 * expected_edges <= row["edges_mean"] <= 1.4 * expected_edges
        assert row["diameter_mean"] <= 10
        assert row["max_bought_edges_mean"] <= row["max_degree_mean"]
