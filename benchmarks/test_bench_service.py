"""Timing harness for the sweep orchestration service.

Writes ``BENCH_service.json`` at the repository root.

The scenario is the service's reason to exist: a **multi-task-per-instance
sweep** — here a robustness study whose five operator chains all start from
the same converged base equilibrium of each instance.  Two executions of
the *identical* task list are timed:

* **warm service** — :func:`repro.service.api.robustness_sweep` with a
  2-worker pool.  Instance-affine sharding sends all five operator tasks
  of an instance to one worker, whose session cache converges the base
  engine once and warm-replays (``restore_profile``) for the rest.
* **cold per-task pool** — the same tasks through
  :func:`repro.parallel.pool.parallel_map` with a fresh
  :class:`~repro.service.workers.WorkerRuntime` per task, i.e. the
  throwaway-pool world where every task regenerates its instance and
  re-converges the base dynamics from scratch.

Both paths must produce bit-identical rows up to the documented wall-clock
fields (``warm_s``/``cold_s``/``warm_speedup`` differ between any two runs,
serial ones included).  The acceptance figures:

* the warm service beats the cold pool by >= 2x wall clock, and
* a sweep interrupted mid-journal and resumed with ``--resume`` reproduces
  the uninterrupted row set exactly (deterministic fields bit-for-bit).
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.experiments.config import SweepSettings
from repro.experiments.extensions.robustness import RobustnessStudyConfig
from repro.parallel.pool import parallel_map
from repro.service.api import ServiceConfig, robustness_sweep
from repro.service.tasks import (
    compile_robustness_tasks,
    decode_result,
    encode_result,
    strip_timing_fields,
)
from repro.service.workers import WorkerRuntime

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_service.json"

WORKERS = 2

#: Two preferential-attachment instances whose base convergence (~n solver
#: rounds over hub-heavy views) dominates a localized shock chain — the
#: regime where per-task base re-convergence is pure waste.
STUDY = RobustnessStudyConfig(
    families=("barabasi-albert",),
    operators=(
        "add_shortcuts",
        "reset_player",
        "drop_random_edges",
        "hub_attack",
        "multi_reset",
    ),
    n=200,
    alphas=(0.5,),
    ks=(2,),
    shocks_per_instance=1,
    intensity=1,
    settings=SweepSettings(
        num_seeds=2, solver="branch_and_bound", max_rounds=60, workers=WORKERS
    ),
)


def _cold_task(task):
    """Cold per-task pool work item: a throwaway runtime per task."""
    return encode_result(task, WorkerRuntime().execute(task))


def _run_benchmark() -> dict:
    tasks = compile_robustness_tasks(STUDY)
    tasks_per_instance = len(STUDY.operators)

    with tempfile.TemporaryDirectory() as tmp:
        # Warm service pool (journaled, so the resume leg below is a real
        # kill-shaped replay of this very sweep).
        start = time.perf_counter()
        warm_rows, _ = robustness_sweep(
            STUDY, ServiceConfig(workers=WORKERS, journal_dir=tmp, experiment="bench")
        )
        warm_s = time.perf_counter() - start

        # Cold per-task pool over the identical task list.
        start = time.perf_counter()
        cold_payloads = parallel_map(_cold_task, tasks, workers=WORKERS)
        cold_s = time.perf_counter() - start
        cold_rows = [
            row
            for payload in cold_payloads
            for row in decode_result("robustness", payload)[0]
        ]

        rows_identical = strip_timing_fields(warm_rows) == strip_timing_fields(
            cold_rows
        )

        # Interrupt-and-resume: truncate the journal to its first half (the
        # state a SIGKILL leaves behind, torn tail included) and resume.
        log = Path(tmp) / "bench" / "journal.jsonl"
        lines = log.read_text().splitlines(True)
        completed_before_kill = len(lines) // 2
        log.write_text("".join(lines[:completed_before_kill]) + '{"torn-record')
        resumed_rows, _ = robustness_sweep(
            STUDY,
            ServiceConfig(
                workers=WORKERS, journal_dir=tmp, experiment="bench", resume=True
            ),
        )
        resume_identical = strip_timing_fields(resumed_rows) == strip_timing_fields(
            warm_rows
        )

    return {
        "benchmark": "sweep service: warm-affinity workers vs cold per-task pool",
        "workers": WORKERS,
        "tasks": len(tasks),
        "instances": len(tasks) // tasks_per_instance,
        "tasks_per_instance": tasks_per_instance,
        "n": STUDY.n,
        "family": STUDY.families[0],
        "warm_s": round(warm_s, 4),
        "cold_s": round(cold_s, 4),
        "speedup": round(cold_s / warm_s, 2),
        "rows": len(warm_rows),
        "rows_identical": rows_identical,
        "resume_completed_before_kill": completed_before_kill,
        "resume_identical": resume_identical,
    }


def test_bench_service(benchmark):
    report = benchmark.pedantic(_run_benchmark, rounds=1, iterations=1)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(json.dumps(report, indent=2))
    # The same tasks must mean the same rows, warm or cold, whole or
    # killed-and-resumed.
    assert report["rows_identical"]
    assert report["resume_identical"]
    assert report["resume_completed_before_kill"] >= 1
    # The acceptance figure: warm affinity >= 2x over the cold pool.
    assert report["speedup"] >= 2.0
