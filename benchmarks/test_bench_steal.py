"""Timing harness for work-stealing dispatch vs static shards.

Writes ``BENCH_steal.json`` at the repository root.

The scenario is the weighted planner's documented blind spot: estimated
group weight is ``instance nodes x task count``, which is blind to
*per-task* difficulty.  The straggler grid exploits that — two 300-node
``k=2`` greedy instances (huge weight, moderate runtime) next to eight
30-node full-knowledge branch-and-bound instances (tiny weight, comparable
runtime each).  The static planner parks both heavy-looking groups on their
own workers and piles all eight deceptively light groups behind the third;
the stealing pool drains that pile the moment the other workers go idle.

Because this container may be single-core, the makespan gate runs in
*virtual time*: per-task durations are measured serially, then replayed
through :func:`repro.service.tasks.simulate_dispatch` — the same
``AffinityTaskQueue`` the real pool drives, on a deterministic event clock.
Real forked-pool wall clocks are recorded as context (they only separate on
multi-core hosts, e.g. CI), and all three execution paths — serial, static
shards, stealing pool — must produce bit-identical rows.

Acceptance figures:

* virtual-time makespan: stealing >= 1.5x over static shards, and
* the shared :class:`~repro.engine.views.ViewStore` reports > 0 cross-session
  view adoptions on an α-sweep over one instance.
"""

from __future__ import annotations

import heapq
import json
import time
from pathlib import Path

from repro.engine.views import ViewStore
from repro.experiments.config import FULL_KNOWLEDGE_K
from repro.experiments.runner import RunSpec, run_single
from repro.service.api import ServiceConfig, orchestrate
from repro.service.tasks import (
    AffinityTaskQueue,
    compile_run_specs,
    decode_result,
    encode_result,
    simulate_dispatch,
)
from repro.service.workers import WorkerRuntime

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_steal.json"

WORKERS = 3

#: Heavy-looking, moderate-running: one task per 300-node instance.
LARGE_SPECS = [
    RunSpec(family="tree", n=300, alpha=2.0, k=2, seed=seed, solver="greedy")
    for seed in range(2)
]
#: Light-looking, slow-running: full-knowledge exact best responses on
#: 30-node instances (weight 30 vs 300, runtime comparable per task).
SMALL_SPECS = [
    RunSpec(
        family="tree",
        n=30,
        alpha=0.8,
        k=FULL_KNOWLEDGE_K,
        seed=100 + seed,
        solver="branch_and_bound",
    )
    for seed in range(8)
]

#: α-grid over one instance for the shared-view leg.
VIEW_SWEEP_SPECS = [
    RunSpec(family="gnp", n=40, p=0.15, alpha=alpha, k=2, seed=11, solver="greedy")
    for alpha in (0.3, 0.8, 1.5, 3.0)
]


def _measure_serial_durations(tasks) -> tuple[dict[str, float], list]:
    """Per-task wall seconds through one warm runtime, plus decoded rows."""
    runtime = WorkerRuntime()
    durations: dict[str, float] = {}
    rows = [None] * len(tasks)
    for task in tasks:
        start = time.perf_counter()
        payload = encode_result(task, runtime.execute(task))
        durations[task.spec_hash] = time.perf_counter() - start
        rows[task.index] = decode_result(task.kind, payload)
    return durations, rows


def _count_steals(tasks, durations) -> int:
    """Replay the stealing dispatch on the virtual clock, read the counter."""
    queue = AffinityTaskQueue(tasks, WORKERS, steal=True)
    events = [(0.0, worker) for worker in range(WORKERS)]
    heapq.heapify(events)
    while events:
        now, worker = heapq.heappop(events)
        task = queue.next_task(worker)
        if task is not None:
            heapq.heappush(events, (now + durations[task.spec_hash], worker))
    return queue.steals


def _run_benchmark() -> dict:
    specs = LARGE_SPECS + SMALL_SPECS
    tasks = compile_run_specs(specs)

    # Leg 1: serial measurement — real per-task durations + reference rows.
    durations, serial_rows = _measure_serial_durations(tasks)

    # Leg 2: virtual-time makespans of both policies over those durations.
    static_makespan, static_assign = simulate_dispatch(
        tasks, WORKERS, durations, steal=False
    )
    steal_makespan, _ = simulate_dispatch(tasks, WORKERS, durations, steal=True)
    steals = _count_steals(tasks, durations)

    # Leg 3: real forked pools, both policies — rows must match serial
    # bit-for-bit; wall clocks are informational (they separate only when
    # the host actually has spare cores).
    start = time.perf_counter()
    static_rows = orchestrate(tasks, ServiceConfig(workers=WORKERS, steal=False))
    static_wall_s = time.perf_counter() - start
    start = time.perf_counter()
    steal_rows = orchestrate(tasks, ServiceConfig(workers=WORKERS, steal=True))
    steal_wall_s = time.perf_counter() - start

    # Leg 4: α-sweep over one instance through a single runtime — every
    # session after the first adopts its startup views from the store.
    view_tasks = compile_run_specs(VIEW_SWEEP_SPECS)
    runtime = WorkerRuntime(view_store=ViewStore())
    sweep_rows = [decode_result(t.kind, encode_result(t, runtime.execute(t))) for t in view_tasks]
    sweep_serial = [run_single(spec) for spec in VIEW_SWEEP_SPECS]

    return {
        "benchmark": "work-stealing dispatch vs static weighted shards",
        "workers": WORKERS,
        "tasks": len(tasks),
        "large_groups": len(LARGE_SPECS),
        "small_groups": len(SMALL_SPECS),
        "durations_s": {h: round(s, 4) for h, s in sorted(durations.items())},
        "static_group_counts": sorted(len(a) for a in static_assign),
        "static_makespan_s": round(static_makespan, 4),
        "steal_makespan_s": round(steal_makespan, 4),
        "steal_speedup": round(static_makespan / steal_makespan, 2),
        "steals": steals,
        "static_wall_s": round(static_wall_s, 4),
        "steal_wall_s": round(steal_wall_s, 4),
        "rows_identical_static": static_rows == serial_rows,
        "rows_identical_steal": steal_rows == serial_rows,
        "view_store": runtime.view_store.counters(),
        "view_sweep_rows_identical": sweep_rows == sweep_serial,
    }


def test_bench_steal(benchmark):
    report = benchmark.pedantic(_run_benchmark, rounds=1, iterations=1)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(json.dumps(report, indent=2))
    # Same tasks, same rows — serial, static shards, or stealing pool.
    assert report["rows_identical_static"]
    assert report["rows_identical_steal"]
    assert report["view_sweep_rows_identical"]
    # The static planner really did pile the small groups on one worker...
    assert report["static_group_counts"] == [1, 1, 8]
    # ...and stealing drained the pile: >= 1.5x makespan, real steals.
    assert report["steals"] > 0
    assert report["steal_speedup"] >= 1.5
    # The shared view store saw real cross-session adoptions on the α-sweep.
    assert report["view_store"]["view_store_hits"] > 0
