"""Benchmarks for the convergence summary (Section 5.4) and the lower-bound
construction certificates (the computational counterpart of the theory).

Paper claims being checked:

* best-response cycles are extremely rare (5 out of ~36 000 runs) and more
  than 95 % of the runs converge within 7 rounds;
* the cycle (Lemma 3.1), the stretched torus (Theorem 3.12) and the SumNCG
  torus (Lemma 4.1) are equilibria of the local-knowledge games in their
  stated (α, k) ranges, with a PoA ratio that grows with n while the social
  optimum stays Θ(αn + n) / Θ(αn + n²).
"""

from conftest import run_once

from repro.analysis.certificates import (
    certify_cycle_lemma_3_1,
    certify_high_girth_lemma_3_2,
    certify_sum_torus_lemma_4_1,
    certify_torus_theorem_3_12,
)
from repro.experiments.figures import ConvergenceConfig, generate_convergence_summary


def test_bench_convergence_summary(benchmark, emit_rows):
    rows = run_once(benchmark, generate_convergence_summary, ConvergenceConfig.smoke())
    emit_rows(rows, "convergence", title="Section 5.4: convergence / cycling summary")
    stats = {row["statistic"]: row["value"] for row in rows}
    assert stats["fraction_converged"] >= 0.9
    assert stats["fraction_cycled"] <= 0.1
    assert stats["fraction_converged_within_7_rounds"] >= 0.9


def test_bench_lower_bound_cycle_lemma_3_1(benchmark, emit_rows):
    def harness():
        results = [
            certify_cycle_lemma_3_1(n=n, alpha=4.0, k=4, max_players=12, solver="milp")
            for n in (20, 40, 80)
        ]
        return [result.as_dict() for result in results]

    rows = run_once(benchmark, harness)
    emit_rows(rows, "lower_bound_cycle", title="Lemma 3.1: cycle certificates")
    assert all(row["is_equilibrium"] for row in rows)
    ratios = [row["poa_ratio"] for row in rows]
    assert ratios == sorted(ratios)  # PoA ratio grows with n


def test_bench_lower_bound_torus_theorem_3_12(benchmark, emit_rows):
    def harness():
        results = [
            certify_torus_theorem_3_12(alpha=2.0, k=2, n_target=n, max_players=10)
            for n in (150, 300)
        ]
        return [result.as_dict() for result in results]

    rows = run_once(benchmark, harness)
    emit_rows(rows, "lower_bound_torus", title="Theorem 3.12: stretched torus certificates")
    assert all(row["is_equilibrium"] for row in rows)
    assert rows[1]["diameter"] > rows[0]["diameter"]
    assert rows[1]["poa_ratio"] > rows[0]["poa_ratio"]


def test_bench_lower_bound_sum_torus_lemma_4_1(benchmark, emit_rows):
    def harness():
        results = [
            certify_sum_torus_lemma_4_1(alpha=40.0, k=2, n_target=n, max_players=8)
            for n in (100, 200)
        ]
        return [result.as_dict() for result in results]

    rows = run_once(benchmark, harness)
    emit_rows(rows, "lower_bound_sum_torus", title="Lemma 4.1: SumNCG torus certificates")
    assert all(row["is_equilibrium"] for row in rows)
    assert rows[1]["poa_ratio"] > rows[0]["poa_ratio"]


def test_bench_lower_bound_high_girth_lemma_3_2(benchmark, emit_rows):
    def harness():
        result = certify_high_girth_lemma_3_2(
            n=60, degree=3, alpha=1.0, k=2, seed=0, max_players=12
        )
        return [result.as_dict()]

    rows = run_once(benchmark, harness)
    emit_rows(rows, "lower_bound_high_girth", title="Lemma 3.2: high-girth certificate")
    assert rows[0]["n"] == 60
