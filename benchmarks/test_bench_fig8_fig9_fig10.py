"""Benchmarks regenerating Figures 8-10 (degrees, fairness, convergence time).

Paper shapes being reproduced (on reduced smoke grids):

* **Figure 8** — hubs emerge: for larger k and small α the maximum degree is
  much larger than the maximum number of edges any single player buys.
* **Figure 9** — the unfairness ratio (max player cost / min player cost)
  is at least 1 and tends to be smaller for small k ("restricting the view
  of the players could help to converge towards stable networks where
  players' costs do not differ too much").
* **Figure 10** — convergence is fast: a handful of rounds for every α, and
  the number of rounds grows slowly with n.
"""

from conftest import run_once

from repro.experiments.figures import (
    Figure8Config,
    Figure9Config,
    Figure10Config,
    generate_figure8,
    generate_figure9,
    generate_figure10,
)


def test_bench_fig8_degrees_and_bought_edges(benchmark, emit_rows):
    rows = run_once(benchmark, generate_figure8, Figure8Config.smoke())
    emit_rows(rows, "fig8_degrees", title="Figure 8: max degree / max bought edges vs α")
    for row in rows:
        assert row["max_degree_mean"] >= row["max_bought_edges_mean"]
    # The hub effect: somewhere on the grid the gap is at least a factor 2.
    assert any(
        row["max_degree_mean"] >= 2 * row["max_bought_edges_mean"] for row in rows
    )


def test_bench_fig9_unfairness(benchmark, emit_rows):
    rows = run_once(benchmark, generate_figure9, Figure9Config.smoke())
    emit_rows(rows, "fig9_unfairness", title="Figure 9: unfairness ratio vs α")
    for row in rows:
        assert row["unfairness_mean"] >= 1.0
        assert row["max_player_cost_mean"] >= row["min_player_cost_mean"]


def test_bench_fig10_convergence_rounds(benchmark, emit_rows):
    rows = run_once(benchmark, generate_figure10, Figure10Config.smoke())
    emit_rows(rows, "fig10_rounds", title="Figure 10: rounds to convergence")
    assert {row["panel"] for row in rows} == {"alpha", "n"}
    for row in rows:
        # The paper: almost every run converges within 7 rounds.
        assert row["rounds_mean"] <= 10
        assert row["converged_mean"] >= 0.9
