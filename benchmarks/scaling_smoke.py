"""Large-n memory smoke: one blocked metric sweep, with a hard memory gate.

Run by the CI ``scaling-smoke`` job (and usable locally)::

    PYTHONPATH=src python benchmarks/scaling_smoke.py --n 5000

Builds a Barabási–Albert instance at ``n`` players, runs the blocked
:func:`repro.core.metrics.compute_profile_metrics` sweep under
``tracemalloc`` and fails loudly if the peak allocation comes anywhere near
the ``4 n^2`` bytes a dense ``(n, n)`` int32 distance matrix would cost —
the regression this job exists to catch.  Prints a one-line JSON report.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc

from repro.core.games import MaxNCG
from repro.core.metrics import compute_profile_metrics
from repro.core.strategies import StrategyProfile
from repro.graphs.generators.smallworld import owned_barabasi_albert
from repro.kernels import resolve_backend


def run_smoke(
    n: int, block_size: int, alpha: float, k: int, backend: str | None = None
) -> dict:
    profile = StrategyProfile.from_owned_graph(owned_barabasi_albert(n, 2, seed=0))
    game = MaxNCG(alpha, k=k)
    kernel = resolve_backend(backend)
    profile.graph()  # warm the profile's graph cache outside the traced window
    tracemalloc.start()
    start = time.perf_counter()
    metrics = compute_profile_metrics(profile, game, block_size=block_size, backend=kernel)
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    dense_bytes = 4 * n * n
    return {
        "n": n,
        "block_size": block_size,
        "backend": kernel.name,
        "seconds": round(elapsed, 2),
        "peak_mb": round(peak / 2**20, 1),
        "dense_matrix_mb": round(dense_bytes / 2**20, 1),
        "peak_fraction_of_dense": round(peak / dense_bytes, 3),
        "diameter": metrics.diameter,
        "social_cost": metrics.social_cost,
        "ok": peak < dense_bytes / 2,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=5000)
    parser.add_argument("--block-size", type=int, default=128)
    parser.add_argument("--alpha", type=float, default=1.0)
    parser.add_argument("--k", type=int, default=2)
    parser.add_argument(
        "--backend",
        default=None,
        help="kernel backend for the BFS sweep (see repro.kernels); "
        "default follows the REPRO_KERNEL_BACKEND/auto-detect chain",
    )
    args = parser.parse_args(argv)
    report = run_smoke(args.n, args.block_size, args.alpha, args.k, backend=args.backend)
    print(json.dumps(report))
    if not report["ok"]:
        print(
            f"FAIL: peak {report['peak_mb']} MB is not clearly below the "
            f"dense (n, n) matrix ({report['dense_matrix_mb']} MB)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
