"""Large-n memory smoke: one blocked metric sweep, with a hard memory gate.

Run by the CI ``scaling-smoke`` job (and usable locally)::

    PYTHONPATH=src python benchmarks/scaling_smoke.py --n 5000

Builds a Barabási–Albert instance at ``n`` players, runs the blocked
:func:`repro.core.metrics.compute_profile_metrics` sweep under
``tracemalloc`` and fails loudly if the peak allocation comes anywhere near
the ``4 n^2`` bytes a dense ``(n, n)`` int32 distance matrix would cost —
the regression this job exists to catch.  With ``--threads`` the sweep is
additionally re-run on a threaded kernel build and every metric is asserted
*exactly* equal to the single-threaded result — the bit-identity contract
of :mod:`repro.kernels`.  Prints a one-line JSON report.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc

from repro.core.games import MaxNCG
from repro.core.metrics import compute_profile_metrics
from repro.core.strategies import StrategyProfile
from repro.graphs.generators.smallworld import owned_barabasi_albert
from repro.kernels import resolve_backend


def run_smoke(
    n: int,
    block_size: int,
    alpha: float,
    k: int,
    backend: str | None = None,
    threads: int | None = None,
) -> dict:
    profile = StrategyProfile.from_owned_graph(owned_barabasi_albert(n, 2, seed=0))
    game = MaxNCG(alpha, k=k)
    kernel = resolve_backend(backend)
    profile.graph()  # warm the profile's graph cache outside the traced window
    tracemalloc.start()
    start = time.perf_counter()
    metrics = compute_profile_metrics(profile, game, block_size=block_size, backend=kernel)
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    dense_bytes = 4 * n * n
    report = {
        "n": n,
        "block_size": block_size,
        "backend": kernel.name,
        "seconds": round(elapsed, 2),
        "peak_mb": round(peak / 2**20, 1),
        "dense_matrix_mb": round(dense_bytes / 2**20, 1),
        "peak_fraction_of_dense": round(peak / dense_bytes, 3),
        "diameter": metrics.diameter,
        "social_cost": metrics.social_cost,
        "ok": peak < dense_bytes / 2,
    }
    if threads is not None:
        threaded_kernel = resolve_backend(backend, threads=threads)
        start = time.perf_counter()
        threaded_metrics = compute_profile_metrics(
            profile, game, block_size=block_size, backend=threaded_kernel
        )
        threaded_elapsed = time.perf_counter() - start
        identical = threaded_metrics == metrics
        report.update(
            {
                "threads": threaded_kernel.threads,
                "threaded_seconds": round(threaded_elapsed, 2),
                "threaded_identical": identical,
                "ok": report["ok"] and identical,
            }
        )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=5000)
    parser.add_argument("--block-size", type=int, default=128)
    parser.add_argument("--alpha", type=float, default=1.0)
    parser.add_argument("--k", type=int, default=2)
    parser.add_argument(
        "--backend",
        default=None,
        help="kernel backend for the BFS sweep (see repro.kernels); "
        "default follows the REPRO_KERNEL_BACKEND/auto-detect chain",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=None,
        help="re-run the sweep on a kernel build with this many threads "
        "(0 = all cores) and assert every metric equals the "
        "single-threaded result exactly",
    )
    args = parser.parse_args(argv)
    report = run_smoke(
        args.n,
        args.block_size,
        args.alpha,
        args.k,
        backend=args.backend,
        threads=args.threads,
    )
    print(json.dumps(report))
    if not report["ok"]:
        if not report.get("threaded_identical", True):
            print(
                f"FAIL: threaded sweep (threads={report['threads']}) diverged "
                "from the single-threaded metrics",
                file=sys.stderr,
            )
        else:
            print(
                f"FAIL: peak {report['peak_mb']} MB is not clearly below the "
                f"dense (n, n) matrix ({report['dense_matrix_mb']} MB)",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
