"""Timing harness for the engine-grade SumNCG best-response path.

Writes ``BENCH_sum.json`` at the repository root.

Two sections:

* **activations** — for every player whose strategy space sits at a
  cross-check size (``6 <= m <= SUM_EXHAUSTIVE_LIMIT``, where the seeded
  path and the naive enumeration are both exact), time the pre-refactor
  cold enumeration (``prune=False``, no seed) against the dispatch's
  local-search-seeded, class-pruned enumeration — at the initial profile
  *and* at the converged equilibrium (the quiet-round/certification regime,
  where the incumbent is optimal and pruning bites hardest).  Every pair of
  replies must be bit-for-bit identical; the aggregate speedup is the
  acceptance figure.
* **dynamics** — full engine runs vs the rebuild-everything reference loop
  on the same instances, asserted bit-for-bit identical (final profile,
  rounds, changes): the engine's view cache + response memo may only buy
  time, never change a trajectory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.best_response import (
    SUM_EXHAUSTIVE_LIMIT,
    best_response,
    best_response_sum_exhaustive,
)
from repro.core.dynamics import (
    best_response_dynamics,
    best_response_dynamics_reference,
)
from repro.core.games import SumNCG
from repro.core.strategies import StrategyProfile
from repro.core.views import extract_view
from repro.graphs.generators.trees import random_owned_tree

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_sum.json"

#: Smallest strategy space worth timing (below this both paths are
#: microseconds and the ratio is noise).
MIN_TIMED_SPACE = 6

#: (label, n, alpha, k) — tree instances whose k-views stay at or below
#: the exact-dispatch limit, so both paths are exact and comparable.
INSTANCES = [
    ("tree18-k2", 18, 0.5, 2),
    ("tree14-k3", 14, 0.5, 3),
    ("tree20-k2", 20, 1.5, 2),
]


def _time_activations(profile: StrategyProfile, game) -> dict:
    """Cold-vs-seeded timings over one profile's cross-check players."""
    cold_s = warm_s = 0.0
    players = 0
    identical = True
    for player in profile.players():
        view = extract_view(profile, player, game.k)
        space = len(view.strategy_space)
        if not MIN_TIMED_SPACE <= space <= SUM_EXHAUSTIVE_LIMIT:
            continue
        players += 1
        start = time.perf_counter()
        cold = best_response_sum_exhaustive(
            profile, player, game, warm_start=None, prune=False
        )
        cold_s += time.perf_counter() - start
        start = time.perf_counter()
        warm = best_response(profile, player, game)
        warm_s += time.perf_counter() - start
        identical = identical and cold.strategy == warm.strategy
    return {
        "players_timed": players,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "identical_strategies": identical,
    }


def _run_benchmark() -> dict:
    instance_reports = []
    total_cold = total_warm = 0.0
    all_identical = True
    for label, n, alpha, k in INSTANCES:
        game = SumNCG(alpha, k=k)
        profile = StrategyProfile.from_owned_graph(random_owned_tree(n, seed=5))

        # Dynamics section first: it also hands us the equilibrium profile.
        start = time.perf_counter()
        engine_result = best_response_dynamics(profile, game, max_rounds=40)
        engine_s = time.perf_counter() - start
        start = time.perf_counter()
        reference_result = best_response_dynamics_reference(
            profile, game, max_rounds=40
        )
        reference_s = time.perf_counter() - start
        trajectory_identical = (
            engine_result.final_profile == reference_result.final_profile
            and engine_result.rounds == reference_result.rounds
            and engine_result.total_changes == reference_result.total_changes
            and engine_result.certified == reference_result.certified
        )

        sections = {}
        for phase, phase_profile in (
            ("initial", profile),
            ("equilibrium", engine_result.final_profile),
        ):
            report = _time_activations(phase_profile, game)
            sections[phase] = report
            total_cold += report["cold_s"]
            total_warm += report["warm_s"]
            all_identical = all_identical and report["identical_strategies"]

        instance_reports.append(
            {
                "instance": label,
                "n": n,
                "alpha": alpha,
                "k": k,
                "converged": engine_result.converged,
                "certified": engine_result.certified,
                "rounds": engine_result.rounds,
                "activations": sections,
                "dynamics": {
                    "engine_s": round(engine_s, 4),
                    "reference_s": round(reference_s, 4),
                    "trajectory_identical": trajectory_identical,
                },
            }
        )
        all_identical = all_identical and trajectory_identical
    return {
        "benchmark": "SumNCG: seeded/pruned exact dispatch vs cold enumeration",
        "exhaustive_limit": SUM_EXHAUSTIVE_LIMIT,
        "instances": instance_reports,
        "cold_s": round(total_cold, 4),
        "warm_s": round(total_warm, 4),
        "speedup": round(total_cold / total_warm, 2) if total_warm else None,
        "identical": all_identical,
    }


def test_bench_sum(benchmark):
    report = benchmark.pedantic(_run_benchmark, rounds=1, iterations=1)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(json.dumps(report, indent=2))
    # Identical equilibria / replies everywhere: the seed and the pruning
    # are pure accelerations.
    assert report["identical"]
    for instance in report["instances"]:
        assert instance["converged"] and instance["certified"]
        assert instance["dynamics"]["trajectory_identical"]
    # Enough cross-check work actually happened to make the ratio honest.
    assert sum(
        section["players_timed"]
        for instance in report["instances"]
        for section in instance["activations"].values()
    ) >= 10
    # The acceptance figure: the engine-path dispatch must beat the cold
    # enumeration clearly (measured 2.6-4x; asserted with slack).
    assert report["speedup"] is not None
    assert report["speedup"] >= 1.5
