"""Micro-benchmarks for the discovery view models and the facility solvers.

These are the primitives the extension studies lean on: building a
traceroute / union-of-balls view for every player, and the k-center /
k-median heuristics used to sanity-check player purchases.  The assertions
pin the structural guarantees (traceroute reveals every node, greedy
k-center is a 2-approximation) rather than absolute runtimes.
"""

from conftest import run_once

from repro.core.strategies import StrategyProfile
from repro.discovery.models import TracerouteModel, UnionOfBallsModel
from repro.graphs.algorithms import betweenness_centrality, bridges
from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
from repro.graphs.generators.trees import random_owned_tree
from repro.solvers.facility import exact_k_center, greedy_k_center, greedy_k_median


class TestDiscoveryViews:
    def test_bench_traceroute_views(self, benchmark):
        profile = StrategyProfile.from_owned_graph(owned_connected_gnp_graph(80, 0.08, seed=1))
        model = TracerouteModel()

        def observe_all():
            return [model.observe(profile, player).size for player in profile]

        sizes = benchmark(observe_all)
        assert all(size == 80 for size in sizes)

    def test_bench_union_of_balls_views(self, benchmark):
        profile = StrategyProfile.from_owned_graph(owned_connected_gnp_graph(80, 0.08, seed=2))
        model = UnionOfBallsModel(radius=2, include_neighbors=True)

        def observe_all():
            return [model.observe(profile, player).size for player in profile]

        sizes = benchmark(observe_all)
        assert min(sizes) >= 3


class TestFacilitySolvers:
    def test_bench_greedy_k_center(self, benchmark):
        owned = owned_connected_gnp_graph(120, 0.05, seed=3)
        result = benchmark(greedy_k_center, 4, owned.graph)
        assert len(result.centers) == 4

    def test_bench_greedy_k_center_approximation_quality(self, benchmark, emit_rows):
        owned = random_owned_tree(18, seed=4)

        def compare():
            greedy = greedy_k_center(2, graph=owned.graph)
            exact = exact_k_center(2, graph=owned.graph)
            return {"greedy": greedy.objective, "exact": exact.objective}

        row = run_once(benchmark, compare)
        emit_rows([row], "facility_k_center", title="Greedy vs exact 2-center on a random tree")
        assert row["greedy"] <= 2 * row["exact"] + 1e-9

    def test_bench_greedy_k_median(self, benchmark):
        owned = owned_connected_gnp_graph(120, 0.05, seed=5)
        result = benchmark(greedy_k_median, 4, owned.graph)
        assert len(result.centers) == 4


class TestGraphPrimitives:
    def test_bench_bridges(self, benchmark):
        owned = random_owned_tree(400, seed=6)
        found = benchmark(bridges, owned.graph)
        assert len(found) == owned.graph.number_of_edges()

    def test_bench_betweenness(self, benchmark):
        owned = owned_connected_gnp_graph(100, 0.06, seed=7)
        centrality = benchmark(betweenness_centrality, owned.graph)
        assert len(centrality) == 100
