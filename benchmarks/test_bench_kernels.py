"""Compiled kernel backends vs the numpy reference, bit-identity asserted.

Writes ``BENCH_kernels.json`` at the repository root with three sections:

* **bfs** — the batched CSR BFS at ``n = 5000`` (Barabási–Albert, the same
  family as the scaling smoke): numpy level expansion vs the best available
  compiled backend, ``np.array_equal`` on the full distance matrices
  (unbounded and radius-truncated), compiled speedup asserted ≥ 5×.
* **cover** — solver-bound branch-and-bound set-cover instances: identical
  selections asserted, compiled speedup ≥ 2×.
* **dynamics** — one full best-response dynamics run per backend on a
  local-knowledge instance, trajectories asserted identical end to end
  (final profile, rounds, changes, metrics).

Skips when no compiled backend is available (numba absent *and* no C
toolchain); the equivalence suites in ``tests/`` still cover the numpy
path everywhere.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.dynamics import best_response_dynamics
from repro.core.games import MaxNCG
from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
from repro.graphs.generators.smallworld import owned_barabasi_albert
from repro.graphs.traversal import batched_bfs_distances
from repro.kernels import available_backends, get_backend
from repro.solvers.set_cover import SetCoverInstance, branch_and_bound_set_cover

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_kernels.json"

BFS_N = 5000
BFS_SOURCES = 1024
BFS_RADII = (None, 3)

COVER_INSTANCES = 12
COVER_CANDIDATES = 22
COVER_ELEMENTS = 36
COVER_DENSITY = 0.25
COVER_SEED = 7

DYNAMICS_SPECS = [
    ("gnp48-k3-a2", lambda: owned_connected_gnp_graph(48, 0.08, seed=7), MaxNCG(2.0, k=3)),
    ("tree-like gnp64-k2-a1", lambda: owned_connected_gnp_graph(64, 0.05, seed=3), MaxNCG(1.0, k=2)),
]


def _compiled_backend():
    """The best available compiled backend, or ``None``."""
    for name in available_backends():
        backend = get_backend(name)
        if backend.compiled:
            return backend
    return None


def _bench_bfs(compiled) -> dict:
    owned = owned_barabasi_albert(BFS_N, 2, seed=0)
    indptr, indices, _ = owned.graph.to_csr_arrays()
    sources = np.arange(BFS_SOURCES, dtype=np.int64)
    # Warm both paths outside the timed window (JIT compilation / .so load).
    warm = sources[:2]
    batched_bfs_distances(indptr, indices, warm, backend="numpy")
    batched_bfs_distances(indptr, indices, warm, backend=compiled)

    rows = []
    numpy_total = compiled_total = 0.0
    identical = True
    for radius in BFS_RADII:
        start = time.perf_counter()
        reference = batched_bfs_distances(
            indptr, indices, sources, radius=radius, backend="numpy"
        )
        numpy_s = time.perf_counter() - start
        start = time.perf_counter()
        candidate = batched_bfs_distances(
            indptr, indices, sources, radius=radius, backend=compiled
        )
        compiled_s = time.perf_counter() - start
        same = bool(np.array_equal(reference, candidate))
        identical = identical and same
        numpy_total += numpy_s
        compiled_total += compiled_s
        rows.append(
            {
                "radius": radius,
                "numpy_s": round(numpy_s, 4),
                "compiled_s": round(compiled_s, 4),
                "speedup": round(numpy_s / compiled_s, 2),
                "identical_distances": same,
            }
        )
    return {
        "family": "barabasi-albert(m=2)",
        "n": BFS_N,
        "sources": BFS_SOURCES,
        "radii": rows,
        "numpy_s": round(numpy_total, 4),
        "compiled_s": round(compiled_total, 4),
        "speedup": round(numpy_total / compiled_total, 2),
        "identical_distances": identical,
    }


def _cover_instances() -> list[SetCoverInstance]:
    """Random solver-bound instances: dense enough to be feasible, sparse
    enough that the greedy incumbent leaves real search to the recursion."""
    rng = np.random.default_rng(COVER_SEED)
    instances = []
    while len(instances) < COVER_INSTANCES:
        coverage = rng.random((COVER_CANDIDATES, COVER_ELEMENTS)) < COVER_DENSITY
        if coverage.any(axis=0).all():  # feasible only
            instances.append(SetCoverInstance(coverage=coverage))
    return instances


def _bench_cover(compiled) -> dict:
    instances = _cover_instances()
    # Warm the compiled path (JIT / library load) on a tiny instance.
    tiny = SetCoverInstance(coverage=np.ones((2, 2), dtype=bool))
    branch_and_bound_set_cover(tiny, backend=compiled)

    start = time.perf_counter()
    reference = [
        branch_and_bound_set_cover(inst, backend="numpy") for inst in instances
    ]
    numpy_s = time.perf_counter() - start
    start = time.perf_counter()
    candidate = [
        branch_and_bound_set_cover(inst, backend=compiled) for inst in instances
    ]
    compiled_s = time.perf_counter() - start
    identical = all(
        r.selected == c.selected and r.objective == c.objective
        for r, c in zip(reference, candidate)
    )
    return {
        "instances": COVER_INSTANCES,
        "candidates": COVER_CANDIDATES,
        "elements": COVER_ELEMENTS,
        "density": COVER_DENSITY,
        "numpy_s": round(numpy_s, 4),
        "compiled_s": round(compiled_s, 4),
        "speedup": round(numpy_s / compiled_s, 2),
        "identical_selections": identical,
    }


def _trajectory_fingerprint(result) -> dict:
    return {
        "final_profile": result.final_profile.canonical_key(),
        "rounds": result.rounds,
        "total_changes": result.total_changes,
        "converged": result.converged,
        "cycled": result.cycled,
        "final_metrics": result.final_metrics.as_dict(),
    }


def _bench_dynamics(compiled) -> dict:
    rows = []
    identical = True
    for label, make_owned, game in DYNAMICS_SPECS:
        reference = best_response_dynamics(
            make_owned(), game, kernel_backend="numpy"
        )
        candidate = best_response_dynamics(
            make_owned(), game, kernel_backend=compiled.name
        )
        same = _trajectory_fingerprint(reference) == _trajectory_fingerprint(candidate)
        identical = identical and same
        rows.append(
            {
                "instance": label,
                "rounds": reference.rounds,
                "total_changes": reference.total_changes,
                "identical_trajectories": same,
            }
        )
    return {"instances": rows, "identical_trajectories": identical}


def test_bench_kernels(benchmark):
    compiled = _compiled_backend()
    if compiled is None:
        pytest.skip("no compiled kernel backend available (numba absent, no cc)")

    def _run() -> dict:
        return {
            "benchmark": "compiled kernel backends vs numpy reference",
            "compiled_backend": compiled.name,
            "available_backends": list(available_backends()),
            "bfs": _bench_bfs(compiled),
            "cover": _bench_cover(compiled),
            "dynamics": _bench_dynamics(compiled),
        }

    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(json.dumps(report, indent=2))
    # Bit-identity is the contract: same distances, same selections, same
    # full trajectories — the compiled backends are pure speed knobs.
    assert report["bfs"]["identical_distances"]
    assert report["cover"]["identical_selections"]
    assert report["dynamics"]["identical_trajectories"]
    # The acceptance gates.
    assert report["bfs"]["speedup"] >= 5.0
    assert report["cover"]["speedup"] >= 2.0
