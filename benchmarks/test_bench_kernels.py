"""Compiled kernel backends vs the numpy reference, bit-identity asserted.

Writes ``BENCH_kernels.json`` at the repository root with five sections:

* **bfs** — the batched CSR BFS at ``n = 5000`` (Barabási–Albert, the same
  family as the scaling smoke): numpy level expansion vs the best available
  compiled backend, ``np.array_equal`` on the full distance matrices
  (unbounded and radius-truncated), compiled speedup asserted ≥ 5×.
* **bfs_reduce** — the fused metrics sweep at ``n = 5000``: per-source
  eccentricity / distance-sum / unreached / view-size vectors straight from
  the kernel vs materialise-then-fold on the *same* compiled backend,
  fused speedup asserted ≥ 2×; all four vectors asserted equal to the
  numpy reference's fused output.
* **threads** — the source-parallel kernel builds: threaded vs
  single-threaded wall time on the same sweep, results asserted
  bit-identical always; the ≥ 1.5× speedup gate only applies on
  multi-core runners (a single-core box cannot speed up).
* **cover** — solver-bound branch-and-bound set-cover instances: identical
  selections asserted, compiled speedup ≥ 2×.
* **dynamics** — one full best-response dynamics run per backend *and per
  thread configuration* on a local-knowledge instance, trajectories
  asserted identical end to end (final profile, rounds, changes, metrics).

Skips when no compiled backend is available (numba absent *and* no C
toolchain); the equivalence suites in ``tests/`` still cover the numpy
path everywhere.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.dynamics import best_response_dynamics
from repro.core.games import MaxNCG
from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
from repro.graphs.generators.smallworld import owned_barabasi_albert
from repro.graphs.traversal import batched_bfs_distances, reduce_bfs_distances
from repro.kernels import available_backends, get_backend
from repro.solvers.set_cover import SetCoverInstance, branch_and_bound_set_cover

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_kernels.json"

BFS_N = 5000
BFS_SOURCES = 1024
BFS_RADII = (None, 3)
REDUCE_VIEW_RADIUS = 3
BENCH_THREADS = 4

COVER_INSTANCES = 12
COVER_CANDIDATES = 22
COVER_ELEMENTS = 36
COVER_DENSITY = 0.25
COVER_SEED = 7

DYNAMICS_SPECS = [
    ("gnp48-k3-a2", lambda: owned_connected_gnp_graph(48, 0.08, seed=7), MaxNCG(2.0, k=3)),
    ("tree-like gnp64-k2-a1", lambda: owned_connected_gnp_graph(64, 0.05, seed=3), MaxNCG(1.0, k=2)),
]


def _compiled_backend():
    """The best available compiled backend, or ``None``."""
    for name in available_backends():
        backend = get_backend(name)
        if backend.compiled:
            return backend
    return None


def _bench_bfs(compiled) -> dict:
    owned = owned_barabasi_albert(BFS_N, 2, seed=0)
    indptr, indices, _ = owned.graph.to_csr_arrays()
    sources = np.arange(BFS_SOURCES, dtype=np.int64)
    # Warm both paths outside the timed window (JIT compilation / .so load).
    warm = sources[:2]
    batched_bfs_distances(indptr, indices, warm, backend="numpy")
    batched_bfs_distances(indptr, indices, warm, backend=compiled)

    rows = []
    numpy_total = compiled_total = 0.0
    identical = True
    for radius in BFS_RADII:
        start = time.perf_counter()
        reference = batched_bfs_distances(
            indptr, indices, sources, radius=radius, backend="numpy"
        )
        numpy_s = time.perf_counter() - start
        start = time.perf_counter()
        candidate = batched_bfs_distances(
            indptr, indices, sources, radius=radius, backend=compiled
        )
        compiled_s = time.perf_counter() - start
        same = bool(np.array_equal(reference, candidate))
        identical = identical and same
        numpy_total += numpy_s
        compiled_total += compiled_s
        rows.append(
            {
                "radius": radius,
                "numpy_s": round(numpy_s, 4),
                "compiled_s": round(compiled_s, 4),
                "speedup": round(numpy_s / compiled_s, 2),
                "identical_distances": same,
            }
        )
    return {
        "family": "barabasi-albert(m=2)",
        "n": BFS_N,
        "sources": BFS_SOURCES,
        "radii": rows,
        "numpy_s": round(numpy_total, 4),
        "compiled_s": round(compiled_total, 4),
        "speedup": round(numpy_total / compiled_total, 2),
        "identical_distances": identical,
    }


def _bench_bfs_reduce(compiled) -> dict:
    """Fused metrics sweep vs materialise-then-fold on the same backend."""
    owned = owned_barabasi_albert(BFS_N, 2, seed=0)
    indptr, indices, _ = owned.graph.to_csr_arrays()
    sources = np.arange(BFS_SOURCES, dtype=np.int64)
    view_radius = REDUCE_VIEW_RADIUS
    # Stripping bfs_reduce forces reduce_bfs_distances down the fallback
    # path: materialise distance blocks with the *same* compiled bfs kernel,
    # then fold them in numpy — the pre-fused architecture, backend held
    # constant so the measurement isolates the fusion itself.
    folded_backend = dataclasses.replace(compiled, bfs_reduce=None)
    # Warm JIT / .so load outside the timed window.
    warm = sources[:2]
    reduce_bfs_distances(indptr, indices, warm, view_radius=view_radius, backend=compiled)
    reduce_bfs_distances(
        indptr, indices, warm, view_radius=view_radius, backend=folded_backend
    )

    start = time.perf_counter()
    fused = reduce_bfs_distances(
        indptr, indices, sources, view_radius=view_radius, backend=compiled
    )
    fused_s = time.perf_counter() - start
    start = time.perf_counter()
    folded = reduce_bfs_distances(
        indptr, indices, sources, view_radius=view_radius, backend=folded_backend
    )
    folded_s = time.perf_counter() - start
    reference = reduce_bfs_distances(
        indptr, indices, sources, view_radius=view_radius, backend="numpy"
    )
    identical_fold = all(np.array_equal(f, m) for f, m in zip(fused, folded))
    identical_reference = all(np.array_equal(f, r) for f, r in zip(fused, reference))
    return {
        "family": "barabasi-albert(m=2)",
        "n": BFS_N,
        "sources": BFS_SOURCES,
        "view_radius": view_radius,
        "fused_s": round(fused_s, 4),
        "materialise_then_fold_s": round(folded_s, 4),
        "speedup": round(folded_s / fused_s, 2),
        "identical_to_fold": identical_fold,
        "identical_to_numpy_reference": identical_reference,
    }


def _bench_threads(compiled) -> dict:
    """Threaded kernel builds vs single-threaded, bit-identity asserted."""
    owned = owned_barabasi_albert(BFS_N, 2, seed=0)
    indptr, indices, _ = owned.graph.to_csr_arrays()
    sources = np.arange(BFS_SOURCES, dtype=np.int64)
    serial = get_backend(compiled.name, threads=1)
    threaded = get_backend(compiled.name, threads=BENCH_THREADS)
    warm = sources[:2]
    for backend in (serial, threaded):
        batched_bfs_distances(indptr, indices, warm, backend=backend)
        reduce_bfs_distances(
            indptr, indices, warm, view_radius=REDUCE_VIEW_RADIUS, backend=backend
        )

    start = time.perf_counter()
    serial_dist = batched_bfs_distances(indptr, indices, sources, backend=serial)
    serial_reduce = reduce_bfs_distances(
        indptr, indices, sources, view_radius=REDUCE_VIEW_RADIUS, backend=serial
    )
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    threaded_dist = batched_bfs_distances(indptr, indices, sources, backend=threaded)
    threaded_reduce = reduce_bfs_distances(
        indptr, indices, sources, view_radius=REDUCE_VIEW_RADIUS, backend=threaded
    )
    threaded_s = time.perf_counter() - start
    identical = bool(np.array_equal(serial_dist, threaded_dist)) and all(
        np.array_equal(s, t) for s, t in zip(serial_reduce, threaded_reduce)
    )
    return {
        "family": "barabasi-albert(m=2)",
        "n": BFS_N,
        "sources": BFS_SOURCES,
        "threads": threaded.threads,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 4),
        "threaded_s": round(threaded_s, 4),
        "speedup": round(serial_s / threaded_s, 2),
        "identical_results": identical,
    }


def _cover_instances() -> list[SetCoverInstance]:
    """Random solver-bound instances: dense enough to be feasible, sparse
    enough that the greedy incumbent leaves real search to the recursion."""
    rng = np.random.default_rng(COVER_SEED)
    instances = []
    while len(instances) < COVER_INSTANCES:
        coverage = rng.random((COVER_CANDIDATES, COVER_ELEMENTS)) < COVER_DENSITY
        if coverage.any(axis=0).all():  # feasible only
            instances.append(SetCoverInstance(coverage=coverage))
    return instances


def _bench_cover(compiled) -> dict:
    instances = _cover_instances()
    # Warm the compiled path (JIT / library load) on a tiny instance.
    tiny = SetCoverInstance(coverage=np.ones((2, 2), dtype=bool))
    branch_and_bound_set_cover(tiny, backend=compiled)

    start = time.perf_counter()
    reference = [
        branch_and_bound_set_cover(inst, backend="numpy") for inst in instances
    ]
    numpy_s = time.perf_counter() - start
    start = time.perf_counter()
    candidate = [
        branch_and_bound_set_cover(inst, backend=compiled) for inst in instances
    ]
    compiled_s = time.perf_counter() - start
    identical = all(
        r.selected == c.selected and r.objective == c.objective
        for r, c in zip(reference, candidate)
    )
    return {
        "instances": COVER_INSTANCES,
        "candidates": COVER_CANDIDATES,
        "elements": COVER_ELEMENTS,
        "density": COVER_DENSITY,
        "numpy_s": round(numpy_s, 4),
        "compiled_s": round(compiled_s, 4),
        "speedup": round(numpy_s / compiled_s, 2),
        "identical_selections": identical,
    }


def _trajectory_fingerprint(result) -> dict:
    return {
        "final_profile": result.final_profile.canonical_key(),
        "rounds": result.rounds,
        "total_changes": result.total_changes,
        "converged": result.converged,
        "cycled": result.cycled,
        "final_metrics": result.final_metrics.as_dict(),
    }


def _bench_dynamics(compiled) -> dict:
    rows = []
    identical = True
    configurations = [
        ("compiled", compiled.name, 1),
        (f"compiled-threads{BENCH_THREADS}", compiled.name, BENCH_THREADS),
    ]
    for label, make_owned, game in DYNAMICS_SPECS:
        fingerprint = _trajectory_fingerprint(
            best_response_dynamics(make_owned(), game, kernel_backend="numpy")
        )
        matches = {}
        for config_label, backend_name, threads in configurations:
            candidate = best_response_dynamics(
                make_owned(),
                game,
                kernel_backend=backend_name,
                kernel_threads=threads,
            )
            same = _trajectory_fingerprint(candidate) == fingerprint
            matches[config_label] = same
            identical = identical and same
        rows.append(
            {
                "instance": label,
                "rounds": fingerprint["rounds"],
                "total_changes": fingerprint["total_changes"],
                "identical_trajectories": matches,
            }
        )
    return {"instances": rows, "identical_trajectories": identical}


def test_bench_kernels(benchmark):
    compiled = _compiled_backend()
    if compiled is None:
        pytest.skip("no compiled kernel backend available (numba absent, no cc)")

    def _run() -> dict:
        return {
            "benchmark": "compiled kernel backends vs numpy reference",
            "compiled_backend": compiled.name,
            "available_backends": list(available_backends()),
            "bfs": _bench_bfs(compiled),
            "bfs_reduce": _bench_bfs_reduce(compiled),
            "threads": _bench_threads(compiled),
            "cover": _bench_cover(compiled),
            "dynamics": _bench_dynamics(compiled),
        }

    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(json.dumps(report, indent=2))
    # Bit-identity is the contract: same distances, same reductions, same
    # selections, same full trajectories — the compiled backends and the
    # threads knob are pure speed knobs.
    assert report["bfs"]["identical_distances"]
    assert report["bfs_reduce"]["identical_to_fold"]
    assert report["bfs_reduce"]["identical_to_numpy_reference"]
    assert report["threads"]["identical_results"]
    assert report["cover"]["identical_selections"]
    assert report["dynamics"]["identical_trajectories"]
    # The acceptance gates.
    assert report["bfs"]["speedup"] >= 5.0
    assert report["bfs_reduce"]["speedup"] >= 2.0
    assert report["cover"]["speedup"] >= 2.0
    # A single-core runner cannot make prange/OpenMP pay; the threaded
    # speedup gate only binds where parallel hardware exists.
    if (os.cpu_count() or 1) >= 2:
        assert report["threads"]["speedup"] >= 1.5
