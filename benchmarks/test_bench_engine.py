"""Timing harness: legacy rebuild-from-scratch dynamics vs the incremental
engine, on a fixed 100-node round-robin workload.  Writes ``BENCH_engine.json``
at the repository root.

Two phases, both asserted trajectory-identical between the paths:

* **cold** — one full dynamics run from the initial tree.  Round 1 must
  solve every player's best response on both paths, so the engine's edge is
  bounded by the fraction of later-round activations it can skip.
* **session** — the engine's home turf: converge once, then repeatedly
  perturb one player's strategy and re-converge (equilibrium repair, the
  robustness/anatomy style of experiment).  The legacy path re-runs the
  full round-robin dynamics per replay; the engine repairs only the dirty
  region around each perturbation, reusing every cached view and memoised
  best response outside it.

The acceptance figure (``speedup``) is the session one.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from repro.core.dynamics import (
    best_response_dynamics_reference,
)
from repro.core.games import MaxNCG
from repro.engine.core import DynamicsEngine
from repro.graphs.generators.trees import random_owned_tree
from repro.graphs.traversal import bfs_distances_within

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_engine.json"

N = 100
SEED = 0
ALPHA = 0.5
K = 2
SOLVER = "branch_and_bound"
NUM_REPLAYS = 25
PERTURBATION_SEED = 42


def _same_trajectory(a, b) -> bool:
    return (
        a.final_profile == b.final_profile
        and a.rounds == b.rounds
        and a.converged == b.converged
        and a.cycled == b.cycled
        and a.total_changes == b.total_changes
    )


def _run_benchmark() -> dict:
    owned = random_owned_tree(N, seed=SEED)
    game = MaxNCG(ALPHA, k=K)

    # ------------------------------------------------------------------
    # Cold phase: one full run per path.
    # ------------------------------------------------------------------
    start = time.perf_counter()
    cold_reference = best_response_dynamics_reference(owned, game, solver=SOLVER)
    cold_reference_s = time.perf_counter() - start

    engine = DynamicsEngine(owned, game, solver=SOLVER)
    start = time.perf_counter()
    cold_engine = engine.run()
    cold_engine_s = time.perf_counter() - start
    cold_equal = _same_trajectory(cold_reference, cold_engine)

    # ------------------------------------------------------------------
    # Session phase: perturb-and-repair replays.
    # ------------------------------------------------------------------
    rng = random.Random(PERTURBATION_SEED)
    players = cold_engine.final_profile.players()
    reference_profile = cold_reference.final_profile
    session_reference_s = 0.0
    session_engine_s = 0.0
    session_equal = True
    session_rounds = 0
    computed_before = engine.responses_computed
    for _ in range(NUM_REPLAYS):
        # Saddle one player with a redundant local shortcut: an extra edge
        # towards a node at distance 2 (addition keeps the network
        # connected, so the legacy metrics stay well defined).  The repair
        # dynamics drop the redundant edge and re-settle the neighbourhood
        # — a localised disturbance, which is the scenario the incremental
        # engine is built for.
        player = rng.choice(players)
        nearby = bfs_distances_within(engine.state.graph, player, 2)
        ring = sorted((p for p, d in nearby.items() if d == 2), key=repr)
        extra = rng.choice(ring) if ring else rng.choice(
            [p for p in players if p != player]
        )
        strategy = engine.state.strategy(player) | {extra}

        start = time.perf_counter()
        engine.set_strategy(player, strategy)
        warm = engine.run()
        session_engine_s += time.perf_counter() - start

        perturbed = reference_profile.with_strategy(player, strategy)
        start = time.perf_counter()
        cold = best_response_dynamics_reference(perturbed, game, solver=SOLVER)
        session_reference_s += time.perf_counter() - start

        session_equal = session_equal and _same_trajectory(warm, cold)
        session_rounds += cold.rounds
        reference_profile = cold.final_profile

    session_speedup = session_reference_s / session_engine_s
    return {
        "benchmark": "incremental engine vs legacy loop, 100-node round-robin",
        "spec": {
            "family": "tree",
            "n": N,
            "seed": SEED,
            "alpha": ALPHA,
            "k": K,
            "usage": "max",
            "solver": SOLVER,
            "ordering": "fixed",
        },
        "cold": {
            "legacy_s": round(cold_reference_s, 4),
            "engine_s": round(cold_engine_s, 4),
            "speedup": round(cold_reference_s / cold_engine_s, 2),
            "rounds": cold_engine.rounds,
            "total_changes": cold_engine.total_changes,
            "identical_trajectories": cold_equal,
        },
        "session": {
            "replays": NUM_REPLAYS,
            "perturbation_seed": PERTURBATION_SEED,
            "legacy_s": round(session_reference_s, 4),
            "engine_s": round(session_engine_s, 4),
            "speedup": round(session_speedup, 2),
            "replay_rounds_total": session_rounds,
            "identical_trajectories": session_equal,
        },
        "engine_counters": {
            "responses_computed": engine.responses_computed,
            "responses_reused": engine.responses_reused,
            "session_responses_computed": engine.responses_computed
            - computed_before,
        },
        "speedup": round(session_speedup, 2),
    }


def test_bench_engine_vs_legacy(benchmark):
    report = benchmark.pedantic(_run_benchmark, rounds=1, iterations=1)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(json.dumps(report, indent=2))
    assert report["cold"]["identical_trajectories"]
    assert report["session"]["identical_trajectories"]
    # The engine must never be slower cold, and the incremental session is
    # the acceptance figure.
    assert report["speedup"] >= 3.0
