"""Timing harnesses for the engine and the large-n scaling layer.

``test_bench_engine_vs_legacy`` — legacy rebuild-from-scratch dynamics vs
the incremental engine, on a fixed 100-node round-robin workload.  Writes
``BENCH_engine.json`` at the repository root.

Two phases, both asserted trajectory-identical between the paths:

* **cold** — one full dynamics run from the initial tree.  Round 1 must
  solve every player's best response on both paths, so the engine's edge is
  bounded by the fraction of later-round activations it can skip.
* **session** — the engine's home turf: converge once, then repeatedly
  perturb one player's strategy and re-converge (equilibrium repair, the
  robustness/anatomy style of experiment).  The legacy path re-runs the
  full round-robin dynamics per replay; the engine repairs only the dirty
  region around each perturbation, reusing every cached view and memoised
  best response outside it.

The acceptance figure (``speedup``) is the session one.

``test_bench_scaling`` — the large-n suite.  Writes ``BENCH_scaling.json``
with two sections: blocked/streaming ``compute_profile_metrics`` vs the
dense ``(n, n)`` path (wall-clock and tracemalloc peak), and warm-started
vs cold ``best_response_max`` re-solves (identical strategies asserted).
"""

from __future__ import annotations

import json
import random
import time
import tracemalloc
from pathlib import Path

from repro.core.best_response import ENGINE_DEFAULT_SOLVER, best_response_max
from repro.core.dynamics import (
    best_response_dynamics_reference,
)
from repro.core.games import MaxNCG
from repro.core.metrics import compute_profile_metrics
from repro.core.strategies import StrategyProfile
from repro.engine.core import DynamicsEngine
from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
from repro.graphs.generators.smallworld import owned_barabasi_albert
from repro.graphs.generators.trees import random_owned_tree
from repro.graphs.traversal import bfs_distances_within

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_engine.json"
SCALING_OUTPUT_PATH = REPO_ROOT / "BENCH_scaling.json"

N = 100
SEED = 0
ALPHA = 0.5
K = 2
SOLVER = "branch_and_bound"
NUM_REPLAYS = 25
PERTURBATION_SEED = 42


def _same_trajectory(a, b) -> bool:
    return (
        a.final_profile == b.final_profile
        and a.rounds == b.rounds
        and a.converged == b.converged
        and a.cycled == b.cycled
        and a.total_changes == b.total_changes
    )


def _run_benchmark() -> dict:
    owned = random_owned_tree(N, seed=SEED)
    game = MaxNCG(ALPHA, k=K)

    # ------------------------------------------------------------------
    # Cold phase: one full run per path.
    # ------------------------------------------------------------------
    start = time.perf_counter()
    cold_reference = best_response_dynamics_reference(owned, game, solver=SOLVER)
    cold_reference_s = time.perf_counter() - start

    engine = DynamicsEngine(owned, game, solver=SOLVER)
    start = time.perf_counter()
    cold_engine = engine.run()
    cold_engine_s = time.perf_counter() - start
    cold_equal = _same_trajectory(cold_reference, cold_engine)

    # ------------------------------------------------------------------
    # Session phase: perturb-and-repair replays.
    # ------------------------------------------------------------------
    rng = random.Random(PERTURBATION_SEED)
    players = cold_engine.final_profile.players()
    reference_profile = cold_reference.final_profile
    session_reference_s = 0.0
    session_engine_s = 0.0
    session_equal = True
    session_rounds = 0
    computed_before = engine.responses_computed
    for _ in range(NUM_REPLAYS):
        # Saddle one player with a redundant local shortcut: an extra edge
        # towards a node at distance 2 (addition keeps the network
        # connected, so the legacy metrics stay well defined).  The repair
        # dynamics drop the redundant edge and re-settle the neighbourhood
        # — a localised disturbance, which is the scenario the incremental
        # engine is built for.
        player = rng.choice(players)
        nearby = bfs_distances_within(engine.state.graph, player, 2)
        ring = sorted((p for p, d in nearby.items() if d == 2), key=repr)
        extra = rng.choice(ring) if ring else rng.choice(
            [p for p in players if p != player]
        )
        strategy = engine.state.strategy(player) | {extra}

        start = time.perf_counter()
        engine.set_strategy(player, strategy)
        warm = engine.run()
        session_engine_s += time.perf_counter() - start

        perturbed = reference_profile.with_strategy(player, strategy)
        start = time.perf_counter()
        cold = best_response_dynamics_reference(perturbed, game, solver=SOLVER)
        session_reference_s += time.perf_counter() - start

        session_equal = session_equal and _same_trajectory(warm, cold)
        session_rounds += cold.rounds
        reference_profile = cold.final_profile

    session_speedup = session_reference_s / session_engine_s
    return {
        "benchmark": "incremental engine vs legacy loop, 100-node round-robin",
        "spec": {
            "family": "tree",
            "n": N,
            "seed": SEED,
            "alpha": ALPHA,
            "k": K,
            "usage": "max",
            "solver": SOLVER,
            "ordering": "fixed",
        },
        "cold": {
            "legacy_s": round(cold_reference_s, 4),
            "engine_s": round(cold_engine_s, 4),
            "speedup": round(cold_reference_s / cold_engine_s, 2),
            "rounds": cold_engine.rounds,
            "total_changes": cold_engine.total_changes,
            "identical_trajectories": cold_equal,
        },
        "session": {
            "replays": NUM_REPLAYS,
            "perturbation_seed": PERTURBATION_SEED,
            "legacy_s": round(session_reference_s, 4),
            "engine_s": round(session_engine_s, 4),
            "speedup": round(session_speedup, 2),
            "replay_rounds_total": session_rounds,
            "identical_trajectories": session_equal,
        },
        "engine_counters": {
            "responses_computed": engine.responses_computed,
            "responses_reused": engine.responses_reused,
            "session_responses_computed": engine.responses_computed
            - computed_before,
        },
        "speedup": round(session_speedup, 2),
    }


def test_bench_engine_vs_legacy(benchmark):
    report = benchmark.pedantic(_run_benchmark, rounds=1, iterations=1)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(json.dumps(report, indent=2))
    assert report["cold"]["identical_trajectories"]
    assert report["session"]["identical_trajectories"]
    # The engine must never be slower cold, and the incremental session is
    # the acceptance figure.
    assert report["speedup"] >= 3.0


# ----------------------------------------------------------------------
# Large-n scaling suite
# ----------------------------------------------------------------------
SCALING_N = 3000
SCALING_BLOCK = 128

#: (label, owned-instance thunk, game) grid for the warm-start comparison:
#: local-knowledge and a deliberately deep-h tree workload, solved per
#: player with the *engine default* solver — branch and bound, the one
#: exact solver that exploits warm starts.  The solves below deliberately
#: omit ``solver=`` so this benchmark times the path every engine run gets
#: out of the box (PR 3 switched the default away from the warm-start-blind
#: ``milp``).
WARM_START_INSTANCES = [
    (
        "gnp48-k3-a2",
        lambda: owned_connected_gnp_graph(48, 0.08, seed=7),
        MaxNCG(2.0, k=3),
    ),
    (
        "tree64-k3-a1",
        lambda: random_owned_tree(64, seed=1),
        MaxNCG(1.0, k=3),
    ),
]


def _traced_metrics(profile, game, block_size):
    """Run one metric sweep under tracemalloc; return (metrics, seconds, peak)."""
    profile.graph()  # warm the profile's graph cache outside the traced window
    tracemalloc.start()
    start = time.perf_counter()
    metrics = compute_profile_metrics(profile, game, block_size=block_size)
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return metrics, elapsed, peak


def _run_scaling_benchmark() -> dict:
    # ------------------------------------------------------------------
    # Blocked metric sweep vs the dense (n, n) path at n = SCALING_N.
    # block_size = n materialises the conceptual full matrix in one block,
    # which is exactly the pre-scaling dense code path.
    # ------------------------------------------------------------------
    owned = owned_barabasi_albert(SCALING_N, 2, seed=0)
    profile = StrategyProfile.from_owned_graph(owned)
    game = MaxNCG(1.0, k=2)
    dense_metrics, dense_s, dense_peak = _traced_metrics(profile, game, SCALING_N)
    blocked_metrics, blocked_s, blocked_peak = _traced_metrics(
        profile, game, SCALING_BLOCK
    )
    dense_matrix_bytes = 4 * SCALING_N * SCALING_N

    # ------------------------------------------------------------------
    # Warm-started vs cold best-response re-solves on the engine default
    # solver path (no explicit solver= anywhere).
    # ------------------------------------------------------------------
    warm_rows = []
    warm_total_s = 0.0
    cold_total_s = 0.0
    all_identical = True
    for label, make_owned, warm_game in WARM_START_INSTANCES:
        warm_profile = StrategyProfile.from_owned_graph(make_owned())
        players = warm_profile.players()
        start = time.perf_counter()
        warm_responses = [
            best_response_max(warm_profile, p, warm_game, warm_start=True)
            for p in players
        ]
        warm_s = time.perf_counter() - start
        start = time.perf_counter()
        cold_responses = [
            best_response_max(warm_profile, p, warm_game, warm_start=False)
            for p in players
        ]
        cold_s = time.perf_counter() - start
        identical = all(
            w.strategy == c.strategy and w.view_cost == c.view_cost
            for w, c in zip(warm_responses, cold_responses)
        )
        all_identical = all_identical and identical
        warm_total_s += warm_s
        cold_total_s += cold_s
        warm_rows.append(
            {
                "instance": label,
                "players": len(players),
                "warm_s": round(warm_s, 4),
                "cold_s": round(cold_s, 4),
                "speedup": round(cold_s / warm_s, 2),
                "identical_strategies": identical,
            }
        )

    return {
        "benchmark": "large-n scaling layer: blocked metrics + warm-started covers",
        "metrics": {
            "family": "barabasi-albert(m=2)",
            "n": SCALING_N,
            "block_size": SCALING_BLOCK,
            "dense_s": round(dense_s, 4),
            "blocked_s": round(blocked_s, 4),
            "dense_peak_mb": round(dense_peak / 2**20, 1),
            "blocked_peak_mb": round(blocked_peak / 2**20, 1),
            "dense_matrix_mb": round(dense_matrix_bytes / 2**20, 1),
            "peak_ratio": round(dense_peak / blocked_peak, 1),
            "identical_metrics": dense_metrics == blocked_metrics,
        },
        "warm_start": {
            "solver": ENGINE_DEFAULT_SOLVER,
            "default_path": True,
            "instances": warm_rows,
            "warm_s": round(warm_total_s, 4),
            "cold_s": round(cold_total_s, 4),
            "speedup": round(cold_total_s / warm_total_s, 2),
            "identical_strategies": all_identical,
        },
    }


def test_bench_scaling(benchmark):
    report = benchmark.pedantic(_run_scaling_benchmark, rounds=1, iterations=1)
    SCALING_OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(json.dumps(report, indent=2))
    metrics = report["metrics"]
    # Blocked sweep: same numbers, without ever holding the (n, n) matrix —
    # peak must stay clearly below the dense matrix alone, and far below the
    # dense code path (whose BFS scratch comes on top of the matrix).
    assert metrics["identical_metrics"]
    assert metrics["blocked_peak_mb"] < metrics["dense_matrix_mb"] / 2
    assert metrics["blocked_peak_mb"] < metrics["dense_peak_mb"] / 8
    # Warm starts must return bit-identical strategies, clearly faster —
    # and this is the *default* path now (no solver= anywhere above), so
    # every engine run gets the win out of the box.
    warm = report["warm_start"]
    assert warm["default_path"]
    assert warm["identical_strategies"]
    assert warm["warm_s"] < warm["cold_s"]
    assert warm["speedup"] >= 3.0
