"""Shared helpers for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper on its smoke
grid (the full paper grid is available through the CLI: ``python -m repro
<figure> [--workers N]``), times it with pytest-benchmark, writes the
resulting rows to ``benchmarks/output/`` and prints them so the series can be
compared with the paper's.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.io import format_table, write_csv

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture
def emit_rows():
    """Return a callable that persists and pretty-prints benchmark rows."""

    def _emit(rows: list[dict], name: str, title: str | None = None) -> list[dict]:
        OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
        write_csv(rows, OUTPUT_DIR / f"{name}.csv")
        print()
        print(format_table(rows, title=title or name))
        return rows

    return _emit


def run_once(benchmark, func, *args, **kwargs):
    """Run an expensive harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
