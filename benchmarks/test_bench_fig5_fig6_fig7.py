"""Benchmarks regenerating Figures 5-7 (view sizes and quality of equilibria).

Paper shapes being reproduced (on reduced smoke grids):

* **Figure 5** — the players' view size at equilibrium grows rapidly with k
  and shrinks with α; under (effectively) full knowledge every player sees
  all n vertices.
* **Figure 6** — for small k the quality of equilibrium degrades with n,
  while for large k it stays almost constant (the full-knowledge PoA).
* **Figure 7** — for α = 2 the quality of equilibrium decreases as k grows,
  following the trend of the theoretical upper bound f(k) = k / 2^{Θ(log²k)}.
"""

from conftest import run_once

from repro.experiments.config import FULL_KNOWLEDGE_K
from repro.experiments.figures import (
    Figure5Config,
    Figure6Config,
    Figure7Config,
    generate_figure5,
    generate_figure6,
    generate_figure7,
)


def test_bench_fig5_view_sizes(benchmark, emit_rows):
    rows = run_once(benchmark, generate_figure5, Figure5Config.smoke())
    emit_rows(rows, "fig5_view_sizes", title="Figure 5: view size at equilibrium")
    cells = {(row["k"], row["alpha"]): row for row in rows}
    alphas = sorted({row["alpha"] for row in rows})
    for alpha in alphas:
        full = cells[(FULL_KNOWLEDGE_K, alpha)]
        local = cells[(2, alpha)]
        # Full knowledge: everyone sees the whole graph; k = 2: much less.
        assert full["minimum_view_size_mean"] == full["n"]
        assert local["average_view_size_mean"] < full["average_view_size_mean"]


def test_bench_fig6_quality_vs_n(benchmark, emit_rows):
    rows = run_once(benchmark, generate_figure6, Figure6Config.smoke())
    emit_rows(rows, "fig6_quality_vs_n", title="Figure 6: quality of equilibrium vs n")
    # For the smallest k the quality should degrade (weakly) as n grows,
    # for the full-knowledge column it should stay within a small constant.
    small_k = min(row["k"] for row in rows)
    for alpha in {row["alpha"] for row in rows}:
        series = sorted(
            (row["n"], row["quality_mean"])
            for row in rows
            if row["k"] == small_k and row["alpha"] == alpha
        )
        assert series[-1][1] >= series[0][1] * 0.8
        full_quality = [
            row["quality_mean"]
            for row in rows
            if row["k"] == FULL_KNOWLEDGE_K and row["alpha"] == alpha
        ]
        assert all(value <= 4.5 for value in full_quality)


def test_bench_fig7_quality_vs_k(benchmark, emit_rows):
    rows = run_once(benchmark, generate_figure7, Figure7Config.smoke())
    emit_rows(rows, "fig7_quality_vs_k", title="Figure 7: quality of equilibrium vs k (α = 2)")
    for family in ("tree", "gnp"):
        sizes = {row["n"] for row in rows if row["family"] == family}
        for n in sizes:
            series = sorted(
                (row["k"], row["quality_mean"])
                for row in rows
                if row["family"] == family and row["n"] == n
            )
            # Quality at the largest k should not exceed quality at the
            # smallest k (larger views can only help, up to noise).
            assert series[-1][1] <= series[0][1] * 1.15
