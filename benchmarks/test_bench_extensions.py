"""Benchmarks for the extension studies (DESIGN.md §5, EXPERIMENTS.md).

Each benchmark regenerates one extension study on its smoke grid and asserts
the qualitative shape the corresponding full-grid study is meant to show:

* SumNCG players with small k are more conservative than full-knowledge
  players (fewer strategy changes);
* the paper's qualitative findings survive on other instance families
  (convergence, quality >= 1, hub formation);
* richer move sets restructure the network more than swap-only moves;
* discovery view models reveal at least as much as the radius-k ball, and
  the k-neighbourhood baseline remains stable by construction;
* MaxNCG equilibria survive the empty-world belief while heavy pessimism
  destabilises SumNCG equilibria.
"""

from conftest import run_once

from repro.experiments.config import FULL_KNOWLEDGE_K, SweepSettings
from repro.experiments.extensions import (
    AnatomyStudyConfig,
    BeliefStudyConfig,
    FamilyStudyConfig,
    MoveSetStudyConfig,
    SumDynamicsConfig,
    ViewModelStudyConfig,
    generate_anatomy_study,
    generate_belief_study,
    generate_family_study,
    generate_move_set_study,
    generate_sum_dynamics,
    generate_view_model_study,
)


def test_bench_sum_dynamics_study(benchmark, emit_rows):
    cfg = SumDynamicsConfig(
        sizes=(10,),
        alphas=(1.5,),
        ks=(2, FULL_KNOWLEDGE_K),
        settings=SweepSettings.smoke(),
    )
    rows = run_once(benchmark, generate_sum_dynamics, cfg)
    emit_rows(rows, "ext_sum_dynamics", title="Extension: SumNCG dynamics (smoke grid)")
    by_k = {row["k"]: row for row in rows}
    # Quality is well-defined and the local players change at most as much as
    # the full-knowledge ones (Proposition 2.2 conservativeness).
    for row in rows:
        assert row["quality_mean"] >= 1.0 - 1e-9
    assert by_k[2]["total_changes_mean"] <= by_k[FULL_KNOWLEDGE_K]["total_changes_mean"] + 1e-9


def test_bench_family_robustness_study(benchmark, emit_rows):
    rows = run_once(benchmark, generate_family_study, FamilyStudyConfig.smoke())
    emit_rows(rows, "ext_families", title="Extension: instance-family robustness (smoke grid)")
    families = {row["family"] for row in rows}
    assert len(families) >= 3
    for row in rows:
        # The paper's headline findings hold on every family: the dynamics
        # converge, the stable network costs at least the optimum, and
        # players never buy more edges than the busiest hub's degree.
        assert row["converged_fraction"] == 1.0
        assert row["quality_mean"] >= 1.0 - 1e-9
        assert row["max_bought_edges_mean"] <= row["max_degree_mean"] + 1e-9


def test_bench_move_set_study(benchmark, emit_rows):
    rows = run_once(benchmark, generate_move_set_study, MoveSetStudyConfig.smoke())
    emit_rows(rows, "ext_move_sets", title="Extension: move-set ablation (smoke grid)")
    by_move_set: dict[str, list[dict]] = {}
    for row in rows:
        by_move_set.setdefault(row["move_set"], []).append(row)
    assert set(by_move_set) == {"best_response", "greedy", "swap"}
    # Swap-only dynamics cannot change how many edges each player owns, so a
    # tree stays a tree: the number of edges (hence the mean degree) is fixed,
    # and the stable networks keep quality >= 1 like every other variant.
    for bucket in by_move_set.values():
        for row in bucket:
            assert row["quality_mean"] >= 1.0 - 1e-9
            assert row["converged_fraction"] == 1.0


def test_bench_view_model_study(benchmark, emit_rows):
    rows = run_once(benchmark, generate_view_model_study, ViewModelStudyConfig.smoke())
    emit_rows(rows, "ext_view_models", title="Extension: discovery view models (smoke grid)")
    k_rows = [row for row in rows if row["model"].startswith("k-neighborhood")]
    trace_rows = [row for row in rows if row["model"].startswith("traceroute")]
    assert k_rows and trace_rows
    # The baseline model is stable by construction; traceroute reveals the
    # whole network, i.e. strictly more than the radius-k ball.
    for row in k_rows:
        assert row["stable_fraction"] == 1.0
    for trace_row in trace_rows:
        matching_k = [r for r in k_rows if r["alpha"] == trace_row["alpha"] and r["k"] == trace_row["k"]]
        assert matching_k
        assert trace_row["mean_view_size_mean"] >= matching_k[0]["mean_view_size_mean"] - 1e-9


def test_bench_anatomy_study(benchmark, emit_rows):
    rows = run_once(benchmark, generate_anatomy_study, AnatomyStudyConfig.smoke())
    emit_rows(rows, "ext_anatomy", title="Extension: equilibrium anatomy (smoke grid)")
    by_k = {row["k"]: row for row in rows}
    # Equilibria on trees stay mostly tree-like (bridge-rich) at small k, and
    # hub concentration does not decrease when players gain full knowledge.
    assert by_k[2]["bridge_fraction_mean"] >= 0.8
    assert by_k[FULL_KNOWLEDGE_K]["degree_gini_mean"] >= by_k[2]["degree_gini_mean"] - 1e-9
    for row in rows:
        assert row["converged_fraction"] == 1.0


def test_bench_belief_study(benchmark, emit_rows):
    rows = run_once(benchmark, generate_belief_study, BeliefStudyConfig.smoke())
    emit_rows(rows, "ext_beliefs", title="Extension: Bayesian deviation rule (smoke grid)")
    # Sanity row: MaxNCG equilibria always survive the empty-world belief.
    sanity = [row for row in rows if row["belief"] == "empty-world" and row["usage"] == "max"]
    assert sanity
    for row in sanity:
        assert row["survives_fraction"] == 1.0
    # Heavy pessimism can only lower the survival fraction relative to the
    # empty world, for the same game and cell.
    for usage in ("max", "sum"):
        empty = {
            (row["alpha"], row["k"]): row["survives_fraction"]
            for row in rows
            if row["belief"] == "empty-world" and row["usage"] == usage
        }
        heavy = {
            (row["alpha"], row["k"]): row["survives_fraction"]
            for row in rows
            if row["belief"] == "pessimistic-heavy" and row["usage"] == usage
        }
        for cell, fraction in heavy.items():
            assert fraction <= empty[cell] + 1e-9
