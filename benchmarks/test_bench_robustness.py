"""Timing harness for the perturbation & recovery subsystem.

Writes ``BENCH_robustness.json`` at the repository root.

The scenario is the robustness suite's inner loop: converge once, then
repeatedly shock the certified equilibrium through
``DynamicsEngine.set_strategy`` (via the registered perturbation
operators) and recover.  Each shock is recovered twice:

* **warm** — the live engine re-``run``s; only the dirty ball around the
  shock is re-solved, everything else rides the view cache and the
  best-response memo;
* **cold** — a fresh ``DynamicsEngine`` built from the shocked profile,
  which must rebuild every view and re-solve every player at least once.

Both engines run with ``collect_metrics=False`` so the timed window is
the recovery itself, not the O(n · edges) metric sweeps that would
otherwise bookend every ``run`` identically on both paths.  Empty shocks
(an operator that found no safe edit) are skipped, not timed — a no-op
"recovery" only measures engine construction overhead.

Both recoveries must land on the *same* profile (the warm replay is
bit-for-bit a cold engine, per ``tests/engine/test_certify_and_perturbation``)
and every landing point must pass ``DynamicsEngine.certify()``.  The
acceptance figure is the aggregate localized-shock speedup on the tree
instance: warm replay must recover at least 5x faster than a cold restart.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from repro.core.games import MaxNCG
from repro.engine.core import DynamicsEngine
from repro.experiments.extensions.robustness import apply_perturbation
from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
from repro.graphs.generators.trees import random_owned_tree

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_robustness.json"

REPLAYS_PER_OPERATOR = 6
SHOCK_SEED = 7

#: (label, instance thunk, game, operators, asserted).  The tree carries
#: the acceptance assertion with the always-localized shortcut shock (its
#: equilibria are bridge-bound, so the deletion operators mostly degrade
#: to empty shocks there); the denser G(n, p) instance reports the
#: deletion/reset operators for breadth.
INSTANCES = [
    (
        "tree150",
        lambda: random_owned_tree(150, seed=0),
        MaxNCG(0.5, k=2),
        ("add_shortcuts",),
        True,
    ),
    (
        "gnp120",
        lambda: owned_connected_gnp_graph(120, 0.04, seed=1),
        MaxNCG(0.5, k=2),
        ("add_shortcuts", "reset_player", "drop_random_edges"),
        False,
    ),
]


def _shock_and_recover(engine, game, operator, rng):
    """One non-empty shock on the live engine, recovered warm and cold.

    Returns ``None`` when the operator found no safe edit (nothing to
    time); otherwise ``(warm_s, cold_s, identical, certified, size)``.
    """
    record = apply_perturbation(engine, operator, rng, intensity=1)
    if record.is_empty:
        return None
    shock_profile = engine.state.to_profile()

    start = time.perf_counter()
    warm = engine.run()
    warm_s = time.perf_counter() - start
    certified = warm.certified and engine.certify().is_equilibrium

    cold_engine = DynamicsEngine(shock_profile, game, collect_metrics=False)
    start = time.perf_counter()
    cold = cold_engine.run()
    cold_s = time.perf_counter() - start
    certified = certified and cold_engine.certify().is_equilibrium

    identical = (
        warm.final_profile == cold.final_profile
        and warm.rounds == cold.rounds
        and warm.total_changes == cold.total_changes
    )
    return warm_s, cold_s, identical, certified, record.size


def _run_benchmark() -> dict:
    instance_reports = []
    for label, make_owned, game, operators, asserted in INSTANCES:
        engine = DynamicsEngine(make_owned(), game, collect_metrics=False)
        base = engine.run()
        assert base.certified, f"{label}: base dynamics failed to certify"

        # One untimed warm-up shock so cache-population cost does not land
        # on the first timed replay.
        warm_up_rng = random.Random(SHOCK_SEED - 1)
        apply_perturbation(engine, "add_shortcuts", warm_up_rng, intensity=1)
        engine.run()

        operator_rows = []
        total_warm_s = 0.0
        total_cold_s = 0.0
        all_identical = True
        all_certified = True
        for operator in operators:
            rng = random.Random(SHOCK_SEED)
            warm_s = cold_s = 0.0
            shock_edges = 0
            timed = 0
            for _ in range(REPLAYS_PER_OPERATOR):
                outcome = _shock_and_recover(engine, game, operator, rng)
                if outcome is None:
                    continue
                w, c, identical, certified, size = outcome
                warm_s += w
                cold_s += c
                shock_edges += size
                timed += 1
                all_identical = all_identical and identical
                all_certified = all_certified and certified
            total_warm_s += warm_s
            total_cold_s += cold_s
            operator_rows.append(
                {
                    "operator": operator,
                    "replays": timed,
                    "empty_shocks": REPLAYS_PER_OPERATOR - timed,
                    "shock_edges_total": shock_edges,
                    "warm_s": round(warm_s, 4),
                    "cold_s": round(cold_s, 4),
                    "speedup": round(cold_s / warm_s, 2) if warm_s else None,
                }
            )
        instance_reports.append(
            {
                "instance": label,
                "n": engine.state.graph.number_of_nodes(),
                "alpha": game.alpha,
                "k": game.k,
                "base_rounds": base.rounds,
                "asserted": asserted,
                "operators": operator_rows,
                "warm_s": round(total_warm_s, 4),
                "cold_s": round(total_cold_s, 4),
                "speedup": (
                    round(total_cold_s / total_warm_s, 2) if total_warm_s else None
                ),
                "identical_recoveries": all_identical,
                "all_certified": all_certified,
            }
        )
    headline = next(r for r in instance_reports if r["asserted"])
    return {
        "benchmark": "perturbation recovery: warm replay vs cold restart",
        "replays_per_operator": REPLAYS_PER_OPERATOR,
        "instances": instance_reports,
        "speedup": headline["speedup"],
    }


def test_bench_robustness(benchmark):
    report = benchmark.pedantic(_run_benchmark, rounds=1, iterations=1)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(json.dumps(report, indent=2))
    for instance in report["instances"]:
        # Warm replays must be the same recoveries, certified on both paths.
        assert instance["identical_recoveries"]
        assert instance["all_certified"]
        if instance["asserted"]:
            # The acceptance figure: localized shocks must actually have
            # happened, and recover >= 5x faster warm than cold.
            assert all(row["shock_edges_total"] > 0 for row in instance["operators"])
            assert instance["speedup"] is not None
            assert instance["speedup"] >= 5.0
