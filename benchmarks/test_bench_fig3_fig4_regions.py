"""Benchmarks regenerating the theoretical bound maps of Figures 3 and 4.

These are purely analytical (no simulation): the benchmark evaluates every
closed-form lower/upper bound of Sections 3-4 over an (α, k) grid and checks
the structural facts the figures encode — upper bounds dominate lower bounds,
the grey NE≡LKE region appears for large k, and the bounds weaken as k grows.
"""

from conftest import run_once

from repro.experiments.figures import (
    Figure3Config,
    Figure4Config,
    generate_figure3,
    generate_figure4,
)


def test_bench_fig3_maxncg_region_map(benchmark, emit_rows):
    rows = run_once(benchmark, generate_figure3, Figure3Config(n=10_000, alpha_points=10, k_points=10))
    emit_rows(rows, "fig3_regions", title="Figure 3: MaxNCG (α, k) bound map")
    assert any(row["region"] == "NE≡LKE" for row in rows)
    for row in rows:
        assert row["upper_bound"] >= row["lower_bound"] * 0.999
        assert row["lower_bound"] >= 1.0
    # For fixed α the lower bound is (weakly) non-increasing once k passes α.
    alphas = sorted({row["alpha"] for row in rows})
    target_alpha = alphas[len(alphas) // 2]
    series = sorted(
        (row["k"], row["lower_bound"]) for row in rows if row["alpha"] == target_alpha
    )
    large_k = [value for k, value in series if k >= target_alpha]
    assert all(b <= a * 1.001 for a, b in zip(large_k, large_k[1:]))


def test_bench_fig4_sumncg_region_map(benchmark, emit_rows):
    rows = run_once(benchmark, generate_figure4, Figure4Config(n=10_000, alpha_points=10, k_points=10))
    emit_rows(rows, "fig4_regions", title="Figure 4: SumNCG (α, k) lower-bound map")
    regions = {row["region"] for row in rows}
    assert "NE≡LKE" in regions
    assert any("n/k" in region for region in regions)
    # The strongest bound on the grid must be at least Ω(n^{2/3}) ~ 464 for
    # n = 10 000 (the paper notes the torus bound is at least Ω(n^{2/3})).
    assert max(row["lower_bound"] for row in rows) >= 10_000 ** (2 / 3) * 0.5
