"""Timing harness for the sweep daemon's content-addressed cache.

Writes ``BENCH_daemon.json`` at the repository root.

The scenario is the daemon's reason to exist: a grid submitted twice.
The first submission is **cold** — every cell executes on the engine; the
second is the **identical grid again** (same ``spec_hash``es), which the
daemon must serve entirely from the content-addressed result cache with
zero engine executions.  Both legs are timed end-to-end through the HTTP
client (submit → terminal status → results fetched), so the warm figure
is the real client-observed cache-hit latency including the daemon's
dispatch and polling overheads — not just a dict lookup.

The acceptance figures:

* the warm (all-cache-hit) resubmission is >= 10x faster than the cold
  execution of the same grid,
* the warm job's instrumented counters show **zero** engine executions
  and a cache hit for every unique cell, and
* the two submissions return bit-identical rows (timing fields aside).
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.experiments.runner import RunSpec
from repro.service.client import SweepClient
from repro.service.daemon import DaemonConfig, ServiceDaemon
from repro.service.jobs import run_spec_description
from repro.service.tasks import strip_timing_fields

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_daemon.json"

#: Large enough that cold execution dominates every fixed overhead the
#: warm leg also pays (HTTP round-trips, dispatch poll, status polling).
SPECS = [
    RunSpec(
        family="tree",
        n=400,
        alpha=alpha,
        k=2,
        seed=seed,
        solver="greedy",
        max_rounds=60,
    )
    for alpha in (0.5, 1.0, 2.0, 3.0)
    for seed in range(3)
]


def _submit_and_fetch(client: SweepClient) -> tuple[float, dict, list[dict]]:
    """One timed leg: submit the grid, wait, fetch rows."""
    start = time.perf_counter()
    job = client.submit(run_spec_description(SPECS))
    final = client.wait(job["id"], timeout=600, poll=0.01)
    rows = strip_timing_fields(
        [result.as_row() for result in client.decoded_results(job["id"])]
    )
    return time.perf_counter() - start, final, rows


def _run_benchmark() -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        daemon = ServiceDaemon(
            DaemonConfig(store_dir=tmp, in_process=True, port=0)
        )
        daemon.start()
        try:
            client = SweepClient(daemon.base_url)
            cold_s, cold_job, cold_rows = _submit_and_fetch(client)
            warm_s, warm_job, warm_rows = _submit_and_fetch(client)
            stats = client.stats()
        finally:
            daemon.stop()
    return {
        "benchmark": "sweep daemon: content-addressed cache hit vs cold execution",
        "grid_cells": len(SPECS),
        "n": SPECS[0].n,
        "family": SPECS[0].family,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 2),
        "cold_executed": cold_job["executed"],
        "warm_executed": warm_job["executed"],
        "warm_from_cache": warm_job["from_cache"],
        "unique_tasks": warm_job["unique_tasks"],
        "daemon_engine_executions": stats["engine_executions"],
        "rows_identical": cold_rows == warm_rows,
    }


def test_bench_daemon(benchmark):
    report = benchmark.pedantic(_run_benchmark, rounds=1, iterations=1)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(json.dumps(report, indent=2))
    # The repeated grid is pure cache: zero engine work, every cell a hit.
    assert report["warm_executed"] == 0
    assert report["warm_from_cache"] == report["unique_tasks"]
    assert report["daemon_engine_executions"] == report["unique_tasks"]
    assert report["rows_identical"]
    # The acceptance figure: cache-hit latency >= 10x faster than cold.
    assert report["speedup"] >= 10.0
