"""Ablation benchmarks (DESIGN.md §5) and micro-benchmarks of the hot kernels.

The ablations quantify the sensitivity of the experimental conclusions to
the three protocol choices the paper fixes (exact solver, round-robin order,
fair-coin initial ownership).  The micro-benchmarks time the primitives that
dominate the sweep runtime — view extraction, the dominating-set reduction
and one full dynamics run — and are the numbers to watch when optimising.
"""

from conftest import run_once

from repro.core.best_response import best_response_max
from repro.core.dynamics import best_response_dynamics
from repro.core.games import MaxNCG
from repro.core.strategies import StrategyProfile
from repro.core.views import extract_view
from repro.experiments.ablations import (
    AblationConfig,
    ordering_ablation,
    ownership_ablation,
    solver_ablation,
)
from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
from repro.graphs.generators.trees import random_owned_tree
from repro.graphs.traversal import distance_matrix
from repro.solvers.dominating_set import minimum_dominating_set


class TestAblations:
    def test_bench_ablation_solvers(self, benchmark, emit_rows):
        rows = run_once(benchmark, solver_ablation, AblationConfig.smoke())
        emit_rows(rows, "ablation_solver", title="Ablation: best-response solver")
        variants = {row["variant"] for row in rows}
        assert variants == {"milp", "branch_and_bound", "greedy"}

    def test_bench_ablation_ordering(self, benchmark, emit_rows):
        rows = run_once(benchmark, ordering_ablation, AblationConfig.smoke())
        emit_rows(rows, "ablation_ordering", title="Ablation: player ordering")
        assert {row["variant"] for row in rows} == {"fixed", "shuffled"}
        # Both orderings must converge on the smoke grid.
        assert all(row["cycled_mean"] == 0 for row in rows)

    def test_bench_ablation_ownership(self, benchmark, emit_rows):
        rows = run_once(benchmark, ownership_ablation, AblationConfig.smoke())
        emit_rows(rows, "ablation_ownership", title="Ablation: initial edge ownership")
        assert {row["variant"] for row in rows} == {"fair_coin", "smaller_endpoint"}


class TestPrimitives:
    def test_bench_distance_matrix(self, benchmark):
        owned = owned_connected_gnp_graph(100, 0.08, seed=1)
        matrix, order = benchmark(distance_matrix, owned.graph)
        assert matrix.shape == (100, 100)

    def test_bench_view_extraction(self, benchmark):
        profile = StrategyProfile.from_owned_graph(owned_connected_gnp_graph(100, 0.08, seed=1))

        def extract_all():
            return [extract_view(profile, player, 3).size for player in profile]

        sizes = benchmark(extract_all)
        assert len(sizes) == 100

    def test_bench_exact_best_response(self, benchmark):
        profile = StrategyProfile.from_owned_graph(random_owned_tree(80, seed=2))
        game = MaxNCG(2.0, k=4)
        response = benchmark(best_response_max, profile, 0, game, "milp")
        assert response.view_cost <= response.current_view_cost + 1e-9

    def test_bench_minimum_dominating_set(self, benchmark):
        owned = owned_connected_gnp_graph(60, 0.08, seed=3)
        chosen, result = benchmark(minimum_dominating_set, owned.graph, 1, (), "milp")
        assert result.feasible

    def test_bench_full_dynamics_run(self, benchmark):
        owned = random_owned_tree(50, seed=4)
        game = MaxNCG(2.0, k=3)
        result = benchmark.pedantic(
            best_response_dynamics,
            args=(owned, game),
            kwargs={"solver": "greedy"},
            rounds=1,
            iterations=1,
        )
        assert result.converged or result.rounds > 0
