#!/usr/bin/env python3
"""Print an ASCII version of the paper's (α, k) bound maps (Figures 3 and 4).

For a chosen number of players n, the script classifies a logarithmic grid of
(α, k) pairs into the bound regions of Figure 3 (MaxNCG) and Figure 4
(SumNCG) and prints the grid, plus the numeric lower/upper bound values along
one row, so the landscape of the theory can be eyeballed without a plotting
library.

Run with::

    python examples/poa_landscape.py [n]
"""

from __future__ import annotations

import math
import sys

from repro.analysis.bounds import max_poa_lower_bound, max_poa_upper_bound
from repro.analysis.regions import classify_max_region, classify_sum_region


def log_grid(low: float, high: float, points: int) -> list[float]:
    ratio = (high / low) ** (1 / (points - 1))
    return [low * ratio**i for i in range(points)]


def main(n: int = 10_000) -> None:
    alphas = log_grid(1.5, n, 14)
    ks = log_grid(1, n, 14)

    print(f"MaxNCG region map (Figure 3), n = {n}")
    print("rows: k from large (top) to small; columns: α from small to large\n")
    symbol = {
        "①": "1", "②": "2", "③": "3", "④": "4",
        "⑤": "5", "⑥": "6", "⑦": "7", "⑧": "8", "NE≡LKE": ".",
    }
    for k in reversed(ks):
        row = "".join(
            symbol[classify_max_region(n, alpha, max(1, round(k))).value] for alpha in alphas
        )
        print(f"  k={max(1, round(k)):>6} {row}")
    print("  legend: digits = regions ①-⑧ of Figure 3, '.' = NE≡LKE (grey region)")

    k_fixed = 4
    print(f"\nBound values along the row k = {k_fixed}:")
    print(f"  {'alpha':>10} {'lower bound':>14} {'upper bound':>14}")
    for alpha in alphas:
        lower = max_poa_lower_bound(n, alpha, k_fixed)
        upper = max_poa_upper_bound(n, alpha, k_fixed)
        print(f"  {alpha:>10.2f} {lower:>14.2f} {upper:>14.2f}")

    print(f"\nSumNCG region map (Figure 4), n = {n}")
    sum_symbol = {
        "Ω(n/k)": "T",
        "Ω(1 + n²/(kα))": "t",
        "Ω(max{n²/(kα), n^{1/(2k-2)}})": "G",
        "open": "?",
        "NE≡LKE": ".",
    }
    sum_ks = log_grid(1, math.sqrt(n), 10)
    sum_alphas = log_grid(1.5, n**1.5, 14)
    for k in reversed(sum_ks):
        row = "".join(
            sum_symbol[classify_sum_region(n, alpha, max(1, round(k))).value]
            for alpha in sum_alphas
        )
        print(f"  k={max(1, round(k)):>6} {row}")
    print("  legend: T/t = torus bounds, G = high-girth bound, ? = open, '.' = NE≡LKE")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10_000)
