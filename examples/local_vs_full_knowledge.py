#!/usr/bin/env python3
"""How much does limited knowledge cost? (The paper's motivating question.)

For a fixed instance family (random trees) and price α, this example sweeps
the knowledge radius k from 2 up to full knowledge and reports how the
quality of the resulting equilibria, the convergence time and the fairness
change — a miniature version of Figures 6, 7 and 9.

Run with::

    python examples/local_vs_full_knowledge.py [n] [alpha]
"""

from __future__ import annotations

import sys

from repro import MaxNCG, best_response_dynamics, random_owned_tree
from repro.analysis.statistics import summarize
from repro.core.games import FULL_KNOWLEDGE


def main(n: int = 30, alpha: float = 2.0, seeds: int = 5) -> None:
    ks: list[float] = [1, 2, 3, 4, 5, FULL_KNOWLEDGE]
    print(f"Random trees, n={n}, alpha={alpha}, {seeds} seeds per k\n")
    header = f"{'k':>6}  {'quality':>14}  {'rounds':>12}  {'unfairness':>14}  {'view size':>12}"
    print(header)
    print("-" * len(header))
    for k in ks:
        qualities, rounds, unfairness, views = [], [], [], []
        for seed in range(seeds):
            instance = random_owned_tree(n, seed=seed)
            game = MaxNCG(alpha=alpha, k=k)
            result = best_response_dynamics(instance, game, solver="greedy")
            qualities.append(result.final_metrics.quality)
            rounds.append(result.rounds)
            unfairness.append(result.final_metrics.unfairness)
            views.append(result.final_metrics.mean_view_size)
        k_label = "full" if k == FULL_KNOWLEDGE else str(int(k))
        print(
            f"{k_label:>6}  {str(summarize(qualities)):>14}  {str(summarize(rounds)):>12}  "
            f"{str(summarize(unfairness)):>14}  {str(summarize(views)):>12}"
        )
    print(
        "\nExpected shape (paper, Figures 6-9): the quality improves as k grows, "
        "equilibria become less fair, and beyond a small threshold the players "
        "effectively have full knowledge."
    )


if __name__ == "__main__":
    args = sys.argv[1:3]
    main(
        n=int(args[0]) if len(args) > 0 else 30,
        alpha=float(args[1]) if len(args) > 1 else 2.0,
    )
