#!/usr/bin/env python3
"""SumNCG under local knowledge: the experiment the paper leaves out.

Section 5 of the paper restricts the simulations to MaxNCG because exact
SumNCG best responses are too expensive at n = 100-200.  At small n the
exhaustive solver is exact, which is enough to *see* the behavioural
difference between the two games that Section 2 predicts:

* a MaxNCG player evaluates a move exactly as if her view were the whole
  network (Proposition 2.1), while
* a SumNCG player must additionally refuse every move that pushes a
  frontier vertex farther away (Proposition 2.2), making her far more
  conservative when k is small.

The script runs the round-robin dynamics for both games on the same starting
trees and prints, per knowledge radius, how many strategy changes the
players performed and how good the stable network ends up being.

Run with::

    python examples/sumncg_small_scale.py [n] [alpha]
"""

from __future__ import annotations

import sys

from repro import FULL_KNOWLEDGE, MaxNCG, SumNCG, best_response_dynamics, random_owned_tree


def main(n: int = 12, alpha: float = 1.5) -> None:
    ks: list[float] = [2, 3, FULL_KNOWLEDGE]
    seeds = range(3)

    print(f"Round-robin dynamics on random trees with n={n}, alpha={alpha}")
    print(f"{'game':>8} {'k':>5} {'changes':>8} {'rounds':>7} {'quality':>8} {'diameter':>9}")
    for make_game, label in ((MaxNCG, "max"), (SumNCG, "sum")):
        for k in ks:
            changes, rounds, quality, diameter = 0.0, 0.0, 0.0, 0.0
            for seed in seeds:
                instance = random_owned_tree(n, seed=seed)
                game = make_game(alpha=alpha, k=k)
                result = best_response_dynamics(instance, game)
                changes += result.total_changes
                rounds += result.rounds
                quality += result.final_metrics.quality
                diameter += result.final_metrics.diameter
            count = len(list(seeds))
            k_label = "inf" if k == FULL_KNOWLEDGE else str(int(k))
            print(
                f"{label:>8} {k_label:>5} {changes / count:8.1f} {rounds / count:7.1f} "
                f"{quality / count:8.2f} {diameter / count:9.1f}"
            )

    print(
        "\nReading: the SumNCG rows with small k perform far fewer strategy\n"
        "changes than their full-knowledge counterparts - the Proposition 2.2\n"
        "rule forbids every move that risks pushing invisible players away -\n"
        "whereas MaxNCG players restructure the network at every radius."
    )


if __name__ == "__main__":
    argv = sys.argv[1:]
    main(
        n=int(argv[0]) if len(argv) > 0 else 12,
        alpha=float(argv[1]) if len(argv) > 1 else 1.5,
    )
