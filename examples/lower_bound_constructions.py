#!/usr/bin/env python3
"""Build and certify the paper's lower-bound constructions.

The Price-of-Anarchy lower bounds of Sections 3 and 4 rest on explicit
networks that are stable although their social cost is far from optimal.
This example constructs three of them —

* the cycle of Lemma 3.1 (MaxNCG, α >= k - 1),
* the stretched toroidal grid of Theorem 3.12 (MaxNCG, 1 < α <= k),
* the d = 2, ℓ = 2 torus of Lemma 4.1 (SumNCG, α >= 4k³),

— certifies programmatically that no player can improve (in the LKE sense)
and compares the measured PoA ratio with the paper's predicted lower bound.

Run with::

    python examples/lower_bound_constructions.py
"""

from __future__ import annotations

from repro.analysis.certificates import (
    certify_cycle_lemma_3_1,
    certify_sum_torus_lemma_4_1,
    certify_torus_theorem_3_12,
)


def show(result) -> None:
    print(f"\n=== {result.construction} ===")
    print(f"  game: {result.game.label()}")
    print(f"  n = {result.num_players}, m = {result.num_edges}, diameter = {result.diameter}")
    print(f"  equilibrium certified: {result.is_equilibrium} "
          f"(players checked: {result.players_checked})")
    print(f"  social cost = {result.social_cost:.1f}, optimum = {result.social_optimum:.1f}")
    print(f"  measured PoA ratio = {result.poa_ratio:.2f}")
    if result.predicted_lower_bound is not None:
        print(f"  paper's Ω(·) lower-bound value = {result.predicted_lower_bound:.2f}")
    if result.improving_players:
        print(f"  !! improving players found: {result.improving_players}")


def main() -> None:
    print("Certifying the lower-bound constructions (this takes a minute)...")

    show(certify_cycle_lemma_3_1(n=40, alpha=4.0, k=4, max_players=10))
    show(certify_torus_theorem_3_12(alpha=2.0, k=2, n_target=300, max_players=12))
    show(certify_sum_torus_lemma_4_1(alpha=40.0, k=2, n_target=150, max_players=12))

    print(
        "\nAll three networks are stable despite their large diameter: exactly "
        "the gap between LKE and NE that drives the paper's Ω(n / (1+α)), "
        "Ω(n / (α·2^{Θ(log²(k/α))})) and Ω(n/k) bounds."
    )


if __name__ == "__main__":
    main()
