"""Walkthrough: orchestrated, journaled, resumable sweeps.

Usage::

    python examples/sweep_service.py [n] [workers]

Builds a small RunSpec grid where four (alpha, k) cells share each random
instance, runs it three ways and shows what the sweep orchestration
service (``repro.service``) adds over the throwaway pool:

1. the classic serial sweep (the ground truth);
2. the orchestrated sweep — instance-affine shards on warm workers — whose
   results must be identical;
3. a journaled sweep that gets "killed" halfway (we truncate the journal
   to simulate the SIGKILL) and resumed with ``resume=True``: the completed
   half is served from the journal, only the rest is recomputed, and the
   final row set is identical again.

The CLI equivalent of step 3 is::

    python -m repro sweep --workers 4 --journal out/store          # killed...
    python -m repro sweep --workers 4 --journal out/store --resume # ...resumed
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.experiments.config import SweepSettings
from repro.experiments.runner import RunSpec, run_sweep
from repro.service.api import ServiceConfig, run_spec_sweep
from repro.service.journal import SweepJournal


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    specs = [
        RunSpec(family="tree", n=n, alpha=alpha, k=k, seed=seed, solver="greedy")
        for alpha in (0.5, 2.0)
        for k in (2, 3)
        for seed in range(2)
    ]
    print(f"grid: {len(specs)} runs, 4 (alpha, k) cells per instance, n={n}")

    serial = run_sweep(specs, SweepSettings(num_seeds=2, solver="greedy", workers=1))
    print(f"serial sweep       : {sum(r.converged for r in serial)}/{len(serial)} converged")

    orchestrated = run_spec_sweep(specs, ServiceConfig(workers=workers))
    print(f"orchestrated sweep : identical results = {orchestrated == serial}")

    with tempfile.TemporaryDirectory() as tmp:
        run_sweep(
            specs,
            SweepSettings(num_seeds=2, solver="greedy", workers=workers),
            journal=tmp,
        )
        log = Path(tmp) / "sweep" / SweepJournal.LOG_NAME
        lines = log.read_text().splitlines(True)
        log.write_text("".join(lines[: len(lines) // 2]))  # the "kill"
        print(f"killed mid-sweep   : {len(lines) // 2}/{len(lines)} tasks journaled")
        resumed = run_sweep(
            specs,
            SweepSettings(num_seeds=2, solver="greedy", workers=workers),
            journal=tmp,
            resume=True,
        )
        print(f"resumed sweep      : identical results = {resumed == serial}")


if __name__ == "__main__":
    main()
