#!/usr/bin/env python3
"""Anatomy of a stable network: cut structure, hubs, and who pays for what.

Figures 8-9 of the paper summarise equilibria with two numbers (maximum
degree and the unfairness ratio).  This example digs one level deeper: it
runs the standard dynamics for a few knowledge radii, checkpoints each
stable network to JSON, and prints a structural report —

* how tree-like the equilibrium is (bridges, cyclomatic number),
* how concentrated the hub structure is (degree / betweenness Gini,
  top-10 % degree share, whether the hubs sit at the graph center), and
* how the social cost splits between building and usage and how unevenly
  each share is carried.

Run with::

    python examples/equilibrium_anatomy.py [n] [alpha]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import FULL_KNOWLEDGE, MaxNCG, best_response_dynamics, random_owned_tree
from repro.analysis.structure import structure_report
from repro.core.serialization import read_dynamics_checkpoint, write_dynamics_result_json


def main(n: int = 30, alpha: float = 2.0) -> None:
    checkpoint_dir = Path(tempfile.mkdtemp(prefix="repro-anatomy-"))
    print(f"Random tree on {n} players, alpha={alpha}; checkpoints in {checkpoint_dir}\n")

    header = (
        f"{'k':>5} {'quality':>8} {'bridges':>8} {'cyclo':>6} {'deg gini':>9} "
        f"{'top10%':>7} {'betw gini':>10} {'build share':>12} {'hub=center':>11}"
    )
    print(header)

    for k in (2, 3, 5, FULL_KNOWLEDGE):
        instance = random_owned_tree(n, seed=0)
        game = MaxNCG(alpha=alpha, k=k)
        result = best_response_dynamics(instance, game)

        # Checkpoint the outcome, then reload it before analysing - the
        # post-hoc analysis never needs the dynamics to be re-run.
        k_label = "inf" if k == FULL_KNOWLEDGE else str(int(k))
        path = checkpoint_dir / f"equilibrium_k{k_label}.json"
        write_dynamics_result_json(result, path)
        profile, loaded_game, _ = read_dynamics_checkpoint(path)

        report = structure_report(profile, loaded_game)
        print(
            f"{k_label:>5} {result.final_metrics.quality:8.2f} {report.num_bridges:8d} "
            f"{report.cyclomatic_number:6d} {report.degree_gini:9.2f} "
            f"{report.degree_top10_share:7.2f} {report.betweenness_gini:10.2f} "
            f"{report.building_cost_share:12.2f} {str(report.hubs_in_center):>11}"
        )

    print(
        "\nReading: as the knowledge radius grows the equilibrium becomes more\n"
        "hub-centric - the degree and betweenness Gini coefficients rise, the\n"
        "busiest 10% of players carry a growing share of all edge endpoints,\n"
        "and the hubs move into the graph center.  The network stays almost\n"
        "tree-like throughout (bridges ~= edges, tiny cyclomatic number),\n"
        "which is why the usage cost, not the building cost, dominates the\n"
        "social cost at every radius."
    )


if __name__ == "__main__":
    argv = sys.argv[1:]
    main(
        n=int(argv[0]) if len(argv) > 0 else 30,
        alpha=float(argv[1]) if len(argv) > 1 else 2.0,
    )
