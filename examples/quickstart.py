#!/usr/bin/env python3
"""Quickstart: simulate a locality-based network creation game.

This example mirrors the workflow of the paper's experimental section on a
single instance:

1. sample a random tree on ``n`` players with fair-coin edge ownership,
2. run the round-robin best-response dynamics of MaxNCG with edge price α
   and knowledge radius k,
3. inspect the resulting stable network (quality, diameter, degrees, view
   sizes) and verify that it really is a Local Knowledge Equilibrium.

Run with::

    python examples/quickstart.py [n] [alpha] [k]
"""

from __future__ import annotations

import sys

from repro import (
    MaxNCG,
    best_response_dynamics,
    certify_equilibrium,
    random_owned_tree,
)


def main(n: int = 40, alpha: float = 2.0, k: int = 3) -> None:
    print(f"Sampling a uniform random tree on {n} players (fair-coin ownership)")
    instance = random_owned_tree(n, seed=0)
    game = MaxNCG(alpha=alpha, k=k)
    print(f"Game: {game.label()}")

    result = best_response_dynamics(instance, game, collect_round_metrics=True)

    print(f"\nDynamics: converged={result.converged} after {result.rounds} rounds "
          f"({result.total_changes} strategy changes)")
    for record in result.round_records:
        m = record.metrics
        print(
            f"  round {record.round_index}: {record.num_changes:3d} changes, "
            f"social cost {m.social_cost:8.1f}, diameter {m.diameter}, "
            f"max degree {m.max_degree}"
        )

    final = result.final_metrics
    print("\nStable network:")
    print(f"  quality of equilibrium (social cost / optimum): {final.quality:.3f}")
    print(f"  diameter: {final.diameter}")
    print(f"  max degree: {final.max_degree}, max bought edges: {final.max_bought_edges}")
    print(f"  average view size: {final.mean_view_size:.1f} / {n} players")
    print(f"  unfairness ratio: {final.unfairness:.2f}")

    report = certify_equilibrium(result.final_profile, game)
    print(f"\nIndependent LKE certification: {report.is_equilibrium} "
          f"({len(report.checked_exactly)} players checked exactly)")


if __name__ == "__main__":
    args = [float(x) for x in sys.argv[1:4]]
    main(
        n=int(args[0]) if len(args) > 0 else 40,
        alpha=args[1] if len(args) > 1 else 2.0,
        k=int(args[2]) if len(args) > 2 else 3,
    )
