#!/usr/bin/env python3
"""Kernel backends: pick the machinery, keep the bits.

The two hot loops of every experiment — the batched BFS level expansion
and the set-cover branch-and-bound search — run on pluggable backends
(:mod:`repro.kernels`): the always-available ``numpy`` reference, a
``numba`` JIT backend (``pip install repro[kernels]``) and an opt-in
``native`` C/ctypes backend compiled with the system compiler.  All of
them are **bit-identical**; the backend is a speed knob, never a
semantics knob.  This example

1. lists which backends are registered vs actually available here,
2. runs the same best-response dynamics once per available backend and
   shows the trajectories coincide exactly,
3. times the batched BFS on each backend on one larger instance,
4. times the *fused* ``bfs_reduce`` (per-source eccentricity / distance
   sum / unreached / view size, no distance matrix) against
   materialise-then-fold, identical vectors asserted,
5. shows the selection chain: explicit argument > ``use_backend`` scope
   > ``REPRO_KERNEL_BACKEND`` > auto-detect, with silent numpy fallback
   for unavailable backends — and the ``threads`` knob
   (``use_threads`` / ``REPRO_KERNEL_THREADS``), whose results are
   bit-identical to single-threaded.

Run with::

    python examples/kernel_backends.py [n] [alpha] [k]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import MaxNCG, best_response_dynamics, random_owned_tree
from repro.graphs.generators.smallworld import owned_barabasi_albert
from repro.graphs.traversal import batched_bfs_distances, reduce_bfs_distances
from repro.kernels import (
    available_backends,
    registered_backends,
    resolve_backend,
    use_backend,
    use_threads,
)


def main(n: int = 32, alpha: float = 0.5, k: int = 2) -> None:
    names = available_backends()
    print(f"registered backends: {', '.join(registered_backends())}")
    print(f"available here:      {', '.join(names)}")
    print(f"auto-detected:       {resolve_backend(None).name}")

    # ------------------------------------------------------------------
    # Same dynamics, every backend: identical trajectories.
    # ------------------------------------------------------------------
    game = MaxNCG(alpha=alpha, k=k)
    print(f"\nDynamics on a random {n}-player tree, {game.label()}:")
    fingerprints = {}
    for name in names:
        result = best_response_dynamics(
            random_owned_tree(n, seed=0), game, kernel_backend=name
        )
        fingerprints[name] = (
            result.final_profile.canonical_key(),
            result.rounds,
            result.total_changes,
        )
        print(
            f"  {name:>6}: converged={result.converged} "
            f"rounds={result.rounds} changes={result.total_changes} "
            f"social cost={result.final_metrics.social_cost:.1f}"
        )
    reference = fingerprints[names[0]]
    assert all(fp == reference for fp in fingerprints.values())
    print("  -> identical final networks, bit for bit")

    # ------------------------------------------------------------------
    # The BFS kernel alone, on something big enough to feel.
    # ------------------------------------------------------------------
    big = 2000
    indptr, indices, _ = owned_barabasi_albert(big, 2, seed=0).graph.to_csr_arrays()
    sources = np.arange(256, dtype=np.int64)
    print(f"\nBatched BFS, {len(sources)} sources on a {big}-node graph:")
    matrices = {}
    for name in names:
        batched_bfs_distances(indptr, indices, sources[:2], backend=name)  # warm up
        start = time.perf_counter()
        matrices[name] = batched_bfs_distances(indptr, indices, sources, backend=name)
        print(f"  {name:>6}: {time.perf_counter() - start:7.4f} s")
    assert all(
        np.array_equal(matrices[names[0]], matrices[name]) for name in names
    )
    print("  -> identical distance matrices")

    # ------------------------------------------------------------------
    # The fused reduction: the metrics sweep without the matrix.
    # ------------------------------------------------------------------
    print(f"\nFused bfs_reduce, same {len(sources)} sources (view radius {k}):")
    reductions = {}
    for name in names:
        reduce_bfs_distances(indptr, indices, sources[:2], view_radius=k, backend=name)
        start = time.perf_counter()
        reductions[name] = reduce_bfs_distances(
            indptr, indices, sources, view_radius=k, backend=name
        )
        print(f"  {name:>6}: {time.perf_counter() - start:7.4f} s")
    assert all(
        all(np.array_equal(a, b) for a, b in zip(reductions[names[0]], reductions[name]))
        for name in names
    )
    print("  -> identical eccentricity/sum/unreached/view-size vectors")

    # ------------------------------------------------------------------
    # Selection chain.
    # ------------------------------------------------------------------
    print("\nSelection:")
    with use_backend("numpy"):
        print(f"  inside use_backend('numpy'):       {resolve_backend(None).name}")
        print(f"  explicit argument still outranks:  {resolve_backend(names[-1]).name}")
    print(f"  after the scope:                   {resolve_backend(None).name}")
    # A registered-but-unavailable backend falls back to numpy silently —
    # optional acceleration never becomes a hard dependency.
    print(f"  resolve_backend('numba') here:     {resolve_backend('numba').name}")
    # The threads knob parallelises the compiled kernels over sources;
    # results stay bit-identical, so it is safe to flip anywhere.
    with use_threads(4):
        threaded = resolve_backend(names[-1])
        print(f"  inside use_threads(4):             {threaded.name} "
              f"(threads={threaded.threads})")
        four = reduce_bfs_distances(
            indptr, indices, sources, view_radius=k, backend=threaded
        )
        assert all(np.array_equal(a, b) for a, b in zip(reductions[names[-1]], four))
        print("  -> threaded reduction identical to single-threaded")


if __name__ == "__main__":
    args = sys.argv[1:4]
    main(
        n=int(args[0]) if len(args) > 0 else 32,
        alpha=float(args[1]) if len(args) > 1 else 0.5,
        k=int(args[2]) if len(args) > 2 else 2,
    )
