#!/usr/bin/env python3
"""Network-discovery view models: what if players learn the network differently?

The paper fixes one information regime — every player knows the subgraph
induced by her radius-k ball.  Its conclusions point at network discovery as
a source of alternative regimes, and this example compares three of them on
the stable networks produced by the standard dynamics:

* ``k-neighborhood`` — the paper's model;
* ``union-of-balls`` — the player also learns the radius-r balls of her
  direct neighbours (cooperative discovery);
* ``traceroute``     — the player probes every other node and learns one
  shortest path to each (so she knows all distances exactly but only a
  path-union of the topology).

For each model the script prints how much of the network the players see and
whether the equilibrium survives the change of information regime.

Run with::

    python examples/discovery_view_models.py [n] [alpha] [k]
"""

from __future__ import annotations

import sys

from repro import (
    KNeighborhoodModel,
    MaxNCG,
    TracerouteModel,
    UnionOfBallsModel,
    best_response_dynamics,
    random_owned_tree,
)
from repro.discovery import compare_view_models


def main(n: int = 16, alpha: float = 2.0, k: int = 2) -> None:
    game = MaxNCG(alpha=alpha, k=k)
    instance = random_owned_tree(n, seed=1)
    result = best_response_dynamics(instance, game)
    profile = result.final_profile
    print(
        f"Stable network reached by the paper's dynamics on a random tree "
        f"(n={n}, alpha={alpha}, k={k}); quality={result.final_metrics.quality:.2f}\n"
    )

    models = [
        KNeighborhoodModel(k=k),
        UnionOfBallsModel(radius=max(k // 2, 1), include_neighbors=True),
        TracerouteModel(),
    ]
    rows = compare_view_models(profile, game, models, solver="branch_and_bound")

    print(f"{'model':>40} {'mean view':>10} {'min view':>9} {'frontier':>9} {'stable?':>8}")
    for row in rows:
        print(
            f"{row.model_label:>40} {row.mean_view_size:10.1f} {row.min_view_size:9d} "
            f"{row.mean_frontier_size:9.1f} {str(row.stable):>8}"
        )

    print(
        "\nReading: the discovery models reveal (much) more of the network\n"
        "than the radius-k ball, and richer information can destroy\n"
        "stability - players spot improving deviations the k-neighbourhood\n"
        "view hid from them.  This is the experimental face of the paper's\n"
        "observation that the LKE set shrinks towards the NE set as views\n"
        "grow (Corollary 3.14)."
    )


if __name__ == "__main__":
    argv = sys.argv[1:]
    main(
        n=int(argv[0]) if len(argv) > 0 else 16,
        alpha=float(argv[1]) if len(argv) > 1 else 2.0,
        k=int(argv[2]) if len(argv) > 2 else 2,
    )
