#!/usr/bin/env python3
"""Swap-only and greedy (single-edge) dynamics vs full best responses.

The related work cited by the paper studies network creation with restricted
move sets: Alon et al.'s swap game (replace one owned edge) and Lenzner's
greedy game (add / delete / swap one edge).  Both compose with the paper's
locality model unchanged, and this example compares the three dynamics from
identical starting networks:

* full best responses (the paper's Section 5 protocol),
* greedy single-edge moves,
* swap-only moves (the number of bought edges can never change).

Run with::

    python examples/restricted_move_dynamics.py [n] [alpha] [k]
"""

from __future__ import annotations

import sys

from repro import (
    MaxNCG,
    best_response_dynamics,
    greedy_dynamics,
    is_greedy_equilibrium,
    is_swap_equilibrium,
    random_owned_tree,
    swap_dynamics,
)


def main(n: int = 20, alpha: float = 2.0, k: int = 3) -> None:
    game = MaxNCG(alpha=alpha, k=k)
    print(f"Game: {game.label()}, starting from random trees on {n} players\n")
    header = f"{'dynamics':>15} {'rounds':>7} {'changes':>8} {'quality':>8} {'max degree':>11} {'stable?':>8}"
    print(header)

    for seed in range(3):
        instance = random_owned_tree(n, seed=seed)

        full = best_response_dynamics(instance, game)
        greedy = greedy_dynamics(instance, game)
        swap = swap_dynamics(instance, game)

        rows = [
            ("best-response", full.rounds, full.total_changes, full.final_metrics,
             full.converged),
            ("greedy", greedy.rounds, greedy.total_changes, greedy.final_metrics,
             is_greedy_equilibrium(greedy.final_profile, game)),
            ("swap-only", swap.rounds, swap.total_changes, swap.final_metrics,
             is_swap_equilibrium(swap.final_profile, game)),
        ]
        print(f"  seed {seed}:")
        for label, rounds, changes, metrics, stable in rows:
            print(
                f"{label:>15} {rounds:7d} {changes:8d} {metrics.quality:8.2f} "
                f"{metrics.max_degree:11d} {str(stable):>8}"
            )

    print(
        "\nReading: the richer the move set, the more aggressively hubs form\n"
        "(higher max degree, lower quality ratio).  Swap-only players cannot\n"
        "change how many edges they own, so the degree distribution of the\n"
        "starting tree survives almost unchanged."
    )


if __name__ == "__main__":
    argv = sys.argv[1:]
    main(
        n=int(argv[0]) if len(argv) > 0 else 20,
        alpha=float(argv[1]) if len(argv) > 1 else 2.0,
        k=int(argv[2]) if len(argv) > 2 else 3,
    )
