#!/usr/bin/env python3
"""Worst-case vs Bayesian players: when do LKEs survive a change of attitude?

The paper's Local Knowledge Equilibrium uses a maximin rule: deviate only if
the move helps against *every* network compatible with the view.  Its
conclusions propose the Bayesian relaxation — deviate when the move helps in
expectation under a belief about the invisible part of the network.

This example runs the standard dynamics on small trees for both games, then
re-examines the resulting equilibria through three beliefs:

* ``empty-world``   — nothing exists beyond the view (the optimist);
* ``geometric``     — the network keeps branching like the visible part;
* ``pessimistic``   — a heavy mass of hidden players hangs behind every
  frontier vertex (the paranoid player of Proposition 2.2's proof).

Run with::

    python examples/bayesian_beliefs.py [n] [alpha] [k]
"""

from __future__ import annotations

import sys

from repro import (
    EmptyWorldBelief,
    GeometricGrowthBelief,
    MaxNCG,
    PessimisticBelief,
    SumNCG,
    best_response_dynamics,
    is_bayesian_equilibrium,
    random_owned_tree,
)

BELIEFS = [
    ("empty-world", EmptyWorldBelief()),
    ("geometric", GeometricGrowthBelief(depth=3)),
    ("pessimistic", PessimisticBelief(eta=25.0, extra_distance=1.0)),
]


def main(n: int = 12, alpha: float = 2.0, k: int = 2) -> None:
    print(f"Random trees on {n} players, alpha={alpha}, knowledge radius k={k}\n")
    print(f"{'game':>6} {'seed':>5} " + " ".join(f"{label:>14}" for label, _ in BELIEFS))
    for make_game, label in ((MaxNCG, "max"), (SumNCG, "sum")):
        for seed in range(3):
            instance = random_owned_tree(n, seed=seed)
            game = make_game(alpha=alpha, k=k)
            result = best_response_dynamics(instance, game)
            profile = result.final_profile
            verdicts = []
            for _, belief in BELIEFS:
                survives = is_bayesian_equilibrium(profile, game, belief, max_candidates=n)
                verdicts.append("stable" if survives else "deviates")
            print(f"{label:>6} {seed:>5} " + " ".join(f"{v:>14}" for v in verdicts))

    print(
        "\nReading: MaxNCG equilibria always survive the empty-world belief\n"
        "(Proposition 2.1 makes the worst case coincide with the view), while\n"
        "SumNCG equilibria often dissolve under heavy pessimism - once a\n"
        "player expects many hidden vertices behind the frontier, buying an\n"
        "edge towards it becomes worthwhile in expectation even though the\n"
        "worst-case rule saw no profit."
    )


if __name__ == "__main__":
    argv = sys.argv[1:]
    main(
        n=int(argv[0]) if len(argv) > 0 else 12,
        alpha=float(argv[1]) if len(argv) > 1 else 2.0,
        k=int(argv[2]) if len(argv) > 2 else 2,
    )
