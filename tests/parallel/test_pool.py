"""Tests for the process-pool helpers."""

import os

import pytest

from repro.parallel.pool import derive_chunksize, parallel_map, resolve_workers


def square(x: int) -> int:
    return x * x


def failing(x: int) -> int:
    raise RuntimeError(f"boom {x}")


class TestResolveWorkers:
    def test_none_and_zero_mean_all_cores(self):
        cores = max(1, os.cpu_count() or 1)
        assert resolve_workers(None) == cores
        assert resolve_workers(0) == cores

    def test_explicit_value(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestParallelMap:
    def test_empty_input(self):
        assert parallel_map(square, [], workers=4) == []

    def test_serial_path(self):
        assert parallel_map(square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_parallel_path_preserves_order(self):
        items = list(range(20))
        assert parallel_map(square, items, workers=2) == [x * x for x in items]

    def test_single_item_short_circuits(self):
        assert parallel_map(square, [5], workers=8) == [25]

    def test_exceptions_propagate_serial(self):
        with pytest.raises(RuntimeError):
            parallel_map(failing, [1], workers=1)

    def test_exceptions_propagate_parallel(self):
        with pytest.raises(RuntimeError):
            parallel_map(failing, [1, 2, 3], workers=2)

    def test_chunksize_does_not_change_results(self):
        items = list(range(15))
        assert parallel_map(square, items, workers=2, chunksize=4) == [
            x * x for x in items
        ]

    def test_auto_chunksize_preserves_results(self):
        items = list(range(40))
        assert parallel_map(square, items, workers=2) == [x * x for x in items]


class TestDeriveChunksize:
    def test_four_chunks_per_worker(self):
        assert derive_chunksize(80, 2) == 10
        assert derive_chunksize(1000, 4) == 62

    def test_small_work_floors_at_one(self):
        assert derive_chunksize(3, 8) == 1
        assert derive_chunksize(0, 2) == 1

    def test_all_cores_request_matches_resolved_pool(self):
        # None/0 mean "all cores", exactly as resolve_workers says.  The
        # old clamp treated them as ONE worker, deriving a chunk size four
        # times too large for the pool that actually runs — on a multi-core
        # box a handful of tasks collapsed onto a fraction of the workers.
        cores = resolve_workers(None)
        assert derive_chunksize(40, None) == derive_chunksize(40, cores)
        assert derive_chunksize(40, 0) == derive_chunksize(40, cores)

    def test_no_worker_starvation(self):
        # Invariant: with work to hand out, there are at least
        # min(num_items, workers) chunks — no worker idles while another
        # holds a multi-item chunk of a tiny list.
        for num_items in range(1, 120):
            for workers in (1, 2, 3, 5, 8, 16, 64):
                chunk = derive_chunksize(num_items, workers)
                num_chunks = -(-num_items // chunk)
                assert num_chunks >= min(num_items, workers), (
                    num_items,
                    workers,
                    chunk,
                )
