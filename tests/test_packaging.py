"""Packaging metadata: the ``repro[kernels]`` extra and version pinning.

The numba kernel backend is distributed as an *optional* extra; these tests
pin the two invariants that keep it optional in practice: the metadata
stays in sync with the code, and importing / resolving kernels never
raises ``ImportError`` when the extra is not installed.
"""

from __future__ import annotations

import tomllib
from pathlib import Path

import repro

PYPROJECT = Path(__file__).resolve().parent.parent / "pyproject.toml"


def _project() -> dict:
    with PYPROJECT.open("rb") as handle:
        return tomllib.load(handle)["project"]


def test_version_matches_package():
    assert _project()["version"] == repro.__version__


def test_kernels_extra_lists_numba():
    extras = _project()["optional-dependencies"]
    assert "numba" in extras["kernels"]
    # numba must NOT be a hard dependency: the numpy reference backend keeps
    # the whole stack functional without any compiled toolchain.
    assert all("numba" not in dep for dep in _project()["dependencies"])


def test_kernels_import_without_numba_is_graceful():
    """Whether or not numba is installed, the kernels package imports and
    resolves a working backend — a missing extra degrades, never breaks."""
    from repro.kernels import available_backends, resolve_backend

    assert "numpy" in available_backends()
    backend = resolve_backend(None)
    assert callable(backend.bfs) and callable(backend.cover_search)
    # Asking for numba by name must also never surface an ImportError:
    # either the extra is installed (backend builds) or resolution falls
    # back to numpy silently.
    assert resolve_backend("numba").name in {"numba", "numpy"}
