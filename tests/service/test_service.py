"""Tests for the sweep orchestration service.

The load-bearing property: orchestrated sweeps — any worker count, any
shard assignment, warm engine reuse, shared-memory instances, journal
round-trips — produce exactly the serial path's results, reassembled in
canonical task order.  Timing fields (``warm_s``/``cold_s``/
``warm_speedup``) are the sole documented exception; they differ between
two *serial* runs just the same.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.config import SweepSettings
from repro.experiments.extensions.robustness import (
    RobustnessStudyConfig,
    generate_robustness_study,
)
from repro.experiments.runner import RunSpec, run_single, run_sweep
from repro.service.api import ServiceConfig, orchestrate, robustness_sweep, run_spec_sweep
from repro.service.tasks import (
    compile_robustness_tasks,
    compile_run_specs,
    decode_result,
    encode_result,
    instance_builder,
    shard_tasks,
    strip_timing_fields,
    sweep_hash,
)
from repro.service.workers import (
    SharedInstanceStore,
    WorkerRuntime,
    attach_shared_profile,
)


def _specs(num_seeds: int = 2) -> list[RunSpec]:
    return [
        RunSpec(family="tree", n=10, alpha=alpha, k=k, seed=seed, solver="greedy")
        for alpha in (0.5, 2.0)
        for k in (2, 3)
        for seed in range(num_seeds)
    ]


def _robustness_config(workers: int = 1) -> RobustnessStudyConfig:
    return RobustnessStudyConfig(
        families=("tree", "gnp"),
        operators=("add_shortcuts", "reset_player"),
        n=10,
        alphas=(0.5,),
        ks=(2,),
        shocks_per_instance=2,
        intensity=1,
        settings=SweepSettings(
            num_seeds=1, solver="branch_and_bound", max_rounds=60, workers=workers
        ),
    )


class TestCompilationAndSharding:
    def test_run_spec_tasks_share_instance_keys_across_cells(self):
        tasks = compile_run_specs(_specs(num_seeds=2))
        by_seed = {}
        for task in tasks:
            by_seed.setdefault(task.payload[0].seed, set()).add(task.instance_key)
        # Same (family, n, seed) across the four (alpha, k) cells -> one key.
        assert all(len(keys) == 1 for keys in by_seed.values())
        assert len({task.spec_hash for task in tasks}) == len(tasks)

    def test_robustness_tasks_share_sessions_per_cell(self):
        tasks = compile_robustness_tasks(_robustness_config())
        cells = {}
        for task in tasks:
            cells.setdefault(task.session_key, []).append(task)
        assert all(len(ops) == 2 for ops in cells.values())
        # Exactly one emit_base task per cell, the first operator.
        for ops in cells.values():
            assert [task.payload[11] for task in ops] == [True, False]

    def test_shards_preserve_instance_affinity(self):
        tasks = compile_run_specs(_specs(num_seeds=3))
        for seed in (None, 0, 1, 17):
            shards = shard_tasks(tasks, 3, order_seed=seed)
            flattened = [task for shard in shards for task in shard]
            assert sorted(t.index for t in flattened) == [t.index for t in tasks]
            owner = {}
            for shard_id, shard in enumerate(shards):
                for task in shard:
                    assert owner.setdefault(task.instance_key, shard_id) == shard_id

    def test_single_shard_is_the_task_list(self):
        tasks = compile_run_specs(_specs())
        assert shard_tasks(tasks, 1) == [tasks]
        assert shard_tasks([], 4) == []

    def test_sweep_hash_tracks_content(self):
        tasks = compile_run_specs(_specs())
        assert sweep_hash(tasks) == sweep_hash(compile_run_specs(_specs()))
        other = compile_run_specs(_specs()[:-1])
        assert sweep_hash(tasks) != sweep_hash(other)


class TestCodecs:
    def test_run_result_round_trip_is_exact(self):
        tasks = compile_run_specs(_specs()[:3])
        for task in tasks:
            result = run_single(task.payload[0])
            assert decode_result("run_spec", encode_result(task, result)) == result

    def test_round_trip_survives_json(self):
        import json

        task = compile_run_specs(_specs()[:1])[0]
        result = run_single(task.payload[0])
        payload = json.loads(json.dumps(encode_result(task, result)))
        assert decode_result("run_spec", payload) == result

    def test_row_codec_is_type_preserving(self):
        import json
        import math

        from repro.service.tasks import _jsonify_row, _parse_row

        # A string field literally holding "inf" must stay a string, and a
        # non-finite float must come back as that float — the two may not
        # be conflated by the escape.
        row = {
            "label": "inf",
            "note": "nan",
            "cost": math.inf,
            "drift": -math.inf,
            "gap": math.nan,
            "count": 3,
        }
        decoded = _parse_row(json.loads(json.dumps(_jsonify_row(row))))
        assert decoded["label"] == "inf" and isinstance(decoded["label"], str)
        assert decoded["note"] == "nan" and isinstance(decoded["note"], str)
        assert decoded["cost"] == math.inf
        assert decoded["drift"] == -math.inf
        assert math.isnan(decoded["gap"])
        assert decoded["count"] == 3


class TestOrchestratedEquivalence:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(workers=st.integers(min_value=2, max_value=5), shard_seed=st.integers(0, 1000))
    def test_run_spec_rows_invariant_under_sharding(self, workers, shard_seed):
        specs = _specs()
        serial = run_sweep(specs, SweepSettings(num_seeds=2, solver="greedy", workers=1))
        orchestrated = run_spec_sweep(
            specs,
            ServiceConfig(workers=workers, in_process=True, shard_seed=shard_seed),
        )
        assert orchestrated == serial

    @pytest.mark.parametrize("shard_seed", [0, 7])
    def test_robustness_rows_invariant_under_sharding(self, shard_seed):
        serial = generate_robustness_study(_robustness_config())
        rows, checkpoint = robustness_sweep(
            _robustness_config(),
            ServiceConfig(workers=3, in_process=True, shard_seed=shard_seed),
        )
        assert strip_timing_fields(rows) == strip_timing_fields(serial)
        assert checkpoint is not None and checkpoint["certified"]

    def test_real_process_pool_matches_serial(self):
        specs = _specs()
        serial = run_sweep(specs, SweepSettings(num_seeds=2, solver="greedy", workers=1))
        orchestrated = run_spec_sweep(specs, ServiceConfig(workers=2))
        assert orchestrated == serial

    def test_worker_errors_propagate(self):
        bad = [RunSpec(family="gnp", n=10, alpha=1.0, k=2, seed=0, p=None)]
        with pytest.raises((RuntimeError, ValueError)):
            run_spec_sweep(bad * 2, ServiceConfig(workers=2))


class TestWarmSessions:
    def test_base_engine_converges_once_per_cell(self):
        cfg = dataclasses.replace(_robustness_config(), families=("gnp",))
        tasks = compile_robustness_tasks(cfg)
        runtime = WorkerRuntime()
        results = [
            decode_result(t.kind, encode_result(t, runtime.execute(t))) for t in tasks
        ]
        assert runtime.sessions_built == 1
        assert runtime.sessions_reused == len(tasks) - 1
        serial = generate_robustness_study(cfg)
        rows = [row for task_rows, _ in results for row in task_rows]
        assert strip_timing_fields(rows) == strip_timing_fields(serial)


class TestSharedMemoryInstances:
    def test_export_attach_round_trip(self):
        from repro.core.strategies import StrategyProfile

        task = compile_run_specs(_specs()[:1])[0]
        instance = instance_builder(task)()
        profile = StrategyProfile.from_owned_graph(instance)
        store = SharedInstanceStore()
        try:
            assert store.export(task.instance_key, instance)
            restored = attach_shared_profile(store.refs[task.instance_key])
            assert restored == profile
            assert restored.players() == profile.players()  # order matters
        finally:
            store.release()

    def test_runtime_uses_shared_instance(self):
        task = compile_run_specs(_specs()[:1])[0]
        store = SharedInstanceStore()
        try:
            store.export(task.instance_key, instance_builder(task)())
            shared_runtime = WorkerRuntime(shared_refs=store.refs)
            shared_result = shared_runtime.execute(task)
            assert shared_runtime.shared_attached == 1
            assert shared_runtime.instances_built == 0
        finally:
            store.release()
        assert shared_result == run_single(task.payload[0])

    def test_orchestrate_with_forced_sharing_matches_serial(self):
        specs = _specs()
        serial = run_sweep(specs, SweepSettings(num_seeds=2, solver="greedy", workers=1))
        orchestrated = run_spec_sweep(
            specs, ServiceConfig(workers=2, min_shared_nodes=1)
        )
        assert orchestrated == serial

    def test_non_integer_nodes_fall_back(self):
        from repro.graphs.generators.base import OwnedGraph, assign_ownership_to_smaller
        from repro.graphs.graph import Graph

        graph = Graph(edges=[(("a", 0), ("a", 1)), (("a", 1), ("a", 2))])
        owned = OwnedGraph(graph=graph, ownership=assign_ownership_to_smaller(graph))
        store = SharedInstanceStore()
        try:
            assert not store.export("tuple-nodes", owned)
            assert "tuple-nodes" not in store.refs
        finally:
            store.release()

    def test_numpy_integer_labels_are_shareable(self):
        """Regression: ``np.int64`` player labels must not silently disable
        shared-memory placement (``isinstance(x, int)`` is False for them)."""
        import numpy as np

        from repro.graphs.generators.base import OwnedGraph, assign_ownership_to_smaller
        from repro.graphs.graph import Graph

        task = compile_run_specs(_specs()[:1])[0]
        plain = instance_builder(task)()
        relabel = {player: np.int64(player) for player in plain.graph.nodes()}
        graph = Graph(
            edges=[(relabel[u], relabel[v]) for u, v in plain.graph.edges()]
        )
        owned = OwnedGraph(
            graph=graph, ownership=assign_ownership_to_smaller(graph)
        )
        store = SharedInstanceStore()
        try:
            assert store.export(task.instance_key, owned)
            runtime = WorkerRuntime(shared_refs=store.refs)
            runtime.execute(task)
            assert runtime.shared_attached > 0
            restored = attach_shared_profile(store.refs[task.instance_key])
            assert sorted(restored.players()) == sorted(
                int(player) for player in owned.ownership
            )
        finally:
            store.release()


class TestOrchestrateJournal:
    def test_resume_skips_completed_tasks(self, tmp_path):
        specs = _specs()
        tasks = compile_run_specs(specs)
        config = ServiceConfig(workers=1, journal_dir=tmp_path, experiment="exp")
        full = orchestrate(tasks, config)
        before = (tmp_path / "exp" / "journal.jsonl").read_text()
        resumed = orchestrate(tasks, dataclasses.replace(config, resume=True))
        assert resumed == full
        # Nothing re-ran: the journal gained no records on the resume.
        assert (tmp_path / "exp" / "journal.jsonl").read_text() == before

    def test_invalid_experiment_name_rejected_before_running(self, tmp_path):
        tasks = compile_run_specs(_specs())
        with pytest.raises(ValueError, match="invalid experiment name"):
            orchestrate(
                tasks,
                ServiceConfig(journal_dir=tmp_path, experiment="bad/name"),
            )
        assert list(tmp_path.iterdir()) == []  # nothing was created or run

    def test_resume_rejects_a_different_sweep(self, tmp_path):
        config = ServiceConfig(workers=1, journal_dir=tmp_path, experiment="exp")
        orchestrate(compile_run_specs(_specs()), config)
        other = compile_run_specs(_specs()[:-1])
        with pytest.raises(ValueError, match="different sweep"):
            orchestrate(other, dataclasses.replace(config, resume=True))

    def test_partial_journal_completes_to_identical_rows(self, tmp_path):
        specs = _specs()
        tasks = compile_run_specs(specs)
        config = ServiceConfig(workers=1, journal_dir=tmp_path, experiment="exp")
        full = orchestrate(tasks, config)
        log = tmp_path / "exp" / "journal.jsonl"
        lines = log.read_text().splitlines(True)
        log.write_text("".join(lines[: len(lines) // 2]) + '{"torn-record')
        resumed = orchestrate(tasks, dataclasses.replace(config, resume=True))
        assert resumed == full


class TestDuplicateSpecHashes:
    """The same spec listed twice is one unit of engine work, two rows."""

    @staticmethod
    def _count_executions(monkeypatch) -> list[str]:
        calls: list[str] = []
        original = WorkerRuntime.execute

        def counting(self, task):
            calls.append(task.spec_hash)
            return original(self, task)

        monkeypatch.setattr(WorkerRuntime, "execute", counting)
        return calls

    def test_fresh_grid_executes_unique_hashes_once(self, monkeypatch):
        calls = self._count_executions(monkeypatch)
        specs = _specs()[:2]
        tasks = compile_run_specs(specs + specs)
        results = orchestrate(tasks, ServiceConfig(workers=1))
        assert len(results) == 4
        assert len(calls) == 2  # one execution per unique spec_hash
        assert len(set(calls)) == 2
        # Duplicate positions assemble the same payload into equal — but
        # never aliased — results.
        assert results[0] == results[2] and results[1] == results[3]
        assert results[0] is not results[2]

    def test_journal_records_unique_hashes_once(self, tmp_path, monkeypatch):
        specs = _specs()[:2]
        tasks = compile_run_specs(specs + specs)
        config = ServiceConfig(workers=1, journal_dir=tmp_path, experiment="exp")
        full = orchestrate(tasks, config)
        log_lines = (tmp_path / "exp" / "journal.jsonl").read_text().splitlines()
        assert len(log_lines) == 2  # duplicates were never journaled
        calls = self._count_executions(monkeypatch)
        resumed = orchestrate(tasks, dataclasses.replace(config, resume=True))
        assert calls == []  # every occurrence served from the journal
        assert resumed == full
        assert resumed[0] == resumed[2] and resumed[1] == resumed[3]

    def test_duplicates_match_singles(self):
        specs = _specs()[:2]
        duplicated = orchestrate(
            compile_run_specs(specs + specs), ServiceConfig(workers=1)
        )
        singles = orchestrate(compile_run_specs(specs), ServiceConfig(workers=1))
        assert strip_timing_fields(
            [result.as_row() for result in duplicated]
        ) == strip_timing_fields(
            [result.as_row() for result in singles + singles]
        )
