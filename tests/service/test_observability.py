"""Service-layer observability: /stats liveness, /metrics, journal records.

Pins the telemetry wiring through the daemon and orchestrator:

* ``GET /stats`` reads the live registry-backed counters at request time —
  two sequential calls around a job must differ (the regression guard for
  a snapshot captured at handler/executor build time);
* ``GET /metrics`` serves the Prometheus text exposition from a live
  daemon, and it aggregates the same counters ``/stats`` reports;
* telemetry journal records are additive: a telemetry-on journal resumes
  to the exact rows of a telemetry-off one, old journals (no telemetry
  records) stay valid, and ``python -m repro trace`` renders the records
  into a schema-valid Chrome trace.
"""

from __future__ import annotations

import json
import subprocess
import sys
import urllib.request
from pathlib import Path

import pytest

from repro.experiments.runner import RunSpec
from repro.service.api import ServiceConfig, run_spec_sweep
from repro.service.client import SweepClient
from repro.service.daemon import DaemonConfig, ServiceDaemon
from repro.service.journal import (
    TELEMETRY_KIND,
    iter_result_records,
    iter_telemetry_records,
    load_jsonl_records,
)
from repro.service.tasks import (
    TELEMETRY_SUMMARY_FIELDS,
    TIMING_FIELDS,
    strip_timing_fields,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _specs(alphas=(0.5, 2.0), seeds=2, n=10) -> list[RunSpec]:
    return [
        RunSpec(
            family="tree",
            n=n,
            alpha=alpha,
            k=2,
            seed=seed,
            solver="greedy",
            max_rounds=30,
        )
        for alpha in alphas
        for seed in range(seeds)
    ]


@pytest.fixture()
def daemon(tmp_path):
    instance = ServiceDaemon(
        DaemonConfig(
            store_dir=tmp_path / "store", in_process=True, port=0, telemetry=True
        )
    )
    instance.start()
    try:
        yield instance
    finally:
        instance.stop()


def _get(daemon, path: str) -> tuple[str, str]:
    with urllib.request.urlopen(daemon.base_url + path) as response:
        return response.headers.get_content_type(), response.read().decode()


class TestStatsLiveness:
    def test_sequential_stats_reflect_job_execution(self, daemon):
        """Two /stats reads around a job must differ (no stale snapshot)."""
        client = SweepClient(daemon.base_url)
        before = client.stats()
        client.run_specs(_specs(alphas=(2.0,)))
        after = client.stats()
        executed = after["engine_executions"] - before["engine_executions"]
        assert executed == 2
        assert after["jobs_submitted"] == before["jobs_submitted"] + 1
        # A second identical job is pure cache hits — and /stats sees that
        # immediately too, from the same registry.
        client.run_specs(_specs(alphas=(2.0,)))
        final = client.stats()
        assert final["engine_executions"] == after["engine_executions"]
        assert final["cache_hits"] > after["cache_hits"]


class TestMetricsEndpoint:
    def test_prometheus_text_format(self, daemon):
        client = SweepClient(daemon.base_url)
        client.run_specs(_specs(alphas=(0.5,)))
        content_type, body = _get(daemon, "/metrics")
        assert content_type == "text/plain"
        assert "# TYPE repro_daemon_jobs_submitted_total counter" in body
        assert "# TYPE repro_daemon_task_sources_total counter" in body
        assert "# TYPE repro_engine_rounds_total counter" in body
        assert "repro_daemon_queue_depth" in body

    def test_metrics_agree_with_stats(self, daemon):
        # The registry is process-wide (other daemons in this test run feed
        # the same aggregates), so compare deltas around a job — they must
        # match the per-daemon counters /stats reports exactly.
        def scrape():
            _, body = _get(daemon, "/metrics")
            values = {}
            for line in body.splitlines():
                if line.startswith("#") or not line.strip():
                    continue
                name, _, value = line.rpartition(" ")
                values[name] = float(value)
            return values

        client = SweepClient(daemon.base_url)
        before = scrape()
        stats_before = client.stats()
        client.run_specs(_specs(alphas=(4.0,), seeds=1))
        after = scrape()
        stats_after = client.stats()

        engine = 'repro_daemon_task_sources_total{source="engine"}'
        jobs = "repro_daemon_jobs_submitted_total"
        assert after[engine] - before.get(engine, 0.0) == (
            stats_after["engine_executions"] - stats_before["engine_executions"]
        )
        assert after[jobs] - before.get(jobs, 0.0) == (
            stats_after["jobs_submitted"] - stats_before["jobs_submitted"]
        )


class TestTelemetryJournal:
    def test_fields_masked_by_timing_fields(self):
        assert TELEMETRY_SUMMARY_FIELDS <= TIMING_FIELDS

    def test_telemetry_records_are_additive(self, tmp_path):
        specs = _specs()
        off = run_spec_sweep(
            specs,
            ServiceConfig(
                journal_dir=tmp_path / "off", experiment="sweep", in_process=True
            ),
        )
        on = run_spec_sweep(
            specs,
            ServiceConfig(
                journal_dir=tmp_path / "on",
                experiment="sweep",
                in_process=True,
                telemetry=True,
            ),
        )
        rows_off = strip_timing_fields([r.as_row() for r in off])
        rows_on = strip_timing_fields([r.as_row() for r in on])
        assert rows_on == rows_off

        records = load_jsonl_records(tmp_path / "on" / "sweep" / "journal.jsonl")
        results = iter_result_records(records)
        telemetry = iter_telemetry_records(records)
        assert len(results) == len(specs)
        assert len(telemetry) == len(specs)
        assert all(r["kind"] == TELEMETRY_KIND for r in telemetry)
        for record in telemetry:
            payload = record["payload"]
            assert payload["span_count"] == len(payload["events"]) > 0
            assert payload["spec_hash"] == record["spec_hash"]

        # The telemetry-off journal simply contains none — the old format.
        old = load_jsonl_records(tmp_path / "off" / "sweep" / "journal.jsonl")
        assert iter_telemetry_records(old) == []

    def test_resume_skips_telemetry_records(self, tmp_path):
        specs = _specs()
        first = run_spec_sweep(
            specs,
            ServiceConfig(
                journal_dir=tmp_path,
                experiment="sweep",
                in_process=True,
                telemetry=True,
            ),
        )
        resumed = run_spec_sweep(
            specs,
            ServiceConfig(
                journal_dir=tmp_path,
                experiment="sweep",
                in_process=True,
                resume=True,
                telemetry=True,
            ),
        )
        assert strip_timing_fields(
            [r.as_row() for r in resumed]
        ) == strip_timing_fields([r.as_row() for r in first])
        # Fully-resumed sweep: every task was served from the journal, so
        # no new result records (and no new telemetry) were appended.
        records = load_jsonl_records(tmp_path / "sweep" / "journal.jsonl")
        assert len(iter_result_records(records)) == len(specs)
        assert len(iter_telemetry_records(records)) == len(specs)


class TestTraceExport:
    def test_cli_exports_valid_chrome_trace(self, tmp_path):
        from repro.obs import validate_chrome_trace

        run_spec_sweep(
            _specs(alphas=(0.5,)),
            ServiceConfig(
                journal_dir=tmp_path,
                experiment="sweep",
                in_process=True,
                telemetry=True,
            ),
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "trace", str(tmp_path)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert completed.returncode == 0, completed.stderr
        trace_path = tmp_path / "sweep" / "trace.json"
        document = json.loads(trace_path.read_text())
        assert validate_chrome_trace(document) == []
        names = {event["name"] for event in document["traceEvents"]}
        assert {"task.execute", "engine.run", "engine.round"} <= names

    def test_cli_errors_without_telemetry_records(self, tmp_path):
        run_spec_sweep(
            _specs(alphas=(0.5,), seeds=1),
            ServiceConfig(
                journal_dir=tmp_path, experiment="sweep", in_process=True
            ),
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "trace", str(tmp_path)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert completed.returncode != 0
        assert "--telemetry" in completed.stderr
