"""End-to-end tests for the sweep daemon (equilibrium-as-a-service).

The served contract under test:

* two concurrent clients submitting **overlapping** grids both get rows
  bit-identical to the serial path, and the overlap is served from the
  content-addressed cache with **zero** extra engine executions (the
  instrumented counters are asserted, and the overlapping ``spec_hash``es
  are journaled by exactly one job — no new appends for shared hashes);
* SIGKILLing the daemon mid-job and restarting on the same store resumes
  the job through the journal ``--resume`` machinery and completes it with
  the exact row set of an uninterrupted run;
* the queue applies backpressure (429), jobs can be cancelled, and
  malformed descriptions are rejected without touching the engine.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.experiments.config import SweepSettings
from repro.experiments.runner import RunSpec, run_sweep
from repro.service.client import ServiceError, SweepClient
from repro.service.daemon import DaemonConfig, ServiceDaemon
from repro.service.jobs import JobQueueFull, run_spec_description
from repro.service.journal import load_jsonl_records
from repro.service.tasks import compile_run_specs, strip_timing_fields

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _specs(alphas, seeds=2, n=10, max_rounds=30) -> list[RunSpec]:
    return [
        RunSpec(
            family="tree",
            n=n,
            alpha=alpha,
            k=2,
            seed=seed,
            solver="greedy",
            max_rounds=max_rounds,
        )
        for alpha in alphas
        for seed in range(seeds)
    ]


def _serial_rows(specs: list[RunSpec]) -> list[dict]:
    results = run_sweep(specs, SweepSettings(num_seeds=2, solver="greedy"))
    return strip_timing_fields([result.as_row() for result in results])


def _remote_rows(client: SweepClient, job_id: str) -> list[dict]:
    return strip_timing_fields(
        [result.as_row() for result in client.decoded_results(job_id)]
    )


@pytest.fixture()
def daemon(tmp_path):
    instance = ServiceDaemon(
        DaemonConfig(store_dir=tmp_path / "store", in_process=True, port=0)
    )
    instance.start()
    try:
        yield instance
    finally:
        instance.stop()


class TestDaemonEndToEnd:
    def test_concurrent_overlapping_clients(self, daemon):
        """Two clients, overlapping grids: bit-identical rows, shared cells
        executed once, journaled by exactly one job."""
        grid_a = _specs(alphas=(0.5, 2.0))
        grid_b = _specs(alphas=(2.0, 3.0))  # alpha=2.0 cells overlap grid_a
        overlap = {
            task.spec_hash for task in compile_run_specs(grid_a)
        } & {task.spec_hash for task in compile_run_specs(grid_b)}
        assert len(overlap) == 2

        jobs: dict[str, dict] = {}

        def submit(name: str, specs: list[RunSpec]) -> None:
            client = SweepClient(daemon.base_url)
            job = client.submit(run_spec_description(specs))
            jobs[name] = client.wait(job["id"], timeout=180)

        threads = [
            threading.Thread(target=submit, args=("a", grid_a)),
            threading.Thread(target=submit, args=("b", grid_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        client = SweepClient(daemon.base_url)
        assert _remote_rows(client, jobs["a"]["id"]) == _serial_rows(grid_a)
        assert _remote_rows(client, jobs["b"]["id"]) == _serial_rows(grid_b)

        # The overlap executed exactly once daemon-wide: total engine work
        # is the union of unique hashes, and whichever job ran second was
        # served its overlapping cells from the cache.
        union = {
            task.spec_hash
            for task in compile_run_specs(grid_a) + compile_run_specs(grid_b)
        }
        stats = client.stats()
        assert stats["engine_executions"] == len(union)
        assert stats["cache_hits"] >= len(overlap)
        for job in jobs.values():
            assert job["executed"] + job["from_cache"] == job["unique_tasks"]

        # No new journal appends for shared spec_hashes: each overlapping
        # hash appears in exactly one job's journal.
        journaled: list[str] = []
        for job in jobs.values():
            records = load_jsonl_records(
                daemon.manager.store.experiment_dir(job["experiment"])
                / "journal.jsonl"
            )
            journaled.extend(record["spec_hash"] for record in records)
        for spec_hash in overlap:
            assert journaled.count(spec_hash) == 1

    def test_resubmission_is_pure_cache(self, daemon):
        specs = _specs(alphas=(0.5,))
        client = SweepClient(daemon.base_url)
        first = client.wait(
            client.submit(run_spec_description(specs))["id"], timeout=120
        )
        assert first["executed"] == first["unique_tasks"]
        second = client.wait(
            client.submit(run_spec_description(specs))["id"], timeout=120
        )
        assert second["executed"] == 0
        assert second["from_cache"] == second["unique_tasks"]
        assert _remote_rows(client, second["id"]) == _remote_rows(
            client, first["id"]
        )

    def test_duplicate_specs_within_one_job(self, daemon):
        spec = _specs(alphas=(0.5,), seeds=1)[0]
        client = SweepClient(daemon.base_url)
        job = client.wait(
            client.submit(run_spec_description([spec, spec]))["id"], timeout=120
        )
        assert job["num_tasks"] == 2
        assert job["unique_tasks"] == 1
        assert job["executed"] == 1
        results = client.results(job["id"])
        assert len(results) == 2
        assert results[0]["payload"] == results[1]["payload"]
        assert results[0]["spec_hash"] == results[1]["spec_hash"]

    def test_events_stream_replays_and_terminates(self, daemon):
        specs = _specs(alphas=(0.5,), seeds=1)
        client = SweepClient(daemon.base_url)
        job = client.wait(
            client.submit(run_spec_description(specs))["id"], timeout=120
        )
        events = list(client.events(job["id"]))
        assert events[0] == {
            "type": "status",
            "job_id": job["id"],
            "status": "queued",
        }
        task_events = [event for event in events if event["type"] == "task"]
        assert len(task_events) == job["unique_tasks"]
        assert {event["source"] for event in task_events} == {"engine"}
        assert events[-1]["status"] == "done"

    def test_cached_result_endpoint(self, daemon):
        specs = _specs(alphas=(0.5,), seeds=1)
        spec_hash = compile_run_specs(specs)[0].spec_hash
        client = SweepClient(daemon.base_url)
        with pytest.raises(ServiceError) as excinfo:
            client.cached_result(spec_hash)
        assert excinfo.value.status == 404
        client.wait(client.submit(run_spec_description(specs))["id"], timeout=120)
        entry = client.cached_result(spec_hash)
        assert entry["spec_hash"] == spec_hash
        assert entry["kind"] == "run_spec"


class TestDaemonProtocol:
    def test_invalid_descriptions_are_400(self, daemon):
        client = SweepClient(daemon.base_url)
        for description in (
            {"kind": "nonsense"},
            {"kind": "run_spec", "specs": []},
            {"kind": "run_spec", "specs": [{"bogus": 1}]},
            [1, 2, 3],
        ):
            with pytest.raises(ServiceError) as excinfo:
                client.submit(description)
            assert excinfo.value.status == 400
        assert client.stats()["engine_executions"] == 0

    def test_unknown_job_is_404(self, daemon):
        client = SweepClient(daemon.base_url)
        with pytest.raises(ServiceError) as excinfo:
            client.job("no-such-job")
        assert excinfo.value.status == 404

    def test_results_before_done_is_409(self, daemon):
        client = SweepClient(daemon.base_url)
        job = client.submit(run_spec_description(_specs(alphas=(0.5, 2.0), n=16)))
        try:
            client.results(job["id"])
        except ServiceError as exc:
            assert exc.status == 409
        else:  # the job may legitimately finish before the results call
            assert client.job(job["id"])["status"] == "done"
        client.wait(job["id"], timeout=120)

    def test_cancel_queued_job(self, daemon):
        client = SweepClient(daemon.base_url)
        # A slower job occupies the (single, FIFO) executor ...
        running = client.submit(run_spec_description(_specs(alphas=(0.5, 2.0), n=18)))
        # ... so this one is still queued when the cancel lands.
        queued = client.submit(run_spec_description(_specs(alphas=(3.0,), n=18)))
        cancelled = client.cancel(queued["id"])
        assert cancelled["status"] in {"queued", "cancelled"}
        final = client.wait(queued["id"], timeout=120)
        assert final["status"] == "cancelled"
        assert client.wait(running["id"], timeout=120)["status"] == "done"
        # Cancelling a terminal job is a no-op.
        assert client.cancel(running["id"])["status"] == "done"

    def test_backpressure_429_when_queue_full(self, tmp_path):
        daemon = ServiceDaemon(
            DaemonConfig(
                store_dir=tmp_path / "store", in_process=True, port=0, queue_size=1
            )
        )
        daemon.start()
        try:
            client = SweepClient(daemon.base_url)
            # Large enough that it is still running while the next two
            # submissions land.
            running = client.submit(
                run_spec_description(_specs(alphas=(0.5, 1.0, 2.0), n=60))
            )
            deadline = time.monotonic() + 60
            while client.job(running["id"])["status"] == "queued":
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.01)
            waiting = client.submit(run_spec_description(_specs(alphas=(3.0,))))
            with pytest.raises(JobQueueFull):
                client.submit(run_spec_description(_specs(alphas=(4.0,))))
            client.wait(running["id"], timeout=120)
            client.wait(waiting["id"], timeout=120)
        finally:
            daemon.stop()


class TestDaemonCrashRecovery:
    """SIGKILL the real ``python -m repro serve`` process mid-job; restart."""

    @staticmethod
    def _start(store: Path) -> tuple[subprocess.Popen, SweepClient]:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--store",
                str(store),
                "--port",
                "0",
                "--in-process",
            ],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            text=True,
        )
        line = process.stdout.readline()
        assert "listening on http://" in line, line
        address = line.split("http://")[1].split()[0]
        return process, SweepClient(f"http://{address}")

    def test_sigkill_restart_resumes_bit_identical(self, tmp_path):
        store = tmp_path / "store"
        specs = _specs(alphas=(0.5, 1.5, 2.0), seeds=3, n=48, max_rounds=40)
        process, client = self._start(store)
        try:
            job = client.submit(run_spec_description(specs))
            deadline = time.monotonic() + 180
            while True:
                status = client.job(job["id"])
                if status["executed"] >= 2:
                    break
                assert time.monotonic() < deadline, "job made no progress"
                assert status["status"] in {"queued", "running"}
                time.sleep(0.02)
        finally:
            process.kill()
            process.wait()
        assert status["completed"] < status["unique_tasks"], (
            "job finished before the kill; grow the grid"
        )

        process, client = self._start(store)
        try:
            final = client.wait(job["id"], timeout=300)
            assert final["status"] == "done"
            # The pre-kill work came back from the journal, not the engine.
            assert final["from_journal"] >= 2
            assert final["executed"] <= final["unique_tasks"] - 2
            rows = _remote_rows(client, job["id"])
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        serial = run_sweep(specs, SweepSettings(num_seeds=3, solver="greedy"))
        assert rows == strip_timing_fields(
            [result.as_row() for result in serial]
        )

    def test_torn_job_record_is_skipped_on_recovery(self, tmp_path):
        """A torn ``.jobs/<id>.json`` (crash mid-submit) must not poison
        recovery — the submission was never acknowledged."""
        store = tmp_path / "store"
        jobs_dir = store / ".jobs"
        jobs_dir.mkdir(parents=True)
        (jobs_dir / "torn.json").write_text('{"format": "repro-daemon-j')
        daemon = ServiceDaemon(
            DaemonConfig(store_dir=store, in_process=True, port=0)
        )
        daemon.start()
        try:
            client = SweepClient(daemon.base_url)
            assert client.jobs() == []
            job = client.wait(
                client.submit(run_spec_description(_specs(alphas=(0.5,), seeds=1)))[
                    "id"
                ],
                timeout=120,
            )
            assert job["status"] == "done"
        finally:
            daemon.stop()
