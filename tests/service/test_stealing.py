"""Work-stealing dispatch: equivalence, affinity invariants, makespan.

The load-bearing property mirrors the orchestration suite's: dispatch
policy — static shards, work stealing, any interleaving of worker
requests — must never change the row set.  On top of that the dispatcher
has its own invariants: whole instance-groups move (never single tasks),
tasks inside a group are handed out in compile order, and on the straggler
grid (deceptively light small instances piled behind deceptively heavy
large ones) stealing strictly beats the static plan's makespan.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.runner import RunSpec, run_single
from repro.service.api import ServiceConfig, orchestrate
from repro.service.tasks import (
    AffinityTaskQueue,
    compile_run_specs,
    decode_result,
    encode_result,
    group_weight,
    shard_tasks,
    simulate_dispatch,
)
from repro.service.workers import WorkerRuntime


def _specs(num_seeds: int = 3) -> list[RunSpec]:
    return [
        RunSpec(family="tree", n=10, alpha=alpha, k=k, seed=seed, solver="greedy")
        for alpha in (0.5, 2.0)
        for k in (2, 3)
        for seed in range(num_seeds)
    ]


def _straggler_specs() -> list[RunSpec]:
    """One large instance per fast worker, many small ones behind them.

    The large groups carry huge estimated weight (n=400), the small groups
    tiny weight (n=10) — so the static planner parks every small group on
    the one worker not holding a large instance.  Durations are assigned
    synthetically in the tests: weight and true cost are deliberately
    anti-correlated, the exact blind spot work stealing exists for.
    """
    large = [
        RunSpec(family="tree", n=400, alpha=0.5, k=2, seed=seed, solver="greedy")
        for seed in range(2)
    ]
    small = [
        RunSpec(family="tree", n=10, alpha=0.5, k=2, seed=100 + seed, solver="greedy")
        for seed in range(8)
    ]
    return large + small


class TestWeightedSharding:
    def test_groups_balance_by_estimated_weight(self):
        # One 100-node single-task group vs four 10-node two-task groups:
        # by weight (100 vs 4x20) the big group deserves a shard to itself;
        # by bare cardinality it would be the *lightest* group and attract
        # company.
        specs = [RunSpec(family="tree", n=100, alpha=0.5, k=2, seed=0, solver="greedy")]
        specs += [
            RunSpec(family="tree", n=10, alpha=alpha, k=2, seed=seed, solver="greedy")
            for seed in range(1, 5)
            for alpha in (0.5, 2.0)
        ]
        tasks = compile_run_specs(specs)
        shards = shard_tasks(tasks, 2)
        big = [shard for shard in shards if any(t.payload[0].n == 100 for t in shard)]
        assert len(big) == 1 and len(big[0]) == 1

    def test_group_weight_is_nodes_times_tasks(self):
        tasks = compile_run_specs(_specs(num_seeds=1))
        groups: dict[str, list] = {}
        for task in tasks:
            groups.setdefault(task.instance_key, []).append(task)
        for members in groups.values():
            assert group_weight(members) == 10 * len(members)


class TestAffinityTaskQueue:
    def test_no_steal_round_robin_equals_static_shards(self):
        tasks = compile_run_specs(_specs())
        for workers in (2, 3, 5):
            shards = shard_tasks(tasks, workers)
            shards += [[] for _ in range(workers - len(shards))]
            queue = AffinityTaskQueue(tasks, workers, steal=False)
            drained: list[list] = [[] for _ in range(workers)]
            active = set(range(workers))
            while active:
                for worker in sorted(active):
                    task = queue.next_task(worker)
                    if task is None:
                        active.discard(worker)
                    else:
                        drained[worker].append(task)
            assert drained == shards
            assert queue.steals == 0

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        workers=st.integers(min_value=2, max_value=5),
        steal=st.booleans(),
        data=st.data(),
    )
    def test_any_interleaving_dispatches_each_group_once_in_order(
        self, workers, steal, data
    ):
        tasks = compile_run_specs(_specs())
        queue = AffinityTaskQueue(tasks, workers, steal=steal)
        dispatched: list = []
        owner: dict[str, int] = {}
        per_group: dict[str, list[int]] = {}
        active = set(range(workers))
        while active:
            worker = data.draw(st.sampled_from(sorted(active)), label="worker")
            task = queue.next_task(worker)
            if task is None:
                active.discard(worker)
                continue
            dispatched.append(task)
            # Whole groups move: one worker per instance_key, ever.
            assert owner.setdefault(task.instance_key, worker) == worker
            per_group.setdefault(task.instance_key, []).append(task.index)
        assert sorted(t.index for t in dispatched) == [t.index for t in tasks]
        compile_order: dict[str, list[int]] = {}
        for task in tasks:
            compile_order.setdefault(task.instance_key, []).append(task.index)
        # In-sequence-per-instance: dispatch order inside a group is compile
        # order (warm sessions depend on it).
        assert per_group == compile_order

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(
        workers=st.integers(min_value=2, max_value=4),
        steal=st.booleans(),
        data=st.data(),
    )
    def test_stolen_equals_static_equals_serial_rows(self, workers, steal, data):
        specs = _specs(num_seeds=2)
        tasks = compile_run_specs(specs)
        serial = [run_single(spec) for spec in specs]
        queue = AffinityTaskQueue(tasks, workers, steal=steal)
        runtimes = [WorkerRuntime() for _ in range(workers)]
        decoded: dict[int, object] = {}
        active = set(range(workers))
        while active:
            worker = data.draw(st.sampled_from(sorted(active)), label="worker")
            task = queue.next_task(worker)
            if task is None:
                active.discard(worker)
                continue
            payload = encode_result(task, runtimes[worker].execute(task))
            decoded[task.index] = decode_result(task.kind, payload)
        assert [decoded[i] for i in range(len(specs))] == serial


class TestStragglerScenario:
    DURATION_SMALL = 4.0  # deceptively light: weight 10, truly slow
    DURATION_LARGE = 6.0  # deceptively heavy: weight 400, truly moderate

    def _durations(self, tasks) -> dict[str, float]:
        return {
            task.spec_hash: (
                self.DURATION_LARGE
                if task.payload[0].n == 400
                else self.DURATION_SMALL
            )
            for task in tasks
        }

    def test_stealing_beats_static_makespan(self):
        tasks = compile_run_specs(_straggler_specs())
        durations = self._durations(tasks)
        workers = 3
        static_makespan, static_assign = simulate_dispatch(
            tasks, workers, durations, steal=False
        )
        steal_makespan, steal_assign = simulate_dispatch(
            tasks, workers, durations, steal=True
        )
        # The static plan piles all eight small groups behind one worker
        # (their weight looks negligible next to the 400-node instances).
        static_loads = sorted(len(assigned) for assigned in static_assign)
        assert static_loads == [1, 1, 8]
        assert steal_makespan < static_makespan
        assert static_makespan / steal_makespan >= 1.5
        # Both policies execute the full task set exactly once.
        for assignments in (static_assign, steal_assign):
            flat = sorted(index for worker in assignments for index in worker)
            assert flat == [task.index for task in tasks]

    def test_simulation_reports_steals_on_the_straggler_grid(self):
        tasks = compile_run_specs(_straggler_specs())
        durations = self._durations(tasks)
        queue = AffinityTaskQueue(tasks, 3, steal=True)
        # Replay the virtual-time loop by hand to read the queue counters.
        import heapq

        events = [(0.0, worker) for worker in range(3)]
        heapq.heapify(events)
        while events:
            now, worker = heapq.heappop(events)
            task = queue.next_task(worker)
            if task is not None:
                heapq.heappush(events, (now + durations[task.spec_hash], worker))
        assert queue.steals > 0
        assert queue.dispatched == len(tasks)


class TestRealPoolStealing:
    def test_forked_pool_with_stealing_matches_serial(self):
        # A real multi-process run through the work-stealing pool: rows
        # must be bit-identical to the serial path (straggler-shaped grid,
        # shrunk so the forked run stays cheap).
        specs = [
            RunSpec(family="tree", n=30, alpha=0.5, k=2, seed=0, solver="greedy")
        ] + [
            RunSpec(family="tree", n=10, alpha=alpha, k=2, seed=seed, solver="greedy")
            for seed in range(1, 4)
            for alpha in (0.5, 2.0)
        ]
        serial = [run_single(spec) for spec in specs]
        results = orchestrate(
            compile_run_specs(specs),
            ServiceConfig(workers=3, steal=True),
        )
        assert results == serial
