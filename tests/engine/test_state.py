"""Tests for the versioned mutable network state."""

import pytest

from repro.core.strategies import StrategyProfile
from repro.engine.state import NetworkState
from repro.graphs.generators.trees import random_owned_tree
from repro.graphs.graph import Graph


@pytest.fixture
def profile() -> StrategyProfile:
    return StrategyProfile.from_owned_graph(random_owned_tree(12, seed=7))


class TestConstruction:
    def test_graph_matches_profile_graph(self, profile):
        state = NetworkState.from_profile(profile)
        assert state.graph == profile.graph()

    def test_buyers_match_profile(self, profile):
        state = NetworkState.from_profile(profile)
        for player in profile:
            assert state.buyers_of(player) == profile.buyers_of(player)

    def test_canonical_key_matches_profile(self, profile):
        state = NetworkState.from_profile(profile)
        assert state.canonical_key() == profile.canonical_key()

    def test_to_profile_round_trip(self, profile):
        assert NetworkState.from_profile(profile).to_profile() == profile


class TestDeltas:
    def test_add_edge_delta(self):
        state = NetworkState({0: frozenset(), 1: frozenset(), 2: frozenset()})
        delta = state.set_strategy(0, frozenset({1}))
        assert delta.added_edges == ((0, 1),)
        assert delta.removed_edges == ()
        assert delta.buyer_changes == (1,)
        assert state.graph.has_edge(0, 1)
        assert state.buyers_of(1) == {0}

    def test_remove_edge_delta(self):
        state = NetworkState({0: frozenset({1}), 1: frozenset(), 2: frozenset()})
        delta = state.set_strategy(0, frozenset())
        assert delta.removed_edges == ((0, 1),)
        assert not state.graph.has_edge(0, 1)
        assert state.buyers_of(1) == set()

    def test_double_bought_edge_is_ownership_flip_only(self):
        # Both endpoints buy the edge; dropping one side keeps the topology.
        state = NetworkState({0: frozenset({1}), 1: frozenset({0})})
        version = state.version
        delta = state.set_strategy(0, frozenset())
        assert delta.added_edges == () and delta.removed_edges == ()
        assert delta.buyer_changes == (1,)
        assert not delta.changes_topology
        assert state.graph.has_edge(0, 1)
        assert state.version == version  # no structural mutation
        assert state.buyers_of(0) == {1}
        assert state.buyers_of(1) == set()

    def test_buying_already_present_edge_adds_no_edge(self):
        state = NetworkState({0: frozenset({1}), 1: frozenset()})
        delta = state.set_strategy(1, frozenset({0}))
        assert delta.added_edges == ()
        assert state.buyers_of(0) == {1}

    def test_stale_delta_rejected(self):
        state = NetworkState({0: frozenset(), 1: frozenset(), 2: frozenset()})
        delta = state.preview(0, frozenset({1}))
        state.set_strategy(0, frozenset({2}))
        with pytest.raises(ValueError):
            state.apply(delta)

    def test_self_edge_rejected(self):
        state = NetworkState({0: frozenset(), 1: frozenset()})
        with pytest.raises(ValueError):
            state.preview(0, frozenset({0}))

    def test_unknown_target_rejected(self):
        state = NetworkState({0: frozenset(), 1: frozenset()})
        with pytest.raises(ValueError):
            state.preview(0, frozenset({99}))

    def test_unknown_player_rejected(self):
        state = NetworkState({0: frozenset()})
        with pytest.raises(KeyError):
            state.preview(99, frozenset())

    def test_random_walk_stays_consistent(self, profile):
        """Applying many deltas keeps graph/buyers equal to a fresh rebuild."""
        import random

        rng = random.Random(3)
        state = NetworkState.from_profile(profile)
        players = state.players()
        for _ in range(60):
            player = rng.choice(players)
            others = [p for p in players if p != player]
            new = frozenset(rng.sample(others, rng.randint(0, 3)))
            state.set_strategy(player, new)
            snapshot = state.to_profile()
            assert state.graph == snapshot.graph()
            for p in players:
                assert state.buyers_of(p) == snapshot.buyers_of(p)


class TestGraphVersion:
    def test_version_bumps_on_structural_change(self):
        graph = Graph(nodes=[0, 1, 2])
        version = graph.version
        graph.add_edge(0, 1)
        assert graph.version > version

    def test_version_stable_on_noop(self):
        graph = Graph(edges=[(0, 1)])
        version = graph.version
        graph.add_edge(0, 1)  # already present
        graph.add_node(0)  # already present
        assert graph.version == version

    def test_version_bumps_on_removal(self):
        graph = Graph(edges=[(0, 1)])
        version = graph.version
        graph.remove_edge(0, 1)
        assert graph.version > version
        graph.remove_node(0)
        assert graph.version > version + 1
