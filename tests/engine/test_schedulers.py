"""Tests for the pluggable activation schedulers."""

import pytest

from repro.core.dynamics import best_response_dynamics
from repro.core.equilibria import is_equilibrium
from repro.core.games import MaxNCG, SumNCG
from repro.engine.core import DynamicsEngine
from repro.engine.schedulers import (
    SCHEDULERS,
    ParallelBatchScheduler,
    make_scheduler,
)
from repro.graphs.generators.trees import random_owned_tree


class TestRegistry:
    def test_expected_schedulers_registered(self):
        assert set(SCHEDULERS) == {
            "fixed",
            "shuffled",
            "random_sequential",
            "max_improvement",
            "parallel_batch",
        }

    def test_make_scheduler_unknown_name(self):
        with pytest.raises(ValueError):
            make_scheduler("alphabetical")

    def test_make_scheduler_instances(self):
        for name in SCHEDULERS:
            assert make_scheduler(name).name == name

    def test_dynamics_rejects_unknown_ordering(self):
        with pytest.raises(ValueError):
            best_response_dynamics(
                random_owned_tree(5, seed=0), MaxNCG(1.0), ordering="alphabetical"
            )


class TestConvergence:
    @pytest.mark.parametrize(
        "ordering", ["fixed", "shuffled", "max_improvement", "parallel_batch"]
    )
    def test_certifying_schedulers_reach_equilibrium(self, ordering):
        game = MaxNCG(0.5, k=2)
        result = best_response_dynamics(
            random_owned_tree(14, seed=6), game, ordering=ordering, seed=11
        )
        assert result.converged
        assert is_equilibrium(result.final_profile, game)

    def test_random_sequential_terminates(self):
        game = MaxNCG(0.5, k=2)
        result = best_response_dynamics(
            random_owned_tree(14, seed=6),
            game,
            ordering="random_sequential",
            seed=11,
            max_rounds=50,
        )
        assert result.rounds <= 50
        assert not result.cycled  # repeats are never flagged as cycles
        assert result.total_changes >= 0
        if result.converged:
            # A quiet random round certifies nothing by itself; the engine's
            # certification sweep must back the convergence claim.
            assert is_equilibrium(result.final_profile, game)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_sequential_convergence_is_certified(self, seed):
        game = MaxNCG(0.5, k=2)
        result = best_response_dynamics(
            random_owned_tree(12, seed=seed),
            game,
            ordering="random_sequential",
            seed=seed,
        )
        if result.converged:
            assert is_equilibrium(result.final_profile, game)

    def test_sum_game_on_new_scheduler(self):
        game = SumNCG(2.0, k=2)
        result = best_response_dynamics(
            random_owned_tree(10, seed=5), game, ordering="max_improvement"
        )
        assert result.converged
        assert result.final_metrics is not None

    def test_max_improvement_first_activates_largest_gain(self):
        game = MaxNCG(0.5, k=2)
        engine = DynamicsEngine(
            random_owned_tree(12, seed=3), game, scheduler="max_improvement"
        )
        engine.views.refresh_dirty()
        gains = {
            p: engine.peek_response(p).improvement for p in engine.base_order
        }
        best_gain = max(gains.values())
        if best_gain > 0:
            before = engine.state.to_profile()
            engine.scheduler.run_round(engine, 1)
            after = engine.state.to_profile()
            movers = [p for p in engine.base_order if before[p] != after[p]]
            assert movers  # the round applied at least the argmax move
            assert gains[movers[0]] == pytest.approx(best_gain)


class TestParallelBatch:
    def test_serial_and_parallel_agree(self):
        game = MaxNCG(0.5, k=2)
        owned = random_owned_tree(10, seed=9)
        serial = best_response_dynamics(
            owned, game, ordering="parallel_batch", workers=1
        )
        parallel = best_response_dynamics(
            owned, game, ordering="parallel_batch", workers=2
        )
        assert serial.final_profile == parallel.final_profile
        assert serial.rounds == parallel.rounds
        assert serial.total_changes == parallel.total_changes

    def test_batch_moves_do_not_conflict(self):
        # On a star, every leaf's best response touches the centre: at most
        # one leaf move per batch may be applied.
        from repro.graphs.generators.classic import owned_star

        game = MaxNCG(0.5, k=2)
        engine = DynamicsEngine(
            owned_star(8), game, scheduler=ParallelBatchScheduler(workers=1)
        )
        result = engine.run()
        assert result.converged
        assert is_equilibrium(result.final_profile, game)
