"""Tests for the pluggable activation schedulers."""

import pytest

from repro.core.dynamics import best_response_dynamics
from repro.core.equilibria import is_equilibrium
from repro.core.games import MaxNCG, SumNCG
from repro.engine.core import DynamicsEngine
from repro.engine.schedulers import (
    SCHEDULERS,
    ParallelBatchScheduler,
    make_scheduler,
)
from repro.graphs.generators.trees import random_owned_tree


class TestRegistry:
    def test_expected_schedulers_registered(self):
        assert set(SCHEDULERS) == {
            "fixed",
            "shuffled",
            "random_sequential",
            "max_improvement",
            "parallel_batch",
        }

    def test_make_scheduler_unknown_name(self):
        with pytest.raises(ValueError):
            make_scheduler("alphabetical")

    def test_make_scheduler_instances(self):
        for name in SCHEDULERS:
            assert make_scheduler(name).name == name

    def test_dynamics_rejects_unknown_ordering(self):
        with pytest.raises(ValueError):
            best_response_dynamics(
                random_owned_tree(5, seed=0), MaxNCG(1.0), ordering="alphabetical"
            )


class TestConvergence:
    @pytest.mark.parametrize(
        "ordering", ["fixed", "shuffled", "max_improvement", "parallel_batch"]
    )
    def test_certifying_schedulers_reach_equilibrium(self, ordering):
        game = MaxNCG(0.5, k=2)
        result = best_response_dynamics(
            random_owned_tree(14, seed=6), game, ordering=ordering, seed=11
        )
        assert result.converged
        assert is_equilibrium(result.final_profile, game)

    def test_random_sequential_terminates(self):
        game = MaxNCG(0.5, k=2)
        result = best_response_dynamics(
            random_owned_tree(14, seed=6),
            game,
            ordering="random_sequential",
            seed=11,
            max_rounds=50,
        )
        assert result.rounds <= 50
        assert not result.cycled  # repeats are never flagged as cycles
        assert result.total_changes >= 0
        if result.converged:
            # A quiet random round certifies nothing by itself; the engine's
            # certification sweep must back the convergence claim.
            assert is_equilibrium(result.final_profile, game)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_sequential_convergence_is_certified(self, seed):
        game = MaxNCG(0.5, k=2)
        result = best_response_dynamics(
            random_owned_tree(12, seed=seed),
            game,
            ordering="random_sequential",
            seed=seed,
        )
        if result.converged:
            assert is_equilibrium(result.final_profile, game)

    def test_sum_game_on_new_scheduler(self):
        game = SumNCG(2.0, k=2)
        result = best_response_dynamics(
            random_owned_tree(10, seed=5), game, ordering="max_improvement"
        )
        assert result.converged
        assert result.final_metrics is not None

    def test_max_improvement_first_activates_largest_gain(self):
        game = MaxNCG(0.5, k=2)
        engine = DynamicsEngine(
            random_owned_tree(12, seed=3), game, scheduler="max_improvement"
        )
        engine.views.refresh_dirty()
        gains = {
            p: engine.peek_response(p).improvement for p in engine.base_order
        }
        best_gain = max(gains.values())
        if best_gain > 0:
            before = engine.state.to_profile()
            engine.scheduler.run_round(engine, 1)
            after = engine.state.to_profile()
            movers = [p for p in engine.base_order if before[p] != after[p]]
            assert movers  # the round applied at least the argmax move
            assert gains[movers[0]] == pytest.approx(best_gain)


class TestParallelBatch:
    def test_serial_and_parallel_agree(self):
        game = MaxNCG(0.5, k=2)
        owned = random_owned_tree(10, seed=9)
        serial = best_response_dynamics(
            owned, game, ordering="parallel_batch", workers=1
        )
        parallel = best_response_dynamics(
            owned, game, ordering="parallel_batch", workers=2
        )
        assert serial.final_profile == parallel.final_profile
        assert serial.rounds == parallel.rounds
        assert serial.total_changes == parallel.total_changes

    def test_batch_moves_do_not_conflict(self):
        # On a star, every leaf's best response touches the centre: at most
        # one leaf move per batch may be applied.
        from repro.graphs.generators.classic import owned_star

        game = MaxNCG(0.5, k=2)
        engine = DynamicsEngine(
            owned_star(8), game, scheduler=ParallelBatchScheduler(workers=1)
        )
        result = engine.run()
        assert result.converged
        assert is_equilibrium(result.final_profile, game)

    def test_dirty_aware_reaches_same_fixed_point_as_round_start_variant(self):
        game = MaxNCG(0.5, k=2)
        for seed in (4, 7):
            owned = random_owned_tree(24, seed=seed)
            dirty = DynamicsEngine(
                owned, game, scheduler=ParallelBatchScheduler(workers=1, dirty_only=True)
            ).run()
            legacy = DynamicsEngine(
                owned, game, scheduler=ParallelBatchScheduler(workers=1, dirty_only=False)
            ).run()
            assert dirty.final_profile == legacy.final_profile
            assert dirty.rounds == legacy.rounds
            assert dirty.total_changes == legacy.total_changes
            assert dirty.converged and legacy.converged
            assert is_equilibrium(dirty.final_profile, game)

    def test_dirty_aware_skips_clean_players_without_reevaluating(self):
        game = MaxNCG(0.5, k=2)
        scheduler = ParallelBatchScheduler(workers=1, dirty_only=True)
        engine = DynamicsEngine(
            random_owned_tree(24, seed=4), game, scheduler=scheduler
        )
        all_players = set(engine.base_order)
        changes = scheduler.run_round(engine, 1)
        # Round 1: no memos exist yet, so everyone is evaluated.
        assert set(scheduler.evaluated_last_round) == all_players
        assert scheduler.reused_last_round == []
        assert changes > 0  # otherwise the instance certifies trivially
        saw_reuse = False
        round_index = 2
        while changes:
            computed_before = engine.responses_computed
            changes = scheduler.run_round(engine, round_index)
            # Evaluated/reused partition the players, and the engine solved
            # exactly one best response per evaluated player: reused (clean)
            # players were served from the memo, not recomputed.
            assert (
                set(scheduler.evaluated_last_round)
                | set(scheduler.reused_last_round)
            ) == all_players
            assert not set(scheduler.evaluated_last_round) & set(
                scheduler.reused_last_round
            )
            assert (
                engine.responses_computed - computed_before
                == len(scheduler.evaluated_last_round)
            )
            saw_reuse = saw_reuse or bool(scheduler.reused_last_round)
            round_index += 1
            assert round_index < 100  # convergence guard
        # The quiet certifying round (and typically earlier ones) must have
        # skipped the players untouched by the previous round's moves.
        assert saw_reuse
        assert scheduler.reused_last_round
        assert is_equilibrium(engine.state.to_profile(), game)
