"""Certification and perturbation-replay guarantees of the engine.

Three contracts from the robustness PR:

* :meth:`DynamicsEngine.certify` is a real equilibrium certificate — it
  agrees with the reference :func:`repro.core.equilibria.certify_equilibrium`
  sweep, refutes non-equilibria, and rides the best-response memo (a
  freshly converged run certifies with zero extra solver calls);
* a quiet round under a non-certifying scheduler is *not* believed: the
  run only reports ``converged=True`` (and the new ``certified`` flag) once
  a full no-improving-deviation sweep stands behind it;
* :meth:`DynamicsEngine.set_strategy` perturbations evict every stale
  memo entry, so a warm replay is bit-for-bit the run a cold engine would
  produce from the perturbed profile.
"""

import random
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.best_response import ENGINE_DEFAULT_SOLVER, best_response_max
from repro.core.equilibria import certify_equilibrium, is_equilibrium
from repro.core.games import MaxNCG, SumNCG
from repro.core.serialization import dynamics_result_to_dict
from repro.engine.core import DynamicsEngine
from repro.engine.schedulers import Scheduler
from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
from repro.graphs.generators.trees import random_owned_tree
from repro.graphs.traversal import bfs_distances_within, is_connected

GAME = MaxNCG(0.5, k=2)


def assert_same_trajectory(a, b):
    assert a.final_profile == b.final_profile
    assert a.rounds == b.rounds
    assert a.converged == b.converged
    assert a.cycled == b.cycled
    assert a.total_changes == b.total_changes
    assert a.certified == b.certified


def _add_local_shortcut(engine: DynamicsEngine, rng: random.Random) -> bool:
    """Saddle one random player with an edge to a distance-2 node (if any)."""
    players = engine.state.players()
    for _ in range(8):
        player = rng.choice(players)
        near = bfs_distances_within(engine.state.graph, player, 2)
        ring = sorted((q for q, d in near.items() if d == 2), key=repr)
        if ring:
            target = rng.choice(ring)
            engine.set_strategy(player, engine.state.strategy(player) | {target})
            return True
    return False


class TestCertify:
    def test_converged_run_certifies_for_free(self):
        engine = DynamicsEngine(random_owned_tree(16, seed=1), GAME)
        result = engine.run()
        assert result.converged and result.certified
        computed = engine.responses_computed
        report = engine.certify()
        assert report.is_equilibrium
        # The sweep rides the memo: nothing changed since the certifying
        # quiet round, so no solver call is spent on the certificate.
        assert engine.responses_computed == computed
        assert report.all_exact
        assert report.checked_exactly == set(engine.base_order)

    def test_refutes_non_equilibrium_start(self):
        owned = random_owned_tree(12, seed=0)
        engine = DynamicsEngine(owned, GAME)
        assert not is_equilibrium(engine.state.to_profile(), GAME)
        report = engine.certify()
        assert not report.is_equilibrium
        assert report.improving
        for player, response in report.improving.items():
            assert response.is_improving
            assert engine.state.strategy(player) != response.strategy

    def test_stop_at_first_aborts_after_one_refutation(self):
        engine = DynamicsEngine(random_owned_tree(12, seed=0), GAME)
        report = engine.certify(stop_at_first=True)
        assert not report.is_equilibrium
        assert len(report.improving) == 1

    def test_agrees_with_reference_certifier(self):
        for seed in (0, 3, 7):
            owned = random_owned_tree(13, seed=seed)
            engine = DynamicsEngine(owned, GAME)
            profile = engine.state.to_profile()
            engine_report = engine.certify()
            reference = certify_equilibrium(profile, GAME)
            assert engine_report.is_equilibrium == reference.is_equilibrium
            assert set(engine_report.improving) == set(reference.improving)

    def test_certifies_after_perturbation(self):
        engine = DynamicsEngine(random_owned_tree(14, seed=4), GAME)
        engine.run()
        assert engine.certify().is_equilibrium
        assert _add_local_shortcut(engine, random.Random(5))
        # A redundant shortcut is an improving drop for its owner.
        assert not engine.certify().is_equilibrium
        engine.run()
        assert engine.certify().is_equilibrium


class _QuietFirstRoundScheduler(Scheduler):
    """Adversarial scheduler: round 1 activates *nobody* (a quiet round by
    construction, on a profile that is not an equilibrium), later rounds are
    plain round-robin.  Without the certification gate the engine would
    declare convergence at the fake quiet round."""

    name = "quiet_first_round"
    detects_cycles = False
    certifies_convergence = False

    def run_round(self, engine, round_index):
        if round_index == 1:
            return 0
        return sum(engine.activate(player) for player in engine.base_order)


class TestQuietRoundIsNotBelieved:
    def test_fake_quiet_round_does_not_converge(self):
        owned = random_owned_tree(12, seed=0)
        engine = DynamicsEngine(owned, GAME, scheduler=_QuietFirstRoundScheduler())
        assert not is_equilibrium(engine.state.to_profile(), GAME)
        result = engine.run()
        # The round-1 quiet round failed certification, so the run went on
        # and the reported equilibrium is a real one.
        assert result.converged and result.certified
        assert result.total_changes > 0
        assert result.rounds >= 2
        assert is_equilibrium(result.final_profile, GAME)

    @pytest.mark.parametrize("seed", [0, 1, 2, 5])
    def test_random_sequential_never_overstates_convergence(self, seed):
        engine = DynamicsEngine(
            random_owned_tree(12, seed=seed),
            GAME,
            scheduler="random_sequential",
            seed=seed,
        )
        result = engine.run()
        assert result.certified == result.converged
        if result.converged:
            assert is_equilibrium(result.final_profile, GAME)

    def test_uncertified_outcomes_carry_certified_false(self):
        # A round cap below the convergence point must not claim a
        # certificate.
        engine = DynamicsEngine(random_owned_tree(12, seed=0), GAME, max_rounds=1)
        result = engine.run()
        assert not result.converged
        assert not result.certified

    def test_certified_flag_serializes(self):
        engine = DynamicsEngine(random_owned_tree(10, seed=2), GAME)
        payload = dynamics_result_to_dict(engine.run())
        assert payload["certified"] is True


class TestSetStrategyInvalidation:
    def test_perturbed_player_memo_is_evicted(self):
        engine = DynamicsEngine(random_owned_tree(14, seed=3), GAME)
        engine.run()
        player = max(
            engine.base_order, key=lambda p: (len(engine.state.strategy(p)), repr(p))
        )
        assert engine.cached_response(player) is not None
        target = sorted(engine.state.strategy(player), key=repr)[0]
        engine.set_strategy(player, engine.state.strategy(player) - {target})
        # Her own strategy moved, so the memo entry must not answer for the
        # perturbed state even if her view content token survived.
        assert engine.cached_response(player) is None

    def test_every_changed_view_token_drops_the_memo(self):
        engine = DynamicsEngine(random_owned_tree(16, seed=6), GAME)
        engine.run()
        tokens = {p: engine.view_token(p) for p in engine.base_order}
        rng = random.Random(9)
        assert _add_local_shortcut(engine, rng)
        for player in engine.base_order:
            if engine.view_token(player) != tokens[player]:
                assert engine.cached_response(player) is None

    def test_warm_replay_is_bit_for_bit_a_cold_engine(self):
        for family_seed, owned in (
            (0, random_owned_tree(18, seed=10)),
            (1, owned_connected_gnp_graph(14, 0.25, seed=11)),
        ):
            engine = DynamicsEngine(owned, GAME)
            engine.run()
            rng = random.Random(family_seed)
            assert _add_local_shortcut(engine, rng)
            shock_profile = engine.state.to_profile()
            warm = engine.run()
            cold = DynamicsEngine(shock_profile, GAME).run()
            assert_same_trajectory(warm, cold)
            assert warm.certified
            assert engine.certify().is_equilibrium


class TestWarmReplayProperty:
    @given(
        n=st.integers(min_value=8, max_value=14),
        instance_seed=st.integers(min_value=0, max_value=10_000),
        shock_seed=st.integers(min_value=0, max_value=10_000),
        alpha=st.sampled_from([0.5, 2.0]),
        num_shocks=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=15, deadline=None)
    def test_warm_replay_matches_cold_engine(
        self, n, instance_seed, shock_seed, alpha, num_shocks
    ):
        """Random shocks on random instances: warm ``set_strategy`` +
        ``run`` + ``certify`` reaches exactly the certified profile of a
        cold engine started from the perturbed profile."""
        game = MaxNCG(alpha, k=2)
        engine = DynamicsEngine(random_owned_tree(n, seed=instance_seed), game)
        base = engine.run()
        assert base.certified == base.converged
        rng = random.Random(shock_seed)
        shocked = 0
        for _ in range(num_shocks):
            shocked += _add_local_shortcut(engine, rng)
        if not shocked:
            return
        assert is_connected(engine.state.graph)
        shock_profile = engine.state.to_profile()
        warm = engine.run()
        cold = DynamicsEngine(shock_profile, game).run()
        assert_same_trajectory(warm, cold)
        if warm.converged:
            assert engine.certify().is_equilibrium


class TestCollectMetricsFlag:
    def test_metrics_skipped_but_trajectory_identical(self):
        owned = random_owned_tree(14, seed=8)
        with_metrics = DynamicsEngine(owned, GAME).run()
        lean = DynamicsEngine(owned, GAME, collect_metrics=False).run()
        assert lean.initial_metrics is None
        assert lean.final_metrics is None
        assert with_metrics.initial_metrics is not None
        assert with_metrics.final_metrics is not None
        # Skipping the O(n * edges) bookend sweeps changes nothing about
        # the dynamics themselves.
        assert lean.final_profile == with_metrics.final_profile
        assert lean.rounds == with_metrics.rounds
        assert lean.total_changes == with_metrics.total_changes
        assert lean.certified == with_metrics.certified

    def test_metrics_free_result_serializes(self):
        engine = DynamicsEngine(
            random_owned_tree(10, seed=2), GAME, collect_metrics=False
        )
        payload = dynamics_result_to_dict(engine.run())
        assert payload["final_metrics"] is None
        assert payload["certified"] is True


class TestWarmStartSolverGuards:
    def test_engine_warns_on_warm_start_blind_solver(self):
        owned = random_owned_tree(8, seed=0)
        with pytest.warns(RuntimeWarning, match="cannot consume"):
            DynamicsEngine(owned, GAME, solver="milp")

    @pytest.mark.parametrize("solver", [ENGINE_DEFAULT_SOLVER, "greedy"])
    def test_engine_stays_quiet_on_capable_or_heuristic_solvers(self, solver):
        owned = random_owned_tree(8, seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            DynamicsEngine(owned, GAME, solver=solver)

    def test_engine_stays_quiet_for_sum_games(self):
        # SumNCG never routes through the set-cover machinery, so `milp`
        # loses nothing there.
        owned = random_owned_tree(8, seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            DynamicsEngine(owned, SumNCG(2.0, k=2), solver="milp")

    def test_best_response_max_warns_and_degrades_to_cold(self):
        profile = DynamicsEngine(random_owned_tree(10, seed=1), GAME).state.to_profile()
        player = profile.players()[0]
        with pytest.warns(RuntimeWarning, match="cannot consume warm starts"):
            degraded = best_response_max(
                profile, player, GAME, solver="milp", warm_start=True
            )
        exact = best_response_max(profile, player, GAME, warm_start=True)
        # Both solvers are exact, so the degraded path still answers
        # correctly — it just forfeits the warm-start pruning.
        assert degraded.view_cost == pytest.approx(exact.view_cost)
        assert degraded.is_improving == exact.is_improving

    def test_best_response_max_greedy_is_silent(self):
        profile = DynamicsEngine(random_owned_tree(10, seed=1), GAME).state.to_profile()
        player = profile.players()[0]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            best_response_max(profile, player, GAME, solver="greedy", warm_start=True)

    def test_auto_warm_start_keeps_milp_cross_check_usable(self):
        # The default (warm_start=None, "auto") silently takes the cold
        # path on milp, so the opt-in cross-check solver works under
        # -W error without the caller having to know about warm starts.
        profile = DynamicsEngine(random_owned_tree(10, seed=1), GAME).state.to_profile()
        player = profile.players()[0]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            via_milp = best_response_max(profile, player, GAME, solver="milp")
        via_default = best_response_max(profile, player, GAME)
        assert via_milp.view_cost == pytest.approx(via_default.view_cost)
