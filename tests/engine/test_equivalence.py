"""Engine-vs-legacy equivalence: the incremental engine must reproduce the
seed implementation's dynamics trajectories *exactly*.

This is the contract that lets ``core/dynamics.py`` delegate to the engine:
for the paper's two orderings, same final profile, same round count, same
cycled/converged flags, same per-round change counts — across instance
families (Erdős–Rényi, torus, tree) and both games (MaxNCG, SumNCG).
"""

import random

import pytest

from repro.core.dynamics import (
    best_response_dynamics,
    best_response_dynamics_reference,
)
from repro.core.games import FULL_KNOWLEDGE, MaxNCG, SumNCG
from repro.core.strategies import StrategyProfile
from repro.engine.core import DynamicsEngine
from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
from repro.graphs.generators.high_girth import owned_high_girth_graph
from repro.graphs.generators.smallworld import owned_watts_strogatz
from repro.graphs.generators.torus import TorusParameters, stretched_torus
from repro.graphs.generators.trees import random_owned_tree


def assert_same_trajectory(a, b):
    assert a.final_profile == b.final_profile
    assert a.rounds == b.rounds
    assert a.converged == b.converged
    assert a.cycled == b.cycled
    assert a.total_changes == b.total_changes


def instances():
    yield "tree", random_owned_tree(16, seed=1)
    yield "tree", random_owned_tree(16, seed=2)
    yield "gnp", owned_connected_gnp_graph(14, 0.25, seed=3)
    yield "gnp", owned_connected_gnp_graph(14, 0.2, seed=4)
    yield "torus", stretched_torus(TorusParameters(stretch=2, deltas=(2, 3)))


GAMES = [
    MaxNCG(2.0, k=2),
    MaxNCG(0.5, k=2),
    MaxNCG(2.0, k=FULL_KNOWLEDGE),
    SumNCG(2.0, k=2),
]


@pytest.mark.parametrize("ordering", ["fixed", "shuffled"])
def test_engine_matches_reference_across_matrix(ordering):
    for family, owned in instances():
        for game in GAMES:
            engine_result = best_response_dynamics(
                owned, game, solver="branch_and_bound", ordering=ordering, seed=13
            )
            reference_result = best_response_dynamics_reference(
                owned, game, solver="branch_and_bound", ordering=ordering, seed=13
            )
            assert_same_trajectory(engine_result, reference_result)


@pytest.mark.parametrize(
    "family, make_owned",
    [
        ("high_girth", lambda: owned_high_girth_graph(96, 3, 8, seed=2)),
        ("watts_strogatz", lambda: owned_watts_strogatz(96, 4, 0.2, seed=9)),
    ],
)
def test_scaling_families_stress_bit_identical(family, make_owned):
    """Large-n stress: high-girth and small-world instances under the new
    blocked/warm-started kernels must stay bit-identical engine-vs-reference.

    n = 96 is the largest these two families afford inside the tier-1 time
    budget with the exact branch-and-bound solver.  High-girth instances are
    born local-knowledge equilibria (that is the paper's Lemma 3.2 point),
    so a few strategies are perturbed first to force genuine multi-round
    repair dynamics down both code paths.
    """
    owned = make_owned()
    profile = StrategyProfile.from_owned_graph(owned)
    rng = random.Random(5)
    players = profile.players()
    for player in rng.sample(players, 4):
        other = rng.choice([p for p in players if p != player])
        # Additions only: removals could disconnect the graph, which the
        # metric sweep of a dynamics run rejects.
        profile = profile.with_strategy(player, profile.strategy(player) | {other})
    game = MaxNCG(2.0, k=3)
    for ordering in ("fixed", "shuffled"):
        engine_result = best_response_dynamics(
            profile, game, solver="branch_and_bound", ordering=ordering, seed=17
        )
        reference_result = best_response_dynamics_reference(
            profile, game, solver="branch_and_bound", ordering=ordering, seed=17
        )
        assert_same_trajectory(engine_result, reference_result)
        assert engine_result.converged
        assert engine_result.total_changes > 0


def test_equivalence_with_milp_solver():
    owned = random_owned_tree(14, seed=5)
    game = MaxNCG(0.5, k=2)
    assert_same_trajectory(
        best_response_dynamics(owned, game, solver="milp"),
        best_response_dynamics_reference(owned, game, solver="milp"),
    )


def test_round_records_match():
    owned = random_owned_tree(14, seed=8)
    game = MaxNCG(0.5, k=2)
    a = best_response_dynamics(
        owned, game, solver="branch_and_bound", collect_round_metrics=True
    )
    b = best_response_dynamics_reference(
        owned, game, solver="branch_and_bound", collect_round_metrics=True
    )
    assert [r.num_changes for r in a.round_records] == [
        r.num_changes for r in b.round_records
    ]
    assert [r.metrics for r in a.round_records] == [
        r.metrics for r in b.round_records
    ]
    assert a.initial_metrics == b.initial_metrics
    assert a.final_metrics == b.final_metrics


def test_perturbation_replay_matches_cold_reference():
    """Warm engine replays (perturb + rerun) equal cold reference reruns."""
    import random

    game = MaxNCG(0.5, k=2)
    engine = DynamicsEngine(
        random_owned_tree(16, seed=0), game, solver="branch_and_bound"
    )
    profile = engine.run().final_profile
    rng = random.Random(21)
    players = profile.players()
    for _ in range(8):
        player = rng.choice(players)
        other = rng.choice([p for p in players if p != player])
        strategy = engine.state.strategy(player)
        strategy = strategy - {other} if other in strategy else strategy | {other}
        engine.set_strategy(player, strategy)
        warm = engine.run()
        cold = best_response_dynamics_reference(
            profile.with_strategy(player, strategy), game, solver="branch_and_bound"
        )
        assert_same_trajectory(warm, cold)
        profile = cold.final_profile


def test_engine_accepts_profile_and_rejects_garbage():
    profile = StrategyProfile.from_owned_graph(random_owned_tree(8, seed=1))
    result = best_response_dynamics(profile, MaxNCG(1.0, k=2))
    assert result.converged
    with pytest.raises(TypeError):
        DynamicsEngine({"not": "a profile"}, MaxNCG(1.0))
