"""The shared cross-session :class:`ViewStore`.

Contract under test: an α-grid of engine sessions over the *same*
instance shares refreshed BFS views — the first session pays the full
sweep, every later session adopts all of its startup views from the store
(zero duplicate BFS builds) — while trajectories stay bit-identical to
store-less runs.  The store must also never confuse states that differ
only in edge *ownership* (same topology, different buyers), and its LRU
capacity bound must hold.
"""

from repro.core.games import MaxNCG
from repro.core.strategies import StrategyProfile
from repro.engine.core import DynamicsEngine
from repro.engine.state import NetworkState
from repro.engine.views import DEFAULT_VIEW_STORE_CAPACITY, IncrementalViewCache, ViewStore
from repro.experiments.runner import RunSpec, build_instance, run_spec_on_instance
from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
from repro.graphs.generators.trees import random_owned_tree

ALPHAS = (0.3, 0.8, 1.5, 3.0)


def test_alpha_sweep_builds_startup_views_exactly_once():
    """Sessions 2..m adopt every startup view from the store: zero BFS."""
    owned = owned_connected_gnp_graph(24, 0.15, seed=3)
    n = len(owned.graph)
    store = ViewStore()
    built = []
    for alpha in ALPHAS:
        cache = IncrementalViewCache(
            NetworkState.from_profile(StrategyProfile.from_owned_graph(owned)),
            k=2,
            store=store,
        )
        cache.refresh_dirty()
        built.append((cache.views_built, cache.shared_hits))
    assert built[0] == (n, 0)
    assert all(entry == (0, n) for entry in built[1:])
    counters = store.counters()
    assert counters["view_store_publishes"] == n
    assert counters["view_store_hits"] == (len(ALPHAS) - 1) * n
    assert counters["view_store_misses"] == n


def test_full_dynamics_sweep_shares_views_and_stays_bit_identical():
    """End-to-end α-sweep: shared-store rows == store-less rows, with hits."""
    spec0 = RunSpec(family="gnp", n=20, p=0.2, alpha=ALPHAS[0], k=2, seed=7, solver="greedy")
    store = ViewStore()
    shared_hits = 0
    for alpha in ALPHAS:
        spec = RunSpec(
            family="gnp", n=20, p=0.2, alpha=alpha, k=2, seed=7, solver="greedy"
        )
        baseline = run_spec_on_instance(spec, build_instance(spec0))
        shared = run_spec_on_instance(spec, build_instance(spec0), view_store=store)
        assert shared == baseline
    assert store.counters()["view_store_hits"] > 0


def test_engine_sessions_share_through_injected_store():
    owned = random_owned_tree(16, seed=2)
    store = ViewStore()
    first = DynamicsEngine(owned, MaxNCG(0.5, k=2), view_store=store)
    first.views.refresh_dirty()
    assert first.views.views_built == 16
    second = DynamicsEngine(owned, MaxNCG(2.0, k=2), view_store=store)
    second.views.refresh_dirty()
    assert second.views.views_built == 0
    assert second.views.shared_hits == 16
    assert second.view_store is store


def test_ownership_flip_changes_signature_and_blocks_adoption():
    """Same topology, one edge's ownership flipped: no cross-adoption.

    ``graph.version`` cannot tell these states apart (the edge set is
    identical); the buyer sets — and hence the views — differ, which is
    exactly why the store keys on the strategy-content signature.
    """
    owned = random_owned_tree(10, seed=4)
    profile = StrategyProfile.from_owned_graph(owned)
    owner = next(p for p in profile.players() if profile.strategy(p))
    target = sorted(profile.strategy(owner), key=repr)[0]
    flipped = StrategyProfile(
        {
            player: (
                profile.strategy(player) - {target}
                if player == owner
                else profile.strategy(player) | {owner}
                if player == target
                else profile.strategy(player)
            )
            for player in profile.players()
        }
    )
    assert flipped.graph() == profile.graph()

    store = ViewStore()
    cache_a = IncrementalViewCache(NetworkState.from_profile(profile), k=2, store=store)
    cache_a.refresh_dirty()
    cache_b = IncrementalViewCache(NetworkState.from_profile(flipped), k=2, store=store)
    cache_b.refresh_dirty()
    # The flipped state found nothing to adopt: every view was rebuilt.
    assert cache_b.shared_hits == 0
    assert cache_b.views_built == 10
    # And the two states' views really do differ (ownership shows up in
    # the buyer sets even though the topology is identical).
    assert cache_a.get(owner).buyers != cache_b.get(owner).buyers


def test_store_is_a_bounded_lru():
    store = ViewStore(capacity=3)
    views = object(), object(), object(), object()
    for index, view in enumerate(views):
        store.put(f"sig{index}", 2, f"p{index}", view, store.next_token())
    assert len(store) == 3
    assert store.get("sig0", 2, "p0") is None  # evicted, counted as a miss
    hit = store.get("sig3", 2, "p3")
    assert hit is not None and hit[0] is views[3]
    counters = store.counters()
    assert counters["view_store_entries"] == 3
    assert counters["view_store_hits"] == 1
    assert counters["view_store_misses"] == 1


def test_first_write_wins_and_default_capacity():
    store = ViewStore()
    assert store._capacity == DEFAULT_VIEW_STORE_CAPACITY
    first, second = object(), object()
    token = store.next_token()
    store.put("sig", 2, "p", first, token)
    store.put("sig", 2, "p", second, store.next_token())
    view, stored_token = store.get("sig", 2, "p")
    assert view is first and stored_token == token
