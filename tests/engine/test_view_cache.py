"""Tests for the incremental view cache (dirty-region invalidation)."""

import random

import pytest

from repro.core.games import FULL_KNOWLEDGE
from repro.core.strategies import StrategyProfile
from repro.core.views import View, extract_view
from repro.engine.state import NetworkState
from repro.engine.views import IncrementalViewCache
from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
from repro.graphs.generators.trees import random_owned_tree


def views_equal(a: View, b: View) -> bool:
    return (
        a.player == b.player
        and a.k == b.k
        and a.distances == b.distances
        and a.frontier == b.frontier
        and a.buyers == b.buyers
        and a.subgraph == b.subgraph
    )


def apply_with_invalidation(state, cache, player, new_strategy):
    """The engine's apply protocol: pre-balls, apply, post-balls, invalidate."""
    delta = state.preview(player, new_strategy)
    region = cache.region_before_apply(delta)
    state.apply(delta)
    region |= cache.region_after_apply(delta)
    cache.invalidate(region)


@pytest.mark.parametrize("k", [1, 2, 3, FULL_KNOWLEDGE])
def test_cached_views_track_ground_truth_under_mutations(k):
    """Property test: after arbitrary strategy changes, every cached view
    matches a from-scratch ``extract_view`` on the equivalent profile."""
    profile = StrategyProfile.from_owned_graph(random_owned_tree(14, seed=2))
    state = NetworkState.from_profile(profile)
    cache = IncrementalViewCache(state, k)
    cache.refresh_dirty()
    players = state.players()
    rng = random.Random(5)
    for step in range(30):
        player = rng.choice(players)
        others = [p for p in players if p != player]
        new = frozenset(rng.sample(others, rng.randint(0, 3)))
        apply_with_invalidation(state, cache, player, new)
        snapshot = state.to_profile()
        for p in players:
            expected = extract_view(snapshot, p, k)
            assert views_equal(cache.get(p), expected), (step, p)


def test_initial_batched_refresh_matches_extract_view():
    profile = StrategyProfile.from_owned_graph(
        owned_connected_gnp_graph(15, 0.2, seed=1)
    )
    state = NetworkState.from_profile(profile)
    for k in (1, 2, FULL_KNOWLEDGE):
        cache = IncrementalViewCache(state, k)
        rebuilt = cache.refresh_dirty()
        assert rebuilt == len(state.players())
        for p in state.players():
            assert views_equal(cache.get(p), extract_view(profile, p, k))


def test_tokens_stable_for_untouched_players():
    profile = StrategyProfile.from_owned_graph(random_owned_tree(20, seed=4))
    state = NetworkState.from_profile(profile)
    cache = IncrementalViewCache(state, 1)
    cache.refresh_dirty()
    tokens = {p: cache.token(p) for p in state.players()}
    # Change one leaf-ish player's strategy; with k=1 the dirty region is
    # small, so most tokens must survive.
    player = state.players()[0]
    others = [p for p in state.players() if p != player]
    apply_with_invalidation(state, cache, player, frozenset(others[:1]))
    for p in state.players():
        cache.get(p)
    changed = [p for p in state.players() if cache.token(p) != tokens[p]]
    assert player in changed or changed  # something changed...
    assert len(changed) < len(state.players())  # ...but not everything


def test_token_unchanged_when_refresh_finds_identical_content():
    """Ball invalidation is conservative; content-equal refresh keeps the token."""
    # 0-1-2-3-4 path, k=1: dropping edge (3, 4) dirties the region {2, 3, 4},
    # but player 2's view content (the 1-ball {1, 2, 3}) is untouched — her
    # token must survive the refresh so memoised responses stay valid.
    # Player 0 is outside the region and must not even be marked dirty.
    state = NetworkState(
        {0: frozenset({1}), 1: frozenset({2}), 2: frozenset({3}),
         3: frozenset({4}), 4: frozenset()}
    )
    cache = IncrementalViewCache(state, 1)
    cache.refresh_dirty()
    tokens = {p: cache.token(p) for p in state.players()}
    apply_with_invalidation(state, cache, 3, frozenset())  # drop edge (3, 4)
    assert not cache.is_dirty(0)
    assert cache.is_dirty(2)
    cache.get(2)  # refresh settles the token without bumping it
    assert cache.token(2) == tokens[2]
    assert cache.token(0) == tokens[0]
    # Players whose view really changed (3 lost a neighbour, 4 was orphaned)
    # must move their tokens.
    cache.get(3), cache.get(4)
    assert cache.token(3) != tokens[3]
    assert cache.token(4) != tokens[4]


def test_full_knowledge_topology_change_invalidates_everyone():
    profile = StrategyProfile.from_owned_graph(random_owned_tree(10, seed=0))
    state = NetworkState.from_profile(profile)
    cache = IncrementalViewCache(state, FULL_KNOWLEDGE)
    cache.refresh_dirty()
    player = state.players()[0]
    target = [p for p in state.players() if p != player and not state.graph.has_edge(player, p)][0]
    apply_with_invalidation(state, cache, player, state.strategy(player) | {target})
    assert all(cache.is_dirty(p) for p in state.players())
    snapshot = state.to_profile()
    for p in state.players():
        assert views_equal(cache.get(p), extract_view(snapshot, p, FULL_KNOWLEDGE))


def test_buyer_only_change_invalidates_target_view():
    # 0 and 1 both buy the edge between them: dropping 0's copy changes
    # nothing topologically but player 1's view must lose buyer 0.
    state = NetworkState({0: frozenset({1}), 1: frozenset({0}), 2: frozenset({1})})
    cache = IncrementalViewCache(state, 2)
    cache.refresh_dirty()
    assert 0 in cache.get(1).buyers
    apply_with_invalidation(state, cache, 0, frozenset())
    assert 0 not in cache.get(1).buyers
    snapshot = state.to_profile()
    for p in state.players():
        assert views_equal(cache.get(p), extract_view(snapshot, p, 2))
