"""Engine-grade SumNCG: the seeded/pruned dispatch must change *nothing*
about the trajectories — only the time they take.

Four contracts:

* the :func:`repro.core.best_response.best_response` dispatch (local-search
  seed + pruned exhaustive) returns bit-for-bit the strategy of the naive
  full enumeration it replaced, tie-breaks included;
* engine dynamics == reference dynamics on SumNCG, exactly, across
  orderings and cost models (the hypothesis suite of the issue);
* a tolerant model with a β above every realisable cost replays the strict
  trajectories bit-for-bit (the partial regimes never win, only price);
* sum best responses genuinely ride the engine memo (the certifying quiet
  round is answered from cache, not by re-enumeration).
"""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.best_response import (
    SUM_EXHAUSTIVE_LIMIT,
    best_response,
    best_response_sum_exhaustive,
)
from repro.core.cost_models import TolerantCosts
from repro.core.deviations import COST_EPS, view_cost, worst_case_delta
from repro.core.dynamics import (
    best_response_dynamics,
    best_response_dynamics_reference,
)
from repro.core.games import FULL_KNOWLEDGE, MaxNCG, SumNCG
from repro.core.strategies import StrategyProfile
from repro.core.views import extract_view
from repro.engine.core import DynamicsEngine
from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
from repro.graphs.generators.trees import random_owned_tree

tree_profiles = st.builds(
    lambda n, seed: StrategyProfile.from_owned_graph(random_owned_tree(n, seed=seed)),
    st.integers(min_value=3, max_value=12),
    st.integers(min_value=0, max_value=5_000),
)
alphas = st.sampled_from([0.3, 0.5, 1.5, 3.0])
ks = st.sampled_from([2, 3, FULL_KNOWLEDGE])


def _naive_sum_best_response(profile, player, game):
    """The pre-refactor dispatch: plain enumeration, no seed, no pruning."""
    view = extract_view(profile, player, game.k)
    current = profile.strategy(player)
    candidates = sorted(view.strategy_space, key=repr)
    current_cost = view_cost(view, current, game)
    best_cost, best_strategy = current_cost, current
    for size in range(len(candidates) + 1):
        for combo in itertools.combinations(candidates, size):
            strategy = frozenset(combo)
            if strategy == current:
                continue
            delta = worst_case_delta(view, current, strategy, game)
            if math.isinf(delta):
                continue
            if current_cost + delta < best_cost - COST_EPS:
                best_cost, best_strategy = current_cost + delta, strategy
    return best_cost, best_strategy


class TestDispatchEquivalence:
    @given(tree_profiles, alphas, ks)
    @settings(max_examples=30, deadline=None)
    def test_seeded_pruned_dispatch_equals_naive_enumeration(self, profile, alpha, k):
        game = SumNCG(alpha, k=k)
        for player in list(profile)[:4]:
            view = extract_view(profile, player, game.k)
            if len(view.strategy_space) > SUM_EXHAUSTIVE_LIMIT:
                continue
            naive_cost, naive_strategy = _naive_sum_best_response(profile, player, game)
            response = best_response(profile, player, game)
            assert response.strategy == naive_strategy
            same = (response.view_cost == naive_cost) or (
                abs(response.view_cost - naive_cost) < 1e-9
            )
            assert same
            assert response.exact

    @given(tree_profiles, alphas)
    @settings(max_examples=20, deadline=None)
    def test_tolerant_dispatch_equals_naive_enumeration(self, profile, alpha):
        game = SumNCG(alpha, k=2, cost_model=TolerantCosts(beta=3.0))
        for player in list(profile)[:3]:
            naive_cost, naive_strategy = _naive_sum_best_response(profile, player, game)
            response = best_response(profile, player, game)
            assert response.strategy == naive_strategy

    def test_oversized_exhaustive_warns(self):
        profile = StrategyProfile.from_owned_graph(random_owned_tree(16, seed=0))
        game = SumNCG(1.0)
        player = profile.players()[0]
        with pytest.warns(RuntimeWarning, match="enumerates 2\\^15"):
            best_response_sum_exhaustive(profile, player, game, max_candidates=16)

    def test_dispatch_threshold_routes_to_local_search(self):
        profile = StrategyProfile.from_owned_graph(random_owned_tree(16, seed=1))
        game = SumNCG(1.0)  # full knowledge: strategy space = 15 > limit
        player = profile.players()[0]
        response = best_response(profile, player, game)
        assert not response.exact  # local search answered, flagged honestly
        exact = best_response(profile, player, game, sum_exhaustive_limit=15)
        assert exact.exact
        assert exact.view_cost <= response.view_cost + COST_EPS


def assert_same_trajectory(a, b):
    assert a.final_profile == b.final_profile
    assert a.rounds == b.rounds
    assert a.converged == b.converged
    assert a.cycled == b.cycled
    assert a.certified == b.certified
    assert a.certified_exact == b.certified_exact
    assert a.total_changes == b.total_changes


class TestEngineEquivalence:
    @given(
        st.integers(min_value=4, max_value=12),
        st.integers(min_value=0, max_value=2_000),
        alphas,
        st.sampled_from([2, 3, FULL_KNOWLEDGE]),
        st.sampled_from(["fixed", "shuffled"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_engine_matches_reference_on_sum_trees(self, n, seed, alpha, k, ordering):
        owned = random_owned_tree(n, seed=seed)
        game = SumNCG(alpha, k=k)
        engine_result = best_response_dynamics(
            owned, game, max_rounds=40, ordering=ordering, seed=7
        )
        reference_result = best_response_dynamics_reference(
            owned, game, max_rounds=40, ordering=ordering, seed=7
        )
        assert_same_trajectory(engine_result, reference_result)

    @given(
        st.integers(min_value=6, max_value=11),
        st.integers(min_value=0, max_value=500),
        alphas,
    )
    @settings(max_examples=10, deadline=None)
    def test_engine_matches_reference_on_sum_gnp(self, n, seed, alpha):
        owned = owned_connected_gnp_graph(n, 0.3, seed=seed)
        game = SumNCG(alpha, k=2)
        assert_same_trajectory(
            best_response_dynamics(owned, game, max_rounds=40),
            best_response_dynamics_reference(owned, game, max_rounds=40),
        )

    @given(
        st.integers(min_value=4, max_value=11),
        st.integers(min_value=0, max_value=2_000),
        alphas,
        st.sampled_from([2, FULL_KNOWLEDGE]),
    )
    @settings(max_examples=20, deadline=None)
    def test_high_beta_tolerant_replays_strict_exactly(self, n, seed, alpha, k):
        # With beta above any realisable in-view cost the partial regimes
        # can never win a strictly-better comparison, so tolerant dynamics
        # must be bit-for-bit the strict dynamics on connected instances.
        owned = random_owned_tree(n, seed=seed)
        beta = (alpha + 1.0) * n + 1.0
        for game_factory in (SumNCG, MaxNCG):
            strict_result = best_response_dynamics(
                owned, game_factory(alpha, k=k), max_rounds=40
            )
            tolerant_result = best_response_dynamics(
                owned,
                game_factory(alpha, k=k, cost_model=TolerantCosts(beta=beta)),
                max_rounds=40,
            )
            assert_same_trajectory(strict_result, tolerant_result)

    def test_heuristic_certificates_are_flagged(self):
        # Above the exhaustive limit only the local search answers: a
        # convergence is still certified ("no improving move was found"),
        # but never *exactly* — the flag that keeps certified_fraction
        # honest in the sum sweeps.
        owned = random_owned_tree(16, seed=2)
        heuristic = best_response_dynamics(
            owned, SumNCG(1.5), max_rounds=40  # full knowledge: spaces = 15
        )
        assert heuristic.converged and heuristic.certified
        assert not heuristic.certified_exact
        exact = best_response_dynamics(
            owned, SumNCG(1.5), max_rounds=40, sum_exhaustive_limit=15
        )
        assert exact.converged and exact.certified
        assert exact.certified_exact

    def test_sum_responses_ride_the_memo(self):
        owned = random_owned_tree(12, seed=3)
        engine = DynamicsEngine(owned, SumNCG(0.5, k=2))
        result = engine.run()
        assert result.converged
        # The quiet round answered at least the untouched players from the
        # memo rather than re-enumerating them.
        assert engine.responses_reused > 0
        computed_before = engine.responses_computed
        report = engine.certify()
        assert report.is_equilibrium
        assert engine.responses_computed == computed_before  # pure cache ride
