"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.games import MaxNCG, SumNCG
from repro.core.strategies import StrategyProfile
from repro.graphs.generators.classic import (
    cycle_graph,
    owned_cycle,
    owned_star,
    path_graph,
    petersen_graph,
    star_graph,
)
from repro.graphs.generators.trees import random_owned_tree
from repro.graphs.graph import Graph


@pytest.fixture
def path5() -> Graph:
    """Path 0-1-2-3-4."""
    return path_graph(5)


@pytest.fixture
def cycle6() -> Graph:
    """Cycle on 6 nodes."""
    return cycle_graph(6)


@pytest.fixture
def star6() -> Graph:
    """Star on 6 nodes centred at 0."""
    return star_graph(6)


@pytest.fixture
def petersen() -> Graph:
    return petersen_graph()


@pytest.fixture
def star_profile() -> StrategyProfile:
    """Star on 6 players, all edges bought by the centre."""
    return StrategyProfile.from_owned_graph(owned_star(6))


@pytest.fixture
def leaf_star_profile() -> StrategyProfile:
    """Star on 6 players, all edges bought by the leaves."""
    return StrategyProfile.from_owned_graph(owned_star(6, center_owns=False))


@pytest.fixture
def cycle_profile() -> StrategyProfile:
    """Cycle on 8 players, each owning the edge to its successor."""
    return StrategyProfile.from_owned_graph(owned_cycle(8))


@pytest.fixture
def path_profile() -> StrategyProfile:
    """Path 0-1-2-3-4 where each node buys the edge to the next."""
    return StrategyProfile(
        {0: {1}, 1: {2}, 2: {3}, 3: {4}, 4: frozenset()}
    )


@pytest.fixture
def small_tree_profile() -> StrategyProfile:
    """A reproducible random tree on 12 players with fair-coin ownership."""
    return StrategyProfile.from_owned_graph(random_owned_tree(12, seed=7))


@pytest.fixture
def max_game():
    return MaxNCG(alpha=2.0, k=2)


@pytest.fixture
def max_game_full():
    return MaxNCG(alpha=2.0)


@pytest.fixture
def sum_game():
    return SumNCG(alpha=2.0, k=2)


@pytest.fixture
def sum_game_full():
    return SumNCG(alpha=2.0)
