"""Property-based tests for the discovery view models."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies import StrategyProfile
from repro.discovery.models import (
    KNeighborhoodModel,
    TracerouteModel,
    UnionOfBallsModel,
)
from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
from repro.graphs.generators.trees import random_owned_tree
from repro.graphs.traversal import bfs_distances


@st.composite
def profiles(draw, max_nodes: int = 16):
    """Random connected profiles (trees or sparse G(n, p) graphs)."""
    n = draw(st.integers(min_value=5, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=2_000))
    family = draw(st.sampled_from(["tree", "gnp"]))
    if family == "tree":
        owned = random_owned_tree(n, seed=seed)
    else:
        owned = owned_connected_gnp_graph(n, p=0.25, seed=seed)
    return StrategyProfile.from_owned_graph(owned)


@st.composite
def models(draw):
    kind = draw(st.sampled_from(["k", "traceroute", "balls"]))
    if kind == "k":
        return KNeighborhoodModel(k=draw(st.integers(min_value=1, max_value=4)))
    if kind == "traceroute":
        return TracerouteModel(num_targets=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=10))))
    return UnionOfBallsModel(
        radius=draw(st.integers(min_value=1, max_value=3)),
        include_neighbors=draw(st.booleans()),
    )


class TestViewModelInvariants:
    @settings(max_examples=40, deadline=None)
    @given(profile=profiles(), model=models())
    def test_view_is_subgraph_of_true_network(self, profile, model):
        graph = profile.graph()
        player = profile.players()[0]
        view = model.observe(profile, player)
        for u, v in view.subgraph.edges():
            assert graph.has_edge(u, v)
        assert view.nodes <= set(graph.nodes())

    @settings(max_examples=40, deadline=None)
    @given(profile=profiles(), model=models())
    def test_observer_always_sees_herself_and_her_neighbours(self, profile, model):
        graph = profile.graph()
        player = profile.players()[0]
        view = model.observe(profile, player)
        assert player in view.nodes
        # All three models reveal the observer's incident edges.
        if not isinstance(model, KNeighborhoodModel) or model.k >= 1:
            for neighbour in graph.neighbors(player):
                assert neighbour in view.nodes

    @settings(max_examples=40, deadline=None)
    @given(profile=profiles(), model=models())
    def test_distances_are_true_distances(self, profile, model):
        graph = profile.graph()
        player = profile.players()[0]
        view = model.observe(profile, player)
        true = bfs_distances(graph, player)
        for node, dist in view.distances.items():
            assert dist == true[node]

    @settings(max_examples=40, deadline=None)
    @given(profile=profiles(), model=models())
    def test_frontier_vertices_really_are_uncertain(self, profile, model):
        graph = profile.graph()
        player = profile.players()[0]
        view = model.observe(profile, player)
        if isinstance(model, KNeighborhoodModel):
            # Paper semantics: the frontier is the distance-k shell.
            for vertex in view.frontier:
                assert view.distances[vertex] == model.k
        else:
            for vertex in view.frontier:
                assert view.subgraph.degree(vertex) < graph.degree(vertex)

    @settings(max_examples=40, deadline=None)
    @given(profile=profiles(), model=models())
    def test_buyers_are_visible_in_neighbours(self, profile, model):
        player = profile.players()[0]
        view = model.observe(profile, player)
        for buyer in view.buyers:
            assert buyer in view.nodes
            assert player in profile.strategy(buyer)

    @settings(max_examples=30, deadline=None)
    @given(profile=profiles())
    def test_traceroute_with_all_targets_discovers_every_node(self, profile):
        player = profile.players()[0]
        view = TracerouteModel().observe(profile, player)
        assert view.nodes == set(profile.players())

    @settings(max_examples=30, deadline=None)
    @given(profile=profiles(), radius=st.integers(min_value=1, max_value=3))
    def test_union_of_balls_contains_k_ball(self, profile, radius):
        player = profile.players()[0]
        with_neighbors = UnionOfBallsModel(radius=radius, include_neighbors=True)
        plain = KNeighborhoodModel(k=radius)
        assert plain.observe(profile, player).nodes <= with_neighbors.observe(profile, player).nodes
