"""Tests for equilibrium checks and comparisons under alternative view models."""

import pytest

from repro.core.dynamics import best_response_dynamics
from repro.core.equilibria import is_equilibrium
from repro.core.games import FULL_KNOWLEDGE, MaxNCG, SumNCG
from repro.core.strategies import StrategyProfile
from repro.discovery.analysis import (
    ModelComparison,
    best_response_under_model,
    compare_view_models,
    improving_players_under_model,
    is_equilibrium_under_model,
    view_size_statistics,
)
from repro.discovery.models import (
    KNeighborhoodModel,
    TracerouteModel,
    UnionOfBallsModel,
)
from repro.graphs.generators.classic import owned_cycle, owned_star
from repro.graphs.generators.trees import random_owned_tree


class TestBestResponseUnderModel:
    def test_k_model_matches_core_best_response(self, small_tree_profile):
        from repro.core.best_response import best_response

        game = MaxNCG(alpha=2.0, k=2)
        model = KNeighborhoodModel(k=2)
        for player in list(small_tree_profile)[:5]:
            via_model = best_response_under_model(
                small_tree_profile, player, game, model, solver="branch_and_bound"
            )
            direct = best_response(small_tree_profile, player, game, solver="branch_and_bound")
            assert via_model.view_cost == pytest.approx(direct.view_cost)
            assert via_model.improvement == pytest.approx(direct.improvement)

    def test_sum_dispatch_small_space(self):
        profile = StrategyProfile.from_owned_graph(owned_cycle(8))
        game = SumNCG(alpha=1.0, k=2)
        model = KNeighborhoodModel(k=2)
        response = best_response_under_model(profile, 0, game, model)
        assert response.player == 0

    def test_sum_dispatch_large_space_uses_local_search(self):
        owned = random_owned_tree(20, seed=1)
        profile = StrategyProfile.from_owned_graph(owned)
        game = SumNCG(alpha=1.0)
        model = TracerouteModel()
        response = best_response_under_model(profile, profile.players()[0], game, model)
        assert response.exact is False


class TestEquilibriumUnderModel:
    def test_star_stable_under_every_model(self):
        profile = StrategyProfile.from_owned_graph(owned_star(7))
        game = MaxNCG(alpha=2.0)
        models = [
            KNeighborhoodModel(k=FULL_KNOWLEDGE),
            TracerouteModel(),
            UnionOfBallsModel(radius=2),
        ]
        for model in models:
            assert is_equilibrium_under_model(profile, game, model, solver="branch_and_bound")
            assert improving_players_under_model(profile, game, model, solver="branch_and_bound") == []

    def test_cycle_lemma_3_1_under_k_model(self):
        # Lemma 3.1: the cycle is an LKE of MaxNCG when alpha >= k - 1.
        profile = StrategyProfile.from_owned_graph(owned_cycle(12))
        game = MaxNCG(alpha=3.0, k=3)
        assert is_equilibrium_under_model(
            profile, game, KNeighborhoodModel(k=3), solver="branch_and_bound"
        )

    def test_more_knowledge_can_destroy_stability(self):
        # The same cycle stops being stable once players see the whole ring:
        # with alpha = 1 < (n/2 - 1) buying a chord towards the antipode
        # halves the eccentricity.
        profile = StrategyProfile.from_owned_graph(owned_cycle(12))
        game_local = MaxNCG(alpha=1.0, k=1)
        game_full = MaxNCG(alpha=1.0, k=FULL_KNOWLEDGE)
        assert is_equilibrium_under_model(
            profile, game_local, KNeighborhoodModel(k=1), solver="branch_and_bound"
        )
        assert not is_equilibrium_under_model(
            profile, game_full, KNeighborhoodModel(k=FULL_KNOWLEDGE), solver="branch_and_bound"
        )

    def test_lke_reached_by_dynamics_is_stable_under_its_own_model(self):
        owned = random_owned_tree(12, seed=5)
        game = MaxNCG(alpha=2.0, k=2)
        result = best_response_dynamics(owned, game, solver="branch_and_bound")
        assert result.converged
        assert is_equilibrium(result.final_profile, game)
        assert is_equilibrium_under_model(
            result.final_profile, game, KNeighborhoodModel(k=2), solver="branch_and_bound"
        )


class TestViewSizeStatistics:
    def test_full_knowledge_statistics(self, cycle_profile):
        mean, minimum, frontier = view_size_statistics(
            cycle_profile, KNeighborhoodModel(k=FULL_KNOWLEDGE)
        )
        assert mean == 8
        assert minimum == 8
        assert frontier == 0

    def test_local_statistics(self, cycle_profile):
        mean, minimum, frontier = view_size_statistics(cycle_profile, KNeighborhoodModel(k=2))
        assert mean == 5
        assert minimum == 5
        assert frontier == 2

    def test_traceroute_statistics_on_tree(self, small_tree_profile):
        mean, minimum, frontier = view_size_statistics(small_tree_profile, TracerouteModel())
        assert mean == small_tree_profile.num_players()
        assert frontier == 0


class TestCompareViewModels:
    def test_comparison_structure(self, cycle_profile):
        game = MaxNCG(alpha=2.0, k=2)
        models = [KNeighborhoodModel(k=2), TracerouteModel(), UnionOfBallsModel(radius=1)]
        rows = compare_view_models(
            cycle_profile, game, models, check_stability=True, solver="branch_and_bound"
        )
        assert len(rows) == 3
        for row in rows:
            assert isinstance(row, ModelComparison)
            assert row.mean_view_size >= 1
            assert (row.improving_players == 0) == row.stable

    def test_skipping_stability_check(self, cycle_profile):
        game = MaxNCG(alpha=2.0, k=2)
        rows = compare_view_models(
            cycle_profile, game, [KNeighborhoodModel(k=2)], check_stability=False
        )
        assert rows[0].stable is None
        assert rows[0].improving_players is None

    def test_knowledge_ordering_between_models(self, small_tree_profile):
        game = MaxNCG(alpha=2.0, k=2)
        rows = compare_view_models(
            small_tree_profile,
            game,
            [KNeighborhoodModel(k=2), TracerouteModel()],
            check_stability=False,
        )
        k_row, trace_row = rows
        assert trace_row.mean_view_size >= k_row.mean_view_size
