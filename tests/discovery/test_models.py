"""Tests for the query-based view models (k-neighbourhood, traceroute, balls)."""

import math

import pytest

from repro.core.games import FULL_KNOWLEDGE
from repro.core.strategies import StrategyProfile
from repro.core.views import extract_view
from repro.discovery.models import (
    KNeighborhoodModel,
    TracerouteModel,
    UnionOfBallsModel,
    discovered_view,
)
from repro.graphs.generators.classic import owned_cycle, owned_star
from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
from repro.graphs.generators.trees import random_owned_tree
from repro.graphs.traversal import bfs_distances


class TestKNeighborhoodModel:
    def test_matches_extract_view(self, cycle_profile):
        model = KNeighborhoodModel(k=2)
        for player in cycle_profile:
            via_model = model.observe(cycle_profile, player)
            direct = extract_view(cycle_profile, player, 2)
            assert via_model.nodes == direct.nodes
            assert via_model.frontier == direct.frontier
            assert via_model.distances == direct.distances

    def test_full_knowledge(self, cycle_profile):
        model = KNeighborhoodModel(k=FULL_KNOWLEDGE)
        view = model.observe(cycle_profile, 0)
        assert view.size == cycle_profile.num_players()
        assert view.frontier == set()

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            KNeighborhoodModel(k=0)
        with pytest.raises(ValueError):
            KNeighborhoodModel(k=2.5)

    def test_label(self):
        assert "k=3" in KNeighborhoodModel(k=3).label()
        assert "inf" in KNeighborhoodModel(k=FULL_KNOWLEDGE).label()


class TestTracerouteModel:
    def test_all_targets_reveals_all_nodes(self, cycle_profile):
        model = TracerouteModel()
        view = model.observe(cycle_profile, 0)
        assert view.nodes == set(cycle_profile.players())

    def test_distances_are_exact(self, small_tree_profile):
        model = TracerouteModel()
        graph = small_tree_profile.graph()
        for player in small_tree_profile:
            view = model.observe(small_tree_profile, player)
            true = bfs_distances(graph, player)
            for node, dist in view.distances.items():
                assert dist == true[node]

    def test_tree_traceroute_reveals_whole_tree(self, small_tree_profile):
        # In a tree every edge lies on some shortest path from any root, so
        # the traceroute union is the whole graph and nothing is uncertain
        # except... nothing: every known node has its full degree visible.
        model = TracerouteModel()
        graph = small_tree_profile.graph()
        for player in small_tree_profile:
            view = model.observe(small_tree_profile, player)
            assert view.subgraph.number_of_edges() == graph.number_of_edges()
            assert view.frontier == set()

    def test_cycle_traceroute_misses_one_edge(self, cycle_profile):
        # From any node of an even cycle, the single "antipodal" edge joining
        # the two arms lies on no shortest path, so exactly one edge stays
        # unknown and its endpoints form the frontier.
        model = TracerouteModel()
        view = model.observe(cycle_profile, 0)
        graph = cycle_profile.graph()
        assert view.subgraph.number_of_edges() == graph.number_of_edges() - 1
        assert len(view.frontier) == 2

    def test_limited_targets(self, cycle_profile):
        model = TracerouteModel(num_targets=2)
        view = model.observe(cycle_profile, 0)
        # Two nearest targets are the two neighbours.
        assert view.distances[1] == 1
        assert view.distances[7] == 1
        assert view.size <= 4

    def test_zero_targets_still_knows_own_edges(self, cycle_profile):
        model = TracerouteModel(num_targets=0)
        view = model.observe(cycle_profile, 0)
        assert view.nodes == {0, 1, 7}

    def test_negative_targets_raise(self):
        with pytest.raises(ValueError):
            TracerouteModel(num_targets=-1)

    def test_missing_player_raises(self, cycle_profile):
        with pytest.raises(KeyError):
            TracerouteModel().observe(cycle_profile, 99)

    def test_buyers_restricted_to_known_nodes(self):
        profile = StrategyProfile.from_owned_graph(owned_star(6, center_owns=False))
        view = TracerouteModel().observe(profile, 0)
        # Every leaf bought its edge towards the centre, and all leaves are
        # discovered by probing them.
        assert view.buyers == set(range(1, 6))

    def test_label(self):
        assert "all" in TracerouteModel().label()
        assert "3" in TracerouteModel(num_targets=3).label()


class TestUnionOfBallsModel:
    def test_radius_one_with_neighbors_sees_two_hops(self, cycle_profile):
        # Balls of radius 1 around me and my neighbours = my 2-neighbourhood.
        model = UnionOfBallsModel(radius=1, include_neighbors=True)
        view = model.observe(cycle_profile, 0)
        k2 = extract_view(cycle_profile, 0, 2)
        assert view.nodes == k2.nodes

    def test_without_neighbors_is_one_ball(self, cycle_profile):
        model = UnionOfBallsModel(radius=1, include_neighbors=False)
        view = model.observe(cycle_profile, 0)
        assert view.nodes == {0, 1, 7}

    def test_extra_landmarks_extend_knowledge(self, cycle_profile):
        base = UnionOfBallsModel(radius=1, include_neighbors=False)
        extended = UnionOfBallsModel(radius=1, include_neighbors=False, extra_landmarks=[4])
        assert extended.observe(cycle_profile, 0).size > base.observe(cycle_profile, 0).size

    def test_unknown_landmarks_ignored(self, cycle_profile):
        model = UnionOfBallsModel(radius=1, include_neighbors=False, extra_landmarks=[999])
        view = model.observe(cycle_profile, 0)
        assert view.nodes == {0, 1, 7}

    def test_frontier_contains_uncertain_nodes(self, cycle_profile):
        model = UnionOfBallsModel(radius=1, include_neighbors=False)
        view = model.observe(cycle_profile, 0)
        # Nodes 1 and 7 have a further neighbour outside the view.
        assert view.frontier == {1, 7}

    def test_full_coverage_has_empty_frontier(self):
        profile = StrategyProfile.from_owned_graph(owned_star(6))
        model = UnionOfBallsModel(radius=2, include_neighbors=True)
        view = model.observe(profile, 1)
        assert view.size == 6
        assert view.frontier == set()

    def test_invalid_radius_raises(self):
        with pytest.raises(ValueError):
            UnionOfBallsModel(radius=0)

    def test_missing_player_raises(self, cycle_profile):
        with pytest.raises(KeyError):
            UnionOfBallsModel(radius=1).observe(cycle_profile, 42)

    def test_label_mentions_radius(self):
        assert "radius=2" in UnionOfBallsModel(radius=2).label()


class TestDiscoveredViewHelper:
    def test_dispatches_to_model(self, cycle_profile):
        model = KNeighborhoodModel(k=2)
        via_helper = discovered_view(cycle_profile, 0, model)
        via_model = model.observe(cycle_profile, 0)
        assert via_helper.nodes == via_model.nodes

    @pytest.mark.parametrize("seed", [0, 1])
    def test_models_ordered_by_knowledge_on_random_graphs(self, seed):
        owned = owned_connected_gnp_graph(20, 0.15, seed=seed)
        profile = StrategyProfile.from_owned_graph(owned)
        k2 = KNeighborhoodModel(k=2)
        balls = UnionOfBallsModel(radius=2, include_neighbors=True)
        trace = TracerouteModel()
        for player in profile:
            size_k2 = k2.observe(profile, player).size
            size_balls = balls.observe(profile, player).size
            size_trace = trace.observe(profile, player).size
            # Balls of radius 2 around me + neighbours cover at least my
            # radius-2 ball; traceroute to everyone discovers every node.
            assert size_balls >= size_k2
            assert size_trace == profile.num_players()
