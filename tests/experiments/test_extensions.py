"""Tests for the extension studies (families, SumNCG, move sets, views, beliefs)."""

import math

import pytest

from repro.experiments.config import FULL_KNOWLEDGE_K, SweepSettings
from repro.experiments.extensions import (
    EXTENSION_FAMILIES,
    AnatomyStudyConfig,
    BeliefStudyConfig,
    FamilyStudyConfig,
    MoveSetStudyConfig,
    SumDynamicsConfig,
    ViewModelStudyConfig,
    build_extension_instance,
    generate_anatomy_study,
    generate_belief_study,
    generate_family_study,
    generate_move_set_study,
    generate_sum_dynamics,
    generate_view_model_study,
)
from repro.graphs.traversal import is_connected


class TestExtensionInstances:
    @pytest.mark.parametrize("family", sorted(EXTENSION_FAMILIES))
    def test_every_family_builds_connected_owned_graphs(self, family):
        owned = build_extension_instance(family, 20, seed=0)
        owned.validate()
        assert is_connected(owned.graph)
        # Sizes may be rounded to satisfy structural constraints but must be
        # in the same ballpark as the request.
        assert 10 <= owned.graph.number_of_nodes() <= 30

    @pytest.mark.parametrize("family", sorted(EXTENSION_FAMILIES))
    def test_seed_reproducibility(self, family):
        a = build_extension_instance(family, 16, seed=3)
        b = build_extension_instance(family, 16, seed=3)
        assert {frozenset(e) for e in a.graph.edges()} == {
            frozenset(e) for e in b.graph.edges()
        }

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError):
            build_extension_instance("hyperbolic", 20, seed=0)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            build_extension_instance("tree", 3, seed=0)


class TestFamilyStudy:
    def test_smoke_rows_structure(self):
        rows = generate_family_study(FamilyStudyConfig.smoke())
        cfg = FamilyStudyConfig.smoke()
        assert len(rows) == len(cfg.families) * len(cfg.alphas) * len(cfg.ks)
        for row in rows:
            assert row["family"] in cfg.families
            assert row["num_runs"] == cfg.settings.num_seeds
            assert 0.0 <= row["converged_fraction"] <= 1.0
            assert row["quality_mean"] >= 1.0 - 1e-9
            assert row["max_bought_edges_mean"] <= row["max_degree_mean"] + 1e-9

    def test_full_knowledge_views_cover_everything(self):
        rows = generate_family_study(FamilyStudyConfig.smoke())
        for row in rows:
            if row["k"] == FULL_KNOWLEDGE_K:
                # Mean view size at full knowledge equals the player count,
                # which the builders keep within [n-4, n+4] of the request.
                assert row["mean_view_size_mean"] >= 14


class TestSumDynamicsStudy:
    def test_smoke_rows(self):
        cfg = SumDynamicsConfig.smoke()
        rows = generate_sum_dynamics(cfg)
        assert len(rows) == len(cfg.sizes) * len(cfg.alphas) * len(cfg.ks)
        for row in rows:
            assert row["quality_mean"] >= 1.0 - 1e-9
            assert 0.0 <= row["converged_fraction"] <= 1.0
            assert row["cycled_fraction"] <= 1.0

    def test_local_players_are_more_conservative(self):
        # The Proposition 2.2 rule freezes small-k SumNCG players, so the
        # local runs perform at most as many strategy changes as the
        # full-knowledge runs on the same instances.
        cfg = SumDynamicsConfig(
            sizes=(10,),
            alphas=(1.5,),
            ks=(2, FULL_KNOWLEDGE_K),
            settings=SweepSettings.smoke(),
        )
        rows = {row["k"]: row for row in generate_sum_dynamics(cfg)}
        assert rows[2]["total_changes_mean"] <= rows[FULL_KNOWLEDGE_K]["total_changes_mean"] + 1e-9


class TestMoveSetStudy:
    def test_smoke_rows(self):
        cfg = MoveSetStudyConfig.smoke()
        rows = generate_move_set_study(cfg)
        assert len(rows) == len(cfg.move_sets) * len(cfg.alphas) * len(cfg.ks)
        move_sets = {row["move_set"] for row in rows}
        assert move_sets == set(cfg.move_sets)
        for row in rows:
            assert row["quality_mean"] >= 1.0 - 1e-9

    def test_unknown_move_set_rejected(self):
        cfg = MoveSetStudyConfig(move_sets=("best_response", "teleport"), settings=SweepSettings.smoke())
        with pytest.raises(ValueError):
            generate_move_set_study(cfg)


class TestViewModelStudy:
    def test_smoke_rows(self):
        cfg = ViewModelStudyConfig.smoke()
        rows = generate_view_model_study(cfg)
        # Three models per (alpha, k) cell.
        assert len(rows) == 3 * len(cfg.alphas) * len(cfg.ks)
        for row in rows:
            assert 0.0 <= row["stable_fraction"] <= 1.0
            assert row["mean_view_size_mean"] >= 1.0

    def test_k_model_baseline_is_stable(self):
        # The stable networks were produced by best-response dynamics under
        # the k-neighbourhood model, so under that same model every run must
        # still be stable.
        rows = generate_view_model_study(ViewModelStudyConfig.smoke())
        k_rows = [row for row in rows if row["model"].startswith("k-neighborhood")]
        assert k_rows
        for row in k_rows:
            assert row["stable_fraction"] == 1.0

    def test_traceroute_reveals_whole_network(self):
        rows = generate_view_model_study(ViewModelStudyConfig.smoke())
        trace_rows = [row for row in rows if row["model"].startswith("traceroute")]
        assert trace_rows
        for row in trace_rows:
            assert row["mean_view_size_mean"] == pytest.approx(row["n"], abs=1e-9)


class TestBeliefStudy:
    def test_smoke_rows(self):
        cfg = BeliefStudyConfig.smoke()
        rows = generate_belief_study(cfg)
        assert len(rows) == len(cfg.beliefs) * len(cfg.usages) * len(cfg.alphas) * len(cfg.ks)
        for row in rows:
            assert 0.0 <= row["survives_fraction"] <= 1.0

    def test_empty_world_max_equilibria_always_survive(self):
        rows = generate_belief_study(BeliefStudyConfig.smoke())
        sanity = [
            row for row in rows if row["belief"] == "empty-world" and row["usage"] == "max"
        ]
        assert sanity
        for row in sanity:
            assert row["survives_fraction"] == 1.0

    def test_unknown_belief_rejected(self):
        cfg = BeliefStudyConfig(beliefs=("empty-world", "oracle"), settings=SweepSettings.smoke())
        with pytest.raises(ValueError):
            generate_belief_study(cfg)


class TestAnatomyStudy:
    def test_smoke_rows(self):
        cfg = AnatomyStudyConfig.smoke()
        rows = generate_anatomy_study(cfg)
        assert len(rows) == len(cfg.alphas) * len(cfg.ks)
        for row in rows:
            assert row["num_runs"] == cfg.settings.num_seeds
            assert 0.0 <= row["bridge_fraction_mean"] <= 1.0
            assert 0.0 <= row["degree_gini_mean"] <= 1.0
            assert 0.0 <= row["building_cost_share_mean"] <= 1.0
            assert row["quality_mean"] >= 1.0 - 1e-9

    def test_full_knowledge_is_more_hub_concentrated_than_k2(self):
        # On trees the full-knowledge equilibria are hubbier than the k = 2
        # equilibria (which barely move away from the starting tree).
        rows = {row["k"]: row for row in generate_anatomy_study(AnatomyStudyConfig.smoke())}
        assert rows[FULL_KNOWLEDGE_K]["degree_gini_mean"] >= rows[2]["degree_gini_mean"] - 1e-9


class TestCliIntegration:
    def test_new_commands_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        for command in ["sum-dynamics", "families", "move-sets", "view-models", "beliefs", "anatomy"]:
            args = parser.parse_args([command, "--smoke", "--quiet"])
            assert args.command == command

    def test_beliefs_command_end_to_end(self, capsys, tmp_path):
        from repro.cli import main

        json_path = tmp_path / "beliefs.json"
        code = main(["beliefs", "--smoke", "--quiet", "--json", str(json_path)])
        assert code == 0
        assert json_path.exists()

    def test_view_models_command_end_to_end(self, capsys):
        from repro.cli import main

        assert main(["view-models", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "traceroute" in out
