"""Smoke-grid tests of every table/figure harness (shape and sanity checks)."""

import pytest

from repro.experiments.ablations import (
    AblationConfig,
    ordering_ablation,
    ownership_ablation,
    solver_ablation,
)
from repro.experiments.config import FULL_KNOWLEDGE_K
from repro.experiments.figures import (
    ConvergenceConfig,
    Figure3Config,
    Figure4Config,
    Figure5Config,
    Figure6Config,
    Figure7Config,
    Figure8Config,
    Figure9Config,
    Figure10Config,
    generate_convergence_summary,
    generate_figure3,
    generate_figure4,
    generate_figure5,
    generate_figure6,
    generate_figure7,
    generate_figure8,
    generate_figure9,
    generate_figure10,
)
from repro.experiments.io import rows_to_columns
from repro.experiments.tables import (
    Table1Config,
    Table2Config,
    generate_table1,
    generate_table2,
)


class TestTables:
    def test_table1_smoke(self):
        rows = generate_table1(Table1Config.smoke())
        assert [row["n"] for row in rows] == [20, 30, 50]
        for row in rows:
            assert row["diameter_mean"] > 0
            assert row["max_degree_mean"] >= 2
            assert row["max_bought_edges_mean"] <= row["max_degree_mean"]

    def test_table1_diameter_grows_with_n(self):
        rows = generate_table1(Table1Config(sizes=(20, 100), num_seeds=5))
        assert rows[0]["diameter_mean"] < rows[1]["diameter_mean"]

    def test_table2_smoke(self):
        rows = generate_table2(Table2Config.smoke())
        assert len(rows) == 2
        for row in rows:
            assert row["edges_mean"] >= row["n"] - 1
            assert row["diameter_mean"] >= 1
            assert row["max_bought_edges_mean"] <= row["max_degree_mean"]

    def test_table2_density_scales_with_p(self):
        rows = generate_table2(
            Table2Config(parameters=((60, 0.08), (60, 0.2)), num_seeds=3)
        )
        assert rows[0]["edges_mean"] < rows[1]["edges_mean"]


class TestRegionFigures:
    def test_figure3_rows(self):
        rows = generate_figure3(Figure3Config.smoke())
        cfg = Figure3Config.smoke()
        assert len(rows) == cfg.alpha_points * cfg.k_points
        columns = rows_to_columns(rows)
        assert all(value >= 1.0 for value in columns["lower_bound"])
        assert all(value > 0 for value in columns["upper_bound"])
        assert "NE≡LKE" in set(columns["region"])

    def test_figure3_upper_bounds_dominate_lower_bounds(self):
        for row in generate_figure3(Figure3Config.smoke()):
            assert row["upper_bound"] >= row["lower_bound"] * 0.999

    def test_figure4_rows(self):
        rows = generate_figure4(Figure4Config.smoke())
        regions = {row["region"] for row in rows}
        assert "NE≡LKE" in regions
        # The Ω(n/k) region must be populated somewhere on the grid.
        assert any("n/k" in region for region in regions)
        assert all(row["upper_bound"] is None for row in rows)


class TestSimulationFigures:
    """Each harness is exercised on its smoke grid; assertions target the
    qualitative claims the paper makes about the corresponding figure."""

    def test_figure5_view_size_monotone_in_k(self):
        rows = generate_figure5(Figure5Config.smoke())
        columns = rows_to_columns(rows)
        assert set(columns["k"]) == {2, 3, FULL_KNOWLEDGE_K}
        by_cell = {(row["k"], row["alpha"]): row for row in rows}
        for alpha in {row["alpha"] for row in rows}:
            full = by_cell[(FULL_KNOWLEDGE_K, alpha)]
            local = by_cell[(2, alpha)]
            assert full["average_view_size_mean"] >= local["average_view_size_mean"]
            # Under full knowledge every player sees everyone.
            assert full["minimum_view_size_mean"] == pytest.approx(full["n"])

    def test_figure6_quality_reasonable(self):
        rows = generate_figure6(Figure6Config.smoke())
        for row in rows:
            assert row["quality_mean"] >= 0.99
            assert row["quality_mean"] < row["n"]

    def test_figure7_contains_theory_trend(self):
        rows = generate_figure7(Figure7Config.smoke())
        families = {row["family"] for row in rows}
        assert families == {"tree", "gnp"}
        for row in rows:
            assert row["alpha"] == 2.0
            assert row["theory_trend"] > 0

    def test_figure8_degree_dominates_bought_edges(self):
        rows = generate_figure8(Figure8Config.smoke())
        for row in rows:
            assert row["max_degree_mean"] >= row["max_bought_edges_mean"]

    def test_figure9_unfairness_at_least_one(self):
        rows = generate_figure9(Figure9Config.smoke())
        for row in rows:
            assert row["unfairness_mean"] >= 1.0

    def test_figure10_round_counts(self):
        rows = generate_figure10(Figure10Config.smoke())
        panels = {row["panel"] for row in rows}
        assert panels == {"alpha", "n"}
        for row in rows:
            assert 0 <= row["rounds_mean"] <= 60

    def test_convergence_summary(self):
        rows = generate_convergence_summary(ConvergenceConfig.smoke())
        stats = {row["statistic"]: row["value"] for row in rows}
        assert stats["total_runs"] > 0
        assert 0.0 <= stats["fraction_cycled"] <= 0.2
        assert stats["fraction_converged"] >= 0.8
        assert stats["fraction_converged_within_7_rounds"] >= 0.8


class TestAblations:
    def test_solver_ablation_exact_never_worse(self):
        rows = solver_ablation(AblationConfig.smoke())
        by_variant = {}
        for row in rows:
            by_variant.setdefault(row["variant"], {})[(row["alpha"], row["k"])] = row
        assert set(by_variant) == {"milp", "branch_and_bound", "greedy"}
        for cell, milp_row in by_variant["milp"].items():
            greedy_row = by_variant["greedy"][cell]
            # Exact best responses should not produce *worse* average quality
            # by a large margin (allow noise from different trajectories).
            assert milp_row["quality_mean"] <= greedy_row["quality_mean"] * 1.5

    def test_ordering_ablation_rows(self):
        rows = ordering_ablation(AblationConfig.smoke())
        assert {row["variant"] for row in rows} == {"fixed", "shuffled"}

    def test_ownership_ablation_rows(self):
        rows = ownership_ablation(AblationConfig.smoke())
        assert {row["variant"] for row in rows} == {"fair_coin", "smaller_endpoint"}
        for row in rows:
            assert row["quality_n"] > 0
