"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ["table1", "table2", "fig3", "fig5", "fig10", "convergence"]:
            args = parser.parse_args([command, "--smoke"])
            assert args.command == command
            assert args.smoke

    def test_certify_arguments(self):
        args = build_parser().parse_args(
            ["certify", "--construction", "cycle", "--alpha", "3", "--k", "2", "--n", "12"]
        )
        assert args.construction == "cycle"
        assert args.alpha == 3.0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_table1_smoke_to_files(self, tmp_path, capsys):
        csv_path = tmp_path / "t1.csv"
        json_path = tmp_path / "t1.json"
        code = main(
            ["table1", "--smoke", "--csv", str(csv_path), "--json", str(json_path)]
        )
        assert code == 0
        assert csv_path.exists() and json_path.exists()
        assert len(json.loads(json_path.read_text())) == 3
        assert "diameter_mean" in capsys.readouterr().out

    def test_quiet_suppresses_output(self, capsys):
        code = main(["fig3", "--smoke", "--quiet"])
        assert code == 0
        assert capsys.readouterr().out == ""

    def test_fig4_smoke(self, capsys):
        assert main(["fig4", "--smoke"]) == 0
        assert "region" in capsys.readouterr().out

    def test_certify_cycle_exit_code(self, capsys):
        code = main(
            [
                "certify",
                "--construction",
                "cycle",
                "--alpha",
                "3",
                "--k",
                "3",
                "--n",
                "14",
                "--quiet",
            ]
        )
        assert code == 0

    def test_certify_failure_exit_code(self):
        # A cycle with tiny α and large view is not an equilibrium: exit 1.
        code = main(
            [
                "certify",
                "--construction",
                "cycle",
                "--alpha",
                "0.5",
                "--k",
                "6",
                "--n",
                "30",
                "--quiet",
            ]
        )
        assert code == 1

    def test_ablation_command(self, capsys):
        assert main(["ablation", "--study", "ownership", "--smoke", "--quiet"]) == 0


class TestSweepCommand:
    def test_parser_accepts_sweep(self):
        args = build_parser().parse_args(
            ["sweep", "--n", "16", "--alphas", "0.5", "--ks", "2", "--workers", "2"]
        )
        assert args.command == "sweep"
        assert args.n == 16
        assert args.workers == 2
        assert args.journal is None and not args.resume

    def test_resume_requires_journal(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--smoke", "--resume", "--quiet"])

    def test_gnp_requires_p(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--families", "gnp", "--quiet"])

    def test_smoke_honors_explicit_grid_flags(self, tmp_path):
        # --smoke shrinks defaults only; an explicit flag stays in force.
        out = tmp_path / "rows.json"
        assert (
            main(
                [
                    "sweep",
                    "--smoke",
                    "--n",
                    "10",
                    "--alphas",
                    "0.5",
                    "--ks",
                    "2",
                    "--quiet",
                    "--json",
                    str(out),
                ]
            )
            == 0
        )
        rows = json.loads(out.read_text())
        assert len(rows) == 2  # 1 alpha x 1 k x 2 smoke seeds
        assert all(row["n"] == 10 for row in rows)

    def test_sweep_smoke_journal_and_resume(self, tmp_path, capsys):
        journal = tmp_path / "store"
        base = ["sweep", "--smoke", "--quiet", "--workers", "1"]
        out_full = tmp_path / "full.json"
        assert main(base + ["--json", str(out_full)]) == 0
        out_first = tmp_path / "first.json"
        assert main(base + ["--journal", str(journal), "--json", str(out_first)]) == 0
        # The journal store holds the final rows next to the journal.
        from repro.experiments.store import ExperimentStore

        store = ExperimentStore(journal)
        assert store.describe("sweep")["num_rows"] == len(json.loads(out_full.read_text()))
        assert (journal / "sweep" / "journal.jsonl").exists()
        # Drop half the journal (a simulated kill) and resume.
        log = journal / "sweep" / "journal.jsonl"
        lines = log.read_text().splitlines(True)
        log.write_text("".join(lines[: len(lines) // 2]))
        out_resumed = tmp_path / "resumed.json"
        assert (
            main(base + ["--journal", str(journal), "--resume", "--json", str(out_resumed)])
            == 0
        )
        assert json.loads(out_resumed.read_text()) == json.loads(out_full.read_text())
