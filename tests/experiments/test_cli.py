"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ["table1", "table2", "fig3", "fig5", "fig10", "convergence"]:
            args = parser.parse_args([command, "--smoke"])
            assert args.command == command
            assert args.smoke

    def test_certify_arguments(self):
        args = build_parser().parse_args(
            ["certify", "--construction", "cycle", "--alpha", "3", "--k", "2", "--n", "12"]
        )
        assert args.construction == "cycle"
        assert args.alpha == 3.0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_table1_smoke_to_files(self, tmp_path, capsys):
        csv_path = tmp_path / "t1.csv"
        json_path = tmp_path / "t1.json"
        code = main(
            ["table1", "--smoke", "--csv", str(csv_path), "--json", str(json_path)]
        )
        assert code == 0
        assert csv_path.exists() and json_path.exists()
        assert len(json.loads(json_path.read_text())) == 3
        assert "diameter_mean" in capsys.readouterr().out

    def test_quiet_suppresses_output(self, capsys):
        code = main(["fig3", "--smoke", "--quiet"])
        assert code == 0
        assert capsys.readouterr().out == ""

    def test_fig4_smoke(self, capsys):
        assert main(["fig4", "--smoke"]) == 0
        assert "region" in capsys.readouterr().out

    def test_certify_cycle_exit_code(self, capsys):
        code = main(
            [
                "certify",
                "--construction",
                "cycle",
                "--alpha",
                "3",
                "--k",
                "3",
                "--n",
                "14",
                "--quiet",
            ]
        )
        assert code == 0

    def test_certify_failure_exit_code(self):
        # A cycle with tiny α and large view is not an equilibrium: exit 1.
        code = main(
            [
                "certify",
                "--construction",
                "cycle",
                "--alpha",
                "0.5",
                "--k",
                "6",
                "--n",
                "30",
                "--quiet",
            ]
        )
        assert code == 1

    def test_ablation_command(self, capsys):
        assert main(["ablation", "--study", "ownership", "--smoke", "--quiet"]) == 0
