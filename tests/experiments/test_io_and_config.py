"""Tests for result serialisation and the parameter grids."""

import csv
import json
import math

import pytest

from repro.experiments.config import (
    FULL_KNOWLEDGE_K,
    PAPER_ALPHAS,
    PAPER_GNP_PARAMETERS,
    PAPER_KS,
    PAPER_NUM_SEEDS,
    PAPER_TREE_SIZES,
    SweepSettings,
)
from repro.experiments.io import format_table, rows_to_columns, write_csv, write_json


class TestPaperGrids:
    def test_alpha_grid_matches_paper(self):
        assert PAPER_ALPHAS == (
            0.025, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1, 1.5, 2, 3, 5, 7, 10,
        )

    def test_k_grid_matches_paper(self):
        assert PAPER_KS == (2, 3, 4, 5, 6, 7, 10, 15, 20, 25, 30, 1000)
        assert FULL_KNOWLEDGE_K == 1000

    def test_tree_sizes_match_table1(self):
        assert PAPER_TREE_SIZES == (20, 30, 50, 70, 100, 200)

    def test_gnp_parameters_match_table2(self):
        assert (100, 0.060) in PAPER_GNP_PARAMETERS
        assert (200, 0.035) in PAPER_GNP_PARAMETERS
        assert len(PAPER_GNP_PARAMETERS) == 6

    def test_paper_seed_count(self):
        assert PAPER_NUM_SEEDS == 20

    def test_settings_factories(self):
        paper = SweepSettings.paper(workers=4)
        smoke = SweepSettings.smoke()
        assert paper.num_seeds == 20 and paper.workers == 4
        assert smoke.num_seeds < paper.num_seeds
        assert smoke.solver == "greedy"

    def test_full_sweep_size_matches_paper_magnitude(self):
        # "Overall, we simulated about 36 000 different dynamics": the grid
        # sizes reproduce that order of magnitude
        # (15 α) x (12 k) x (6 tree sizes + 6 gnp settings) x 20 seeds.
        total = len(PAPER_ALPHAS) * len(PAPER_KS) * (
            len(PAPER_TREE_SIZES) + len(PAPER_GNP_PARAMETERS)
        ) * PAPER_NUM_SEEDS
        assert 30_000 <= total <= 50_000


class TestIo:
    ROWS = [
        {"alpha": 1.0, "quality": 2.5, "label": "a"},
        {"alpha": 2.0, "quality": math.inf, "label": "b", "extra": 7},
    ]

    def test_write_csv(self, tmp_path):
        path = write_csv(self.ROWS, tmp_path / "out.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["alpha"] == "1.0"
        assert rows[1]["quality"] == "inf"
        assert rows[0]["extra"] == ""

    def test_write_csv_empty(self, tmp_path):
        path = write_csv([], tmp_path / "empty.csv")
        assert path.read_text() == ""

    def test_write_json(self, tmp_path):
        path = write_json(self.ROWS, tmp_path / "out.json")
        data = json.loads(path.read_text())
        assert data[0]["label"] == "a"
        assert data[1]["quality"] == "inf"

    def test_rows_to_columns(self):
        columns = rows_to_columns(self.ROWS)
        assert columns["alpha"] == [1.0, 2.0]
        assert columns["extra"] == [7]

    def test_format_table_alignment(self):
        text = format_table(self.ROWS, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "alpha" in lines[1]
        assert len(lines) == 2 + 1 + len(self.ROWS)

    def test_format_table_empty(self):
        assert "(no data)" in format_table([], title="none")

    def test_format_table_handles_none(self):
        text = format_table([{"x": None}])
        assert "-" in text

    def test_nested_directories_created(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "rows.csv"
        write_csv(self.ROWS, target)
        assert target.exists()
