"""Tests for the on-disk experiment store and the CSV/JSON readers."""

import math

import pytest

from repro.core.dynamics import best_response_dynamics
from repro.core.equilibria import is_equilibrium
from repro.core.games import MaxNCG
from repro.experiments.io import write_csv, write_json
from repro.experiments.store import ExperimentStore, read_csv_rows, read_json_rows
from repro.graphs.generators.trees import random_owned_tree


SAMPLE_ROWS = [
    {"alpha": 2.0, "k": 2, "quality_mean": 1.5, "converged": True, "label": "tree"},
    {"alpha": 2.0, "k": 1000, "quality_mean": 1.1, "converged": False, "label": "tree"},
    {"alpha": 0.5, "k": 2, "quality_mean": math.inf, "converged": True, "label": "gnp"},
]


class TestRowReaders:
    def test_csv_round_trip(self, tmp_path):
        path = tmp_path / "rows.csv"
        write_csv(SAMPLE_ROWS, path)
        restored = read_csv_rows(path)
        assert len(restored) == 3
        assert restored[0]["alpha"] == 2.0
        assert restored[0]["k"] == 2
        assert restored[0]["converged"] is True
        assert restored[1]["converged"] is False
        assert math.isinf(restored[2]["quality_mean"])
        assert restored[2]["label"] == "gnp"

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "rows.json"
        write_json(SAMPLE_ROWS, path)
        restored = read_json_rows(path)
        assert restored[0]["quality_mean"] == 1.5
        assert math.isinf(restored[2]["quality_mean"])

    def test_empty_csv(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_csv([], path)
        assert read_csv_rows(path) == []

    def test_non_array_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "an array"}')
        with pytest.raises(ValueError):
            read_json_rows(path)


class TestExperimentStore:
    def test_save_and_load_rows(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.save_rows("fig5-smoke", SAMPLE_ROWS, config={"n": 25, "smoke": True})
        assert store.list_experiments() == ["fig5-smoke"]
        rows = store.load_rows("fig5-smoke")
        assert len(rows) == 3
        assert rows[1]["k"] == 1000
        assert store.load_config("fig5-smoke") == {"n": 25, "smoke": True}

    def test_describe(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.save_rows("families", SAMPLE_ROWS)
        entry = store.describe("families")
        assert entry["num_rows"] == 3
        assert "quality_mean" in entry["columns"]

    def test_missing_experiment_raises(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        with pytest.raises(KeyError):
            store.load_rows("never-saved")
        with pytest.raises(KeyError):
            store.describe("never-saved")
        with pytest.raises(KeyError):
            store.load_config("never-saved")

    def test_invalid_names_rejected(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        for bad in ("", "../escape", ".hidden"):
            with pytest.raises(ValueError):
                store.save_rows(bad, SAMPLE_ROWS)

    def test_overwrite_updates_index(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.save_rows("study", SAMPLE_ROWS)
        store.save_rows("study", SAMPLE_ROWS[:1])
        assert store.describe("study")["num_rows"] == 1
        assert len(store.load_rows("study")) == 1

    def test_multiple_experiments(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.save_rows("a", SAMPLE_ROWS[:1])
        store.save_rows("b", SAMPLE_ROWS)
        assert store.list_experiments() == ["a", "b"]

    def test_checkpoint_round_trip(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        owned = random_owned_tree(10, seed=2)
        game = MaxNCG(alpha=2.0, k=2)
        result = best_response_dynamics(owned, game, solver="branch_and_bound")
        store.save_rows("anatomy", SAMPLE_ROWS)
        store.save_checkpoint("anatomy", "seed2", result)

        assert store.list_checkpoints("anatomy") == ["seed2"]
        assert store.describe("anatomy")["has_checkpoints"] is True
        profile, loaded_game, document = store.load_checkpoint("anatomy", "seed2")
        assert loaded_game == game
        assert profile == result.final_profile
        assert is_equilibrium(profile, loaded_game)
        assert document["converged"] == result.converged

    def test_missing_checkpoint_raises(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.save_rows("x", SAMPLE_ROWS)
        with pytest.raises(KeyError):
            store.load_checkpoint("x", "nope")
        assert store.list_checkpoints("x") == []

    def test_checkpoint_document_round_trip(self, tmp_path):
        from repro.core.serialization import dynamics_result_to_dict

        store = ExperimentStore(tmp_path / "store")
        owned = random_owned_tree(10, seed=2)
        game = MaxNCG(alpha=2.0, k=2)
        result = best_response_dynamics(owned, game, solver="branch_and_bound")
        document = dynamics_result_to_dict(result)
        store.save_rows("svc", SAMPLE_ROWS)
        store.save_checkpoint_document("svc", "doc", document)
        profile, loaded_game, loaded = store.load_checkpoint("svc", "doc")
        assert loaded_game == game
        assert profile == result.final_profile
        assert loaded == document
        with pytest.raises(ValueError):
            store.save_checkpoint_document("svc", "bad", {"format": "nope"})


class TestSweepJournal:
    """The service journal layered inside a store's experiment directory."""

    def _journal(self, tmp_path):
        from repro.service.journal import SweepJournal

        store = ExperimentStore(tmp_path / "store")
        return store, SweepJournal(store.experiment_dir("sweep"))

    def test_round_trip(self, tmp_path):
        _, journal = self._journal(tmp_path)
        assert journal.open("hash-a", 3) == {}
        journal.append("s1", 0, "sum", {"quality": 1.5, "bad": "inf"})
        journal.append("s2", 1, "sum", {"quality": 2.0})
        journal.close()
        resumed = journal.open("hash-a", 3, resume=True)
        journal.close()
        assert resumed == {
            "s1": {"quality": 1.5, "bad": "inf"},
            "s2": {"quality": 2.0},
        }

    def test_dedupe_last_record_wins(self, tmp_path):
        _, journal = self._journal(tmp_path)
        journal.open("hash-a", 2)
        journal.append("s1", 0, "sum", {"v": 1})
        journal.append("s1", 0, "sum", {"v": 2})
        journal.close()
        assert journal.open("hash-a", 2, resume=True) == {"s1": {"v": 2}}
        journal.close()

    def test_torn_tail_is_dropped(self, tmp_path):
        _, journal = self._journal(tmp_path)
        journal.open("hash-a", 2)
        journal.append("s1", 0, "sum", {"v": 1})
        journal.close()
        with journal.log_path.open("a") as handle:
            handle.write('{"spec_hash": "s2", "index": 1, "kind": "su')
        assert journal.open("hash-a", 2, resume=True) == {"s1": {"v": 1}}
        journal.close()

    def test_append_after_torn_tail_stays_parseable(self, tmp_path):
        # A record appended by a resumed run must not merge into the torn
        # line a SIGKILL left behind, or it would be lost on the *next*
        # resume despite having been acknowledged and fsynced.
        _, journal = self._journal(tmp_path)
        journal.open("hash-a", 3)
        journal.append("s1", 0, "sum", {"v": 1})
        journal.close()
        with journal.log_path.open("a") as handle:
            handle.write('{"spec_hash": "torn"')  # no newline: mid-write kill
        assert journal.open("hash-a", 3, resume=True) == {"s1": {"v": 1}}
        journal.append("s2", 1, "sum", {"v": 2})
        journal.close()
        assert journal.open("hash-a", 3, resume=True) == {
            "s1": {"v": 1},
            "s2": {"v": 2},
        }
        journal.close()

    def test_torn_manifest_is_a_clear_error_on_resume(self, tmp_path):
        # A crash mid-manifest-write used to surface as a raw
        # JSONDecodeError from --resume; now the manifest is written
        # atomically, and a manifest damaged by other means is a clear
        # ValueError, not a traceback into the json module.
        import json

        import pytest

        _, journal = self._journal(tmp_path)
        journal.open("hash-a", 2)
        journal.append("s1", 0, "sum", {"v": 1})
        journal.close()
        journal.manifest_path.write_text('{"format": "repro-sweep-jour')
        with pytest.raises(ValueError, match="corrupt sweep manifest"):
            journal.open("hash-a", 2, resume=True)
        with pytest.raises(json.JSONDecodeError):
            json.loads(journal.manifest_path.read_text())  # truly torn

    def test_manifest_write_is_atomic(self, tmp_path):
        # The temp file must be gone and the manifest complete after open().
        _, journal = self._journal(tmp_path)
        journal.open("hash-a", 2)
        journal.close()
        assert not journal.manifest_path.with_name(
            journal.manifest_path.name + ".tmp"
        ).exists()
        import json

        manifest = json.loads(journal.manifest_path.read_text())
        assert manifest["sweep_hash"] == "hash-a"
        assert manifest["num_tasks"] == 2

    def test_resume_requires_matching_sweep(self, tmp_path):
        _, journal = self._journal(tmp_path)
        journal.open("hash-a", 2)
        journal.close()
        with pytest.raises(ValueError, match="different sweep"):
            journal.open("hash-b", 2, resume=True)

    def test_resume_without_journal_fails(self, tmp_path):
        _, journal = self._journal(tmp_path)
        with pytest.raises(ValueError, match="cannot resume"):
            journal.open("hash-a", 2, resume=True)

    def test_fresh_open_replaces_old_journal(self, tmp_path):
        _, journal = self._journal(tmp_path)
        journal.open("hash-a", 1)
        journal.append("s1", 0, "sum", {"v": 1})
        journal.close()
        assert journal.open("hash-b", 1) == {}
        journal.close()
        assert journal.open("hash-b", 1, resume=True) == {}
        journal.close()
