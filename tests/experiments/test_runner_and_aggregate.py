"""Tests for the sweep runner, aggregation and parallel execution plumbing."""

import math

import pytest

from repro.core.games import FULL_KNOWLEDGE
from repro.experiments.aggregate import aggregate_results, group_by
from repro.experiments.config import FULL_KNOWLEDGE_K, SweepSettings
from repro.experiments.runner import (
    RunSpec,
    build_instance,
    profile_run,
    run_cell,
    run_single,
    run_sweep,
    specs_for_cell,
)
from repro.graphs.properties import is_tree
from repro.graphs.traversal import is_connected


def tree_spec(**overrides) -> RunSpec:
    base = dict(family="tree", n=15, alpha=2.0, k=3, seed=0, solver="greedy")
    base.update(overrides)
    return RunSpec(**base)


class TestRunSpec:
    def test_game_mapping_max(self):
        game = tree_spec(k=3).game()
        assert game.is_max and game.k == 3

    def test_game_mapping_full_knowledge(self):
        game = tree_spec(k=FULL_KNOWLEDGE_K).game()
        assert game.k == FULL_KNOWLEDGE

    def test_game_mapping_sum(self):
        assert tree_spec(usage="sum").game().is_sum

    def test_game_invalid_usage(self):
        with pytest.raises(ValueError):
            tree_spec(usage="median").game()

    def test_specs_are_hashable_and_picklable(self):
        import pickle

        spec = tree_spec()
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, tree_spec()}) == 1


class TestBuildInstance:
    def test_tree_instance(self):
        owned = build_instance(tree_spec(n=20, seed=3))
        assert is_tree(owned.graph)
        assert owned.graph.number_of_nodes() == 20

    def test_gnp_instance(self):
        owned = build_instance(RunSpec(family="gnp", n=25, p=0.2, alpha=1.0, k=2, seed=1))
        assert is_connected(owned.graph)
        assert owned.graph.number_of_nodes() == 25

    def test_gnp_requires_p(self):
        with pytest.raises(ValueError):
            build_instance(RunSpec(family="gnp", n=25, p=None, alpha=1.0, k=2, seed=1))

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            build_instance(tree_spec(family="hypercube"))

    def test_ownership_variants(self):
        fair = build_instance(tree_spec(ownership="fair_coin"))
        deterministic = build_instance(tree_spec(ownership="smaller_endpoint"))
        assert fair.graph == deterministic.graph
        with pytest.raises(ValueError):
            build_instance(tree_spec(ownership="random_walk"))


class TestRunSingle:
    def test_produces_consistent_result(self):
        result = run_single(tree_spec(n=15, seed=2))
        assert result.spec.n == 15
        assert result.converged or result.cycled or result.rounds == result.spec.max_rounds
        assert result.final_metrics.num_players == 15
        assert result.initial_metrics.num_edges == 14

    def test_as_row_flattens(self):
        row = run_single(tree_spec(n=10, seed=1)).as_row()
        assert row["family"] == "tree"
        assert "final_quality" in row and "initial_diameter" in row
        assert row["k"] == 3

    def test_reproducible(self):
        a = run_single(tree_spec(n=12, seed=5))
        b = run_single(tree_spec(n=12, seed=5))
        assert a.final_metrics == b.final_metrics
        assert a.rounds == b.rounds

    def test_profile_run_returns_report(self):
        report = profile_run(tree_spec(n=10, seed=0))
        assert "cumulative" in report or "ncalls" in report


class TestSweep:
    def test_specs_for_cell(self):
        settings = SweepSettings(num_seeds=4, solver="greedy")
        specs = specs_for_cell("tree", 10, 1.0, 2, settings)
        assert len(specs) == 4
        assert {spec.seed for spec in specs} == {0, 1, 2, 3}

    def test_run_cell_serial(self):
        settings = SweepSettings(num_seeds=2, solver="greedy", workers=1)
        results = run_cell("tree", 12, 2.0, 2, settings)
        assert len(results) == 2
        assert all(r.spec.n == 12 for r in results)

    def test_run_sweep_parallel_workers(self):
        settings = SweepSettings(num_seeds=3, solver="greedy", workers=2)
        specs = specs_for_cell("tree", 10, 1.0, 2, settings)
        parallel = run_sweep(specs, settings)
        serial = run_sweep(specs, SweepSettings(num_seeds=3, solver="greedy", workers=1))
        assert [r.final_metrics for r in parallel] == [r.final_metrics for r in serial]


class TestAggregation:
    def _results(self):
        settings = SweepSettings(num_seeds=3, solver="greedy")
        specs = specs_for_cell("tree", 10, 1.0, 2, settings) + specs_for_cell(
            "tree", 10, 2.0, 2, settings
        )
        return run_sweep(specs, settings)

    def test_group_by(self):
        groups = group_by(self._results(), ("alpha",))
        assert set(groups) == {(1.0,), (2.0,)}
        assert all(len(bucket) == 3 for bucket in groups.values())

    def test_aggregate_rows(self):
        rows = aggregate_results(
            self._results(),
            keys=("alpha", "k"),
            metrics={"quality": lambda r: r.final_metrics.quality},
        )
        assert len(rows) == 2
        for row in rows:
            assert row["quality_n"] == 3
            assert row["quality_mean"] >= 1.0
            assert not math.isnan(row["quality_ci"])

    def test_aggregate_drops_non_finite(self):
        results = self._results()
        rows = aggregate_results(
            results,
            keys=("alpha",),
            metrics={"weird": lambda r: float("inf")},
        )
        assert all(row["weird_n"] == 0 for row in rows)
