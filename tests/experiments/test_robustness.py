"""Tests for the perturbation & recovery scenario suite (robustness extension)."""

import pytest

from repro.cli import build_parser, main
from repro.core.games import MaxNCG
from repro.engine.core import DynamicsEngine
from repro.experiments.config import SweepSettings
from repro.experiments.extensions import (
    DISCONNECTING_PERTURBATIONS,
    PERTURBATIONS,
    RobustnessStudyConfig,
    aggregate_robustness_rows,
    apply_perturbation,
    generate_robustness_study,
)
from repro.experiments.extensions.instances import build_extension_instance
from repro.experiments.store import ExperimentStore
from repro.graphs.traversal import is_connected

import random

GAME = MaxNCG(0.5, k=2)


def _converged_engine(family: str = "gnp", n: int = 16, seed: int = 0) -> DynamicsEngine:
    engine = DynamicsEngine(build_extension_instance(family, n, seed), GAME)
    result = engine.run()
    assert result.certified
    return engine


def _bought_edges(engine: DynamicsEngine) -> int:
    return sum(len(engine.state.strategy(p)) for p in engine.state.players())


class TestOperators:
    def test_registry_contents(self):
        assert set(PERTURBATIONS) == {
            "drop_random_edges",
            "hub_attack",
            "reset_player",
            "multi_reset",
            "add_shortcuts",
            "component_split",
            "isolation_attack",
        }
        assert DISCONNECTING_PERTURBATIONS == {"component_split", "isolation_attack"}
        assert DISCONNECTING_PERTURBATIONS < set(PERTURBATIONS)

    def test_unknown_operator_rejected(self):
        engine = _converged_engine()
        with pytest.raises(ValueError, match="unknown perturbation"):
            apply_perturbation(engine, "meteor_strike", random.Random(0))

    @pytest.mark.parametrize(
        "name", sorted(set(PERTURBATIONS) - DISCONNECTING_PERTURBATIONS)
    )
    def test_operator_preserves_connectivity_and_reports_truthfully(self, name):
        engine = _converged_engine()
        before = _bought_edges(engine)
        record = apply_perturbation(engine, name, random.Random(3), intensity=2)
        assert record.operator == name
        assert is_connected(engine.state.graph)
        assert not record.disconnected
        assert record.components == 1
        after = _bought_edges(engine)
        # The record's ledger must match the state's: drops remove bought
        # edges, additions add them, nothing else moves.
        assert after - before == record.edges_added - record.edges_dropped
        assert record.size == record.edges_dropped + record.edges_added
        if record.is_empty:
            assert not record.players

    @pytest.mark.parametrize("name", sorted(DISCONNECTING_PERTURBATIONS))
    def test_disconnecting_operators_never_raise_and_report_truthfully(self, name):
        # The old behaviour was an AssertionError out of apply_perturbation;
        # now a disconnection is a recorded outcome, never a raise — even on
        # a strict-model engine (the *sweep* decides what to do with it).
        engine = _converged_engine(family="tree", n=14, seed=1)
        before = _bought_edges(engine)
        record = apply_perturbation(engine, name, random.Random(3), intensity=1)
        assert record.operator == name
        assert record.edges_dropped >= 1
        assert record.disconnected
        assert record.components >= 2
        assert not is_connected(engine.state.graph)
        assert before - _bought_edges(engine) == record.edges_dropped

    def test_component_split_drops_only_single_owned_bridges(self):
        from repro.graphs.algorithms import bridges

        engine = _converged_engine(family="tree", n=12, seed=0)
        graph_before = engine.state.graph.copy()
        edges_before = {frozenset(e) for e in graph_before.edges()}
        bridges_before = {frozenset(e) for e in bridges(graph_before)}
        record = apply_perturbation(engine, "component_split", random.Random(7))
        assert record.edges_dropped >= 1  # a tree equilibrium is all bridges
        assert record.disconnected
        dropped = edges_before - {frozenset(e) for e in engine.state.graph.edges()}
        assert len(dropped) == record.edges_dropped
        # Every removed edge really was a bridge of the pre-shock graph.
        assert dropped <= bridges_before

    def test_isolation_attack_targets_highest_degree(self):
        engine = _converged_engine(family="gnp", n=16, seed=3)
        degrees = engine.state.graph.degrees()
        top = max(degrees.values())
        record = apply_perturbation(engine, "isolation_attack", random.Random(5))
        victim = record.players[0]
        assert degrees[victim] == top
        # Every edge incident to the victim is gone.
        assert engine.state.graph.degrees().get(victim, 0) == 0

    def test_edge_drops_never_touch_lone_bridges(self):
        # On a tree every edge is a single-bought bridge: the deletion
        # operators must degrade to empty shocks rather than disconnect.
        engine = DynamicsEngine(build_extension_instance("tree", 12, 0), GAME)
        # Perturb before running: the initial tree profile is maximally
        # bridge-bound.
        for name in ("drop_random_edges", "hub_attack", "reset_player"):
            record = apply_perturbation(engine, name, random.Random(1), intensity=3)
            assert record.edges_dropped == 0
            assert is_connected(engine.state.graph)

    def test_multi_reset_touches_distinct_players(self):
        engine = _converged_engine(n=18, seed=2)
        record = apply_perturbation(engine, "multi_reset", random.Random(4), intensity=3)
        assert len(record.players) == len(set(record.players))

    def test_add_shortcuts_targets_distance_two(self):
        engine = _converged_engine(family="tree", n=14, seed=1)
        record = apply_perturbation(engine, "add_shortcuts", random.Random(5), intensity=2)
        assert record.edges_added >= 1
        assert record.edges_dropped == 0
        # Recovery drops the redundant shortcuts again and re-certifies.
        result = engine.run()
        assert result.certified
        assert engine.certify().is_equilibrium


def _tiny_config() -> RobustnessStudyConfig:
    return RobustnessStudyConfig(
        families=("tree", "gnp"),
        operators=("drop_random_edges", "add_shortcuts"),
        n=10,
        alphas=(0.5,),
        ks=(2,),
        shocks_per_instance=1,
        intensity=1,
        settings=SweepSettings(num_seeds=1, solver="branch_and_bound", max_rounds=60),
    )


class TestSweep:
    def test_rows_certified_and_warm_equals_cold(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        rows = generate_robustness_study(_tiny_config(), store=store)
        shocks = [row for row in rows if row["operator"] != "none"]
        assert shocks
        for row in shocks:
            if row["converged"]:
                assert row["certified"]
                assert row["certified_exact"]
                # The warm replay is bit-for-bit the cold engine's run.
                assert row["warm_equals_cold"]
            assert row["rounds_to_recover"] >= 0
            assert row["shock_players"] >= 0
            assert row["recovered_to_same"] == (row["strategy_distance"] == 0)
            assert row["shock_empty"] == (
                row["shock_edges_dropped"] + row["shock_edges_added"] == 0
            )

    def test_store_round_trip_and_checkpoint(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        rows = generate_robustness_study(_tiny_config(), store=store)
        loaded = store.load_rows("robustness")
        assert loaded == rows
        config = store.load_config("robustness")
        assert config["families"] == ["tree", "gnp"]
        labels = store.list_checkpoints("robustness")
        assert labels
        profile, game, meta = store.load_checkpoint("robustness", labels[0])
        assert meta["certified"]
        assert profile.players()

    def test_sequential_shocks_chain_from_recovered_profiles(self):
        cfg = RobustnessStudyConfig(
            families=("gnp",),
            operators=("add_shortcuts",),
            n=12,
            alphas=(0.5,),
            ks=(2,),
            shocks_per_instance=3,
            intensity=1,
            settings=SweepSettings(num_seeds=1, solver="branch_and_bound", max_rounds=60),
        )
        rows = generate_robustness_study(cfg)
        indices = [row["shock_index"] for row in rows if row["operator"] != "none"]
        assert indices == [0, 1, 2]


def _tolerant_config() -> RobustnessStudyConfig:
    return RobustnessStudyConfig(
        families=("tree", "gnp"),
        operators=("drop_random_edges",),
        n=10,
        alphas=(0.5,),
        ks=(2,),
        shocks_per_instance=2,
        intensity=1,
        settings=SweepSettings(num_seeds=1, solver="branch_and_bound", max_rounds=60),
    ).with_cost_model("tolerant")


class TestDisconnectionSemantics:
    def test_with_cost_model_toggles_disconnecting_operators(self):
        cfg = _tiny_config()
        tolerant = cfg.with_cost_model("tolerant", penalty_beta=25.0)
        assert set(tolerant.operators) >= DISCONNECTING_PERTURBATIONS
        assert tolerant.penalty_beta == 25.0
        back = tolerant.with_cost_model("strict")
        assert set(back.operators) == set(cfg.operators)
        # Default beta is 2n: strictly above any realisable distance.
        game = cfg.with_cost_model("tolerant").game(2, 0.5)
        assert game.cost_model.beta == 2.0 * cfg.n

    def test_tolerant_sweep_recovers_disconnecting_shocks(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        rows = generate_robustness_study(_tolerant_config(), store=store)
        shocks = [row for row in rows if row["operator"] != "none"]
        assert shocks
        disconnecting = [row for row in shocks if row.get("shock_disconnected")]
        assert disconnecting, "tolerant grid produced no disconnecting shock"
        for row in disconnecting:
            assert row["outcome"] in {"recovered", "unrecovered"}
            if row["outcome"] == "recovered":
                # Finite priced costs, a certified per-component
                # equilibrium, and the split actually shows.
                assert row["recovered_social_cost"] == row["recovered_social_cost"]
                assert abs(row["recovered_social_cost"]) != float("inf")
                assert row["certified"]
                assert row["warm_equals_cold"]
                assert row["post_components"] >= 2
        # Rows and the certified base checkpoint survive the store.
        assert store.load_rows("robustness") == rows
        assert store.list_checkpoints("robustness")

    def test_strict_sweep_records_structured_skip_rows(self):
        cfg = RobustnessStudyConfig(
            families=("tree",),
            operators=("component_split", "add_shortcuts"),
            n=10,
            alphas=(0.5,),
            ks=(2,),
            shocks_per_instance=2,
            intensity=1,
            settings=SweepSettings(
                num_seeds=1, solver="branch_and_bound", max_rounds=60
            ),
        )
        rows = generate_robustness_study(cfg)
        skipped = [
            r for r in rows if r.get("outcome") == "skipped_strict_disconnection"
        ]
        assert skipped, "strict sweep should have skipped the split shocks"
        for row in skipped:
            assert row["shock_disconnected"]
            assert not row["converged"]
            assert not row["certified"]
            assert row["shock_edges_dropped"] >= 1
        # The non-disconnecting operator's chain was not poisoned.
        shortcut_rows = [r for r in rows if r["operator"] == "add_shortcuts"]
        assert shortcut_rows
        assert all(r["converged"] for r in shortcut_rows)
        # And the aggregates count the skips without polluting recoveries.
        aggregated = aggregate_robustness_rows(rows)
        split_cell = next(
            r for r in aggregated if r["operator"] == "component_split"
        )
        assert split_cell["skipped_disconnections"] == len(skipped)
        assert split_cell["disconnected_shocks"] == 0


class TestReconnection:
    def test_with_reconnect_extends_the_grid(self):
        cfg = _tiny_config()
        reconnect = cfg.with_reconnect()
        assert reconnect.cost_model == "tolerant"
        assert set(reconnect.operators) >= DISCONNECTING_PERTURBATIONS
        assert reconnect.ks == cfg.ks + (1000,)
        # Idempotent: the full-knowledge column is appended once.
        assert reconnect.with_reconnect().ks == reconnect.ks
        # An already-tolerant grid keeps its beta.
        tolerant = cfg.with_cost_model("tolerant", penalty_beta=30.0)
        assert tolerant.with_reconnect().penalty_beta == 30.0
        # A config constructed tolerant directly (never via with_cost_model)
        # still gains the disconnecting operators.
        import dataclasses

        direct = dataclasses.replace(cfg, cost_model="tolerant")
        assert set(direct.with_reconnect().operators) >= DISCONNECTING_PERTURBATIONS

    def test_split_then_reconnect_rows(self):
        cfg = RobustnessStudyConfig(
            families=("tree",),
            operators=("component_split",),
            n=10,
            alphas=(0.5,),
            ks=(2,),
            shocks_per_instance=1,
            intensity=1,
            settings=SweepSettings(
                num_seeds=2, solver="branch_and_bound", max_rounds=60
            ),
        ).with_reconnect()
        rows = generate_robustness_study(cfg)
        split = [
            r
            for r in rows
            if r["operator"] == "component_split"
            and r.get("shock_disconnected")
            and not r.get("shock_empty")
        ]
        assert split, "component_split produced no split"
        for row in split:
            # Every priced split row carries the reconnection record.
            assert "reconnected" in row and "component_trajectory" in row
            trajectory = [int(c) for c in row["component_trajectory"].split(">")]
            assert trajectory[0] == row["shock_components"] >= 2
            assert row["reconnected"] == (row["post_components"] == 1)
            if row["reconnected"]:
                assert row["rounds_to_reconnect"] >= 1
                assert trajectory[row["rounds_to_reconnect"]] == 1
            else:
                # rounds_to_reconnect is None iff the recovery ended split
                # (a transient reconnect-then-resplit does not count).
                assert row["rounds_to_reconnect"] is None
                assert trajectory[-1] > 1
        # Full knowledge sees across the cut and sews the network back;
        # a k-local player never can, so those splits stay permanent.
        full = [r for r in split if r["k"] >= 1000]
        local = [r for r in split if r["k"] < 1000]
        assert full and any(r["reconnected"] for r in full)
        assert local and all(not r["reconnected"] for r in local)
        # Reconnected recoveries are certified equilibria at finite cost.
        for row in full:
            if row["converged"]:
                assert row["certified"]
                assert row["recovered_social_cost"] < float("inf")
        aggregated = aggregate_robustness_rows(rows)
        assert sum(r["reconnected_shocks"] for r in aggregated) == sum(
            bool(r.get("reconnected")) for r in rows
        )


class TestAggregation:
    def test_one_row_per_cell_with_summaries(self):
        rows = generate_robustness_study(_tiny_config())
        aggregated = aggregate_robustness_rows(rows)
        cells = {(r["family"], r["operator"]) for r in aggregated}
        assert cells == {
            ("tree", "drop_random_edges"),
            ("tree", "add_shortcuts"),
            ("gnp", "drop_random_edges"),
            ("gnp", "add_shortcuts"),
        }
        for row in aggregated:
            assert row["num_shocks"] >= 1
            assert 0 <= row["empty_shocks"] <= row["num_shocks"]
            if row["empty_shocks"] == row["num_shocks"]:
                # All-empty cells measured nothing; a perfect score here
                # would be a lie.
                assert row["certified_fraction"] != row["certified_fraction"]
            else:
                assert 0.0 <= row["certified_fraction"] <= 1.0
                assert 0.0 <= row["recovered_to_same_fraction"] <= 1.0
            for metric in (
                "rounds_to_recover",
                "moved_players",
                "social_cost_delta",
                "edge_distance",
                "warm_speedup",
            ):
                assert f"{metric}_mean" in row
                assert f"{metric}_ci" in row

    def test_unconverged_marker_rows_are_excluded(self):
        rows = [
            {"operator": "none", "family": "tree", "alpha": 0.5, "k": 2},
        ]
        assert aggregate_robustness_rows(rows) == []

    def test_empty_and_unrecovered_shocks_do_not_pollute_recovery_means(self):
        def row(empty, speedup, converged=True, rounds=2):
            return {
                "family": "tree",
                "operator": "drop_random_edges",
                "alpha": 0.5,
                "k": 2,
                "shock_empty": empty,
                "converged": converged,
                "certified": converged,
                "recovered_to_same": empty,
                "rounds_to_recover": 0 if empty else rounds,
                "moved_players": 0 if empty else 3,
                "social_cost_delta": 0.0,
                "edge_distance": 0 if empty else 1,
                "warm_speedup": speedup,
            }

        # Two no-op shocks with inflated "speedups", one capped run at the
        # round limit, and one real recovery: the means must reflect only
        # the real one, while the capped run still drags the certified
        # fraction down.
        aggregated = aggregate_robustness_rows(
            [
                row(True, 40.0),
                row(True, 50.0),
                row(False, 1.0, converged=False, rounds=60),
                row(False, 6.0),
            ]
        )
        (cell,) = aggregated
        assert cell["num_shocks"] == 4
        assert cell["empty_shocks"] == 2
        assert cell["warm_speedup_mean"] == pytest.approx(6.0)
        assert cell["rounds_to_recover_mean"] == pytest.approx(2.0)
        assert cell["certified_fraction"] == pytest.approx(0.5)

    def test_all_empty_cell_reports_nan_fractions(self):
        rows = [
            {
                "family": "tree",
                "operator": "hub_attack",
                "alpha": 0.5,
                "k": 2,
                "shock_empty": True,
                "converged": True,
                "certified": True,
                "recovered_to_same": True,
                "rounds_to_recover": 0,
                "moved_players": 0,
                "social_cost_delta": 0.0,
                "edge_distance": 0,
                "warm_speedup": 9.0,
            }
        ]
        (cell,) = aggregate_robustness_rows(rows)
        assert cell["empty_shocks"] == cell["num_shocks"] == 1
        assert cell["certified_fraction"] != cell["certified_fraction"]  # NaN
        assert cell["warm_speedup_mean"] != cell["warm_speedup_mean"]  # NaN


class TestCLI:
    def test_parser_accepts_robustness(self):
        args = build_parser().parse_args(
            ["robustness", "--smoke", "--store", "out/s", "--per-shock"]
        )
        assert args.command == "robustness"
        assert args.store == "out/s"
        assert args.per_shock

    def test_smoke_sweep_end_to_end(self, tmp_path, capsys):
        """The acceptance path: >= 3 families x >= 3 operators from the CLI,
        with every reported equilibrium certified and the store intact."""
        csv_path = tmp_path / "rob.csv"
        json_path = tmp_path / "rob.json"
        store_dir = tmp_path / "store"
        code = main(
            [
                "robustness",
                "--smoke",
                "--csv",
                str(csv_path),
                "--json",
                str(json_path),
                "--store",
                str(store_dir),
            ]
        )
        assert code == 0
        assert csv_path.exists() and json_path.exists()
        out = capsys.readouterr().out
        assert "robustness" in out
        cfg = RobustnessStudyConfig.smoke()
        assert len(cfg.families) >= 3 and len(cfg.operators) >= 3
        rows = ExperimentStore(store_dir).load_rows("robustness")
        shocks = [row for row in rows if row["operator"] != "none"]
        assert {row["family"] for row in shocks} == set(cfg.families)
        assert {row["operator"] for row in shocks} == set(cfg.operators)
        assert all(row["certified"] for row in shocks if row["converged"])
