"""Property-based tests for the combinatorial solvers."""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators.trees import random_tree
from repro.solvers.dominating_set import is_dominating_set, minimum_dominating_set
from repro.solvers.set_cover import (
    SetCoverInstance,
    branch_and_bound_set_cover,
    greedy_set_cover,
    milp_set_cover,
)


@st.composite
def set_cover_instances(draw):
    num_candidates = draw(st.integers(min_value=1, max_value=8))
    num_elements = draw(st.integers(min_value=0, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    density = draw(st.floats(min_value=0.1, max_value=0.8))
    rng = np.random.default_rng(seed)
    coverage = rng.random((num_candidates, num_elements)) < density
    forced = ()
    if num_candidates > 1 and draw(st.booleans()):
        forced = (draw(st.integers(min_value=0, max_value=num_candidates - 1)),)
    return SetCoverInstance(coverage=coverage, forced=forced)


class TestSetCoverProperties:
    @given(set_cover_instances())
    @settings(max_examples=60, deadline=None)
    def test_exact_solvers_agree(self, instance):
        milp = milp_set_cover(instance)
        bnb = branch_and_bound_set_cover(instance)
        assert milp.feasible == bnb.feasible
        if milp.feasible:
            assert milp.objective == bnb.objective

    @given(set_cover_instances())
    @settings(max_examples=60, deadline=None)
    def test_solutions_are_feasible_covers(self, instance):
        for solver in (milp_set_cover, branch_and_bound_set_cover, greedy_set_cover):
            result = solver(instance)
            if result.feasible:
                assert instance.is_feasible_selection(set(result.selected))

    @given(set_cover_instances())
    @settings(max_examples=60, deadline=None)
    def test_greedy_never_beats_exact(self, instance):
        greedy = greedy_set_cover(instance)
        exact = branch_and_bound_set_cover(instance)
        assert greedy.feasible == exact.feasible
        if exact.feasible:
            assert greedy.objective >= exact.objective

    @given(set_cover_instances())
    @settings(max_examples=40, deadline=None)
    def test_forced_candidates_never_selected(self, instance):
        result = branch_and_bound_set_cover(instance)
        if result.feasible:
            assert not (set(result.selected) & set(instance.forced))


class TestDominatingSetProperties:
    @given(
        st.integers(min_value=2, max_value=14),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_tree_dominating_set_is_valid_and_minimal_vs_greedy(self, n, seed):
        tree = random_tree(n, random.Random(seed))
        exact_nodes, exact = minimum_dominating_set(tree, method="branch_and_bound")
        greedy_nodes, greedy = minimum_dominating_set(tree, method="greedy")
        assert is_dominating_set(tree, exact_nodes)
        assert is_dominating_set(tree, greedy_nodes)
        assert exact.objective <= greedy.objective
        # A dominating set of a graph with max degree Δ has size >= n/(Δ+1).
        max_degree = max(tree.degrees().values())
        assert exact.objective >= n / (max_degree + 1) - 1e-9

    @given(
        st.integers(min_value=3, max_value=12),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_radius_monotonicity(self, n, radius, seed):
        tree = random_tree(n, random.Random(seed))
        _, small = minimum_dominating_set(tree, radius=radius, method="branch_and_bound")
        _, large = minimum_dominating_set(tree, radius=radius + 1, method="branch_and_bound")
        assert large.objective <= small.objective
