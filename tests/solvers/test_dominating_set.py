"""Tests for the (constrained, distance-h) dominating-set layer."""

import pytest

from repro.graphs.generators.classic import (
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
)
from repro.solvers.dominating_set import (
    dominating_set_instance,
    is_dominating_set,
    minimum_dominating_set,
    power_dominating_set_instance,
)

EXACT = ["milp", "branch_and_bound"]


class TestIsDominatingSet:
    def test_star_center(self):
        graph = star_graph(6)
        assert is_dominating_set(graph, [0])
        assert not is_dominating_set(graph, [1])

    def test_radius_two(self):
        graph = path_graph(5)
        assert is_dominating_set(graph, [2], radius=2)
        assert not is_dominating_set(graph, [0], radius=2)

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError):
            is_dominating_set(path_graph(3), [99])


class TestMinimumDominatingSet:
    @pytest.mark.parametrize("method", EXACT)
    def test_star(self, method):
        chosen, result = minimum_dominating_set(star_graph(8), method=method)
        assert result.objective == 1
        assert chosen == [0]

    @pytest.mark.parametrize("method", EXACT)
    def test_path_five(self, method):
        chosen, result = minimum_dominating_set(path_graph(5), method=method)
        assert result.objective == 2
        assert is_dominating_set(path_graph(5), chosen)

    @pytest.mark.parametrize("method", EXACT)
    def test_cycle_nine(self, method):
        # γ(C_n) = ceil(n / 3).
        chosen, result = minimum_dominating_set(cycle_graph(9), method=method)
        assert result.objective == 3
        assert is_dominating_set(cycle_graph(9), chosen)

    @pytest.mark.parametrize("method", EXACT)
    def test_petersen(self, method):
        chosen, result = minimum_dominating_set(petersen_graph(), method=method)
        assert result.objective == 3
        assert is_dominating_set(petersen_graph(), chosen)

    @pytest.mark.parametrize("method", EXACT)
    def test_complete_graph(self, method):
        _, result = minimum_dominating_set(complete_graph(7), method=method)
        assert result.objective == 1

    def test_forced_vertices_are_free(self):
        graph = path_graph(5)
        chosen, result = minimum_dominating_set(graph, forced=[0], method="milp")
        assert 0 not in chosen
        assert is_dominating_set(graph, chosen + [0])
        # Forcing an endpoint still leaves the other end uncovered: 1 paid vertex.
        assert result.objective == 1

    def test_distance_radius(self):
        graph = path_graph(7)
        chosen, result = minimum_dominating_set(graph, radius=3, method="milp")
        assert result.objective == 1
        assert is_dominating_set(graph, chosen, radius=3)

    def test_greedy_is_feasible(self):
        graph = cycle_graph(12)
        chosen, result = minimum_dominating_set(graph, method="greedy")
        assert result.feasible
        assert is_dominating_set(graph, chosen)


class TestInstanceBuilders:
    def test_dominating_instance_dimensions(self):
        graph = path_graph(4)
        instance = dominating_set_instance(graph)
        assert instance.num_candidates == 4
        assert instance.num_elements == 4

    def test_candidate_and_element_restriction(self):
        graph = path_graph(5)
        instance = power_dominating_set_instance(
            graph, radius=1, candidates=[0, 2, 4], elements=[1, 3]
        )
        assert instance.num_candidates == 3
        assert instance.num_elements == 2
        # Candidate 0 covers element 1 only.
        assert instance.coverage[0, 0]
        assert not instance.coverage[0, 1]

    def test_forced_must_be_candidate(self):
        graph = path_graph(5)
        with pytest.raises(KeyError):
            power_dominating_set_instance(graph, radius=1, forced=[99])

    def test_unknown_candidate_raises(self):
        with pytest.raises(KeyError):
            power_dominating_set_instance(path_graph(3), radius=1, candidates=[7])

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            power_dominating_set_instance(path_graph(3), radius=-1)
