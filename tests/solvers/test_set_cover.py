"""Tests for the set-cover solvers (greedy, branch-and-bound, MILP)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import available_backends, get_backend
from repro.solvers.set_cover import (
    SOLVERS,
    SetCoverInstance,
    branch_and_bound_set_cover,
    greedy_set_cover,
    milp_set_cover,
    solve_set_cover,
)

EXACT_SOLVERS = ["milp", "branch_and_bound"]
ALL_SOLVERS = list(SOLVERS)


def make_instance(sets, num_elements, forced=(), labels=None):
    coverage = np.zeros((len(sets), num_elements), dtype=bool)
    for row, elements in enumerate(sets):
        for element in elements:
            coverage[row, element] = True
    return SetCoverInstance(
        coverage=coverage,
        forced=tuple(forced),
        candidate_labels=labels or [],
    )


class TestInstanceValidation:
    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            SetCoverInstance(coverage=np.zeros(3, dtype=bool))

    def test_rejects_bad_forced_index(self):
        with pytest.raises(ValueError):
            SetCoverInstance(coverage=np.zeros((2, 2), dtype=bool), forced=(5,))

    def test_rejects_label_mismatch(self):
        with pytest.raises(ValueError):
            SetCoverInstance(
                coverage=np.zeros((2, 2), dtype=bool), candidate_labels=["a"]
            )

    def test_residual(self):
        instance = make_instance([{0, 1}, {2}], 3, forced=(0,))
        free, uncovered = instance.residual()
        assert list(free) == [1]
        assert list(uncovered) == [2]

    def test_is_feasible_selection(self):
        instance = make_instance([{0}, {1}], 2)
        assert instance.is_feasible_selection({0, 1})
        assert not instance.is_feasible_selection({0})


class TestTrivialCases:
    @pytest.mark.parametrize("method", ALL_SOLVERS)
    def test_no_elements(self, method):
        instance = SetCoverInstance(coverage=np.zeros((3, 0), dtype=bool))
        result = solve_set_cover(instance, method)
        assert result.feasible
        assert result.objective == 0

    @pytest.mark.parametrize("method", ALL_SOLVERS)
    def test_forced_sets_cover_everything(self, method):
        instance = make_instance([{0, 1, 2}, {0}], 3, forced=(0,))
        result = solve_set_cover(instance, method)
        assert result.feasible
        assert result.objective == 0
        assert result.selected == ()

    @pytest.mark.parametrize("method", ALL_SOLVERS)
    def test_uncoverable_element_infeasible(self, method):
        instance = make_instance([{0}], 2)
        result = solve_set_cover(instance, method)
        assert not result.feasible

    @pytest.mark.parametrize("method", ALL_SOLVERS)
    def test_no_candidates_infeasible(self, method):
        instance = SetCoverInstance(coverage=np.zeros((0, 2), dtype=bool))
        result = solve_set_cover(instance, method)
        assert not result.feasible


class TestExactness:
    @pytest.mark.parametrize("method", EXACT_SOLVERS)
    def test_single_big_set_preferred(self, method):
        instance = make_instance([{0}, {1}, {2}, {0, 1, 2}], 3)
        result = solve_set_cover(instance, method)
        assert result.objective == 1
        assert result.selected == (3,)
        assert result.optimal

    @pytest.mark.parametrize("method", EXACT_SOLVERS)
    def test_greedy_trap(self, method):
        # Classical instance where greedy picks the large set but the optimum
        # is the two disjoint sets.
        sets = [{0, 1, 2, 3}, {0, 1, 4}, {2, 3, 5}]
        instance = make_instance(sets, 6)
        result = solve_set_cover(instance, method)
        assert result.objective == 2
        assert set(result.selected) == {1, 2}

    @pytest.mark.parametrize("method", EXACT_SOLVERS)
    def test_forced_sets_do_not_count(self, method):
        sets = [{0, 1}, {2, 3}, {4}]
        instance = make_instance(sets, 5, forced=(0,))
        result = solve_set_cover(instance, method)
        assert result.objective == 2
        assert set(result.selected) == {1, 2}

    def test_selected_labels(self):
        instance = make_instance([{0}, {1}], 2, labels=["a", "b"])
        result = branch_and_bound_set_cover(instance)
        assert sorted(result.selected_labels(instance)) == ["a", "b"]

    def test_unknown_method(self):
        instance = make_instance([{0}], 1)
        with pytest.raises(ValueError):
            solve_set_cover(instance, "quantum")


class TestGreedy:
    def test_greedy_feasible(self):
        instance = make_instance([{0, 1}, {1, 2}, {2, 3}], 4)
        result = greedy_set_cover(instance)
        assert result.feasible
        assert instance.is_feasible_selection(set(result.selected))
        assert not result.optimal

    def test_greedy_logarithmic_guarantee_on_random_instances(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            num_candidates, num_elements = 12, 10
            coverage = rng.random((num_candidates, num_elements)) < 0.3
            coverage[0] |= ~coverage.any(axis=0)  # make feasible
            instance = SetCoverInstance(coverage=coverage)
            greedy = greedy_set_cover(instance)
            exact = branch_and_bound_set_cover(instance)
            assert greedy.feasible and exact.feasible
            assert greedy.objective >= exact.objective
            harmonic = np.log(num_elements) + 1
            assert greedy.objective <= harmonic * exact.objective + 1e-9


@st.composite
def monotone_instance_chains(draw):
    """A chain of instances whose coverage only ever grows.

    Mirrors the best-response ``h`` loop: same candidates and elements
    throughout, each step OR-ing extra coverage onto the previous matrix
    (``dist <= h - 1`` grows pointwise in ``h``), with an optional shared
    forced set.
    """
    num_candidates = draw(st.integers(min_value=2, max_value=8))
    num_elements = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    steps = draw(st.integers(min_value=2, max_value=5))
    forced = (0,) if draw(st.booleans()) else ()
    rng = np.random.default_rng(seed)
    coverage = rng.random((num_candidates, num_elements)) < 0.25
    chain = []
    for _ in range(steps):
        coverage = coverage | (rng.random(coverage.shape) < 0.25)
        chain.append(SetCoverInstance(coverage=coverage.copy(), forced=forced))
    return chain


class TestWarmStart:
    @given(monotone_instance_chains())
    @settings(max_examples=60, deadline=None)
    def test_warm_cost_equals_cold_cost_along_monotone_chain(self, chain):
        """Seeding each solve with the previous solution never changes cost."""
        previous = None
        for instance in chain:
            cold = branch_and_bound_set_cover(instance)
            warm = branch_and_bound_set_cover(instance, warm_start=previous)
            assert warm.feasible == cold.feasible
            if cold.feasible:
                assert warm.objective == cold.objective
                assert instance.is_feasible_selection(set(warm.selected))
                previous = warm.selected

    @given(monotone_instance_chains())
    @settings(max_examples=30, deadline=None)
    def test_warm_start_agrees_across_solvers(self, chain):
        previous = None
        for instance in chain:
            milp = solve_set_cover(instance, "milp", warm_start=previous)
            bnb = solve_set_cover(instance, "branch_and_bound", warm_start=previous)
            assert milp.feasible == bnb.feasible
            if bnb.feasible:
                assert milp.objective == bnb.objective
                previous = bnb.selected

    def test_garbage_warm_start_is_ignored(self):
        instance = make_instance([{0}, {1}, {0, 1}], 2)
        for junk in [(), (99,), (0,)]:  # empty, out of range, not a cover
            result = branch_and_bound_set_cover(instance, warm_start=junk)
            assert result.feasible
            assert result.objective == 1

    def test_forced_index_in_warm_start_is_ignored(self):
        instance = make_instance([{0, 1}, {0}, {1}], 2, forced=(0,))
        result = branch_and_bound_set_cover(instance, warm_start=(0,))
        assert result.feasible
        assert result.objective == 0

    def test_warm_start_preferred_on_ties(self):
        # Two optimal covers of size 1: greedy picks candidate 0 (first
        # argmax), the warm start pins candidate 1.
        instance = make_instance([{0, 1}, {0, 1}], 2)
        cold = branch_and_bound_set_cover(instance)
        warm = branch_and_bound_set_cover(instance, warm_start=(1,))
        assert cold.selected == (0,)
        assert warm.selected == (1,)
        assert warm.objective == cold.objective

    def test_upper_bound_below_optimum_reports_infeasible(self):
        # The caller's "only covers of size < 2 are useful" contract: the
        # optimum is 2, so a capped search comes back empty-handed.
        instance = make_instance([{0}, {1}], 2)
        result = branch_and_bound_set_cover(instance, upper_bound=1)
        assert not result.feasible
        uncapped = branch_and_bound_set_cover(instance)
        assert uncapped.feasible and uncapped.objective == 2


class TestCrossSolverAgreement:
    def test_random_instances_agree(self):
        rng = np.random.default_rng(42)
        for trial in range(25):
            num_candidates = int(rng.integers(3, 10))
            num_elements = int(rng.integers(1, 9))
            coverage = rng.random((num_candidates, num_elements)) < 0.35
            forced = (0,) if rng.random() < 0.3 else ()
            instance = SetCoverInstance(coverage=coverage, forced=forced)
            milp = milp_set_cover(instance)
            bnb = branch_and_bound_set_cover(instance)
            assert milp.feasible == bnb.feasible
            if milp.feasible:
                assert milp.objective == bnb.objective
                assert instance.is_feasible_selection(set(milp.selected))
                assert instance.is_feasible_selection(set(bnb.selected))


class TestWarmStartHintGuards:
    """Hints handed to a solver that cannot consume them must warn loudly.

    The engine path defaults to ``branch_and_bound`` precisely because it is
    the only exact solver honouring ``warm_start`` / ``upper_bound``; a
    silent fallthrough on ``milp`` is the bug this PR fixes.
    """

    def _instance(self):
        return make_instance([{0, 1}, {1, 2}, {0, 2}], 3)

    def test_warm_start_solvers_registry(self):
        from repro.solvers.set_cover import WARM_START_SOLVERS

        assert WARM_START_SOLVERS == {"branch_and_bound"}
        assert WARM_START_SOLVERS <= set(SOLVERS)

    @pytest.mark.parametrize("hint", [{"warm_start": [0, 1]}, {"upper_bound": 2}])
    def test_milp_warns_on_dead_hints(self, hint):
        with pytest.warns(RuntimeWarning, match="cannot consume"):
            result = solve_set_cover(self._instance(), method="milp", **hint)
        assert result.feasible
        assert result.objective == 2

    def test_greedy_accepts_hints_silently(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = solve_set_cover(
                self._instance(), method="greedy", warm_start=[0, 1], upper_bound=3
            )
        assert result.feasible

    def test_branch_and_bound_consumes_hints_silently(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = solve_set_cover(
                self._instance(), method="branch_and_bound", warm_start=[0, 1]
            )
        assert result.feasible
        assert result.objective == 2

    def test_no_hints_no_warning_on_milp(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            solve_set_cover(self._instance(), method="milp")


class TestKernelBackendParity:
    """Every available kernel backend returns the *same selection*, not just
    the same objective — including warm-start tie-break order (the invariant
    the best-response ``h`` loop leans on for stable repeated solves)."""

    BACKENDS = available_backends()

    @given(monotone_instance_chains())
    @settings(max_examples=40, deadline=None)
    def test_selections_identical_across_backends(self, chain):
        for instance in chain:
            reference = branch_and_bound_set_cover(instance, backend="numpy")
            for name in self.BACKENDS:
                result = branch_and_bound_set_cover(instance, backend=name)
                assert result.feasible == reference.feasible
                assert result.selected == reference.selected
                assert result.objective == reference.objective

    @given(monotone_instance_chains())
    @settings(max_examples=30, deadline=None)
    def test_warm_started_chains_identical_across_backends(self, chain):
        """Run the whole monotone chain once per backend, warm-starting each
        step with the previous selection: the *sequences* of selections must
        coincide element for element (same tie-breaks at every step)."""
        trajectories = {}
        for name in self.BACKENDS:
            previous = None
            selections = []
            for instance in chain:
                result = branch_and_bound_set_cover(
                    instance, warm_start=previous, backend=name
                )
                selections.append(result.selected if result.feasible else None)
                if result.feasible:
                    previous = result.selected
            trajectories[name] = selections
        reference = trajectories["numpy"]
        for name, selections in trajectories.items():
            assert selections == reference, name

    @pytest.mark.parametrize("name", BACKENDS)
    def test_warm_start_preferred_on_ties(self, name):
        # Same tie as TestWarmStart.test_warm_start_preferred_on_ties: both
        # singleton covers are optimal; every backend must keep the warm one.
        instance = make_instance([{0, 1}, {0, 1}], 2)
        warm = branch_and_bound_set_cover(instance, warm_start=(1,), backend=name)
        assert warm.selected == (1,)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_upper_bound_respected(self, name):
        # Needs two sets; upper_bound=1 makes the instance unsolvable within
        # the cap on every backend alike.
        instance = make_instance([{0}, {1}], 2)
        capped = branch_and_bound_set_cover(instance, upper_bound=1, backend=name)
        assert not capped.feasible
        full = branch_and_bound_set_cover(instance, backend=name)
        assert full.feasible and full.objective == 2

    def test_backend_object_accepted(self):
        instance = make_instance([{0, 1}, {1, 2}, {0, 2}], 3)
        backend = get_backend(self.BACKENDS[-1])
        result = solve_set_cover(instance, "branch_and_bound", backend=backend)
        assert result.feasible and result.objective == 2
