"""Tests for the set-cover solvers (greedy, branch-and-bound, MILP)."""

import numpy as np
import pytest

from repro.solvers.set_cover import (
    SOLVERS,
    SetCoverInstance,
    branch_and_bound_set_cover,
    greedy_set_cover,
    milp_set_cover,
    solve_set_cover,
)

EXACT_SOLVERS = ["milp", "branch_and_bound"]
ALL_SOLVERS = list(SOLVERS)


def make_instance(sets, num_elements, forced=(), labels=None):
    coverage = np.zeros((len(sets), num_elements), dtype=bool)
    for row, elements in enumerate(sets):
        for element in elements:
            coverage[row, element] = True
    return SetCoverInstance(
        coverage=coverage,
        forced=tuple(forced),
        candidate_labels=labels or [],
    )


class TestInstanceValidation:
    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            SetCoverInstance(coverage=np.zeros(3, dtype=bool))

    def test_rejects_bad_forced_index(self):
        with pytest.raises(ValueError):
            SetCoverInstance(coverage=np.zeros((2, 2), dtype=bool), forced=(5,))

    def test_rejects_label_mismatch(self):
        with pytest.raises(ValueError):
            SetCoverInstance(
                coverage=np.zeros((2, 2), dtype=bool), candidate_labels=["a"]
            )

    def test_residual(self):
        instance = make_instance([{0, 1}, {2}], 3, forced=(0,))
        free, uncovered = instance.residual()
        assert list(free) == [1]
        assert list(uncovered) == [2]

    def test_is_feasible_selection(self):
        instance = make_instance([{0}, {1}], 2)
        assert instance.is_feasible_selection({0, 1})
        assert not instance.is_feasible_selection({0})


class TestTrivialCases:
    @pytest.mark.parametrize("method", ALL_SOLVERS)
    def test_no_elements(self, method):
        instance = SetCoverInstance(coverage=np.zeros((3, 0), dtype=bool))
        result = solve_set_cover(instance, method)
        assert result.feasible
        assert result.objective == 0

    @pytest.mark.parametrize("method", ALL_SOLVERS)
    def test_forced_sets_cover_everything(self, method):
        instance = make_instance([{0, 1, 2}, {0}], 3, forced=(0,))
        result = solve_set_cover(instance, method)
        assert result.feasible
        assert result.objective == 0
        assert result.selected == ()

    @pytest.mark.parametrize("method", ALL_SOLVERS)
    def test_uncoverable_element_infeasible(self, method):
        instance = make_instance([{0}], 2)
        result = solve_set_cover(instance, method)
        assert not result.feasible

    @pytest.mark.parametrize("method", ALL_SOLVERS)
    def test_no_candidates_infeasible(self, method):
        instance = SetCoverInstance(coverage=np.zeros((0, 2), dtype=bool))
        result = solve_set_cover(instance, method)
        assert not result.feasible


class TestExactness:
    @pytest.mark.parametrize("method", EXACT_SOLVERS)
    def test_single_big_set_preferred(self, method):
        instance = make_instance([{0}, {1}, {2}, {0, 1, 2}], 3)
        result = solve_set_cover(instance, method)
        assert result.objective == 1
        assert result.selected == (3,)
        assert result.optimal

    @pytest.mark.parametrize("method", EXACT_SOLVERS)
    def test_greedy_trap(self, method):
        # Classical instance where greedy picks the large set but the optimum
        # is the two disjoint sets.
        sets = [{0, 1, 2, 3}, {0, 1, 4}, {2, 3, 5}]
        instance = make_instance(sets, 6)
        result = solve_set_cover(instance, method)
        assert result.objective == 2
        assert set(result.selected) == {1, 2}

    @pytest.mark.parametrize("method", EXACT_SOLVERS)
    def test_forced_sets_do_not_count(self, method):
        sets = [{0, 1}, {2, 3}, {4}]
        instance = make_instance(sets, 5, forced=(0,))
        result = solve_set_cover(instance, method)
        assert result.objective == 2
        assert set(result.selected) == {1, 2}

    def test_selected_labels(self):
        instance = make_instance([{0}, {1}], 2, labels=["a", "b"])
        result = branch_and_bound_set_cover(instance)
        assert sorted(result.selected_labels(instance)) == ["a", "b"]

    def test_unknown_method(self):
        instance = make_instance([{0}], 1)
        with pytest.raises(ValueError):
            solve_set_cover(instance, "quantum")


class TestGreedy:
    def test_greedy_feasible(self):
        instance = make_instance([{0, 1}, {1, 2}, {2, 3}], 4)
        result = greedy_set_cover(instance)
        assert result.feasible
        assert instance.is_feasible_selection(set(result.selected))
        assert not result.optimal

    def test_greedy_logarithmic_guarantee_on_random_instances(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            num_candidates, num_elements = 12, 10
            coverage = rng.random((num_candidates, num_elements)) < 0.3
            coverage[0] |= ~coverage.any(axis=0)  # make feasible
            instance = SetCoverInstance(coverage=coverage)
            greedy = greedy_set_cover(instance)
            exact = branch_and_bound_set_cover(instance)
            assert greedy.feasible and exact.feasible
            assert greedy.objective >= exact.objective
            harmonic = np.log(num_elements) + 1
            assert greedy.objective <= harmonic * exact.objective + 1e-9


class TestCrossSolverAgreement:
    def test_random_instances_agree(self):
        rng = np.random.default_rng(42)
        for trial in range(25):
            num_candidates = int(rng.integers(3, 10))
            num_elements = int(rng.integers(1, 9))
            coverage = rng.random((num_candidates, num_elements)) < 0.35
            forced = (0,) if rng.random() < 0.3 else ()
            instance = SetCoverInstance(coverage=coverage, forced=forced)
            milp = milp_set_cover(instance)
            bnb = branch_and_bound_set_cover(instance)
            assert milp.feasible == bnb.feasible
            if milp.feasible:
                assert milp.objective == bnb.objective
                assert instance.is_feasible_selection(set(milp.selected))
                assert instance.is_feasible_selection(set(bnb.selected))
