"""Tests for the k-center / k-median facility-location solvers."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators.classic import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.generators.erdos_renyi import connected_gnp_graph
from repro.graphs.generators.trees import random_tree
from repro.graphs.graph import Graph
from repro.solvers.facility import (
    FacilityResult,
    coverage_radius,
    exact_k_center,
    exact_k_median,
    greedy_k_center,
    greedy_k_median,
    local_search_k_median,
    solve_k_center,
    solve_k_median,
    total_assignment_cost,
)


class TestObjectives:
    def test_coverage_radius_path(self):
        path = path_graph(5)
        rows = {2: {node: abs(node - 2) for node in range(5)}}
        assert coverage_radius([2], rows, list(range(5))) == 2

    def test_total_cost_path(self):
        path = path_graph(5)
        rows = {2: {node: abs(node - 2) for node in range(5)}}
        assert total_assignment_cost([2], rows, list(range(5))) == 6

    def test_empty_center_set_is_unreached(self):
        rows = {0: {0: 0.0}}
        assert math.isinf(coverage_radius([], rows, [0]))
        assert math.isinf(total_assignment_cost([], rows, [0]))

    def test_unreachable_client(self):
        rows = {0: {0: 0.0, 1: 1.0}}
        assert math.isinf(coverage_radius([0], rows, [0, 1, 2]))
        assert math.isinf(total_assignment_cost([0], rows, [0, 1, 2]))


class TestKCenter:
    def test_k1_exact_on_path_is_midpoint(self):
        result = exact_k_center(1, graph=path_graph(7))
        assert result.centers == frozenset({3})
        assert result.objective == 3

    def test_greedy_k1_matches_exact_on_path(self):
        greedy = greedy_k_center(1, graph=path_graph(7))
        exact = exact_k_center(1, graph=path_graph(7))
        assert greedy.objective == exact.objective

    def test_star_needs_one_center(self):
        result = exact_k_center(1, graph=star_graph(8))
        assert result.centers == frozenset({0})
        assert result.objective == 1

    def test_k_equal_n_gives_zero_radius(self):
        graph = complete_graph(5)
        result = exact_k_center(5, graph=graph)
        assert result.objective == 0

    def test_greedy_is_2_approximation(self):
        for seed in range(5):
            graph = connected_gnp_graph(14, 0.2, random.Random(seed))
            for k in (1, 2, 3):
                greedy = greedy_k_center(k, graph=graph)
                exact = exact_k_center(k, graph=graph)
                assert greedy.objective <= 2 * exact.objective + 1e-9

    def test_exact_flag_and_method(self):
        result = exact_k_center(2, graph=cycle_graph(8))
        assert result.optimal
        assert result.method == "exact"
        assert isinstance(result, FacilityResult)

    def test_candidate_restriction(self):
        # Only leaves of the star may host a facility.
        result = exact_k_center(1, graph=star_graph(6), candidates=range(1, 6))
        assert result.centers <= frozenset(range(1, 6))
        assert result.objective == 2

    def test_client_restriction(self):
        path = path_graph(9)
        result = exact_k_center(1, graph=path, clients=[0, 1, 2])
        assert result.objective <= 1

    def test_too_many_candidates_raises(self):
        with pytest.raises(ValueError):
            exact_k_center(2, graph=cycle_graph(30))

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            greedy_k_center(0, graph=path_graph(4))
        with pytest.raises(ValueError):
            exact_k_center(0, graph=path_graph(4))

    def test_distance_input_without_graph(self):
        rows = {
            "a": {"a": 0.0, "b": 1.0, "c": 5.0},
            "c": {"a": 5.0, "b": 4.0, "c": 0.0},
        }
        result = exact_k_center(1, distances=rows)
        assert result.centers == frozenset({"a"})

    def test_both_graph_and_distances_rejected(self):
        with pytest.raises(ValueError):
            greedy_k_center(1, graph=path_graph(3), distances={0: {0: 0.0}})

    def test_neither_graph_nor_distances_rejected(self):
        with pytest.raises(ValueError):
            greedy_k_center(1)


class TestKMedian:
    def test_k1_on_path_is_median(self):
        result = exact_k_median(1, graph=path_graph(7))
        assert result.centers == frozenset({3})

    def test_k1_on_star_is_hub(self):
        result = exact_k_median(1, graph=star_graph(9))
        assert result.centers == frozenset({0})
        assert result.objective == 8

    def test_greedy_reasonable_on_random_trees(self):
        for seed in range(4):
            tree = random_tree(15, random.Random(seed))
            for k in (1, 2, 3):
                greedy = greedy_k_median(k, graph=tree)
                exact = exact_k_median(k, graph=tree)
                assert greedy.objective >= exact.objective - 1e-9
                # Submodular greedy guarantee is (1 - 1/e) on the *improvement*;
                # in practice a factor 2 bound is comfortably satisfied here.
                assert greedy.objective <= 2 * max(exact.objective, 1.0) + 1e-9

    def test_local_search_never_worse_than_greedy(self):
        for seed in range(4):
            graph = connected_gnp_graph(13, 0.2, random.Random(seed))
            for k in (1, 2, 3):
                greedy = greedy_k_median(k, graph=graph)
                local = local_search_k_median(k, graph=graph)
                assert local.objective <= greedy.objective + 1e-9

    def test_local_search_matches_exact_on_small_instances(self):
        for seed in range(4):
            tree = random_tree(12, random.Random(seed + 10))
            local = local_search_k_median(2, graph=tree)
            exact = exact_k_median(2, graph=tree)
            # The single-swap local optimum is within 5x of optimum in theory;
            # on these tiny trees it is nearly always exactly optimal.
            assert local.objective <= 1.5 * exact.objective + 1e-9

    def test_k_larger_than_candidates(self):
        result = exact_k_median(10, graph=path_graph(4))
        assert result.objective == 0

    def test_candidate_restriction(self):
        path = path_graph(7)
        result = exact_k_median(1, graph=path, candidates=[0, 6])
        assert result.centers <= frozenset({0, 6})

    def test_too_many_candidates_raises(self):
        with pytest.raises(ValueError):
            exact_k_median(2, graph=cycle_graph(25))

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            greedy_k_median(0, graph=path_graph(4))
        with pytest.raises(ValueError):
            local_search_k_median(-1, graph=path_graph(4))


class TestDispatchers:
    def test_solve_k_center_methods(self):
        path = path_graph(6)
        for method in ("greedy", "exact"):
            result = solve_k_center(2, method=method, graph=path)
            assert isinstance(result, FacilityResult)

    def test_solve_k_median_methods(self):
        path = path_graph(6)
        for method in ("greedy", "local_search", "exact"):
            result = solve_k_median(2, method=method, graph=path)
            assert isinstance(result, FacilityResult)

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            solve_k_center(1, method="simulated-annealing", graph=path_graph(3))
        with pytest.raises(ValueError):
            solve_k_median(1, method="gurobi", graph=path_graph(3))


class TestFacilityProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=12),
        k=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_more_centers_never_hurt(self, n, k, seed):
        tree = random_tree(n, random.Random(seed))
        smaller = exact_k_median(k, graph=tree)
        larger = exact_k_median(min(k + 1, n), graph=tree)
        assert larger.objective <= smaller.objective + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=12),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_k_center_objective_bounded_by_diameter(self, n, seed):
        tree = random_tree(n, random.Random(seed))
        result = greedy_k_center(1, graph=tree)
        # 1-center radius is at most the diameter and at least diameter / 2.
        from repro.graphs.properties import diameter as graph_diameter

        diam = graph_diameter(tree)
        assert result.objective <= diam
        assert 2 * result.objective >= diam

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=10),
        k=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_exact_beats_or_ties_every_heuristic(self, n, k, seed):
        graph = connected_gnp_graph(n, 0.3, random.Random(seed))
        exact = exact_k_median(k, graph=graph)
        for heuristic in (greedy_k_median, local_search_k_median):
            assert exact.objective <= heuristic(k, graph=graph).objective + 1e-9
