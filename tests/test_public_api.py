"""End-to-end tests of the public package API (what the README advertises)."""

import pytest

import repro
from repro import (
    FULL_KNOWLEDGE,
    MaxNCG,
    StrategyProfile,
    SumNCG,
    best_response,
    best_response_dynamics,
    certify_equilibrium,
    compute_profile_metrics,
    extract_view,
    is_equilibrium,
    owned_connected_gnp_graph,
    price_of_anarchy_ratio,
    random_owned_tree,
    social_cost,
    social_optimum,
    stretched_torus,
    TorusParameters,
)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestQuickstartWorkflow:
    def test_readme_quickstart(self):
        instance = random_owned_tree(30, seed=1)
        game = MaxNCG(alpha=2, k=3)
        result = best_response_dynamics(instance, game)
        assert result.converged
        assert result.final_metrics.quality >= 1.0
        assert is_equilibrium(result.final_profile, game)

    def test_gnp_workflow(self):
        instance = owned_connected_gnp_graph(30, 0.15, seed=2)
        game = MaxNCG(alpha=1.0, k=2)
        result = best_response_dynamics(instance, game, solver="greedy")
        metrics = compute_profile_metrics(result.final_profile, game)
        assert metrics.num_players == 30
        assert metrics.social_cost == pytest.approx(
            social_cost(result.final_profile, game)
        )

    def test_manual_profile_inspection(self):
        profile = StrategyProfile({0: {1}, 1: {2}, 2: frozenset()})
        game = SumNCG(alpha=1.0, k=1)
        view = extract_view(profile, 1, game.k)
        assert view.size == 3
        response = best_response(profile, 1, game)
        assert response.view_cost <= response.current_view_cost

    def test_poa_helpers(self):
        profile = StrategyProfile.star(range(10), center=0)
        game = MaxNCG(alpha=2.0)
        assert price_of_anarchy_ratio(profile, game) == pytest.approx(1.0)
        assert social_optimum(10, 2.0, game.usage) > 0

    def test_torus_public_construction(self):
        owned = stretched_torus(TorusParameters(stretch=2, deltas=(2, 3)))
        game = MaxNCG(alpha=2.0, k=2)
        report = certify_equilibrium(
            StrategyProfile.from_owned_graph(owned), game, players=list(owned.graph)[:5]
        )
        assert report.is_equilibrium

    def test_full_knowledge_constant(self):
        assert MaxNCG(1.0).k == FULL_KNOWLEDGE
