"""Tests for the social optimum benchmarks, PoA helpers and profile metrics."""

import math

import pytest

from repro.core.games import MaxNCG, SumNCG, UsageKind
from repro.core.metrics import compute_profile_metrics
from repro.core.social import (
    clique_social_cost,
    exact_social_optimum,
    graph_social_cost,
    price_of_anarchy_ratio,
    social_optimum,
    star_social_cost,
)
from repro.core.strategies import StrategyProfile
from repro.graphs.generators.classic import complete_graph, owned_cycle, owned_star, star_graph
from repro.graphs.graph import Graph


class TestClosedForms:
    def test_star_cost_max(self):
        assert star_social_cost(6, 2.0, UsageKind.MAX) == 2 * 5 + 1 + 2 * 5

    def test_star_cost_sum(self):
        n = 6
        expected = 2 * (n - 1) + (n - 1) + (n - 1) * (2 * n - 3)
        assert star_social_cost(n, 2.0, UsageKind.SUM) == expected

    def test_clique_cost(self):
        assert clique_social_cost(5, 2.0, UsageKind.MAX) == 2 * 10 + 5
        assert clique_social_cost(5, 2.0, UsageKind.SUM) == 2 * 10 + 20

    def test_single_player(self):
        assert star_social_cost(1, 3.0, UsageKind.MAX) == 0
        assert clique_social_cost(1, 3.0, UsageKind.SUM) == 0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            star_social_cost(0, 1.0, UsageKind.MAX)
        with pytest.raises(ValueError):
            clique_social_cost(-1, 1.0, UsageKind.SUM)

    def test_closed_forms_match_profiles(self, star_profile):
        for usage, game in ((UsageKind.MAX, MaxNCG(2.0)), (UsageKind.SUM, SumNCG(2.0))):
            from repro.core.costs import social_cost

            assert social_cost(star_profile, game) == star_social_cost(6, 2.0, usage)


class TestSocialOptimum:
    def test_star_wins_for_large_alpha(self):
        assert social_optimum(10, 5.0, UsageKind.SUM) == star_social_cost(10, 5.0, UsageKind.SUM)

    def test_clique_wins_for_tiny_alpha(self):
        assert social_optimum(10, 0.05, UsageKind.SUM) == clique_social_cost(
            10, 0.05, UsageKind.SUM
        )

    @pytest.mark.parametrize("usage", [UsageKind.MAX, UsageKind.SUM])
    @pytest.mark.parametrize("alpha", [0.3, 1.0, 2.5, 6.0])
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_benchmark_matches_exact_bruteforce(self, usage, alpha, n):
        benchmark = social_optimum(n, alpha, usage)
        exact = exact_social_optimum(n, alpha, usage)
        assert benchmark == pytest.approx(exact)

    def test_exact_bruteforce_bounds(self):
        with pytest.raises(ValueError):
            exact_social_optimum(8, 1.0, UsageKind.MAX)
        with pytest.raises(ValueError):
            exact_social_optimum(0, 1.0, UsageKind.MAX)
        assert exact_social_optimum(1, 1.0, UsageKind.MAX) == 0.0


class TestGraphSocialCost:
    def test_star_graph(self):
        assert graph_social_cost(star_graph(6), 2.0, UsageKind.MAX) == star_social_cost(
            6, 2.0, UsageKind.MAX
        )

    def test_complete_graph(self):
        assert graph_social_cost(complete_graph(5), 1.0, UsageKind.SUM) == clique_social_cost(
            5, 1.0, UsageKind.SUM
        )

    def test_disconnected_graph_is_infinite(self):
        graph = Graph(nodes=[0, 1, 2], edges=[(0, 1)])
        assert graph_social_cost(graph, 1.0, UsageKind.MAX) == math.inf


class TestPoaRatio:
    def test_star_profile_has_ratio_one_for_alpha_above_one(self, star_profile):
        assert price_of_anarchy_ratio(star_profile, MaxNCG(2.0)) == pytest.approx(1.0)

    def test_cycle_ratio_greater_than_one(self):
        profile = StrategyProfile.from_owned_graph(owned_cycle(12))
        assert price_of_anarchy_ratio(profile, MaxNCG(2.0, k=2)) > 1.0

    def test_single_player(self):
        profile = StrategyProfile({0: frozenset()})
        assert price_of_anarchy_ratio(profile, MaxNCG(2.0)) == 1.0


class TestProfileMetrics:
    def test_star_metrics(self, star_profile):
        metrics = compute_profile_metrics(star_profile, MaxNCG(2.0))
        assert metrics.num_players == 6
        assert metrics.num_edges == 5
        assert metrics.diameter == 2
        assert metrics.max_degree == 5
        assert metrics.max_bought_edges == 5
        assert metrics.min_bought_edges == 0
        assert metrics.quality == pytest.approx(1.0)
        assert metrics.mean_view_size == 6  # full knowledge by default
        assert metrics.unfairness == pytest.approx((2 * 5 + 1) / 2)

    def test_local_view_sizes(self, cycle_profile):
        metrics = compute_profile_metrics(cycle_profile, MaxNCG(2.0, k=2))
        assert metrics.min_view_size == 5
        assert metrics.max_view_size == 5

    def test_views_can_be_skipped(self, cycle_profile):
        metrics = compute_profile_metrics(cycle_profile, MaxNCG(2.0, k=2), include_views=False)
        assert metrics.mean_view_size == 0

    def test_as_dict_round_trip(self, star_profile):
        metrics = compute_profile_metrics(star_profile, SumNCG(1.0))
        data = metrics.as_dict()
        assert data["num_players"] == 6
        assert set(data) >= {"social_cost", "quality", "diameter", "unfairness"}

    def test_unfairness_on_symmetric_network(self, cycle_profile):
        metrics = compute_profile_metrics(cycle_profile, MaxNCG(1.0, k=2))
        assert metrics.unfairness == pytest.approx(1.0)


class TestBlockedMetrics:
    """The streaming metric sweep: block-size invariance and memory ceiling."""

    def test_block_size_invariance(self):
        from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph

        profile = StrategyProfile.from_owned_graph(
            owned_connected_gnp_graph(40, 0.12, seed=3)
        )
        for game in (MaxNCG(1.5, k=2), SumNCG(2.0, k=3), MaxNCG(0.5)):
            dense = compute_profile_metrics(profile, game, block_size=40)
            for block_size in (1, 7, 16, 41, 1000):
                assert compute_profile_metrics(profile, game, block_size=block_size) == dense

    def test_invalid_block_size_rejected(self, star_profile):
        with pytest.raises(ValueError):
            compute_profile_metrics(star_profile, MaxNCG(1.0), block_size=0)

    def test_no_dense_allocation_above_block_size(self):
        """Acceptance: for n above the block size the sweep must never
        materialise an (n, n) distance matrix — tracemalloc's peak has to
        stay below the 4 n^2 bytes that single int32 allocation would cost
        (with real headroom, since BFS scratch rides on top of any
        hypothetical dense path)."""
        import tracemalloc

        from repro.graphs.generators.smallworld import owned_barabasi_albert

        n, block_size = 2500, 64
        profile = StrategyProfile.from_owned_graph(owned_barabasi_albert(n, 2, seed=0))
        game = MaxNCG(1.0, k=2)
        profile.graph()  # warm the profile's graph cache outside the traced window
        tracemalloc.start()
        metrics = compute_profile_metrics(profile, game, block_size=block_size)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        dense_bytes = 4 * n * n
        assert peak < dense_bytes / 2
        assert metrics.num_players == n
        assert metrics.diameter > 0

    def test_fused_sweep_never_materialises_distance_slices(self):
        """Acceptance for the fused bfs_reduce routing: even with
        ``block_size=n`` — where the pre-fused path allocated one full
        (n, n) int32 distance matrix — the sweep's peak must stay well
        below that 4 n^2 byte allocation.  A cycle keeps every BFS level's
        frontier at two nodes per source, so expansion scratch is O(n) and
        the only conceivable (block_size, n) int32 array would be a
        materialised distance slice; the numpy reference's largest live
        object is its boolean visited matrix (n^2 bytes), leaving real
        headroom under the ceiling."""
        import tracemalloc

        n = 2500
        profile = StrategyProfile.from_owned_graph(owned_cycle(n))
        game = MaxNCG(1.0, k=2)
        profile.graph().to_csr_arrays()  # warm caches outside the traced window
        tracemalloc.start()
        metrics = compute_profile_metrics(profile, game, block_size=n)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        dense_bytes = 4 * n * n
        assert peak < dense_bytes / 2
        assert metrics.num_players == n
        assert metrics.diameter == n // 2

    def test_ingest_reduction_equals_block_folds(self):
        """An accumulator fed the fused vectors is indistinguishable from
        one fed materialised blocks through process_block."""
        import numpy as np

        from repro.core.games import UsageKind
        from repro.core.metrics import DistanceStatsAccumulator
        from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
        from repro.graphs.traversal import (
            accumulate_bfs_distances,
            reduce_bfs_distances,
        )

        profile = StrategyProfile.from_owned_graph(
            owned_connected_gnp_graph(40, 0.12, seed=3)
        )
        indptr, indices, _ = profile.graph().to_csr_arrays()
        sources = np.arange(40, dtype=np.int64)
        for usage in (UsageKind.MAX, UsageKind.SUM):
            for view_radius in (None, 2):
                blocked = DistanceStatsAccumulator(40, usage, view_radius=view_radius)
                accumulate_bfs_distances(
                    indptr, indices, sources, blocked, block_size=7
                )
                fused = DistanceStatsAccumulator(40, usage, view_radius=view_radius)
                fused.ingest_reduction(
                    *reduce_bfs_distances(
                        indptr, indices, sources, view_radius=view_radius
                    )
                )
                assert np.array_equal(blocked.usage_rows, fused.usage_rows)
                assert np.array_equal(blocked.unreached_rows, fused.unreached_rows)
                assert np.array_equal(blocked.view_sizes, fused.view_sizes)
                assert blocked.diameter == fused.diameter
