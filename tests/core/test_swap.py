"""Tests for the limited-move (swap / greedy) variants and their dynamics."""

import math

import pytest

from repro.core.dynamics import best_response_dynamics
from repro.core.equilibria import is_equilibrium
from repro.core.games import FULL_KNOWLEDGE, MaxNCG, SumNCG
from repro.core.strategies import StrategyProfile
from repro.core.swap import (
    LocalMoveDynamicsResult,
    Move,
    MoveKind,
    best_local_move,
    enumerate_greedy_moves,
    enumerate_swap_moves,
    greedy_dynamics,
    is_greedy_equilibrium,
    is_swap_equilibrium,
    local_move_dynamics,
    swap_dynamics,
)
from repro.core.views import extract_view
from repro.graphs.generators.classic import owned_cycle, owned_star
from repro.graphs.generators.trees import random_owned_tree


class TestMove:
    def test_apply_add(self):
        move = Move(player=0, kind=MoveKind.ADD, added=frozenset({3}), removed=frozenset())
        assert move.apply(frozenset({1})) == frozenset({1, 3})

    def test_apply_delete(self):
        move = Move(player=0, kind=MoveKind.DELETE, added=frozenset(), removed=frozenset({1}))
        assert move.apply(frozenset({1, 2})) == frozenset({2})

    def test_apply_swap(self):
        move = Move(player=0, kind=MoveKind.SWAP, added=frozenset({5}), removed=frozenset({1}))
        assert move.apply(frozenset({1, 2})) == frozenset({2, 5})


class TestMoveEnumeration:
    def test_swap_moves_preserve_edge_count(self, path_profile):
        game = MaxNCG(alpha=1.0, k=2)
        view = extract_view(path_profile, 1, game.k)
        strategy = path_profile.strategy(1)
        for move in enumerate_swap_moves(view, strategy):
            assert len(move.apply(strategy)) == len(strategy)
            assert move.kind == MoveKind.SWAP

    def test_greedy_moves_superset_of_swaps(self, path_profile):
        game = MaxNCG(alpha=1.0, k=2)
        view = extract_view(path_profile, 1, game.k)
        strategy = path_profile.strategy(1)
        swaps = set(enumerate_swap_moves(view, strategy))
        greedy = set(enumerate_greedy_moves(view, strategy))
        assert swaps <= greedy
        kinds = {move.kind for move in greedy}
        assert MoveKind.ADD in kinds
        assert MoveKind.DELETE in kinds

    def test_player_with_no_edges_has_no_swaps(self):
        profile = StrategyProfile.from_owned_graph(owned_star(5, center_owns=False))
        game = MaxNCG(alpha=1.0, k=2)
        view = extract_view(profile, 0, game.k)  # centre owns nothing
        assert list(enumerate_swap_moves(view, profile.strategy(0))) == []

    def test_moves_stay_inside_view(self, cycle_profile):
        game = MaxNCG(alpha=1.0, k=2)
        view = extract_view(cycle_profile, 0, game.k)
        strategy = cycle_profile.strategy(0)
        for move in enumerate_greedy_moves(view, strategy):
            for target in move.added:
                assert target in view.strategy_space


class TestBestLocalMove:
    def test_invalid_move_set_raises(self, path_profile):
        with pytest.raises(ValueError):
            best_local_move(path_profile, 0, MaxNCG(alpha=1.0, k=2), move_set="teleport")

    def test_no_improving_move_on_full_knowledge_star(self):
        # The centre-owned star is a NE of MaxNCG for alpha > 1, hence no
        # single move can improve either.
        profile = StrategyProfile.from_owned_graph(owned_star(6))
        game = MaxNCG(alpha=2.0)
        for player in profile:
            move, delta = best_local_move(profile, player, game)
            assert move is None
            assert delta == 0.0

    def test_leaf_star_alpha_small_leaf_wants_more_edges(self):
        # With alpha < 1 a leaf that owns its edge gains by buying more edges
        # (each new edge costs alpha and saves at least 1 in eccentricity
        # terms only if it shortens the farthest distance; use SumNCG where
        # each edge saves 1 per shortened vertex).
        profile = StrategyProfile.from_owned_graph(owned_star(6, center_owns=False))
        game = SumNCG(alpha=0.5)
        move, delta = best_local_move(profile, 1, game, move_set="greedy")
        assert move is not None
        assert move.kind == MoveKind.ADD
        assert delta < 0

    def test_expensive_redundant_edge_deleted(self):
        # A redundant edge in a triangle is dropped when alpha is large.
        profile = StrategyProfile({0: {1, 2}, 1: {2}, 2: frozenset()})
        game = SumNCG(alpha=10.0)
        move, delta = best_local_move(profile, 0, game, move_set="greedy")
        assert move is not None
        assert move.kind == MoveKind.DELETE
        assert delta < 0

    def test_sum_forbidden_moves_not_selected(self):
        # Under local knowledge, deleting the only edge towards the frontier
        # is forbidden by Proposition 2.2 semantics (infinite worst case).
        profile = StrategyProfile.from_owned_graph(owned_cycle(8))
        game = SumNCG(alpha=100.0, k=2)
        for player in profile:
            move, _ = best_local_move(profile, player, game, move_set="greedy")
            if move is not None:
                # Any selected move must keep the frontier reachable: the
                # worst-case delta of a forbidden move is +inf and can never
                # be selected as an improvement.
                assert move.kind != MoveKind.DELETE


class TestEquilibriumPredicates:
    def test_center_owned_star_is_swap_and_greedy_equilibrium(self):
        profile = StrategyProfile.from_owned_graph(owned_star(6))
        game = MaxNCG(alpha=2.0)
        assert is_swap_equilibrium(profile, game)
        assert is_greedy_equilibrium(profile, game)

    def test_nash_implies_greedy_equilibrium(self, small_tree_profile):
        game = MaxNCG(alpha=3.0, k=2)
        result = best_response_dynamics(small_tree_profile, game, solver="branch_and_bound")
        assert result.converged
        final = result.final_profile
        assert is_equilibrium(final, game)
        # The LKE reached by unrestricted best responses is in particular
        # stable under the restricted move sets.
        assert is_greedy_equilibrium(final, game)
        assert is_swap_equilibrium(final, game)

    def test_cycle_is_swap_equilibrium_for_max(self):
        # In the cycle every swap keeps the degree sequence; for MaxNCG with
        # local knowledge k=1 the view is a path of length 2 and no swap
        # improves the in-view eccentricity.
        profile = StrategyProfile.from_owned_graph(owned_cycle(10))
        game = MaxNCG(alpha=2.0, k=1)
        assert is_swap_equilibrium(profile, game)

    def test_not_equilibrium_detected(self):
        # A path under SumNCG with tiny alpha: the endpoints profit from
        # buying an extra edge, so the profile is not a greedy equilibrium.
        profile = StrategyProfile({0: {1}, 1: {2}, 2: {3}, 3: {4}, 4: frozenset()})
        game = SumNCG(alpha=0.1)
        assert not is_greedy_equilibrium(profile, game)


class TestLocalMoveDynamics:
    def test_greedy_dynamics_converges_on_tree(self):
        owned = random_owned_tree(12, seed=0)
        game = MaxNCG(alpha=2.0, k=3)
        result = greedy_dynamics(owned, game)
        assert isinstance(result, LocalMoveDynamicsResult)
        assert result.converged
        assert not result.cycled
        assert is_greedy_equilibrium(result.final_profile, game)

    def test_swap_dynamics_preserves_bought_edge_counts(self):
        owned = random_owned_tree(10, seed=1)
        initial = StrategyProfile.from_owned_graph(owned)
        game = MaxNCG(alpha=1.0, k=2)
        result = swap_dynamics(owned, game)
        final = result.final_profile
        for player in initial:
            assert initial.num_bought_edges(player) == final.num_bought_edges(player)

    def test_swap_final_profile_is_swap_equilibrium(self):
        owned = random_owned_tree(10, seed=2)
        game = MaxNCG(alpha=1.0, k=3)
        result = swap_dynamics(owned, game)
        assert result.converged
        assert is_swap_equilibrium(result.final_profile, game)

    def test_sum_greedy_dynamics(self):
        owned = random_owned_tree(10, seed=3)
        game = SumNCG(alpha=1.0, k=2)
        result = greedy_dynamics(owned, game)
        assert result.converged
        assert is_greedy_equilibrium(result.final_profile, game)

    def test_moves_by_kind_totals(self):
        owned = random_owned_tree(12, seed=4)
        game = SumNCG(alpha=0.5, k=3)
        result = greedy_dynamics(owned, game)
        assert sum(result.moves_by_kind.values()) == result.total_changes

    def test_round_metrics_collection(self):
        owned = random_owned_tree(8, seed=5)
        game = MaxNCG(alpha=2.0, k=2)
        result = greedy_dynamics(owned, game, collect_round_metrics=True)
        assert len(result.round_records) >= 1
        for record in result.round_records:
            assert record.metrics is not None
            assert record.metrics.num_players == 8

    def test_already_stable_input_takes_zero_rounds(self):
        profile = StrategyProfile.from_owned_graph(owned_star(6))
        game = MaxNCG(alpha=2.0)
        result = greedy_dynamics(profile, game)
        assert result.converged
        assert result.rounds == 0
        assert result.total_changes == 0

    def test_invalid_move_set_raises(self):
        owned = random_owned_tree(6, seed=6)
        with pytest.raises(ValueError):
            local_move_dynamics(owned, MaxNCG(alpha=1.0, k=2), move_set="jump")

    def test_invalid_ordering_raises(self):
        owned = random_owned_tree(6, seed=7)
        with pytest.raises(ValueError):
            greedy_dynamics(owned, MaxNCG(alpha=1.0, k=2), ordering="spiral")

    def test_invalid_initial_type_raises(self):
        with pytest.raises(TypeError):
            greedy_dynamics("not a profile", MaxNCG(alpha=1.0, k=2))

    def test_shuffled_ordering_still_converges(self):
        owned = random_owned_tree(10, seed=8)
        game = MaxNCG(alpha=2.0, k=2)
        result = greedy_dynamics(owned, game, ordering="shuffled", seed=42)
        assert result.converged

    def test_quality_accessor(self):
        owned = random_owned_tree(10, seed=9)
        game = MaxNCG(alpha=2.0, k=3)
        result = greedy_dynamics(owned, game)
        assert result.quality_of_equilibrium() >= 1.0 - 1e-9

    def test_greedy_quality_not_better_than_best_response_quality(self):
        # Restricted moves can only reach a superset of stable states, so on
        # the same instance the greedy dynamics should not *beat* the full
        # best-response dynamics by more than noise.  (Both must converge to
        # quality >= 1; this guards against metric mix-ups.)
        owned = random_owned_tree(12, seed=10)
        game = MaxNCG(alpha=2.0, k=3)
        greedy = greedy_dynamics(owned, game)
        full = best_response_dynamics(owned, game, solver="branch_and_bound")
        assert greedy.quality_of_equilibrium() >= 1.0 - 1e-9
        assert full.quality_of_equilibrium() >= 1.0 - 1e-9
