"""Tests for NE / LKE certification."""

import pytest

from repro.core.equilibria import (
    certify_equilibrium,
    find_improving_deviation,
    improving_players,
    is_equilibrium,
)
from repro.core.games import FULL_KNOWLEDGE, MaxNCG, SumNCG
from repro.core.strategies import StrategyProfile
from repro.graphs.generators.classic import owned_cycle, owned_star


class TestStarEquilibria:
    """The centre-owned spanning star is a NE of both games for α in (1, 2]... and
    more generally the classical equilibrium facts we can check exactly."""

    def test_star_is_ne_for_maxncg_alpha_above_one(self, star_profile):
        assert is_equilibrium(star_profile, MaxNCG(2.0))
        assert is_equilibrium(star_profile, MaxNCG(1.5))

    def test_leaf_owned_star_is_ne_for_maxncg(self, leaf_star_profile):
        assert is_equilibrium(leaf_star_profile, MaxNCG(2.0))

    def test_star_is_ne_for_sumncg_small_alpha(self, star_profile):
        # Classical fact (Fabrikant et al.): the star is a NE for α >= 1.
        assert is_equilibrium(star_profile, SumNCG(1.5))
        assert is_equilibrium(star_profile, SumNCG(3.0))

    def test_star_not_equilibrium_for_tiny_alpha_sum(self, leaf_star_profile):
        # For α < 1 a leaf gains by connecting to another leaf (saves 1 per
        # distance-2 node pair at price α each); with n = 6 and α = 0.2 a leaf
        # buying all other leaves strictly improves.
        assert not is_equilibrium(leaf_star_profile, SumNCG(0.2))

    def test_empty_network_not_equilibrium(self):
        profile = StrategyProfile.empty(range(4))
        assert not is_equilibrium(profile, MaxNCG(2.0))


class TestCycleEquilibria:
    def test_cycle_is_lke_for_alpha_geq_k_minus_1(self, cycle_profile):
        # Lemma 3.1 with n = 8 >= 2k + 2 for k = 3, α = 2 >= k - 1.
        assert is_equilibrium(cycle_profile, MaxNCG(2.0, k=3))

    def test_cycle_is_lke_for_k_1(self, cycle_profile):
        assert is_equilibrium(cycle_profile, MaxNCG(1.0, k=1))

    def test_cycle_not_ne_under_full_knowledge_small_alpha(self):
        profile = StrategyProfile.from_owned_graph(owned_cycle(12))
        assert not is_equilibrium(profile, MaxNCG(1.0, k=FULL_KNOWLEDGE))

    def test_larger_view_destroys_cycle_equilibrium(self):
        # With α = 0.5 and k = 4 a player sees a path of length 8 and can buy
        # two shortcut edges, lowering her in-view eccentricity from 4 to 3
        # at a price of 1 < the current cost margin.
        profile = StrategyProfile.from_owned_graph(owned_cycle(20))
        assert not is_equilibrium(profile, MaxNCG(0.5, k=4))


class TestReports:
    def test_report_lists_improving_players(self):
        profile = StrategyProfile.empty(range(4))
        report = certify_equilibrium(profile, MaxNCG(2.0))
        assert not report.is_equilibrium
        assert len(report.improving) == 4
        assert set(report.improving_players()) == {0, 1, 2, 3}

    def test_stop_at_first(self):
        profile = StrategyProfile.empty(range(6))
        report = certify_equilibrium(profile, MaxNCG(2.0), stop_at_first=True)
        assert not report.is_equilibrium
        assert len(report.improving) == 1

    def test_player_subset(self, star_profile):
        report = certify_equilibrium(star_profile, MaxNCG(2.0), players=[0, 1])
        assert report.is_equilibrium
        assert report.checked_exactly == {0, 1}

    def test_all_exact_flag_for_max(self, star_profile):
        report = certify_equilibrium(star_profile, MaxNCG(2.0))
        assert report.all_exact

    def test_heuristic_flag_for_large_sum_games(self):
        profile = StrategyProfile.from_owned_graph(owned_star(20))
        report = certify_equilibrium(profile, SumNCG(2.0), players=[0])
        # Strategy space of the centre has 19 candidates > exhaustive limit.
        assert report.checked_heuristically == {0}
        assert not report.all_exact

    def test_find_improving_deviation(self, star_profile):
        assert find_improving_deviation(star_profile, 0, MaxNCG(2.0)) is None
        bad = StrategyProfile.empty(range(3))
        deviation = find_improving_deviation(bad, 0, MaxNCG(2.0))
        assert deviation is not None and deviation.is_improving

    def test_improving_players_list(self):
        profile = StrategyProfile({0: {1}, 1: set(), 2: set(), 3: set()})
        game = MaxNCG(2.0)
        players = improving_players(profile, game)
        # The players disconnected from the rest must move (infinite cost).
        assert 2 in players and 3 in players


class TestLkeVersusNe:
    def test_lke_set_contains_ne_set(self):
        # Any full-knowledge equilibrium remains an equilibrium when the
        # players' views shrink (the deviation set only shrinks): check on a
        # star, which is a NE for α > 1.
        profile = StrategyProfile.from_owned_graph(owned_star(8))
        for k in (1, 2, 3):
            assert is_equilibrium(profile, MaxNCG(2.0, k=k))

    def test_cycle_separates_lke_from_ne(self):
        # The cycle is an LKE for small k but not a NE: the defining example
        # of the paper's gap.
        profile = StrategyProfile.from_owned_graph(owned_cycle(16))
        assert is_equilibrium(profile, MaxNCG(2.0, k=2))
        assert not is_equilibrium(profile, MaxNCG(2.0, k=FULL_KNOWLEDGE))
