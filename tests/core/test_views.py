"""Tests for k-neighbourhood views (Section 2 local-knowledge model)."""

import math

from repro.core.games import FULL_KNOWLEDGE
from repro.core.strategies import StrategyProfile
from repro.core.views import extract_view
from repro.graphs.generators.classic import owned_cycle
from repro.graphs.generators.trees import random_owned_tree

import pytest


class TestExtractView:
    def test_radius_one_on_path(self, path_profile):
        view = extract_view(path_profile, 2, k=1)
        assert view.nodes == {1, 2, 3}
        assert view.distances == {2: 0, 1: 1, 3: 1}
        assert view.frontier == {1, 3}
        assert view.size == 3

    def test_radius_two_on_path(self, path_profile):
        view = extract_view(path_profile, 0, k=2)
        assert view.nodes == {0, 1, 2}
        assert view.frontier == {2}

    def test_full_knowledge_view(self, path_profile):
        view = extract_view(path_profile, 0, k=FULL_KNOWLEDGE)
        assert view.nodes == {0, 1, 2, 3, 4}
        assert view.frontier == set()
        assert view.sees_everything(5)

    def test_frontier_empty_when_whole_graph_closer(self, star_profile):
        view = extract_view(star_profile, 0, k=5)
        assert view.frontier == set()
        assert view.size == 6

    def test_view_subgraph_is_induced(self, cycle_profile):
        view = extract_view(cycle_profile, 0, k=2)
        # Cycle of 8, radius 2 around 0: nodes {6,7,0,1,2}, a path.
        assert view.nodes == {6, 7, 0, 1, 2}
        assert view.subgraph.number_of_edges() == 4
        assert not view.subgraph.has_edge(2, 6)

    def test_buyers_restricted_to_view(self):
        # 0-1-2-3 path, 3 buys an edge to 0 making a cycle; with k=1 the
        # buyer 3 of the edge (3, 0) is visible from 0.
        profile = StrategyProfile({0: {1}, 1: {2}, 2: {3}, 3: {0}})
        view = extract_view(profile, 0, k=1)
        assert view.buyers == {3}

    def test_buyers_outside_view_excluded(self):
        # Star of paths: 0-1-2-3-4 path, player 4 buys edge towards... use a
        # long path where the only buyer of an edge to 0 is adjacent anyway;
        # instead check a player with no in-edges.
        profile = StrategyProfile({0: {1}, 1: {2}, 2: set()})
        view = extract_view(profile, 2, k=1)
        assert view.buyers == {1}
        view0 = extract_view(profile, 0, k=1)
        assert view0.buyers == set()

    def test_unknown_player_raises(self, path_profile):
        with pytest.raises(KeyError):
            extract_view(path_profile, 99, k=2)

    def test_strategy_space_excludes_self(self, star_profile):
        view = extract_view(star_profile, 0, k=1)
        assert 0 not in view.strategy_space
        assert view.strategy_space == {1, 2, 3, 4, 5}

    def test_eccentricity_within(self, path_profile):
        view = extract_view(path_profile, 0, k=3)
        assert view.eccentricity_within() == 3

    def test_view_size_statistics_on_cycle(self):
        profile = StrategyProfile.from_owned_graph(owned_cycle(10))
        for player in range(10):
            view = extract_view(profile, player, k=2)
            assert view.size == 5
            assert len(view.frontier) == 2

    def test_disconnected_player_full_knowledge_sees_everyone(self):
        # Full knowledge reveals the entire player set even across components
        # (the classical game); her own component is all she can *reach*.
        profile = StrategyProfile({0: {1}, 1: set(), 2: set()})
        view = extract_view(profile, 2, k=FULL_KNOWLEDGE)
        assert view.nodes == {0, 1, 2}
        assert view.distances == {2: 0}
        assert view.eccentricity_within() == math.inf

    def test_disconnected_player_local_view_sees_only_component(self):
        profile = StrategyProfile({0: {1}, 1: set(), 2: set()})
        view = extract_view(profile, 2, k=3)
        assert view.nodes == {2}
        assert view.size == 1

    def test_view_respects_current_strategies(self, small_tree_profile):
        game_k = 2
        for player in small_tree_profile:
            view = extract_view(small_tree_profile, player, game_k)
            # All bought targets of the player are visible (distance 1).
            assert set(small_tree_profile.strategy(player)) <= view.nodes
            # Distances are at most k.
            assert all(dist <= game_k for dist in view.distances.values())
            assert math.isfinite(view.eccentricity_within())
