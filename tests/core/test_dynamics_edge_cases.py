"""Edge-case and protocol-option tests for the round-robin dynamics."""

import pytest

from repro.core.dynamics import best_response_dynamics
from repro.core.equilibria import is_equilibrium
from repro.core.games import FULL_KNOWLEDGE, MaxNCG, SumNCG
from repro.core.strategies import StrategyProfile
from repro.graphs.generators.classic import owned_cycle, owned_star
from repro.graphs.generators.trees import random_owned_tree


class TestInputs:
    def test_accepts_owned_graph_and_profile(self):
        owned = random_owned_tree(8, seed=0)
        game = MaxNCG(alpha=2.0, k=2)
        from_owned = best_response_dynamics(owned, game, solver="branch_and_bound")
        from_profile = best_response_dynamics(
            StrategyProfile.from_owned_graph(owned), game, solver="branch_and_bound"
        )
        assert from_owned.final_profile == from_profile.final_profile

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            best_response_dynamics({"not": "a profile"}, MaxNCG(alpha=1.0))

    def test_invalid_ordering_rejected(self):
        owned = random_owned_tree(6, seed=1)
        with pytest.raises(ValueError):
            best_response_dynamics(owned, MaxNCG(alpha=1.0, k=2), ordering="priority")

    def test_player_order_must_be_permutation(self):
        owned = random_owned_tree(6, seed=2)
        with pytest.raises(ValueError):
            best_response_dynamics(
                owned, MaxNCG(alpha=1.0, k=2), player_order=[0, 1, 2]
            )

    def test_explicit_player_order_accepted(self):
        owned = random_owned_tree(8, seed=3)
        game = MaxNCG(alpha=2.0, k=2)
        order = list(reversed(StrategyProfile.from_owned_graph(owned).players()))
        result = best_response_dynamics(owned, game, solver="branch_and_bound", player_order=order)
        assert result.converged
        assert is_equilibrium(result.final_profile, game)


class TestProtocolOptions:
    def test_round_cap_reports_non_convergence(self):
        # A single round is not always enough to stabilise a full-knowledge
        # run that needs several rounds; the cap must be honoured and the
        # outcome flagged as neither converged nor cycled.
        owned = random_owned_tree(20, seed=4)
        game = MaxNCG(alpha=0.5)
        capped = best_response_dynamics(owned, game, solver="greedy", max_rounds=1)
        assert capped.rounds <= 1
        if not capped.converged:
            assert not capped.cycled

    def test_round_metrics_collection_counts_rounds(self):
        owned = random_owned_tree(10, seed=5)
        game = MaxNCG(alpha=2.0, k=3)
        result = best_response_dynamics(
            owned, game, solver="branch_and_bound", collect_round_metrics=True
        )
        assert len(result.round_records) >= result.rounds
        for record in result.round_records:
            assert record.metrics.num_players == 10

    def test_shuffled_ordering_is_seed_deterministic(self):
        owned = random_owned_tree(12, seed=6)
        game = MaxNCG(alpha=2.0, k=2)
        a = best_response_dynamics(owned, game, solver="branch_and_bound", ordering="shuffled", seed=11)
        b = best_response_dynamics(owned, game, solver="branch_and_bound", ordering="shuffled", seed=11)
        assert a.final_profile == b.final_profile
        assert a.rounds == b.rounds

    def test_stable_start_converges_in_zero_rounds(self):
        profile = StrategyProfile.from_owned_graph(owned_star(7))
        result = best_response_dynamics(profile, MaxNCG(alpha=2.0), solver="branch_and_bound")
        assert result.converged
        assert result.rounds == 0
        assert result.total_changes == 0
        assert result.final_profile == profile

    def test_initial_and_final_metrics_always_present(self):
        owned = random_owned_tree(9, seed=7)
        result = best_response_dynamics(owned, MaxNCG(alpha=1.0, k=2), solver="greedy")
        assert result.initial_metrics is not None
        assert result.final_metrics is not None
        assert result.quality_of_equilibrium() >= 1.0 - 1e-9


class TestGameVariants:
    def test_cycle_is_stable_for_lemma_3_1_parameters(self):
        # Lemma 3.1: the n-cycle is an LKE of MaxNCG when alpha >= k - 1, so
        # the dynamics started on it must terminate immediately.
        owned = owned_cycle(14)
        game = MaxNCG(alpha=3.0, k=3)
        result = best_response_dynamics(owned, game, solver="branch_and_bound")
        assert result.converged
        assert result.total_changes == 0

    def test_cycle_restructures_under_full_knowledge_small_alpha(self):
        owned = owned_cycle(14)
        game = MaxNCG(alpha=1.0)
        result = best_response_dynamics(owned, game, solver="branch_and_bound")
        assert result.converged
        assert result.total_changes > 0
        assert result.final_metrics.diameter < 7

    def test_sum_game_local_players_keep_tree_intact(self):
        # With small k and moderate alpha the Proposition 2.2 rule freezes
        # SumNCG players on a tree: the edge set cannot change.
        owned = random_owned_tree(12, seed=8)
        initial_edges = {frozenset(e) for e in owned.graph.edges()}
        game = SumNCG(alpha=2.0, k=2)
        result = best_response_dynamics(owned, game)
        final_edges = {frozenset(e) for e in result.final_profile.graph().edges()}
        assert result.converged
        assert final_edges == initial_edges

    def test_full_knowledge_equals_large_k(self):
        owned = random_owned_tree(10, seed=9)
        exact = best_response_dynamics(owned, MaxNCG(alpha=2.0, k=FULL_KNOWLEDGE), solver="branch_and_bound")
        large_k = best_response_dynamics(owned, MaxNCG(alpha=2.0, k=1000), solver="branch_and_bound")
        assert exact.final_profile == large_k.final_profile
