"""Tests for the best-response computations (Section 5.3 reduction)."""

import itertools
import math

import pytest

from repro.core.best_response import (
    best_response,
    best_response_max,
    best_response_sum_exhaustive,
    best_response_sum_local_search,
)
from repro.core.deviations import view_cost
from repro.core.games import FULL_KNOWLEDGE, MaxNCG, SumNCG
from repro.core.strategies import StrategyProfile
from repro.core.views import extract_view
from repro.graphs.generators.classic import owned_cycle, owned_star
from repro.graphs.generators.trees import random_owned_tree


def brute_force_best_response(profile, player, game):
    """Reference implementation: enumerate every subset of the view."""
    view = extract_view(profile, player, game.k)
    candidates = sorted(view.strategy_space, key=repr)
    best_cost = math.inf
    best_strategy = None
    for size in range(len(candidates) + 1):
        for combo in itertools.combinations(candidates, size):
            cost = view_cost(view, frozenset(combo), game)
            if cost < best_cost - 1e-9:
                best_cost = cost
                best_strategy = frozenset(combo)
    return best_strategy, best_cost


class TestMaxBestResponseExactness:
    @pytest.mark.parametrize("solver", ["milp", "branch_and_bound"])
    @pytest.mark.parametrize("alpha", [0.3, 1.0, 2.5])
    @pytest.mark.parametrize("k", [1, 2, FULL_KNOWLEDGE])
    def test_matches_brute_force_on_path(self, solver, alpha, k):
        profile = StrategyProfile({0: {1}, 1: {2}, 2: {3}, 3: {4}, 4: frozenset()})
        game = MaxNCG(alpha, k=k)
        for player in profile:
            response = best_response_max(profile, player, game, solver=solver)
            _, expected_cost = brute_force_best_response(profile, player, game)
            assert response.view_cost == pytest.approx(expected_cost)

    @pytest.mark.parametrize("alpha", [0.4, 1.5, 4.0])
    def test_matches_brute_force_on_random_trees(self, alpha):
        profile = StrategyProfile.from_owned_graph(random_owned_tree(8, seed=11))
        game = MaxNCG(alpha, k=2)
        for player in profile:
            response = best_response_max(profile, player, game, solver="milp")
            _, expected_cost = brute_force_best_response(profile, player, game)
            assert response.view_cost == pytest.approx(expected_cost)

    def test_best_response_cost_is_realised_by_returned_strategy(self):
        profile = StrategyProfile.from_owned_graph(random_owned_tree(10, seed=3))
        game = MaxNCG(1.0, k=3)
        for player in profile:
            response = best_response_max(profile, player, game)
            view = extract_view(profile, player, game.k)
            assert view_cost(view, response.strategy, game) == pytest.approx(
                response.view_cost
            )

    def test_never_worse_than_current(self):
        profile = StrategyProfile.from_owned_graph(random_owned_tree(12, seed=9))
        game = MaxNCG(0.7, k=2)
        for player in profile:
            response = best_response_max(profile, player, game)
            assert response.view_cost <= response.current_view_cost + 1e-9
            assert response.improvement >= -1e-9


class TestMaxBestResponseStructure:
    def test_star_center_keeps_star_for_alpha_above_one(self, star_profile):
        game = MaxNCG(2.0)
        response = best_response_max(star_profile, 0, game)
        assert not response.is_improving

    def test_star_leaf_has_no_improvement(self, star_profile):
        game = MaxNCG(2.0)
        response = best_response_max(star_profile, 3, game)
        assert not response.is_improving

    def test_leaf_buys_center_when_alpha_small(self):
        # Path end with tiny α buys an edge towards the far side.
        profile = StrategyProfile({0: {1}, 1: {2}, 2: {3}, 3: {4}, 4: frozenset()})
        game = MaxNCG(0.25, k=FULL_KNOWLEDGE)
        response = best_response_max(profile, 4, game)
        assert response.is_improving
        assert len(response.strategy) >= 1

    def test_in_neighbours_are_free(self):
        # Player 1 owns nothing; 0 and 2 both bought edges to 1.  The best
        # response of 1 keeps cost = eccentricity with zero building cost.
        profile = StrategyProfile({0: {1}, 1: frozenset(), 2: {1}})
        game = MaxNCG(5.0)
        response = best_response_max(profile, 1, game)
        assert response.strategy == frozenset()
        assert response.view_cost == 1

    def test_isolated_player_in_view(self):
        profile = StrategyProfile({0: {1}, 1: set(), 2: set()})
        game = MaxNCG(2.0, k=2)
        response = best_response_max(profile, 2, game)
        # Player 2 sees only herself; the empty strategy is the only option.
        assert response.strategy == frozenset()
        assert response.view_size == 1

    def test_greedy_solver_never_better_than_exact(self):
        profile = StrategyProfile.from_owned_graph(random_owned_tree(12, seed=5))
        game = MaxNCG(0.5, k=3)
        for player in list(profile)[:6]:
            exact = best_response_max(profile, player, game, solver="milp")
            greedy = best_response_max(profile, player, game, solver="greedy")
            assert greedy.view_cost >= exact.view_cost - 1e-9

    def test_local_view_limits_improvement(self):
        # On a long cycle with k = 1 the view is a 3-node path: no move helps.
        profile = StrategyProfile.from_owned_graph(owned_cycle(12))
        game = MaxNCG(1.0, k=1)
        for player in range(12):
            response = best_response_max(profile, player, game)
            assert not response.is_improving


class TestSumBestResponse:
    def test_exhaustive_matches_reference_full_knowledge(self):
        profile = StrategyProfile.from_owned_graph(random_owned_tree(7, seed=2))
        game = SumNCG(1.5)
        for player in profile:
            response = best_response_sum_exhaustive(profile, player, game)
            _, expected_cost = brute_force_best_response(profile, player, game)
            assert response.view_cost == pytest.approx(expected_cost)

    def test_exhaustive_respects_forbidden_moves(self):
        # Path with k=2: the centre cannot drop its frontier-reaching edge.
        profile = StrategyProfile({0: {1}, 1: {2}, 2: {3}, 3: {4}, 4: frozenset()})
        game = SumNCG(100.0, k=2)
        response = best_response_sum_exhaustive(profile, 2, game)
        # Even with huge α the forbidden rule prevents dropping the edge to 3.
        assert 3 in response.strategy

    def test_exhaustive_size_guard(self):
        profile = StrategyProfile.from_owned_graph(owned_star(20))
        game = SumNCG(1.0)
        with pytest.raises(ValueError):
            best_response_sum_exhaustive(profile, 0, game, max_candidates=5)

    def test_local_search_never_worse_than_current(self):
        profile = StrategyProfile.from_owned_graph(random_owned_tree(15, seed=4))
        game = SumNCG(1.0, k=3)
        for player in list(profile)[:8]:
            response = best_response_sum_local_search(profile, player, game)
            assert response.view_cost <= response.current_view_cost + 1e-9
            assert not response.exact

    def test_local_search_finds_obvious_improvement(self):
        profile = StrategyProfile({0: {1}, 1: {2}, 2: {3}, 3: {4}, 4: frozenset()})
        game = SumNCG(0.1)
        response = best_response_sum_local_search(profile, 0, game)
        assert response.is_improving

    def test_dispatcher_selects_by_usage_and_size(self, star_profile):
        max_resp = best_response(star_profile, 0, MaxNCG(2.0))
        sum_resp = best_response(star_profile, 0, SumNCG(2.0))
        assert max_resp.exact and sum_resp.exact
        big = StrategyProfile.from_owned_graph(random_owned_tree(30, seed=1))
        heuristic = best_response(big, 0, SumNCG(2.0), sum_exhaustive_limit=5)
        assert not heuristic.exact

    def test_wrong_usage_kind_raises(self, star_profile):
        with pytest.raises(ValueError):
            best_response_max(star_profile, 0, SumNCG(1.0))
        with pytest.raises(ValueError):
            best_response_sum_exhaustive(star_profile, 0, MaxNCG(1.0))
        with pytest.raises(ValueError):
            best_response_sum_local_search(star_profile, 0, MaxNCG(1.0))


class TestSumLocalSearchRestarts:
    """Multi-seed climbs of the heuristic SumNCG path (above the limit)."""

    def _profile_and_game(self, seed=0, n=18):
        owned = random_owned_tree(n, seed=seed)
        return StrategyProfile.from_owned_graph(owned), SumNCG(alpha=1.0)

    def test_restarts_default_is_bit_identical(self):
        profile, game = self._profile_and_game()
        for player in list(profile)[:5]:
            one = best_response_sum_local_search(profile, player, game)
            explicit = best_response_sum_local_search(profile, player, game, restarts=1)
            assert one.strategy == explicit.strategy
            assert one.view_cost == explicit.view_cost

    def test_restarts_deterministic_and_never_worse(self):
        for seed in range(4):
            profile, game = self._profile_and_game(seed=seed)
            for player in list(profile)[:4]:
                single = best_response_sum_local_search(profile, player, game)
                multi = best_response_sum_local_search(
                    profile, player, game, restarts=5
                )
                again = best_response_sum_local_search(
                    profile, player, game, restarts=5
                )
                assert multi.strategy == again.strategy  # pure function
                assert multi.view_cost <= single.view_cost + 1e-9
                assert not multi.exact

    def test_restarts_threaded_through_dispatch(self):
        # Above the exhaustive limit the dispatch must hand the knob to the
        # local search: forcing a tiny limit routes a small view through the
        # heuristic path, where restarts must reproduce the direct call.
        profile, game = self._profile_and_game(n=14)
        player = list(profile)[0]
        via_dispatch = best_response(
            profile, player, game, sum_exhaustive_limit=2, sum_restarts=5
        )
        direct = best_response_sum_local_search(profile, player, game, restarts=5)
        assert via_dispatch.strategy == direct.strategy
        assert not via_dispatch.exact

    def test_invalid_restarts_rejected(self):
        profile, game = self._profile_and_game()
        with pytest.raises(ValueError, match="restarts"):
            best_response_sum_local_search(profile, list(profile)[0], game, restarts=0)
