"""Tests for the LKE deviation semantics (Propositions 2.1 and 2.2)."""

import math

import pytest

from repro.core.deviations import (
    deviation_is_forbidden_sum,
    is_improving_deviation,
    modified_view_graph,
    view_cost,
    worst_case_delta,
)
from repro.core.games import MaxNCG, SumNCG
from repro.core.strategies import StrategyProfile
from repro.core.views import extract_view


@pytest.fixture
def path_profile_5():
    """Path 0-1-2-3-4, each node buying the edge to its successor."""
    return StrategyProfile({0: {1}, 1: {2}, 2: {3}, 3: {4}, 4: frozenset()})


class TestModifiedViewGraph:
    def test_removes_owned_edges_only(self, path_profile_5):
        view = extract_view(path_profile_5, 1, k=2)
        modified = modified_view_graph(view, frozenset())
        # Player 1 owned (1, 2): it disappears; (0, 1) was bought by 0: it stays.
        assert not modified.has_edge(1, 2)
        assert modified.has_edge(0, 1)

    def test_adds_new_edges(self, path_profile_5):
        view = extract_view(path_profile_5, 1, k=2)
        modified = modified_view_graph(view, frozenset({3}))
        assert modified.has_edge(1, 3)

    def test_rejects_target_outside_view(self, path_profile_5):
        view = extract_view(path_profile_5, 0, k=1)
        with pytest.raises(ValueError):
            modified_view_graph(view, frozenset({4}))

    def test_rejects_self_edge(self, path_profile_5):
        view = extract_view(path_profile_5, 0, k=1)
        with pytest.raises(ValueError):
            modified_view_graph(view, frozenset({0}))

    def test_original_view_unchanged(self, path_profile_5):
        view = extract_view(path_profile_5, 1, k=2)
        modified_view_graph(view, frozenset())
        assert view.subgraph.has_edge(1, 2)


class TestViewCost:
    def test_current_strategy_cost_max(self, path_profile_5):
        game = MaxNCG(2.0, k=2)
        view = extract_view(path_profile_5, 2, k=2)
        # View of 2 is the whole path (radius 2 covers it); ecc inside = 2.
        assert view_cost(view, path_profile_5.strategy(2), game) == 2.0 * 1 + 2

    def test_current_strategy_cost_sum(self, path_profile_5):
        game = SumNCG(1.0, k=2)
        view = extract_view(path_profile_5, 2, k=2)
        assert view_cost(view, path_profile_5.strategy(2), game) == 1.0 + (1 + 1 + 2 + 2)

    def test_disconnecting_strategy_costs_infinity(self, path_profile_5):
        game = MaxNCG(2.0, k=2)
        view = extract_view(path_profile_5, 2, k=2)
        # Dropping the edge to 3 disconnects 3 and 4 from 2 inside the view.
        assert view_cost(view, frozenset(), game) == math.inf


class TestMaxDeviation:
    def test_improving_deviation_detected(self):
        # Path 0-1-2-3-4 with full knowledge and large view: the endpoint 0
        # improves by buying an edge to the centre 2 when α is small.
        profile = StrategyProfile({0: {1}, 1: {2}, 2: {3}, 3: {4}, 4: frozenset()})
        game = MaxNCG(0.5, k=4)
        view = extract_view(profile, 0, k=4)
        delta = worst_case_delta(view, profile.strategy(0), frozenset({1, 2}), game)
        # New ecc = 3 (node 4 is now at distance 3), old ecc = 4, the extra
        # edge costs 0.5: the worst-case delta is 0.5 - 1.
        assert delta == pytest.approx(0.5 - 1)
        assert is_improving_deviation(view, profile.strategy(0), frozenset({1, 2}), game)

    def test_not_improving_when_alpha_large(self):
        profile = StrategyProfile({0: {1}, 1: {2}, 2: {3}, 3: {4}, 4: frozenset()})
        game = MaxNCG(10.0, k=4)
        view = extract_view(profile, 0, k=4)
        assert not is_improving_deviation(
            view, profile.strategy(0), frozenset({1, 2}), game
        )

    def test_cycle_player_cannot_improve_when_alpha_geq_k_minus_1(self, cycle_profile):
        # Lemma 3.1 intuition: on a cycle with α >= k - 1, buying an edge
        # inside the (path-shaped) view saves at most k - 1.
        game = MaxNCG(2.0, k=3)
        view = extract_view(cycle_profile, 0, k=3)
        current = cycle_profile.strategy(0)
        for target in view.strategy_space:
            candidate = current | {target}
            assert not is_improving_deviation(view, current, candidate, game)

    def test_dropping_bridge_edge_never_improves(self, path_profile_5):
        game = MaxNCG(100.0, k=2)
        view = extract_view(path_profile_5, 2, k=2)
        delta = worst_case_delta(view, path_profile_5.strategy(2), frozenset(), game)
        assert delta == math.inf or delta > 0


class TestSumDeviation:
    def test_forbidden_when_frontier_pushed_away(self, path_profile_5):
        game = SumNCG(0.1, k=2)
        view = extract_view(path_profile_5, 2, k=2)
        # Frontier of 2 at radius 2 is {0, 4}.  Dropping the owned edge (2,3)
        # pushes 4 beyond distance 2 (in fact disconnects it).
        assert view.frontier == {0, 4}
        assert deviation_is_forbidden_sum(view, frozenset())
        assert worst_case_delta(view, path_profile_5.strategy(2), frozenset(), game) == math.inf

    def test_swap_that_keeps_frontier_close_is_allowed(self, path_profile_5):
        game = SumNCG(0.1, k=2)
        view = extract_view(path_profile_5, 2, k=2)
        # Buying an extra edge to 4 keeps every frontier vertex within k.
        new_strategy = frozenset({3, 4})
        assert not deviation_is_forbidden_sum(view, new_strategy)
        delta = worst_case_delta(view, path_profile_5.strategy(2), new_strategy, game)
        # Distance to 4 drops from 2 to 1, at a price of α = 0.1: improvement.
        assert delta == pytest.approx(0.1 - 1)

    def test_no_frontier_means_nothing_forbidden(self, star_profile):
        view = extract_view(star_profile, 0, k=3)
        assert view.frontier == set()
        assert not deviation_is_forbidden_sum(view, frozenset({1}))

    def test_forbidden_check_uses_modified_graph(self):
        # Cycle of 6 with k = 2: view of 0 is a path 4-5-0-1-2 with frontier
        # {2, 4}.  Swapping the owned edge (0,1) for (0,2) keeps 2 at distance
        # 1 but pushes ... 1 is not frontier, so the move stays allowed.
        profile = StrategyProfile(
            {i: {(i + 1) % 6} for i in range(6)}
        )
        view = extract_view(profile, 0, k=2)
        assert view.frontier == {2, 4}
        assert not deviation_is_forbidden_sum(view, frozenset({2}))

    def test_identical_strategy_has_zero_delta(self, path_profile_5):
        for game in (SumNCG(1.0, k=2), MaxNCG(1.0, k=2)):
            view = extract_view(path_profile_5, 1, k=2)
            current = path_profile_5.strategy(1)
            assert worst_case_delta(view, current, current, game) == pytest.approx(0.0)
