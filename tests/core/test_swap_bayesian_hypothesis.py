"""Property-based tests for the limited-move and Bayesian layers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bayesian import (
    EmptyWorldBelief,
    GeometricGrowthBelief,
    PessimisticBelief,
    bayesian_delta,
    expected_cost,
)
from repro.core.deviations import view_cost
from repro.core.games import FULL_KNOWLEDGE, MaxNCG, SumNCG
from repro.core.strategies import StrategyProfile
from repro.core.swap import (
    enumerate_greedy_moves,
    enumerate_swap_moves,
    greedy_dynamics,
    is_greedy_equilibrium,
    is_swap_equilibrium,
    swap_dynamics,
)
from repro.core.views import extract_view
from repro.graphs.generators.trees import random_owned_tree


@st.composite
def tree_profiles(draw, min_nodes: int = 6, max_nodes: int = 14):
    """Random-tree strategy profiles with fair-coin ownership."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=2_000))
    return StrategyProfile.from_owned_graph(random_owned_tree(n, seed=seed))


@st.composite
def games(draw):
    alpha = draw(st.sampled_from([0.5, 1.0, 2.0, 5.0]))
    k = draw(st.sampled_from([1, 2, 3, FULL_KNOWLEDGE]))
    usage = draw(st.sampled_from(["max", "sum"]))
    return MaxNCG(alpha=alpha, k=k) if usage == "max" else SumNCG(alpha=alpha, k=k)


class TestMoveEnumerationProperties:
    @settings(max_examples=30, deadline=None)
    @given(profile=tree_profiles(), game=games())
    def test_swap_moves_are_greedy_moves(self, profile, game):
        player = profile.players()[0]
        view = extract_view(profile, player, game.k)
        strategy = profile.strategy(player)
        swaps = set(enumerate_swap_moves(view, strategy))
        greedy = set(enumerate_greedy_moves(view, strategy))
        assert swaps <= greedy

    @settings(max_examples=30, deadline=None)
    @given(profile=tree_profiles(), game=games())
    def test_moves_produce_valid_strategies(self, profile, game):
        player = profile.players()[0]
        view = extract_view(profile, player, game.k)
        strategy = profile.strategy(player)
        for move in enumerate_greedy_moves(view, strategy):
            new_strategy = move.apply(strategy)
            assert player not in new_strategy
            assert new_strategy <= view.strategy_space | strategy


class TestDynamicsProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=6, max_value=12),
        seed=st.integers(min_value=0, max_value=500),
        alpha=st.sampled_from([0.5, 2.0]),
        k=st.sampled_from([2, FULL_KNOWLEDGE]),
    )
    def test_converged_greedy_dynamics_reach_greedy_equilibria(self, n, seed, alpha, k):
        owned = random_owned_tree(n, seed=seed)
        game = MaxNCG(alpha=alpha, k=k)
        result = greedy_dynamics(owned, game)
        if result.converged:
            assert is_greedy_equilibrium(result.final_profile, game)

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=6, max_value=12),
        seed=st.integers(min_value=0, max_value=500),
        alpha=st.sampled_from([1.0, 3.0]),
        k=st.sampled_from([2, 3]),
    )
    def test_swap_dynamics_preserve_building_costs(self, n, seed, alpha, k):
        owned = random_owned_tree(n, seed=seed)
        initial = StrategyProfile.from_owned_graph(owned)
        game = MaxNCG(alpha=alpha, k=k)
        result = swap_dynamics(owned, game)
        final = result.final_profile
        for player in initial:
            assert initial.num_bought_edges(player) == final.num_bought_edges(player)
        if result.converged:
            assert is_swap_equilibrium(final, game)

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=6, max_value=12),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_social_cost_never_padded_below_optimum(self, n, seed):
        owned = random_owned_tree(n, seed=seed)
        game = MaxNCG(alpha=2.0, k=2)
        result = greedy_dynamics(owned, game)
        assert result.final_metrics.quality >= 1.0 - 1e-9


class TestBayesianProperties:
    @settings(max_examples=30, deadline=None)
    @given(profile=tree_profiles(), game=games())
    def test_empty_world_expected_cost_equals_view_cost(self, profile, game):
        player = profile.players()[0]
        view = extract_view(profile, player, game.k)
        strategy = profile.strategy(player)
        assert expected_cost(view, strategy, game, EmptyWorldBelief()) == pytest.approx(
            view_cost(view, strategy, game)
        )

    @settings(max_examples=30, deadline=None)
    @given(
        profile=tree_profiles(),
        game=games(),
        eta_small=st.floats(min_value=0.0, max_value=5.0),
        eta_extra=st.floats(min_value=0.1, max_value=20.0),
    )
    def test_expected_cost_monotone_in_hidden_mass(self, profile, game, eta_small, eta_extra):
        player = profile.players()[0]
        view = extract_view(profile, player, game.k)
        strategy = profile.strategy(player)
        low = expected_cost(view, strategy, game, PessimisticBelief(eta=eta_small))
        high = expected_cost(view, strategy, game, PessimisticBelief(eta=eta_small + eta_extra))
        assert high >= low - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(profile=tree_profiles(), game=games())
    def test_delta_is_antisymmetric_for_finite_costs(self, profile, game):
        player = profile.players()[0]
        view = extract_view(profile, player, game.k)
        current = profile.strategy(player)
        # Compare against the "buy one more visible node" strategy when
        # possible, otherwise the same strategy (delta 0).
        extra = sorted(view.strategy_space - current, key=repr)
        other = current | {extra[0]} if extra else current
        belief = GeometricGrowthBelief(depth=2)
        forward = bayesian_delta(view, current, other, game, belief)
        backward = bayesian_delta(view, other, current, game, belief)
        if math.isfinite(forward) and math.isfinite(backward):
            assert forward == pytest.approx(-backward)

    @settings(max_examples=20, deadline=None)
    @given(profile=tree_profiles())
    def test_max_usage_expected_cost_at_least_view_cost(self, profile):
        # Beliefs can only push the eccentricity (and hence the cost) up.
        game = MaxNCG(alpha=1.0, k=2)
        player = profile.players()[0]
        view = extract_view(profile, player, game.k)
        strategy = profile.strategy(player)
        base = view_cost(view, strategy, game)
        for belief in (PessimisticBelief(eta=3.0, extra_distance=2.0), GeometricGrowthBelief()):
            assert expected_cost(view, strategy, game, belief) >= base - 1e-9
