"""The cost-model layer: strict vs disconnection-tolerant usage semantics.

Three contracts matter:

* on a connected network every model agrees *exactly* (the strict paper
  semantics are reproduced bit-for-bit by any tolerant β);
* on a disconnected network the strict model prices everything at inf (and
  the metrics refuse it) while a tolerant model prices each unreachable
  node as if it sat β hops away;
* models are engine-grade citizens: hashable inside :class:`GameSpec`,
  picklable across sweep workers, JSON round-trippable, and consumed by the
  tolerant best-response regimes (cross-checked against brute force here).
"""

import itertools
import math
import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.best_response import best_response, best_response_max
from repro.core.cost_models import (
    STRICT,
    StrictCosts,
    TolerantCosts,
    cost_model_from_payload,
    cost_model_to_payload,
    resolve_cost_model,
)
from repro.core.costs import all_player_costs, social_cost, usage_from_distances
from repro.core.deviations import COST_EPS, view_cost
from repro.core.games import FULL_KNOWLEDGE, GameSpec, MaxNCG, SumNCG, UsageKind
from repro.core.metrics import compute_profile_metrics
from repro.core.serialization import game_from_dict, game_to_dict
from repro.core.strategies import StrategyProfile
from repro.core.views import extract_view
from repro.graphs.generators.trees import random_owned_tree


def _random_profile(n: int, seed: int) -> StrategyProfile:
    """A possibly-disconnected random strategy profile on ``n`` players."""
    rng = random.Random(seed)
    strategies = {}
    for p in range(n):
        others = [q for q in range(n) if q != p]
        strategies[p] = frozenset(rng.sample(others, rng.randint(0, min(2, len(others)))))
    return StrategyProfile(strategies)


DISCONNECTED = StrategyProfile(
    {0: frozenset({1}), 1: frozenset(), 2: frozenset({3}), 3: frozenset()}
)

tree_profiles = st.builds(
    lambda n, seed: StrategyProfile.from_owned_graph(random_owned_tree(n, seed=seed)),
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=0, max_value=5_000),
)
random_profiles = st.builds(
    _random_profile,
    st.integers(min_value=3, max_value=9),
    st.integers(min_value=0, max_value=5_000),
)
alphas = st.sampled_from([0.25, 0.5, 1.0, 2.0, 5.0])
betas = st.sampled_from([1.0, 2.0, 7.5, 40.0])


class TestModelBasics:
    def test_strict_aggregates(self):
        assert STRICT.usage_max(3.0, 0) == 3.0
        assert STRICT.usage_max(3.0, 2) == math.inf
        assert STRICT.usage_sum(10.0, 0) == 10.0
        assert STRICT.usage_sum(10.0, 1) == math.inf
        assert not STRICT.is_finite
        assert STRICT == StrictCosts()

    def test_tolerant_aggregates(self):
        model = TolerantCosts(beta=5.0)
        assert model.usage_max(3.0, 0) == 3.0
        assert model.usage_max(3.0, 2) == 5.0
        assert model.usage_max(8.0, 2) == 8.0  # realised ecc dominates beta
        assert model.usage_sum(10.0, 3) == 25.0
        assert model.is_finite
        assert model.unreachable_distance == 5.0

    @pytest.mark.parametrize("beta", [0.0, 0.5, -1.0, math.inf, math.nan])
    def test_tolerant_rejects_bad_beta(self, beta):
        with pytest.raises(ValueError, match="beta"):
            TolerantCosts(beta=beta)

    def test_resolve(self):
        assert resolve_cost_model(None) is STRICT
        assert resolve_cost_model("strict") is STRICT
        assert resolve_cost_model("tolerant", beta=3.0) == TolerantCosts(3.0)
        model = TolerantCosts(2.0)
        assert resolve_cost_model(model) is model
        with pytest.raises(ValueError, match="beta"):
            resolve_cost_model("tolerant")
        with pytest.raises(ValueError, match="unknown cost model"):
            resolve_cost_model("lenient")

    def test_payload_round_trip(self):
        for model in (STRICT, TolerantCosts(2.0), TolerantCosts(100.0)):
            assert cost_model_from_payload(cost_model_to_payload(model)) == model
        # Pre-cost-model documents carry no payload: they decode to strict.
        assert cost_model_from_payload(None) is STRICT

    def test_game_spec_integration(self):
        tol = TolerantCosts(beta=7.0)
        strict_game = MaxNCG(2.0, k=2)
        tolerant_game = MaxNCG(2.0, k=2, cost_model=tol)
        assert strict_game != tolerant_game
        assert {strict_game: "a", tolerant_game: "b"}[tolerant_game] == "b"
        # Strict labels are unchanged from the pre-cost-model layout.
        assert strict_game.label() == "maxncg(alpha=2, k=2)"
        assert "tolerant(beta=7)" in tolerant_game.label()
        assert strict_game.with_cost_model(tol) == tolerant_game
        assert pickle.loads(pickle.dumps(tolerant_game)) == tolerant_game
        with pytest.raises(ValueError, match="cost_model"):
            GameSpec(alpha=1.0, usage=UsageKind.MAX, cost_model="tolerant")

    def test_game_serialization_round_trip_and_back_compat(self):
        tolerant_game = SumNCG(1.5, k=3, cost_model=TolerantCosts(9.0))
        assert game_from_dict(game_to_dict(tolerant_game)) == tolerant_game
        strict_payload = game_to_dict(SumNCG(1.5, k=3))
        # Strict documents stay byte-identical to the old format.
        assert "cost_model" not in strict_payload
        assert game_from_dict(strict_payload) == SumNCG(1.5, k=3)


class TestConnectedAgreement:
    """On connected profiles, strict and tolerant semantics agree exactly."""

    @given(tree_profiles, alphas, betas)
    @settings(max_examples=30, deadline=None)
    def test_costs_and_metrics_agree_on_connected(self, profile, alpha, beta):
        tol = TolerantCosts(beta=beta)
        for factory in (MaxNCG, SumNCG):
            strict_game = factory(alpha, k=2)
            tolerant_game = factory(alpha, k=2, cost_model=tol)
            assert all_player_costs(profile, strict_game) == all_player_costs(
                profile, tolerant_game
            )
            strict_metrics = compute_profile_metrics(profile, strict_game)
            tolerant_metrics = compute_profile_metrics(profile, tolerant_game)
            assert strict_metrics == tolerant_metrics
            assert tolerant_metrics.unreachable_pairs == 0

    @given(tree_profiles, alphas, betas, st.sampled_from([2, 3, FULL_KNOWLEDGE]))
    @settings(max_examples=25, deadline=None)
    def test_view_costs_agree_on_connected_views(self, profile, alpha, beta, k):
        tol = TolerantCosts(beta=beta)
        for player in list(profile)[:4]:
            view = extract_view(profile, player, k)
            strategy = profile.strategy(player)
            for usage_factory in (MaxNCG, SumNCG):
                assert view_cost(view, strategy, usage_factory(alpha, k=k)) == view_cost(
                    view, strategy, usage_factory(alpha, k=k, cost_model=tol)
                )

    def test_usage_from_distances_dispatch(self):
        distances = {0: 0, 1: 1, 2: 2}
        assert usage_from_distances(distances, 3, UsageKind.MAX) == 2.0
        assert usage_from_distances(distances, 5, UsageKind.MAX) == math.inf
        tol = TolerantCosts(beta=4.0)
        assert usage_from_distances(distances, 5, UsageKind.MAX, cost_model=tol) == 4.0
        assert usage_from_distances(distances, 5, UsageKind.SUM, cost_model=tol) == 11.0


class TestDisconnectedPricing:
    def test_strict_prices_disconnection_at_inf(self):
        costs = all_player_costs(DISCONNECTED, MaxNCG(1.0))
        assert all(math.isinf(v) for v in costs.values())
        with pytest.raises(ValueError, match="disconnected"):
            compute_profile_metrics(DISCONNECTED, MaxNCG(1.0))

    def test_tolerant_prices_disconnection_finitely(self):
        game = SumNCG(1.0, cost_model=TolerantCosts(beta=6.0))
        costs = all_player_costs(DISCONNECTED, game)
        # Each player: 1 bought-or-free neighbour at distance 1, two
        # unreachable nodes at beta each (owners additionally pay alpha).
        assert costs[1] == 1 + 2 * 6.0
        assert costs[0] == 1.0 + 1 + 2 * 6.0
        assert social_cost(DISCONNECTED, game) == sum(costs.values())
        metrics = compute_profile_metrics(DISCONNECTED, game)
        assert metrics.social_cost == sum(costs.values())
        assert metrics.unreachable_pairs == 8
        assert metrics.diameter == 1  # largest realised distance
        assert all(map(math.isfinite, (metrics.max_player_cost, metrics.quality)))

    def test_metrics_block_size_invariance_on_disconnected(self):
        game = MaxNCG(0.5, k=2, cost_model=TolerantCosts(beta=3.0))
        profile = StrategyProfile(
            {
                0: frozenset({1, 2}),
                1: frozenset(),
                2: frozenset(),
                3: frozenset({4}),
                4: frozenset({5}),
                5: frozenset(),
            }
        )
        reference = compute_profile_metrics(profile, game, block_size=6)
        for block_size in (1, 2, 5, 100):
            assert compute_profile_metrics(profile, game, block_size=block_size) == reference


def _brute_force_best(profile, player, game):
    """Naive enumeration over every strategy, priced by view_cost."""
    view = extract_view(profile, player, game.k)
    candidates = sorted(view.strategy_space, key=repr)
    best_cost = view_cost(view, profile.strategy(player), game)
    best_strategy = profile.strategy(player)
    for size in range(len(candidates) + 1):
        for combo in itertools.combinations(candidates, size):
            cost = view_cost(view, frozenset(combo), game)
            if cost < best_cost - COST_EPS:
                best_cost, best_strategy = cost, frozenset(combo)
    return best_cost, best_strategy


class TestTolerantBestResponseMax:
    """The component-abandonment regime, pinned against brute force."""

    def test_abandoning_a_costly_branch_wins(self):
        # u (=0) bought the only edge towards a long chain; with a huge
        # alpha and a small beta the rational reply is to cut it loose.
        profile = StrategyProfile(
            {
                0: frozenset({1, 3}),
                1: frozenset({2}),
                2: frozenset(),
                3: frozenset(),
                4: frozenset({3}),
            }
        )
        game = MaxNCG(10.0, cost_model=TolerantCosts(beta=2.0))
        response = best_response_max(profile, 0, game)
        assert response.strategy == frozenset()
        # She keeps nothing: usage max(0, beta) = 2 beats paying alpha.
        assert response.view_cost == 2.0
        assert response.is_improving
        # Under the strict model dropping everything costs inf: she holds.
        strict = best_response_max(profile, 0, MaxNCG(10.0))
        assert strict.strategy != frozenset()

    def test_buyer_components_cannot_be_abandoned(self):
        # Player 0 has a buyer (1): component {1, 2} is reached no matter
        # what she plays, so her usage must cover it.
        profile = StrategyProfile(
            {
                0: frozenset(),
                1: frozenset({0, 2}),
                2: frozenset(),
            }
        )
        game = MaxNCG(0.5, cost_model=TolerantCosts(beta=1.0))
        response = best_response_max(profile, 0, game)
        brute_cost, _ = _brute_force_best(profile, 0, game)
        assert response.view_cost == pytest.approx(brute_cost)
        assert response.view_cost >= 1.0  # the buyer keeps her attached

    @given(
        random_profiles,
        st.sampled_from([0.3, 1.0, 2.5, 6.0]),
        st.sampled_from([1.0, 2.0, 5.0, 20.0]),
        st.sampled_from([2, 3, FULL_KNOWLEDGE]),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, profile, alpha, beta, k):
        game = MaxNCG(alpha, k=k, cost_model=TolerantCosts(beta=beta))
        for player in list(profile)[:4]:
            brute_cost, _ = _brute_force_best(profile, player, game)
            response = best_response_max(profile, player, game)
            assert response.view_cost == pytest.approx(brute_cost)
            assert response.exact

    @given(
        random_profiles,
        st.sampled_from([0.3, 1.0, 2.5]),
        st.sampled_from([1.0, 3.0, 15.0]),
    )
    @settings(max_examples=30, deadline=None)
    def test_sum_dispatch_matches_brute_force_tolerant(self, profile, alpha, beta):
        game = SumNCG(alpha, k=2, cost_model=TolerantCosts(beta=beta))
        for player in list(profile)[:3]:
            response = best_response(profile, player, game)
            view = extract_view(profile, player, game.k)
            # The dispatch's reply can never be beaten by any allowed move
            # (Prop 2.2 forbids some strategies, so compare via the same
            # worst-case rule the solver optimises).
            from repro.core.deviations import worst_case_delta

            current = profile.strategy(player)
            current_cost = view_cost(view, current, game)
            candidates = sorted(view.strategy_space, key=repr)
            for size in range(len(candidates) + 1):
                for combo in itertools.combinations(candidates, size):
                    delta = worst_case_delta(view, current, frozenset(combo), game)
                    if math.isinf(delta):
                        continue
                    assert current_cost + delta >= response.view_cost - COST_EPS
