"""Tests for the game-state serialization (profiles, games, dynamics checkpoints)."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamics import best_response_dynamics
from repro.core.equilibria import is_equilibrium
from repro.core.games import FULL_KNOWLEDGE, GameSpec, MaxNCG, SumNCG, UsageKind
from repro.core.serialization import (
    dynamics_result_to_dict,
    game_from_dict,
    game_to_dict,
    profile_from_dict,
    profile_to_dict,
    read_dynamics_checkpoint,
    read_profile_json,
    write_dynamics_result_json,
    write_profile_json,
)
from repro.core.strategies import StrategyProfile
from repro.graphs.generators.classic import owned_cycle, owned_star
from repro.graphs.generators.torus import TorusParameters, stretched_torus
from repro.graphs.generators.trees import random_owned_tree


class TestProfileRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_tree_profiles(self, seed):
        profile = StrategyProfile.from_owned_graph(random_owned_tree(15, seed=seed))
        restored = profile_from_dict(profile_to_dict(profile))
        assert restored == profile

    def test_star_and_cycle_fixtures(self):
        for owned in (owned_star(7), owned_cycle(9)):
            profile = StrategyProfile.from_owned_graph(owned)
            assert profile_from_dict(profile_to_dict(profile)) == profile

    def test_tuple_node_labels(self):
        owned = stretched_torus(TorusParameters(stretch=2, deltas=(3, 3)))
        profile = StrategyProfile.from_owned_graph(owned)
        restored = profile_from_dict(profile_to_dict(profile))
        assert restored == profile

    def test_document_is_json_serialisable(self):
        profile = StrategyProfile.from_owned_graph(random_owned_tree(10, seed=5))
        json.dumps(profile_to_dict(profile))

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            profile_from_dict({"format": "repro-game-spec"})

    def test_file_round_trip(self, tmp_path):
        profile = StrategyProfile.from_owned_graph(random_owned_tree(12, seed=7))
        path = tmp_path / "profile.json"
        write_profile_json(profile, path)
        assert read_profile_json(path) == profile

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=16),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_round_trip_property(self, n, seed):
        profile = StrategyProfile.from_owned_graph(random_owned_tree(n, seed=seed))
        assert profile_from_dict(profile_to_dict(profile)) == profile


class TestGameRoundTrip:
    @pytest.mark.parametrize(
        "game",
        [
            MaxNCG(alpha=2.0, k=3),
            MaxNCG(alpha=0.5),
            SumNCG(alpha=7.0, k=1),
            SumNCG(alpha=1.0),
            GameSpec(alpha=3.5, usage=UsageKind.MAX, k=10),
        ],
    )
    def test_round_trip(self, game):
        restored = game_from_dict(game_to_dict(game))
        assert restored == game

    def test_full_knowledge_encoded_as_null(self):
        payload = game_to_dict(MaxNCG(alpha=1.0))
        assert payload["k"] is None
        assert game_from_dict(payload).k == FULL_KNOWLEDGE

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            game_from_dict({"format": "repro-strategy-profile"})


class TestDynamicsCheckpoint:
    def _run(self):
        owned = random_owned_tree(12, seed=3)
        game = MaxNCG(alpha=2.0, k=2)
        return best_response_dynamics(owned, game, solver="branch_and_bound"), game

    def test_checkpoint_document_structure(self):
        result, game = self._run()
        payload = dynamics_result_to_dict(result)
        json.dumps(payload)  # Must be valid JSON (inf metrics are nulled).
        assert payload["converged"] == result.converged
        assert payload["rounds"] == result.rounds
        assert payload["game"]["alpha"] == game.alpha

    def test_write_and_reload_checkpoint(self, tmp_path):
        result, game = self._run()
        path = tmp_path / "checkpoint.json"
        write_dynamics_result_json(result, path)
        profile, loaded_game, document = read_dynamics_checkpoint(path)
        assert loaded_game == game
        assert profile == result.final_profile
        assert document["total_changes"] == result.total_changes
        # The reloaded profile is still an equilibrium of the reloaded game -
        # the checkpoint is sufficient to resume any post-hoc analysis.
        assert is_equilibrium(profile, loaded_game)

    def test_infinite_metrics_become_null(self):
        # A single-player profile has an infinite unfairness ratio (its only
        # player has cost zero); the checkpoint must still be valid JSON.
        profile = StrategyProfile({0: frozenset()})
        game = MaxNCG(alpha=1.0)
        from repro.core.metrics import compute_profile_metrics
        from repro.core.dynamics import DynamicsResult

        metrics = compute_profile_metrics(profile, game)
        result = DynamicsResult(
            game=game,
            initial_profile=profile,
            final_profile=profile,
            converged=True,
            cycled=False,
            rounds=0,
            total_changes=0,
            final_metrics=metrics,
        )
        payload = dynamics_result_to_dict(result)
        text = json.dumps(payload)
        assert "Infinity" not in text

    def test_reading_wrong_file_raises(self, tmp_path):
        path = tmp_path / "not_a_checkpoint.json"
        path.write_text(json.dumps({"format": "repro-graph"}), encoding="utf-8")
        with pytest.raises(ValueError):
            read_dynamics_checkpoint(path)
