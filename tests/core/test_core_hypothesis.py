"""Property-based tests for the game engine invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.best_response import best_response_max
from repro.core.costs import all_player_costs, social_cost
from repro.core.deviations import view_cost, worst_case_delta
from repro.core.dynamics import best_response_dynamics
from repro.core.games import FULL_KNOWLEDGE, MaxNCG, SumNCG
from repro.core.strategies import StrategyProfile
from repro.core.views import extract_view
from repro.graphs.generators.trees import random_owned_tree


profiles = st.builds(
    lambda n, seed: StrategyProfile.from_owned_graph(random_owned_tree(n, seed=seed)),
    st.integers(min_value=2, max_value=14),
    st.integers(min_value=0, max_value=5_000),
)
alphas = st.sampled_from([0.25, 0.5, 1.0, 2.0, 5.0])
ks = st.sampled_from([1, 2, 3, FULL_KNOWLEDGE])


class TestCostInvariants:
    @given(profiles, alphas)
    @settings(max_examples=30, deadline=None)
    def test_social_cost_is_sum_of_player_costs(self, profile, alpha):
        game = MaxNCG(alpha)
        costs = all_player_costs(profile, game)
        assert social_cost(profile, game) == sum(costs.values())

    @given(profiles, alphas)
    @settings(max_examples=30, deadline=None)
    def test_sum_cost_at_least_max_cost(self, profile, alpha):
        max_costs = all_player_costs(profile, MaxNCG(alpha))
        sum_costs = all_player_costs(profile, SumNCG(alpha))
        for player in profile:
            assert sum_costs[player] >= max_costs[player]

    @given(profiles, alphas)
    @settings(max_examples=30, deadline=None)
    def test_costs_positive_and_finite_on_connected_trees(self, profile, alpha):
        for value in all_player_costs(profile, MaxNCG(alpha)).values():
            assert 0 <= value < math.inf


class TestViewInvariants:
    @given(profiles, ks)
    @settings(max_examples=30, deadline=None)
    def test_view_sizes_monotone_in_k(self, profile, k):
        if k == FULL_KNOWLEDGE:
            return
        for player in list(profile)[:5]:
            small = extract_view(profile, player, k)
            large = extract_view(profile, player, k + 1)
            assert small.nodes <= large.nodes
            assert small.size <= large.size

    @given(profiles, ks)
    @settings(max_examples=30, deadline=None)
    def test_frontier_is_subset_of_view(self, profile, k):
        for player in list(profile)[:5]:
            view = extract_view(profile, player, k)
            assert view.frontier <= view.nodes
            if k != FULL_KNOWLEDGE:
                assert all(view.distances[node] == k for node in view.frontier)

    @given(profiles, ks)
    @settings(max_examples=30, deadline=None)
    def test_current_strategy_cost_matches_player_cost_under_full_knowledge(
        self, profile, k
    ):
        # Under full knowledge the in-view cost is the true cost.
        game = MaxNCG(1.0, k=FULL_KNOWLEDGE)
        costs = all_player_costs(profile, game)
        for player in list(profile)[:5]:
            view = extract_view(profile, player, FULL_KNOWLEDGE)
            assert view_cost(view, profile.strategy(player), game) == costs[player]


class TestBestResponseInvariants:
    @given(profiles, alphas, ks)
    @settings(max_examples=25, deadline=None)
    def test_best_response_never_hurts_in_view(self, profile, alpha, k):
        game = MaxNCG(alpha, k=k)
        for player in list(profile)[:4]:
            response = best_response_max(profile, player, game)
            assert response.view_cost <= response.current_view_cost + 1e-9

    @given(profiles, alphas, ks)
    @settings(max_examples=25, deadline=None)
    def test_best_response_delta_consistency(self, profile, alpha, k):
        # The worst-case delta of switching to the best response equals the
        # (negated) improvement: the two code paths must agree.
        game = MaxNCG(alpha, k=k)
        for player in list(profile)[:3]:
            response = best_response_max(profile, player, game)
            view = extract_view(profile, player, k)
            delta = worst_case_delta(view, profile.strategy(player), response.strategy, game)
            assert delta == -response.improvement or abs(delta + response.improvement) < 1e-9

    @given(profiles, alphas)
    @settings(max_examples=20, deadline=None)
    def test_full_knowledge_best_response_at_most_local_cost(self, profile, alpha):
        # Enlarging the strategy space (bigger view) can only improve the
        # best achievable in-view cost relative to... the local view cost of
        # the same current strategy; sanity-check the relation through the
        # improvement being non-negative in both cases.
        local = MaxNCG(alpha, k=2)
        full = MaxNCG(alpha, k=FULL_KNOWLEDGE)
        for player in list(profile)[:3]:
            assert best_response_max(profile, player, local).improvement >= -1e-9
            assert best_response_max(profile, player, full).improvement >= -1e-9


class TestDynamicsInvariants:
    @given(
        st.integers(min_value=4, max_value=12),
        st.integers(min_value=0, max_value=1_000),
        alphas,
        st.sampled_from([1, 2, FULL_KNOWLEDGE]),
    )
    @settings(max_examples=15, deadline=None)
    def test_dynamics_terminates_and_is_consistent(self, n, seed, alpha, k):
        game = MaxNCG(alpha, k=k)
        result = best_response_dynamics(
            random_owned_tree(n, seed=seed), game, max_rounds=30
        )
        assert result.rounds <= 30
        assert result.total_changes >= 0
        if result.converged:
            # No player can improve at the reported equilibrium.
            for player in list(result.final_profile)[:4]:
                response = best_response_max(result.final_profile, player, game)
                assert not response.is_improving

    @given(
        st.integers(min_value=4, max_value=10),
        st.integers(min_value=0, max_value=1_000),
        alphas,
    )
    @settings(max_examples=10, deadline=None)
    def test_final_network_stays_connected(self, n, seed, alpha):
        game = MaxNCG(alpha, k=2)
        result = best_response_dynamics(random_owned_tree(n, seed=seed), game)
        from repro.graphs.traversal import is_connected

        assert is_connected(result.final_profile.graph())
