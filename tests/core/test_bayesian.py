"""Tests for the Bayesian (belief-based) relaxation of the LKE deviation rule."""

import math

import pytest

from repro.core.bayesian import (
    Belief,
    EmptyWorldBelief,
    GeometricGrowthBelief,
    PessimisticBelief,
    bayesian_best_response,
    bayesian_delta,
    expected_cost,
    is_bayesian_equilibrium,
    is_bayesian_improving,
)
from repro.core.deviations import view_cost, worst_case_delta
from repro.core.equilibria import is_equilibrium
from repro.core.games import MaxNCG, SumNCG
from repro.core.strategies import StrategyProfile
from repro.core.views import extract_view
from repro.graphs.generators.classic import owned_cycle, owned_star
from repro.graphs.generators.trees import random_owned_tree


class TestBeliefObjects:
    def test_belief_validation(self):
        with pytest.raises(ValueError):
            Belief(hidden_mass=-1.0, expected_extra_distance=0.0)
        with pytest.raises(ValueError):
            Belief(hidden_mass=0.0, expected_extra_distance=-1.0)

    def test_empty_world_belief(self, cycle_profile):
        view = extract_view(cycle_profile, 0, 2)
        belief = EmptyWorldBelief()
        for vertex in view.frontier:
            summary = belief.for_frontier_vertex(view, vertex)
            assert summary.hidden_mass == 0.0

    def test_pessimistic_belief_parameters(self):
        belief = PessimisticBelief(eta=50.0, extra_distance=3.0)
        assert belief.eta == 50.0
        with pytest.raises(ValueError):
            PessimisticBelief(eta=-1.0)
        with pytest.raises(ValueError):
            PessimisticBelief(extra_distance=-0.5)

    def test_geometric_belief_estimates_branching_from_degree(self, cycle_profile):
        view = extract_view(cycle_profile, 0, 2)
        belief = GeometricGrowthBelief(depth=2)
        for vertex in view.frontier:
            summary = belief.for_frontier_vertex(view, vertex)
            # Frontier vertices of a cycle view have in-view degree 1, so the
            # estimated branching is 0 and nothing is expected behind them.
            assert summary.hidden_mass == 0.0

    def test_geometric_belief_explicit_branching(self, cycle_profile):
        view = extract_view(cycle_profile, 0, 2)
        belief = GeometricGrowthBelief(branching=2.0, depth=3)
        vertex = next(iter(view.frontier))
        summary = belief.for_frontier_vertex(view, vertex)
        assert summary.hidden_mass == pytest.approx(2 + 4 + 8)
        assert 1.0 <= summary.expected_extra_distance <= 3.0

    def test_geometric_belief_validation(self):
        with pytest.raises(ValueError):
            GeometricGrowthBelief(branching=-1.0)
        with pytest.raises(ValueError):
            GeometricGrowthBelief(depth=0)


class TestExpectedCost:
    def test_empty_world_matches_view_cost(self, cycle_profile):
        game = SumNCG(alpha=2.0, k=2)
        view = extract_view(cycle_profile, 0, game.k)
        strategy = cycle_profile.strategy(0)
        assert expected_cost(view, strategy, game, EmptyWorldBelief()) == pytest.approx(
            view_cost(view, strategy, game)
        )

    def test_empty_world_matches_view_cost_max(self, cycle_profile):
        game = MaxNCG(alpha=2.0, k=2)
        view = extract_view(cycle_profile, 0, game.k)
        strategy = cycle_profile.strategy(0)
        assert expected_cost(view, strategy, game, EmptyWorldBelief()) == pytest.approx(
            view_cost(view, strategy, game)
        )

    def test_full_knowledge_beliefs_are_irrelevant(self, star_profile):
        # Under full knowledge the frontier is empty, so every belief yields
        # the same (exact) cost.
        game = SumNCG(alpha=2.0)
        view = extract_view(star_profile, 0, game.k)
        strategy = star_profile.strategy(0)
        exact = view_cost(view, strategy, game)
        for belief in (EmptyWorldBelief(), PessimisticBelief(eta=100.0), GeometricGrowthBelief()):
            assert expected_cost(view, strategy, game, belief) == pytest.approx(exact)

    def test_pessimistic_belief_adds_mass_per_frontier_vertex(self, cycle_profile):
        game = SumNCG(alpha=2.0, k=2)
        view = extract_view(cycle_profile, 0, game.k)
        strategy = cycle_profile.strategy(0)
        base = view_cost(view, strategy, game)
        belief = PessimisticBelief(eta=10.0, extra_distance=1.0)
        expected = expected_cost(view, strategy, game, belief)
        # Two frontier vertices at distance 2, each carrying 10 hidden nodes
        # at expected distance 3.
        assert expected == pytest.approx(base + 2 * 10.0 * 3.0)

    def test_pessimistic_belief_max_game_raises_eccentricity(self, cycle_profile):
        game = MaxNCG(alpha=2.0, k=2)
        view = extract_view(cycle_profile, 0, game.k)
        strategy = cycle_profile.strategy(0)
        base = view_cost(view, strategy, game)
        belief = PessimisticBelief(eta=1.0, extra_distance=4.0)
        assert expected_cost(view, strategy, game, belief) == pytest.approx(base + 4.0)

    def test_disconnecting_strategy_is_infinite(self, cycle_profile):
        game = SumNCG(alpha=2.0, k=2)
        view = extract_view(cycle_profile, 0, game.k)
        assert math.isinf(expected_cost(view, frozenset(), game, EmptyWorldBelief()))


class TestBayesianDeltaAndImprovement:
    def test_delta_sign_matches_costs(self, cycle_profile):
        game = SumNCG(alpha=0.5, k=2)
        view = extract_view(cycle_profile, 0, game.k)
        current = cycle_profile.strategy(0)
        target = next(iter(view.frontier))
        richer = current | {target}
        belief = EmptyWorldBelief()
        delta = bayesian_delta(view, current, richer, game, belief)
        assert delta == pytest.approx(
            expected_cost(view, richer, game, belief) - expected_cost(view, current, game, belief)
        )

    def test_optimistic_player_moves_where_worst_case_player_would_not(self, cycle_profile):
        # Buying an edge towards a frontier vertex in SumNCG with moderate
        # alpha: the worst-case rule says "not improving" (the in-view saving
        # is 1 < alpha), and an optimistic player agrees; but a believer in
        # large hidden mass *behind the bought vertex* sees a big expected
        # saving, because the hidden vertices get one step closer too.
        game = SumNCG(alpha=2.0, k=2)
        view = extract_view(cycle_profile, 0, game.k)
        current = cycle_profile.strategy(0)
        target = sorted(view.frontier, key=repr)[0]
        richer = current | {target}
        assert worst_case_delta(view, current, richer, game) > 0
        assert not is_bayesian_improving(view, current, richer, game, EmptyWorldBelief())
        heavy = PessimisticBelief(eta=20.0, extra_distance=1.0)
        assert is_bayesian_improving(view, current, richer, game, heavy)

    def test_both_infinite_costs_give_zero_delta(self, cycle_profile):
        game = SumNCG(alpha=1.0, k=2)
        view = extract_view(cycle_profile, 0, game.k)
        delta = bayesian_delta(view, frozenset(), frozenset(), game, EmptyWorldBelief())
        assert delta == 0.0


class TestBayesianBestResponseAndEquilibrium:
    def test_best_response_returns_current_when_stable(self):
        profile = StrategyProfile.from_owned_graph(owned_star(6))
        game = MaxNCG(alpha=2.0)
        strategy, cost = bayesian_best_response(profile, 0, game, EmptyWorldBelief())
        assert strategy == profile.strategy(0)
        assert cost == pytest.approx(
            view_cost(extract_view(profile, 0, game.k), strategy, game)
        )

    def test_best_response_improves_when_possible(self):
        profile = StrategyProfile.from_owned_graph(owned_star(6, center_owns=False))
        game = SumNCG(alpha=0.25)
        strategy, cost = bayesian_best_response(profile, 1, game, EmptyWorldBelief())
        current_cost = view_cost(extract_view(profile, 1, game.k), profile.strategy(1), game)
        assert cost < current_cost
        assert len(strategy) > 1

    def test_too_large_strategy_space_raises(self):
        owned = random_owned_tree(25, seed=0)
        profile = StrategyProfile.from_owned_graph(owned)
        game = SumNCG(alpha=1.0)
        with pytest.raises(ValueError):
            bayesian_best_response(profile, profile.players()[0], game, EmptyWorldBelief(), max_candidates=5)

    def test_star_is_bayesian_equilibrium_under_every_belief(self):
        profile = StrategyProfile.from_owned_graph(owned_star(6))
        game = MaxNCG(alpha=2.0)
        for belief in (EmptyWorldBelief(), PessimisticBelief(eta=50.0), GeometricGrowthBelief()):
            assert is_bayesian_equilibrium(profile, game, belief)

    def test_nash_equilibrium_is_empty_world_bayesian_equilibrium(self):
        # Under full knowledge the expected cost with any belief equals the
        # true cost, so NE and Bayesian equilibrium coincide.
        owned = random_owned_tree(10, seed=3)
        from repro.core.dynamics import best_response_dynamics

        game = MaxNCG(alpha=2.0)
        result = best_response_dynamics(owned, game, solver="branch_and_bound")
        assert result.converged
        assert is_equilibrium(result.final_profile, game)
        assert is_bayesian_equilibrium(result.final_profile, game, EmptyWorldBelief())

    def test_optimistic_belief_can_break_lke(self):
        # The cycle is an LKE of MaxNCG for alpha >= k - 1 (Lemma 3.1), and
        # for alpha slightly below k - 1 buying one chord helps in the view
        # but the worst-case rule still blocks nothing - meanwhile the
        # Bayesian empty-world player reasons identically to the view, so
        # pick a case where the two rules differ for SumNCG: an optimistic
        # player deletes her edge when the in-view saving beats the in-view
        # damage, which the Prop. 2.2 rule forbids outright.
        profile = StrategyProfile.from_owned_graph(owned_cycle(12))
        game = SumNCG(alpha=50.0, k=2)
        # Worst-case players are stable (deleting = forbidden, buying too dear).
        view = extract_view(profile, 0, game.k)
        current = profile.strategy(0)
        assert worst_case_delta(view, current, frozenset(), game) == math.inf
        # The optimistic player sees: drop the edge, save alpha = 50, pay the
        # in-view damage only if the view stays connected - here it does not,
        # so even she keeps the edge; but with a *self-confident* belief that
        # nothing hides behind the frontier the equilibrium predicate still
        # holds.  This documents that EmptyWorld does not trivially break
        # stability on the canonical lower-bound instance.
        assert is_bayesian_equilibrium(profile, game, EmptyWorldBelief(), max_candidates=10)

    def test_heavy_pessimism_freezes_sum_players(self):
        # With enormous expected hidden mass, buying edges towards the
        # frontier becomes overwhelmingly attractive, so the cycle stops
        # being a Bayesian equilibrium in SumNCG even though it is an LKE.
        profile = StrategyProfile.from_owned_graph(owned_cycle(12))
        game = SumNCG(alpha=2.0, k=2)
        heavy = PessimisticBelief(eta=100.0, extra_distance=1.0)
        assert not is_bayesian_equilibrium(profile, game, heavy, max_candidates=10)
