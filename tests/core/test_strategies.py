"""Tests for strategy profiles."""

import pytest

from repro.core.strategies import StrategyProfile
from repro.graphs.generators.classic import owned_cycle, owned_star
from repro.graphs.generators.trees import random_owned_tree


class TestConstruction:
    def test_basic(self):
        profile = StrategyProfile({0: {1}, 1: set(), 2: {0, 1}})
        assert profile.num_players() == 3
        assert profile.strategy(2) == frozenset({0, 1})
        assert profile[0] == frozenset({1})

    def test_rejects_self_edge(self):
        with pytest.raises(ValueError):
            StrategyProfile({0: {0}, 1: set()})

    def test_rejects_unknown_target(self):
        with pytest.raises(ValueError):
            StrategyProfile({0: {7}, 1: set()})

    def test_empty_profile(self):
        profile = StrategyProfile.empty(range(4))
        assert profile.total_bought_edges() == 0
        assert profile.graph().number_of_edges() == 0

    def test_star_profile(self):
        profile = StrategyProfile.star(range(5), center=2)
        assert profile.num_bought_edges(2) == 4
        assert profile.num_bought_edges(0) == 0
        with pytest.raises(ValueError):
            StrategyProfile.star(range(5), center=9)

    def test_from_owned_graph(self):
        owned = owned_cycle(6)
        profile = StrategyProfile.from_owned_graph(owned)
        assert profile.graph() == owned.graph
        assert all(profile.num_bought_edges(p) == 1 for p in profile)


class TestInducedGraph:
    def test_both_directions_create_single_edge(self):
        profile = StrategyProfile({0: {1}, 1: {0}})
        assert profile.graph().number_of_edges() == 1
        assert profile.total_bought_edges() == 2  # both paid for it

    def test_graph_is_cached(self):
        profile = StrategyProfile({0: {1}, 1: set()})
        assert profile.graph() is profile.graph()

    def test_isolated_players_present(self):
        profile = StrategyProfile({0: set(), 1: set()})
        assert set(profile.graph().nodes()) == {0, 1}


class TestQueries:
    def test_buyers_of(self, star_profile):
        # Centre 0 bought everything.
        assert star_profile.buyers_of(3) == {0}
        assert star_profile.buyers_of(0) == set()

    def test_buyers_of_leaf_star(self, leaf_star_profile):
        assert leaf_star_profile.buyers_of(0) == {1, 2, 3, 4, 5}

    def test_iteration_and_len(self):
        profile = StrategyProfile({0: set(), 1: set(), 2: set()})
        assert len(profile) == 3
        assert list(profile) == [0, 1, 2]
        assert 1 in profile

    def test_as_dict_is_copy(self):
        profile = StrategyProfile({0: {1}, 1: set()})
        exported = profile.as_dict()
        exported[0] = frozenset()
        assert profile.strategy(0) == frozenset({1})


class TestFunctionalUpdates:
    def test_with_strategy_returns_new_profile(self):
        profile = StrategyProfile({0: {1}, 1: set(), 2: set()})
        updated = profile.with_strategy(0, {2})
        assert profile.strategy(0) == frozenset({1})
        assert updated.strategy(0) == frozenset({2})
        assert updated.graph().has_edge(0, 2)
        assert not updated.graph().has_edge(0, 1)

    def test_with_strategy_unknown_player(self):
        profile = StrategyProfile({0: set()})
        with pytest.raises(KeyError):
            profile.with_strategy(9, set())

    def test_with_added_player(self):
        profile = StrategyProfile({0: set(), 1: set()})
        extended = profile.with_added_player(2, targets={0})
        assert extended.num_players() == 3
        assert extended.graph().has_edge(2, 0)
        with pytest.raises(ValueError):
            extended.with_added_player(2)


class TestEqualityAndHashing:
    def test_equality(self):
        a = StrategyProfile({0: {1}, 1: set()})
        b = StrategyProfile({0: [1], 1: []})
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        a = StrategyProfile({0: {1}, 1: set()})
        b = StrategyProfile({0: set(), 1: {0}})
        assert a != b

    def test_canonical_key_stable_under_reordering(self):
        a = StrategyProfile({1: set(), 0: {1}})
        b = StrategyProfile({0: {1}, 1: set()})
        assert a.canonical_key() == b.canonical_key()

    def test_canonical_key_from_random_tree(self):
        owned = random_owned_tree(10, seed=3)
        a = StrategyProfile.from_owned_graph(owned)
        b = StrategyProfile.from_owned_graph(owned)
        assert a.canonical_key() == b.canonical_key()

    def test_not_equal_to_other_types(self):
        assert StrategyProfile({0: set()}) != {"0": set()}


class TestEdgeCounts:
    def test_num_and_total_bought(self, star_profile):
        assert star_profile.num_bought_edges(0) == 5
        assert star_profile.total_bought_edges() == 5

    def test_owned_star_leaf_variant(self, leaf_star_profile):
        assert leaf_star_profile.total_bought_edges() == 5
        assert leaf_star_profile.num_bought_edges(0) == 0
