"""Tests for game specifications and the cost functions of Eqs. (1)-(2)."""

import math

import pytest

from repro.core.costs import (
    all_player_costs,
    building_cost,
    player_cost,
    social_cost,
    usage_cost,
    usage_from_distances,
)
from repro.core.games import FULL_KNOWLEDGE, GameSpec, MaxNCG, SumNCG, UsageKind
from repro.core.strategies import StrategyProfile
from repro.graphs.graph import Graph


class TestGameSpec:
    def test_max_and_sum_factories(self):
        assert MaxNCG(1.5).usage is UsageKind.MAX
        assert SumNCG(1.5).usage is UsageKind.SUM
        assert MaxNCG(1.5).is_max and not MaxNCG(1.5).is_sum
        assert SumNCG(1.5).is_sum

    def test_full_knowledge_default(self):
        game = MaxNCG(2.0)
        assert game.k == FULL_KNOWLEDGE
        assert not game.is_local

    def test_local_game(self):
        game = SumNCG(2.0, k=3)
        assert game.is_local
        assert game.k == 3

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            MaxNCG(0)
        with pytest.raises(ValueError):
            MaxNCG(-1.0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            MaxNCG(1.0, k=0)
        with pytest.raises(ValueError):
            GameSpec(alpha=1.0, usage=UsageKind.MAX, k=2.5)

    def test_with_k_and_with_alpha(self):
        game = MaxNCG(2.0, k=3)
        assert game.with_k(FULL_KNOWLEDGE).k == FULL_KNOWLEDGE
        assert game.with_alpha(5.0).alpha == 5.0
        assert game.with_alpha(5.0).k == 3

    def test_label(self):
        assert MaxNCG(2.0, k=3).label() == "maxncg(alpha=2, k=3)"
        assert SumNCG(0.5).label() == "sumncg(alpha=0.5, k=inf)"

    def test_hashable(self):
        assert len({MaxNCG(1.0), MaxNCG(1.0), SumNCG(1.0)}) == 2


class TestUsageCost:
    def test_usage_from_distances_max(self):
        assert usage_from_distances({0: 0, 1: 1, 2: 3}, 3, UsageKind.MAX) == 3

    def test_usage_from_distances_sum(self):
        assert usage_from_distances({0: 0, 1: 1, 2: 3}, 3, UsageKind.SUM) == 4

    def test_usage_from_distances_disconnected(self):
        assert usage_from_distances({0: 0}, 3, UsageKind.MAX) == math.inf

    def test_usage_cost_on_graph(self, star6):
        assert usage_cost(star6, 0, UsageKind.MAX) == 1
        assert usage_cost(star6, 1, UsageKind.MAX) == 2
        assert usage_cost(star6, 0, UsageKind.SUM) == 5
        assert usage_cost(star6, 1, UsageKind.SUM) == 9

    def test_usage_cost_disconnected(self):
        graph = Graph(nodes=[0, 1, 2], edges=[(0, 1)])
        assert usage_cost(graph, 0, UsageKind.MAX) == math.inf


class TestPlayerCost:
    def test_building_cost(self, star_profile):
        assert building_cost(star_profile, 0, alpha=2.0) == 10.0
        assert building_cost(star_profile, 3, alpha=2.0) == 0.0

    def test_max_cost_star_center(self, star_profile):
        game = MaxNCG(2.0)
        assert player_cost(star_profile, 0, game) == 2.0 * 5 + 1

    def test_max_cost_star_leaf(self, star_profile):
        game = MaxNCG(2.0)
        assert player_cost(star_profile, 3, game) == 2

    def test_sum_cost_star(self, star_profile):
        game = SumNCG(2.0)
        assert player_cost(star_profile, 0, game) == 10 + 5
        assert player_cost(star_profile, 3, game) == 1 + 2 * 4

    def test_cost_uses_passed_graph(self, star_profile):
        game = MaxNCG(1.0)
        graph = star_profile.graph()
        assert player_cost(star_profile, 0, game, graph=graph) == player_cost(
            star_profile, 0, game
        )

    def test_disconnected_cost_infinite(self):
        profile = StrategyProfile({0: {1}, 1: set(), 2: set()})
        assert player_cost(profile, 2, MaxNCG(1.0)) == math.inf

    def test_all_player_costs(self, cycle_profile):
        game = MaxNCG(3.0, k=2)
        costs = all_player_costs(cycle_profile, game)
        assert len(costs) == 8
        # Cycle on 8: eccentricity 4 everywhere, one bought edge each.
        assert all(value == 3.0 + 4 for value in costs.values())


class TestSocialCost:
    def test_star_social_cost_matches_formula_max(self, star_profile):
        n = 6
        game = MaxNCG(2.0)
        assert social_cost(star_profile, game) == 2.0 * (n - 1) + 1 + 2 * (n - 1)

    def test_star_social_cost_matches_formula_sum(self, star_profile):
        n = 6
        game = SumNCG(2.0)
        expected = 2.0 * (n - 1) + (n - 1) + (n - 1) * (2 * n - 3)
        assert social_cost(star_profile, game) == expected

    def test_ownership_does_not_change_social_cost(self, star_profile, leaf_star_profile):
        game = MaxNCG(2.0)
        assert social_cost(star_profile, game) == social_cost(leaf_star_profile, game)

    def test_cycle_social_cost(self, cycle_profile):
        game = MaxNCG(1.0)
        # 8 edges bought once plus eccentricity 4 for each of the 8 players.
        assert social_cost(cycle_profile, game) == 8 * 1.0 + 8 * 4
