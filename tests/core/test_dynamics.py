"""Tests for the round-robin best-response dynamics (Section 5.1)."""

import pytest

from repro.core.dynamics import best_response_dynamics
from repro.core.equilibria import is_equilibrium
from repro.core.games import FULL_KNOWLEDGE, MaxNCG, SumNCG
from repro.core.strategies import StrategyProfile
from repro.graphs.generators.classic import owned_cycle, owned_star
from repro.graphs.generators.trees import random_owned_tree


class TestConvergence:
    def test_star_already_stable(self):
        result = best_response_dynamics(owned_star(8), MaxNCG(2.0))
        assert result.converged
        assert result.rounds == 0
        assert result.total_changes == 0
        assert result.final_profile == result.initial_profile

    def test_cycle_stable_under_local_knowledge(self):
        result = best_response_dynamics(owned_cycle(10), MaxNCG(2.0, k=2))
        assert result.converged
        assert result.rounds == 0

    def test_random_tree_converges_to_equilibrium(self):
        game = MaxNCG(2.0, k=3)
        result = best_response_dynamics(random_owned_tree(20, seed=1), game)
        assert result.converged
        assert not result.cycled
        assert is_equilibrium(result.final_profile, game)

    def test_full_knowledge_dynamics_reaches_ne(self):
        game = MaxNCG(2.0, k=FULL_KNOWLEDGE)
        result = best_response_dynamics(random_owned_tree(15, seed=2), game)
        assert result.converged
        assert is_equilibrium(result.final_profile, game)

    def test_sum_game_dynamics_on_small_instance(self):
        game = SumNCG(2.0, k=2)
        result = best_response_dynamics(random_owned_tree(10, seed=5), game)
        assert result.converged
        assert result.final_metrics is not None

    def test_accepts_profile_input(self):
        profile = StrategyProfile.from_owned_graph(random_owned_tree(10, seed=0))
        result = best_response_dynamics(profile, MaxNCG(1.0, k=2))
        assert result.converged

    def test_rejects_other_inputs(self):
        with pytest.raises(TypeError):
            best_response_dynamics({"not": "a profile"}, MaxNCG(1.0))


class TestBookkeeping:
    def test_round_metrics_collected_when_requested(self):
        result = best_response_dynamics(
            random_owned_tree(12, seed=3),
            MaxNCG(1.0, k=2),
            collect_round_metrics=True,
        )
        assert len(result.round_records) >= result.rounds
        for record in result.round_records:
            assert record.metrics.num_players == 12

    def test_initial_and_final_metrics_always_present(self):
        result = best_response_dynamics(random_owned_tree(12, seed=3), MaxNCG(1.0, k=2))
        assert result.initial_metrics is not None
        assert result.final_metrics is not None
        assert result.quality_of_equilibrium() == result.final_metrics.quality

    def test_social_cost_never_increases_on_monotone_runs(self):
        # Not guaranteed in general (a player's improvement can hurt others),
        # but the total number of changes must be consistent with rounds.
        result = best_response_dynamics(
            random_owned_tree(14, seed=8), MaxNCG(2.0, k=3), collect_round_metrics=True
        )
        assert result.total_changes == sum(r.num_changes for r in result.round_records)

    def test_max_rounds_cap(self):
        result = best_response_dynamics(
            random_owned_tree(20, seed=4), MaxNCG(0.1, k=2), max_rounds=1
        )
        assert result.rounds <= 1
        # Either it converged immediately or it hit the cap unconverged.
        assert result.converged or result.rounds == 1

    def test_final_profile_differs_from_initial_when_changes_happen(self):
        result = best_response_dynamics(random_owned_tree(15, seed=6), MaxNCG(0.5, k=3))
        if result.total_changes > 0:
            assert result.final_profile != result.initial_profile


class TestRoundsAccounting:
    """The paper counts rounds needed to *reach* the stable network: the
    certifying all-quiet round is excluded (rounds = round_index - 1)."""

    def test_stable_start_counts_zero_rounds(self):
        result = best_response_dynamics(owned_star(8), MaxNCG(2.0))
        assert result.converged
        assert result.rounds == 0
        # The certifying pass still ran (it is just not counted).
        assert result.total_changes == 0

    def test_converged_run_excludes_certifying_round(self):
        result = best_response_dynamics(
            random_owned_tree(14, seed=8),
            MaxNCG(0.5, k=2),
            collect_round_metrics=True,
        )
        assert result.converged
        # One record per executed round, including the quiet certifying one.
        assert len(result.round_records) == result.rounds + 1
        assert result.round_records[-1].num_changes == 0
        # Every counted round saw at least one change.
        for record in result.round_records[:-1]:
            assert record.num_changes > 0

    def test_reference_and_engine_agree_on_rounds(self):
        from repro.core.dynamics import best_response_dynamics_reference

        owned = random_owned_tree(14, seed=8)
        game = MaxNCG(0.5, k=2)
        assert (
            best_response_dynamics(owned, game).rounds
            == best_response_dynamics_reference(owned, game).rounds
        )


class TestOrderingOptions:
    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            best_response_dynamics(owned_star(5), MaxNCG(1.0), ordering="alphabetical")

    def test_invalid_player_order_rejected(self):
        with pytest.raises(ValueError):
            best_response_dynamics(owned_star(5), MaxNCG(1.0), player_order=[0, 1])

    def test_explicit_player_order(self):
        result = best_response_dynamics(
            random_owned_tree(10, seed=1),
            MaxNCG(2.0, k=2),
            player_order=list(reversed(range(10))),
        )
        assert result.converged

    def test_shuffled_ordering_still_converges(self):
        game = MaxNCG(2.0, k=3)
        result = best_response_dynamics(
            random_owned_tree(15, seed=2), game, ordering="shuffled", seed=13
        )
        assert result.converged
        assert is_equilibrium(result.final_profile, game)

    def test_deterministic_given_seed_and_fixed_order(self):
        game = MaxNCG(1.0, k=2)
        a = best_response_dynamics(random_owned_tree(12, seed=3), game)
        b = best_response_dynamics(random_owned_tree(12, seed=3), game)
        assert a.final_profile == b.final_profile
        assert a.rounds == b.rounds


class TestSolverChoices:
    @pytest.mark.parametrize("solver", ["milp", "branch_and_bound", "greedy"])
    def test_all_solvers_converge(self, solver):
        result = best_response_dynamics(
            random_owned_tree(12, seed=7), MaxNCG(2.0, k=3), solver=solver
        )
        assert result.converged

    def test_exact_solvers_agree_on_final_quality(self):
        game = MaxNCG(2.0, k=3)
        owned = random_owned_tree(12, seed=7)
        a = best_response_dynamics(owned, game, solver="milp")
        b = best_response_dynamics(owned, game, solver="branch_and_bound")
        # Different tie-breaking may yield different equilibria, but both
        # must be genuine equilibria.
        assert is_equilibrium(a.final_profile, game)
        assert is_equilibrium(b.final_profile, game)
