"""Every example script must run end-to-end (with small parameters).

The examples are the README's entry point into the library, so a broken
example is a documentation bug; each test below executes one script as a
subprocess with small arguments and checks for a clean exit and some
expected output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: script name -> (arguments keeping the run CI-sized, expected output snippet)
EXAMPLE_RUNS: dict[str, tuple[list[str], str]] = {
    "quickstart.py": (["16", "2.0", "2"], "Stable network"),
    "local_vs_full_knowledge.py": (["14", "2.0"], "k"),
    "lower_bound_constructions.py": ([], ""),
    "poa_landscape.py": (["1000"], ""),
    "sumncg_small_scale.py": (["10", "1.5"], "sum"),
    "restricted_move_dynamics.py": (["12", "2.0", "2"], "swap-only"),
    "bayesian_beliefs.py": (["10", "2.0", "2"], "stable"),
    "discovery_view_models.py": (["12", "2.0", "2"], "traceroute"),
    "equilibrium_anatomy.py": (["16", "2.0"], "quality"),
    "sweep_service.py": (["12", "2"], "resumed"),
    "kernel_backends.py": (["16", "0.5", "2"], "identical"),
}


def _run_example(name: str, args: list[str]) -> subprocess.CompletedProcess:
    script = EXAMPLES_DIR / name
    assert script.exists(), f"example {name} is missing"
    return subprocess.run(
        [sys.executable, str(script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamplesInventory:
    def test_every_example_on_disk_is_exercised(self):
        on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert on_disk == set(EXAMPLE_RUNS), (
            "examples/ and the EXAMPLE_RUNS table are out of sync; "
            "add the new script (with small arguments) to the table"
        )

    def test_readme_quickstart_is_present(self):
        assert (EXAMPLES_DIR / "quickstart.py").exists()


@pytest.mark.parametrize("name", sorted(EXAMPLE_RUNS))
def test_example_runs_cleanly(name):
    args, expected_snippet = EXAMPLE_RUNS[name]
    completed = _run_example(name, args)
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "example produced no output"
    if expected_snippet:
        assert expected_snippet in completed.stdout
