"""Property-based round-trip tests for the graph serialization codecs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators.base import OwnedGraph, assign_ownership_fair_coin
from repro.graphs.generators.erdos_renyi import gnp_random_graph
from repro.graphs.generators.trees import random_tree
from repro.graphs.graph import Graph
from repro.graphs.io import (
    graph_from_dict,
    graph_from_edge_list,
    graph_to_dict,
    graph_to_edge_list,
    owned_graph_from_dict,
    owned_graph_to_dict,
)


@st.composite
def arbitrary_graphs(draw, max_nodes: int = 15):
    """Random simple graphs, possibly disconnected, possibly with isolated nodes."""
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    if n == 0:
        return Graph()
    seed = draw(st.integers(min_value=0, max_value=5_000))
    p = draw(st.floats(min_value=0.0, max_value=0.6))
    return gnp_random_graph(n, p, random.Random(seed))


@st.composite
def owned_graphs(draw, max_nodes: int = 15):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=5_000))
    rng = random.Random(seed)
    graph = random_tree(n, rng)
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return OwnedGraph(graph=graph, ownership=assign_ownership_fair_coin(graph, rng=rng))


def _same_graph(a: Graph, b: Graph) -> bool:
    return set(a.nodes()) == set(b.nodes()) and {
        frozenset(e) for e in a.edges()
    } == {frozenset(e) for e in b.edges()}


class TestRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(graph=arbitrary_graphs())
    def test_edge_list_round_trip(self, graph):
        assert _same_graph(graph, graph_from_edge_list(graph_to_edge_list(graph)))

    @settings(max_examples=60, deadline=None)
    @given(graph=arbitrary_graphs())
    def test_json_round_trip(self, graph):
        assert _same_graph(graph, graph_from_dict(graph_to_dict(graph)))

    @settings(max_examples=40, deadline=None)
    @given(owned=owned_graphs())
    def test_owned_graph_round_trip_preserves_ownership(self, owned):
        restored = owned_graph_from_dict(owned_graph_to_dict(owned))
        assert _same_graph(owned.graph, restored.graph)
        for node in owned.graph.nodes():
            assert owned.bought_edges(node) == restored.bought_edges(node)
        restored.validate()

    @settings(max_examples=40, deadline=None)
    @given(owned=owned_graphs())
    def test_serialised_payload_is_stable(self, owned):
        # Serialising twice yields identical documents (no hidden ordering
        # nondeterminism), which keeps experiment checkpoints diffable.
        first = owned_graph_to_dict(owned)
        second = owned_graph_to_dict(owned)
        assert first == second
