"""Equivalence and registry tests for the pluggable kernel backends.

The contract under test (see :mod:`repro.kernels`): every available
backend's BFS kernel is *bit-identical* to the numpy reference and to the
naive per-source dict BFS — same distances, same ``UNREACHABLE`` marks,
same radius truncation — and the selection chain (explicit argument >
session override > ``REPRO_KERNEL_BACKEND`` > auto-detect) resolves
exactly as documented, with unknown names failing loudly and unavailable
backends falling back to numpy silently.
"""

from __future__ import annotations

import random
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.kernels as kernels
from repro.graphs.generators.erdos_renyi import gnp_random_graph
from repro.graphs.generators.smallworld import owned_barabasi_albert
from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    UNREACHABLE,
    batched_bfs_distances,
    bfs_distances,
    bfs_distances_within,
    reduce_bfs_distances,
)
from repro.kernels import (
    ENV_VAR,
    THREADS_ENV_VAR,
    KernelBackend,
    KernelUnavailableError,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    resolve_threads,
    set_default_backend,
    use_backend,
    use_threads,
)

BACKENDS = available_backends()


@pytest.fixture
def clean_registry():
    """Snapshot/restore the registry and the session override around a test."""
    factories = dict(kernels._FACTORIES)
    built = dict(kernels._BUILT)
    override = kernels._default_override
    try:
        yield
    finally:
        kernels._FACTORIES.clear()
        kernels._FACTORIES.update(factories)
        kernels._BUILT.clear()
        kernels._BUILT.update(built)
        kernels._default_override = override


def _naive_reference(graph, order, sources, radius):
    """Per-source dict BFS assembled into the batched distance matrix."""
    dist = np.full((len(sources), len(order)), UNREACHABLE, dtype=np.int32)
    for row, source in enumerate(sources):
        expected = (
            bfs_distances(graph, order[source])
            if radius is None
            else bfs_distances_within(graph, order[source], radius)
        )
        for column, node in enumerate(order):
            if node in expected:
                dist[row, column] = expected[node]
    return dist


@st.composite
def bfs_workloads(draw, max_nodes: int = 14):
    """(graph, sources, radius) including disconnected graphs, empty and
    repeated source lists, and radii from 0 past the diameter."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.floats(min_value=0.0, max_value=0.6))
    graph = gnp_random_graph(n, p, random.Random(seed))
    sources = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=0, max_size=2 * n)
    )
    radius = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=n)))
    return graph, sources, radius


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestBfsEquivalence:
    @given(workload=bfs_workloads())
    @settings(max_examples=50, deadline=None)
    def test_matches_naive_bfs(self, backend_name, workload):
        graph, sources, radius = workload
        indptr, indices, order = graph.to_csr_arrays()
        dist = batched_bfs_distances(
            indptr, indices, sources, radius=radius, backend=backend_name
        )
        assert np.array_equal(dist, _naive_reference(graph, order, sources, radius))

    def test_empty_sources(self, backend_name, path5):
        indptr, indices, _ = path5.to_csr_arrays()
        dist = batched_bfs_distances(indptr, indices, [], backend=backend_name)
        assert dist.shape == (0, 5)

    def test_disconnected_unreachable_marks(self, backend_name):
        graph = Graph(nodes=[0, 1, 2, 3], edges=[(0, 1), (2, 3)])
        indptr, indices, order = graph.to_csr_arrays()
        sources = list(range(len(order)))
        dist = batched_bfs_distances(indptr, indices, sources, backend=backend_name)
        assert np.array_equal(dist, _naive_reference(graph, order, sources, None))
        assert (dist == UNREACHABLE).sum() == 8  # the two 2x2 cross blocks

    def test_radius_zero_only_marks_sources(self, backend_name, path5):
        indptr, indices, _ = path5.to_csr_arrays()
        dist = batched_bfs_distances(
            indptr, indices, [2, 4], radius=0, backend=backend_name
        )
        assert (dist != UNREACHABLE).sum() == 2
        assert dist[0, 2] == 0 and dist[1, 4] == 0

    def test_frontier_crossing_expansion_cap(self, backend_name, monkeypatch):
        """A hub whose incidence run dwarfs the cap forces the numpy chunked
        path; every backend must still match the naive reference exactly."""
        monkeypatch.setattr(
            "repro.kernels.numpy_backend.MAX_EXPANSION_INCIDENCES", 4
        )
        hub, leaves = 0, range(1, 40)
        edges = [(hub, leaf) for leaf in leaves]
        edges += [(1, 2), (2, 3), (39, 38)]  # a little non-star structure
        graph = Graph(edges=edges)
        indptr, indices, order = graph.to_csr_arrays()
        sources = list(range(len(order)))
        for radius in (None, 1, 2):
            dist = batched_bfs_distances(
                indptr, indices, sources, radius=radius, backend=backend_name
            )
            assert np.array_equal(
                dist, _naive_reference(graph, order, sources, radius)
            )


@pytest.mark.skipif(len(BACKENDS) < 2, reason="only the numpy backend is available")
def test_backends_agree_on_larger_instance():
    """All available backends produce byte-identical matrices on a scale the
    hypothesis workloads never reach (multi-chunk levels, deep frontiers)."""
    owned = owned_barabasi_albert(300, 2, seed=1)
    indptr, indices, _ = owned.graph.to_csr_arrays()
    sources = np.arange(300, dtype=np.int64)
    for radius in (None, 2):
        matrices = [
            batched_bfs_distances(indptr, indices, sources, radius=radius, backend=b)
            for b in BACKENDS
        ]
        for other in matrices[1:]:
            assert np.array_equal(matrices[0], other)


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in BACKENDS
        assert get_backend("numpy").name == "numpy"
        assert not get_backend("numpy").compiled

    def test_registered_superset_of_available(self):
        assert set(BACKENDS) <= set(registered_backends())
        assert {"numpy", "numba", "native"} <= set(registered_backends())

    def test_unknown_name_raises_everywhere(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("no-such-backend")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("no-such-backend")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            set_default_backend("no-such-backend")

    def test_unknown_env_var_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "no-such-backend")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend(None)

    def test_env_var_selects_backend(self, monkeypatch):
        for name in BACKENDS:
            monkeypatch.setenv(ENV_VAR, name)
            assert resolve_backend(None).name == name

    def test_backend_object_passthrough(self):
        backend = get_backend("numpy")
        assert resolve_backend(backend) is backend

    def test_explicit_argument_outranks_override_and_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        with use_backend("numpy"):
            assert resolve_backend(BACKENDS[-1]).name == BACKENDS[-1]

    def test_override_outranks_env_var(self, clean_registry, monkeypatch):
        monkeypatch.setenv(ENV_VAR, BACKENDS[-1])
        set_default_backend("numpy")
        assert resolve_backend(None).name == "numpy"

    def test_use_backend_restores_previous(self, clean_registry):
        set_default_backend("numpy")
        with use_backend(BACKENDS[-1]):
            assert resolve_backend(None).name == BACKENDS[-1]
        assert resolve_backend(None).name == "numpy"

    def test_use_backend_none_is_noop(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        with use_backend(None):
            assert resolve_backend(None).name in BACKENDS

    def test_unavailable_backend_falls_back_silently(self, clean_registry):
        def missing() -> KernelBackend:
            raise KernelUnavailableError("toolchain not present")

        register_backend("always-missing", missing)
        assert "always-missing" in registered_backends()
        assert "always-missing" not in available_backends()
        # resolve: silent numpy fallback; get_backend: loud.
        assert resolve_backend("always-missing").name == "numpy"
        with pytest.raises(KernelUnavailableError):
            get_backend("always-missing")
        # The failed probe is cached, not retried per call.
        assert kernels._BUILT[("always-missing", 1)] is None

    def test_register_backend_replaces_and_reprobes(self, clean_registry):
        reference = get_backend("numpy")
        register_backend(
            "custom",
            lambda: KernelBackend(
                name="custom",
                bfs=reference.bfs,
                cover_search=reference.cover_search,
            ),
        )
        assert resolve_backend("custom").name == "custom"


class TestNumbaAbsence:
    def test_graceful_import_error(self, clean_registry, monkeypatch):
        """With numba unimportable the backend reports unavailable, resolve
        falls back to numpy, and nothing raises ImportError to callers."""
        monkeypatch.setitem(sys.modules, "numba", None)  # import numba → ImportError
        monkeypatch.delitem(
            sys.modules, "repro.kernels.numba_backend", raising=False
        )
        for key in [key for key in kernels._BUILT if key[0] == "numba"]:
            kernels._BUILT.pop(key)
        assert "numba" not in available_backends()
        with pytest.raises(KernelUnavailableError):
            get_backend("numba")
        assert resolve_backend("numba").name == "numpy"
        # Auto-detect (no env var, no override) skips it without noise.
        monkeypatch.delenv(ENV_VAR, raising=False)
        set_default_backend(None)
        assert resolve_backend(None).name == "numpy"

# ----------------------------------------------------------------------
# Fused bfs_reduce parity
# ----------------------------------------------------------------------
#: Thread counts exercised against every backend: the serial build, a
#: 2-thread build and an "all cores" build.  Bit-identity must hold for
#: all of them — threads are a speed knob, never a semantics knob.
THREAD_COUNTS = (1, 2, 0)


def _fold_reference(dist: np.ndarray, view_radius: int | None):
    """Fold materialised distance rows into the four bfs_reduce vectors."""
    reachable = dist != UNREACHABLE
    finite = np.where(reachable, dist, 0)
    num_sources = dist.shape[0]
    view = (
        (dist <= view_radius).sum(axis=1).astype(np.int64)
        if view_radius is not None
        else np.zeros(num_sources, dtype=np.int64)
    )
    return (
        finite.max(axis=1, initial=0).astype(np.int64),
        finite.sum(axis=1, dtype=np.int64),
        (~reachable).sum(axis=1).astype(np.int64),
        view,
    )


@st.composite
def reduce_workloads(draw, max_nodes: int = 14):
    """(graph, sources, radius, view_radius) on top of bfs_workloads."""
    graph, sources, radius = draw(bfs_workloads(max_nodes=max_nodes))
    view_radius = draw(
        st.one_of(st.none(), st.integers(min_value=0, max_value=max_nodes))
    )
    return graph, sources, radius, view_radius


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("threads", THREAD_COUNTS)
class TestBfsReduceParity:
    @given(workload=reduce_workloads())
    @settings(max_examples=30, deadline=None)
    def test_matches_materialised_fold(self, backend_name, threads, workload):
        """Fused reductions equal folds over materialised
        batched_bfs_distances rows, per backend and thread count."""
        graph, sources, radius, view_radius = workload
        indptr, indices, _ = graph.to_csr_arrays()
        expected = _fold_reference(
            batched_bfs_distances(
                indptr, indices, sources, radius=radius, backend="numpy"
            ),
            view_radius,
        )
        backend = resolve_backend(backend_name, threads=threads)
        got = reduce_bfs_distances(
            indptr,
            indices,
            sources,
            radius=radius,
            view_radius=view_radius,
            backend=backend,
        )
        for got_vec, expected_vec in zip(got, expected):
            assert np.array_equal(got_vec, expected_vec)

    @given(workload=reduce_workloads(), block_size=st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_block_size_invariance(self, backend_name, threads, workload, block_size):
        graph, sources, radius, view_radius = workload
        indptr, indices, _ = graph.to_csr_arrays()
        backend = resolve_backend(backend_name, threads=threads)
        blocked = reduce_bfs_distances(
            indptr,
            indices,
            sources,
            radius=radius,
            view_radius=view_radius,
            block_size=block_size,
            backend=backend,
        )
        unblocked = reduce_bfs_distances(
            indptr,
            indices,
            sources,
            radius=radius,
            view_radius=view_radius,
            backend=backend,
        )
        for blocked_vec, unblocked_vec in zip(blocked, unblocked):
            assert np.array_equal(blocked_vec, unblocked_vec)

    def test_empty_sources_and_empty_graph(self, backend_name, threads):
        backend = resolve_backend(backend_name, threads=threads)
        indptr = np.zeros(6, dtype=np.int64)
        vectors = reduce_bfs_distances(
            indptr, np.zeros(0, dtype=np.int64), [], backend=backend
        )
        assert all(vec.shape == (0,) for vec in vectors)


def test_bfs_reduce_fallback_without_fused_kernel():
    """A backend registered without bfs_reduce still serves the reduction
    API bit-identically via materialise-then-fold through its bfs."""
    reference = get_backend("numpy")
    stripped = KernelBackend(
        name="stripped", bfs=reference.bfs, cover_search=reference.cover_search
    )
    assert stripped.bfs_reduce is None
    graph = gnp_random_graph(12, 0.3, random.Random(7))
    indptr, indices, _ = graph.to_csr_arrays()
    sources = list(range(12))
    fused = reduce_bfs_distances(
        indptr, indices, sources, view_radius=2, backend=reference
    )
    folded = reduce_bfs_distances(
        indptr, indices, sources, view_radius=2, backend=stripped
    )
    for fused_vec, folded_vec in zip(fused, folded):
        assert np.array_equal(fused_vec, folded_vec)


@pytest.mark.skipif(len(BACKENDS) < 2, reason="only the numpy backend is available")
def test_threaded_backends_agree_on_larger_instance():
    """Single-threaded vs threaded builds of every compiled backend produce
    byte-identical distance matrices and reductions at a scale where the
    slab split is non-trivial."""
    owned = owned_barabasi_albert(300, 2, seed=1)
    indptr, indices, _ = owned.graph.to_csr_arrays()
    sources = np.arange(300, dtype=np.int64)
    for name in BACKENDS:
        serial = resolve_backend(name, threads=1)
        threaded = resolve_backend(name, threads=4)
        assert np.array_equal(
            batched_bfs_distances(indptr, indices, sources, backend=serial),
            batched_bfs_distances(indptr, indices, sources, backend=threaded),
        )
        for serial_vec, threaded_vec in zip(
            reduce_bfs_distances(indptr, indices, sources, view_radius=2, backend=serial),
            reduce_bfs_distances(indptr, indices, sources, view_radius=2, backend=threaded),
        ):
            assert np.array_equal(serial_vec, threaded_vec)


class TestThreadsResolution:
    def test_default_is_single_threaded(self, monkeypatch):
        monkeypatch.delenv(THREADS_ENV_VAR, raising=False)
        assert resolve_threads() == 1

    def test_explicit_outranks_override_and_env(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV_VAR, "8")
        with use_threads(2):
            assert resolve_threads(4) == 4

    def test_override_outranks_env(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV_VAR, "8")
        with use_threads(2):
            assert resolve_threads() == 2
        assert resolve_threads() == 8

    def test_env_var_parsed_and_validated(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV_VAR, "3")
        assert resolve_threads() == 3
        monkeypatch.setenv(THREADS_ENV_VAR, "not-a-number")
        with pytest.raises(ValueError, match=THREADS_ENV_VAR):
            resolve_threads()

    def test_use_threads_restores_previous(self):
        with use_threads(2):
            assert resolve_threads() == 2
            with use_threads(3):
                assert resolve_threads() == 3
            assert resolve_threads() == 2

    def test_numpy_reference_always_reports_one_thread(self):
        assert resolve_backend("numpy", threads=4).threads == 1

    def test_compiled_builds_are_cached_per_thread_count(self):
        for name in BACKENDS:
            one = resolve_backend(name, threads=1)
            again = resolve_backend(name, threads=1)
            assert one is again
            if name != "numpy":
                four = resolve_backend(name, threads=4)
                assert four.threads == 4
                assert four is not one

    def test_zero_means_all_cores(self):
        import os as _os

        for name in BACKENDS:
            if name == "numpy":
                continue
            backend = resolve_backend(name, threads=0)
            assert backend.threads == (_os.cpu_count() or 1)

    def test_zero_arg_factory_still_works(self, clean_registry):
        reference = get_backend("numpy")
        register_backend(
            "legacy",
            lambda: KernelBackend(
                name="legacy",
                bfs=reference.bfs,
                cover_search=reference.cover_search,
            ),
        )
        backend = resolve_backend("legacy", threads=4)
        assert backend.name == "legacy"
        assert backend.threads == 1
        assert backend.bfs_reduce is None
