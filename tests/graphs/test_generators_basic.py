"""Tests for the classic fixtures, random trees and Erdős–Rényi generators."""

import random

import pytest

from repro.graphs.generators.base import (
    OwnedGraph,
    assign_ownership_fair_coin,
    assign_ownership_to_smaller,
)
from repro.graphs.generators.classic import (
    complete_graph,
    cycle_graph,
    grid_2d_graph,
    owned_cycle,
    owned_star,
    path_graph,
    petersen_graph,
    star_graph,
)
from repro.graphs.generators.erdos_renyi import (
    connected_gnp_graph,
    gnp_random_graph,
    owned_connected_gnp_graph,
)
from repro.graphs.generators.trees import prufer_to_tree, random_owned_tree, random_tree
from repro.graphs.graph import Graph
from repro.graphs.properties import is_tree
from repro.graphs.traversal import is_connected


class TestClassicFamilies:
    def test_cycle_counts(self):
        graph = cycle_graph(7)
        assert graph.number_of_nodes() == 7
        assert graph.number_of_edges() == 7
        assert all(graph.degree(v) == 2 for v in graph)

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_path_counts(self):
        graph = path_graph(6)
        assert graph.number_of_edges() == 5

    def test_star_counts(self):
        graph = star_graph(6, center=2)
        assert graph.degree(2) == 5
        assert graph.number_of_edges() == 5

    def test_complete_counts(self):
        graph = complete_graph(6)
        assert graph.number_of_edges() == 15

    def test_grid_counts(self):
        graph = grid_2d_graph(3, 4)
        assert graph.number_of_nodes() == 12
        assert graph.number_of_edges() == 3 * 3 + 2 * 4

    def test_petersen(self):
        graph = petersen_graph()
        assert graph.number_of_nodes() == 10
        assert graph.number_of_edges() == 15
        assert all(graph.degree(v) == 3 for v in graph)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            path_graph(0)
        with pytest.raises(ValueError):
            star_graph(0)
        with pytest.raises(ValueError):
            complete_graph(0)
        with pytest.raises(ValueError):
            grid_2d_graph(0, 3)


class TestOwnership:
    def test_fair_coin_covers_every_edge(self):
        graph = complete_graph(6)
        ownership = assign_ownership_fair_coin(graph, random.Random(3))
        owned = OwnedGraph(graph=graph, ownership=ownership)
        assert sum(len(t) for t in owned.ownership.values()) == graph.number_of_edges()

    def test_smaller_endpoint_rule(self):
        graph = path_graph(4)
        ownership = assign_ownership_to_smaller(graph)
        assert ownership[0] == {1}
        assert ownership[1] == {2}
        assert ownership[3] == set()

    def test_owner_of(self):
        owned = owned_cycle(5)
        assert owned.owner_of(0, 1) == 0
        assert owned.owner_of(1, 0) == 0
        with pytest.raises(KeyError):
            owned.owner_of(0, 2)

    def test_validation_rejects_double_ownership(self):
        graph = path_graph(2)
        with pytest.raises(ValueError):
            OwnedGraph(graph=graph, ownership={0: {1}, 1: {0}})

    def test_validation_rejects_missing_edges(self):
        graph = path_graph(3)
        with pytest.raises(ValueError):
            OwnedGraph(graph=graph, ownership={0: {1}, 1: set(), 2: set()})

    def test_validation_rejects_non_edges(self):
        graph = path_graph(3)
        with pytest.raises(ValueError):
            OwnedGraph(graph=graph, ownership={0: {2}, 1: set(), 2: set()})

    def test_owned_cycle_every_player_owns_one_edge(self):
        owned = owned_cycle(9)
        assert all(len(targets) == 1 for targets in owned.ownership.values())

    def test_owned_star_variants(self):
        by_center = owned_star(5, center_owns=True)
        by_leaves = owned_star(5, center_owns=False)
        assert len(by_center.ownership[0]) == 4
        assert len(by_leaves.ownership[0]) == 0
        assert all(len(by_leaves.ownership[leaf]) == 1 for leaf in range(1, 5))


class TestRandomTrees:
    def test_prufer_decoding_small(self):
        # Sequence (0, 0) on 4 nodes: node 0 is adjacent to 1, 2 and 3... the
        # classical decoding yields a star centred at 0.
        tree = prufer_to_tree([0, 0])
        assert tree.number_of_edges() == 3
        assert tree.degree(0) == 3

    def test_prufer_validation(self):
        with pytest.raises(ValueError):
            prufer_to_tree([5])

    def test_random_tree_is_tree(self):
        for seed in range(5):
            tree = random_tree(20, random.Random(seed))
            assert is_tree(tree)
            assert tree.number_of_nodes() == 20

    def test_small_sizes(self):
        assert random_tree(1).number_of_nodes() == 1
        two = random_tree(2)
        assert two.number_of_edges() == 1
        assert is_tree(random_tree(3, random.Random(0)))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            random_tree(0)

    def test_random_owned_tree_reproducible(self):
        a = random_owned_tree(15, seed=42)
        b = random_owned_tree(15, seed=42)
        assert a.graph == b.graph
        assert a.ownership == b.ownership

    def test_random_owned_tree_distinct_seeds(self):
        a = random_owned_tree(30, seed=1)
        b = random_owned_tree(30, seed=2)
        assert a.graph != b.graph or a.ownership != b.ownership

    def test_degree_sequence_distribution_sane(self):
        # Uniform random trees have expected max degree Θ(log n / log log n);
        # a crude sanity bound protects against biased decodings.
        tree = random_tree(200, random.Random(11))
        assert max(tree.degrees().values()) < 20


class TestErdosRenyi:
    def test_p_zero_and_one(self):
        assert gnp_random_graph(5, 0.0).number_of_edges() == 0
        assert gnp_random_graph(5, 1.0).number_of_edges() == 10

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            gnp_random_graph(0, 0.5)
        with pytest.raises(ValueError):
            gnp_random_graph(5, 1.5)

    def test_connected_rejection_sampling(self):
        graph = connected_gnp_graph(40, 0.15, random.Random(0))
        assert is_connected(graph)

    def test_connected_failure_raises(self):
        with pytest.raises(RuntimeError):
            connected_gnp_graph(50, 0.001, random.Random(0), max_attempts=3)

    def test_owned_gnp_reproducible(self):
        a = owned_connected_gnp_graph(30, 0.2, seed=5)
        b = owned_connected_gnp_graph(30, 0.2, seed=5)
        assert a.graph == b.graph
        assert a.ownership == b.ownership
        assert a.metadata["p"] == 0.2

    def test_edge_count_close_to_expectation(self):
        n, p = 60, 0.2
        rng = random.Random(123)
        counts = [gnp_random_graph(n, p, rng).number_of_edges() for _ in range(5)]
        expected = p * n * (n - 1) / 2
        assert expected * 0.6 < sum(counts) / len(counts) < expected * 1.4
