"""Cross-validation of the deterministic generators against networkx.

The library never *uses* networkx at runtime, but where a generator has an
exact networkx counterpart the two must produce isomorphic (here: equal up to
relabelling-free structural statistics) graphs.  Random generators are
checked on distribution-free invariants instead (degree sequences, edge
counts), since the sampling orders differ.
"""

import random

import networkx as nx
import pytest

from repro.graphs.generators.classic import complete_graph, cycle_graph, grid_2d_graph, path_graph
from repro.graphs.generators.smallworld import (
    balanced_tree,
    barabasi_albert_graph,
    complete_bipartite_graph,
    hypercube_graph,
    watts_strogatz_graph,
)
from repro.graphs.properties import diameter, girth
from repro.graphs.traversal import is_connected


def _degree_histogram(graph) -> list[int]:
    degrees = sorted(graph.degrees().values()) if hasattr(graph, "degrees") else sorted(
        d for _, d in graph.degree()
    )
    return degrees


class TestDeterministicFamiliesMatchNetworkx:
    @pytest.mark.parametrize("n", [3, 5, 8, 13])
    def test_cycle(self, n):
        ours, theirs = cycle_graph(n), nx.cycle_graph(n)
        assert ours.number_of_edges() == theirs.number_of_edges()
        assert _degree_histogram(ours) == sorted(d for _, d in theirs.degree())

    @pytest.mark.parametrize("n", [2, 4, 9])
    def test_path(self, n):
        ours, theirs = path_graph(n), nx.path_graph(n)
        assert ours.number_of_edges() == theirs.number_of_edges()
        assert diameter(ours) == nx.diameter(theirs)

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_complete(self, n):
        ours, theirs = complete_graph(n), nx.complete_graph(n)
        assert ours.number_of_edges() == theirs.number_of_edges()

    @pytest.mark.parametrize("rows, cols", [(2, 3), (4, 4), (3, 5)])
    def test_grid(self, rows, cols):
        ours = grid_2d_graph(rows, cols)
        theirs = nx.grid_2d_graph(rows, cols)
        assert ours.number_of_nodes() == theirs.number_of_nodes()
        assert ours.number_of_edges() == theirs.number_of_edges()
        assert diameter(ours) == nx.diameter(theirs)

    @pytest.mark.parametrize("dimension", [1, 2, 3, 4])
    def test_hypercube(self, dimension):
        ours = hypercube_graph(dimension)
        theirs = nx.hypercube_graph(dimension)
        assert ours.number_of_nodes() == theirs.number_of_nodes()
        assert ours.number_of_edges() == theirs.number_of_edges()
        assert diameter(ours) == nx.diameter(theirs)

    @pytest.mark.parametrize("a, b", [(1, 1), (2, 3), (4, 4)])
    def test_complete_bipartite(self, a, b):
        ours = complete_bipartite_graph(a, b)
        theirs = nx.complete_bipartite_graph(a, b)
        assert ours.number_of_edges() == theirs.number_of_edges()
        assert _degree_histogram(ours) == sorted(d for _, d in theirs.degree())

    @pytest.mark.parametrize("branching, height", [(2, 3), (3, 2)])
    def test_balanced_tree(self, branching, height):
        ours = balanced_tree(branching, height)
        theirs = nx.balanced_tree(branching, height)
        assert ours.number_of_nodes() == theirs.number_of_nodes()
        assert ours.number_of_edges() == theirs.number_of_edges()
        assert _degree_histogram(ours) == sorted(d for _, d in theirs.degree())


class TestRandomFamilyInvariants:
    @pytest.mark.parametrize("n, k", [(20, 4), (30, 6)])
    def test_watts_strogatz_ring_matches_networkx_lattice(self, n, k):
        ours = watts_strogatz_graph(n, k, 0.0)
        theirs = nx.watts_strogatz_graph(n, k, 0.0)
        assert {frozenset(e) for e in ours.edges()} == {frozenset(e) for e in theirs.edges()}

    @pytest.mark.parametrize("n, m", [(30, 1), (40, 2), (50, 3)])
    def test_barabasi_albert_edge_count_matches_networkx(self, n, m):
        ours = barabasi_albert_graph(n, m, random.Random(0))
        theirs = nx.barabasi_albert_graph(n, m, seed=0)
        # Our seed star contributes m edges vs networkx's empty seed set, so
        # the counts agree exactly for m = 1 and differ by at most m(m-1)
        # edges otherwise; both must be connected either way.
        assert abs(ours.number_of_edges() - theirs.number_of_edges()) <= m * (m - 1)
        assert is_connected(ours)
        assert nx.is_connected(theirs)

    def test_girth_of_structured_families(self):
        assert girth(cycle_graph(9)) == 9
        assert girth(hypercube_graph(3)) == 4
        assert girth(complete_bipartite_graph(2, 3)) == 4
        assert girth(balanced_tree(2, 3)) == float("inf")
