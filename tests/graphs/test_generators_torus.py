"""Tests for the stretched toroidal grid construction (Section 3.1)."""

import pytest

from repro.graphs.generators.torus import (
    TorusParameters,
    open_stretched_torus,
    stretched_torus,
    torus_lower_bound_distance,
    torus_parameters_for_lemma_4_1,
    torus_parameters_for_theorem_3_12,
)
from repro.graphs.properties import diameter
from repro.graphs.traversal import bfs_distances, is_connected


class TestTorusParameters:
    def test_counts_match_paper_formulas(self):
        params = TorusParameters(stretch=2, deltas=(3, 4))
        assert params.num_intersection_vertices == 2 * 3 * 4
        # n = N (2^{d-1}(ℓ-1) + 1) with d=2, ℓ=2 -> N * 3.
        assert params.num_vertices == 24 * 3
        assert params.k_star == 2 * (3 - 1)
        assert params.diameter_lower_bound == 2 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            TorusParameters(stretch=0, deltas=(3, 3))
        with pytest.raises(ValueError):
            TorusParameters(stretch=2, deltas=(3,))
        with pytest.raises(ValueError):
            TorusParameters(stretch=2, deltas=(1, 3))

    def test_modulus(self):
        params = TorusParameters(stretch=3, deltas=(2, 5))
        assert params.modulus(0) == 2 * 2 * 3
        assert params.modulus(1) == 2 * 5 * 3


class TestStretchedTorus:
    @pytest.mark.parametrize(
        "stretch,deltas",
        [(1, (2, 2)), (2, (2, 3)), (2, (3, 5)), (3, (2, 2)), (2, (2, 2, 2))],
    )
    def test_vertex_count_matches_formula(self, stretch, deltas):
        params = TorusParameters(stretch=stretch, deltas=deltas)
        owned = stretched_torus(params)
        assert owned.graph.number_of_nodes() == params.num_vertices

    def test_connected(self):
        owned = stretched_torus(TorusParameters(stretch=2, deltas=(3, 4)))
        assert is_connected(owned.graph)

    def test_intersection_vertices_buy_nothing(self):
        params = TorusParameters(stretch=2, deltas=(3, 4))
        owned = stretched_torus(params)
        for vertex in owned.metadata["intersection_vertices"]:
            assert owned.ownership[vertex] == set()

    def test_non_intersection_vertices_buy_one_or_two_edges(self):
        params = TorusParameters(stretch=3, deltas=(2, 3))
        owned = stretched_torus(params)
        intersections = owned.metadata["intersection_vertices"]
        for vertex, targets in owned.ownership.items():
            if vertex in intersections:
                continue
            assert 1 <= len(targets) <= 2

    def test_intersection_degree_is_2_to_the_d(self):
        params = TorusParameters(stretch=2, deltas=(3, 4))
        owned = stretched_torus(params)
        for vertex in owned.metadata["intersection_vertices"]:
            assert owned.graph.degree(vertex) == 4

    def test_diameter_at_least_paper_bound(self):
        params = TorusParameters(stretch=2, deltas=(3, 6))
        owned = stretched_torus(params)
        assert diameter(owned.graph) >= params.diameter_lower_bound

    def test_lemma_3_3_distance_lower_bound(self):
        params = TorusParameters(stretch=2, deltas=(3, 4))
        owned = stretched_torus(params)
        graph = owned.graph
        origin = (0, 0)
        distances = bfs_distances(graph, origin)
        for target, dist in distances.items():
            assert dist >= torus_lower_bound_distance(params, origin, target)

    def test_total_edge_count(self):
        params = TorusParameters(stretch=2, deltas=(3, 4))
        owned = stretched_torus(params)
        # Every vertex owns at most 2 edges so m <= 2n (used by Theorem 3.12).
        assert owned.graph.number_of_edges() <= 2 * owned.graph.number_of_nodes()


class TestOpenTorus:
    def test_open_is_subgraph_sized(self):
        params = TorusParameters(stretch=2, deltas=(3, 3))
        closed = stretched_torus(params).graph
        open_variant = open_stretched_torus(params)
        assert open_variant.number_of_edges() < closed.number_of_edges()

    def test_open_distances_dominate_closed(self):
        # Lemma 3.5: without the wrap-around, coordinates differences are
        # genuine distance lower bounds.
        params = TorusParameters(stretch=2, deltas=(2, 3))
        open_variant = open_stretched_torus(params)
        origin = (0, 0)
        for target, dist in bfs_distances(open_variant, origin).items():
            assert dist >= max(abs(t - o) for t, o in zip(target, origin))


class TestParameterSelection:
    def test_theorem_3_12_parameters(self):
        params = torus_parameters_for_theorem_3_12(alpha=2, k=4, n_target=2000)
        assert params.stretch == 2
        assert params.deltas[0] == 3
        assert params.deltas[-1] >= params.deltas[0]
        assert params.num_vertices <= 2000

    def test_theorem_3_12_rejects_small_n(self):
        with pytest.raises(ValueError):
            torus_parameters_for_theorem_3_12(alpha=2, k=8, n_target=30)

    def test_theorem_3_12_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            torus_parameters_for_theorem_3_12(alpha=0.5, k=3, n_target=100)
        with pytest.raises(ValueError):
            torus_parameters_for_theorem_3_12(alpha=5, k=3, n_target=1000)

    def test_lemma_4_1_parameters(self):
        params = torus_parameters_for_lemma_4_1(k=3, n_target=300)
        assert params.stretch == 2
        assert params.dimensions == 2
        assert params.deltas[0] == 3
        assert params.num_vertices <= 300

    def test_lemma_4_1_rejects_small_n(self):
        with pytest.raises(ValueError):
            torus_parameters_for_lemma_4_1(k=10, n_target=50)
