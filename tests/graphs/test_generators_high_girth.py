"""Tests for the high-girth graph generators."""

import math

import pytest

from repro.graphs.generators.high_girth import (
    high_girth_regular_graph,
    is_prime,
    owned_high_girth_graph,
    projective_plane_incidence_graph,
)
from repro.graphs.properties import girth
from repro.graphs.traversal import is_connected


class TestPrimality:
    @pytest.mark.parametrize("q", [2, 3, 5, 7, 11, 13, 97])
    def test_primes(self, q):
        assert is_prime(q)

    @pytest.mark.parametrize("q", [-3, 0, 1, 4, 9, 15, 100])
    def test_non_primes(self, q):
        assert not is_prime(q)


class TestProjectivePlane:
    @pytest.mark.parametrize("q", [2, 3])
    def test_counts_and_regularity(self, q):
        graph = projective_plane_incidence_graph(q)
        expected_points = q * q + q + 1
        assert graph.number_of_nodes() == 2 * expected_points
        assert all(graph.degree(v) == q + 1 for v in graph)
        assert graph.number_of_edges() == expected_points * (q + 1)

    @pytest.mark.parametrize("q", [2, 3, 5])
    def test_girth_is_six(self, q):
        assert girth(projective_plane_incidence_graph(q)) == 6

    def test_connected(self):
        assert is_connected(projective_plane_incidence_graph(3))

    def test_non_prime_rejected(self):
        with pytest.raises(ValueError):
            projective_plane_incidence_graph(4)

    def test_density_beats_generic_bound(self):
        # The point of the construction (Lemma 3.2) is super-linear density:
        # m = Θ(n^{3/2}) for girth 6.
        graph = projective_plane_incidence_graph(5)
        n = graph.number_of_nodes()
        m = graph.number_of_edges()
        assert m > 1.1 * n
        assert m <= 0.5 * n ** 1.5 + n


class TestGreedyHighGirth:
    def test_respects_degree_cap(self):
        graph = high_girth_regular_graph(40, degree=3, girth=6, seed=1)
        assert max(graph.degrees().values()) <= 3

    def test_respects_girth(self):
        for seed in range(3):
            graph = high_girth_regular_graph(40, degree=3, girth=6, seed=seed)
            assert girth(graph) >= 6

    def test_higher_girth_request(self):
        graph = high_girth_regular_graph(60, degree=3, girth=8, seed=0)
        assert girth(graph) >= 8

    def test_reproducible(self):
        a = high_girth_regular_graph(30, 3, 6, seed=5)
        b = high_girth_regular_graph(30, 3, 6, seed=5)
        assert a == b

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            high_girth_regular_graph(1, 3, 6)
        with pytest.raises(ValueError):
            high_girth_regular_graph(10, 0, 6)
        with pytest.raises(ValueError):
            high_girth_regular_graph(10, 3, 2)

    def test_places_a_reasonable_number_of_edges(self):
        graph = high_girth_regular_graph(50, degree=3, girth=6, seed=2)
        # Should not be nearly edgeless: at least half the degree budget used.
        assert graph.number_of_edges() >= 0.5 * (3 * 50 / 2) * 0.5


class TestOwnedHighGirth:
    def test_ownership_bounded_by_degree(self):
        owned = owned_high_girth_graph(40, degree=3, girth=6, seed=3)
        for node, targets in owned.ownership.items():
            assert len(targets) <= owned.graph.degree(node)
            assert len(targets) <= 3

    def test_every_edge_owned_once(self):
        owned = owned_high_girth_graph(30, degree=3, girth=6, seed=1)
        total = sum(len(t) for t in owned.ownership.values())
        assert total == owned.graph.number_of_edges()

    def test_metadata(self):
        owned = owned_high_girth_graph(30, degree=3, girth=8, seed=1)
        assert owned.metadata["girth"] == 8
        assert owned.metadata["degree"] == 3
        assert math.isfinite(owned.graph.number_of_edges())
