"""Tests for the extension instance families (small-world, BA, regular, ...)."""

import random

import pytest

from repro.graphs.algorithms import is_bipartite
from repro.graphs.generators.smallworld import (
    balanced_tree,
    barabasi_albert_graph,
    caterpillar_tree,
    complete_bipartite_graph,
    hypercube_graph,
    owned_barabasi_albert,
    owned_random_regular,
    owned_watts_strogatz,
    random_regular_graph,
    spider_tree,
    watts_strogatz_graph,
)
from repro.graphs.properties import diameter, is_tree
from repro.graphs.traversal import is_connected


class TestWattsStrogatz:
    def test_ring_lattice_when_p_zero(self):
        graph = watts_strogatz_graph(20, 4, 0.0, random.Random(0))
        assert graph.number_of_nodes() == 20
        assert graph.number_of_edges() == 20 * 2
        for node in graph.nodes():
            assert graph.degree(node) == 4

    def test_edge_count_preserved_by_rewiring(self):
        rng = random.Random(1)
        graph = watts_strogatz_graph(30, 4, 0.3, rng)
        assert graph.number_of_edges() == 30 * 2

    def test_no_self_loops_or_duplicates(self):
        graph = watts_strogatz_graph(25, 6, 0.5, random.Random(2))
        for node in graph.nodes():
            assert node not in graph.neighbors(node)

    def test_full_rewiring_changes_structure(self):
        lattice = watts_strogatz_graph(40, 4, 0.0, random.Random(3))
        rewired = watts_strogatz_graph(40, 4, 1.0, random.Random(3))
        lattice_edges = {frozenset(e) for e in lattice.edges()}
        rewired_edges = {frozenset(e) for e in rewired.edges()}
        assert lattice_edges != rewired_edges

    def test_deterministic_given_rng(self):
        a = watts_strogatz_graph(20, 4, 0.2, random.Random(7))
        b = watts_strogatz_graph(20, 4, 0.2, random.Random(7))
        assert {frozenset(e) for e in a.edges()} == {frozenset(e) for e in b.edges()}

    @pytest.mark.parametrize(
        "n, k, p",
        [(0, 2, 0.1), (10, 3, 0.1), (10, 10, 0.1), (10, 2, 1.5), (10, -2, 0.1)],
    )
    def test_invalid_parameters_raise(self, n, k, p):
        with pytest.raises(ValueError):
            watts_strogatz_graph(n, k, p)

    def test_k_zero_gives_empty_graph(self):
        graph = watts_strogatz_graph(5, 0, 0.0)
        assert graph.number_of_edges() == 0


class TestBarabasiAlbert:
    def test_m1_is_a_tree(self):
        graph = barabasi_albert_graph(50, 1, random.Random(0))
        assert is_tree(graph)

    def test_node_and_edge_counts(self):
        n, m = 40, 3
        graph = barabasi_albert_graph(n, m, random.Random(1))
        assert graph.number_of_nodes() == n
        # Seed star has m edges, every later node adds exactly m.
        assert graph.number_of_edges() == m + (n - m - 1) * m

    def test_connected(self):
        graph = barabasi_albert_graph(60, 2, random.Random(2))
        assert is_connected(graph)

    def test_hub_formation(self):
        graph = barabasi_albert_graph(200, 1, random.Random(3))
        degrees = sorted(graph.degrees().values(), reverse=True)
        # Preferential attachment produces a heavy hub well above the mean.
        assert degrees[0] >= 5

    @pytest.mark.parametrize("n, m", [(5, 0), (3, 3), (2, 5)])
    def test_invalid_parameters_raise(self, n, m):
        with pytest.raises(ValueError):
            barabasi_albert_graph(n, m)

    def test_deterministic_given_rng(self):
        a = barabasi_albert_graph(30, 2, random.Random(9))
        b = barabasi_albert_graph(30, 2, random.Random(9))
        assert {frozenset(e) for e in a.edges()} == {frozenset(e) for e in b.edges()}


class TestRandomRegular:
    @pytest.mark.parametrize("n, d", [(10, 3), (12, 4), (8, 2), (20, 5)])
    def test_degrees_are_exactly_d(self, n, d):
        graph = random_regular_graph(n, d, random.Random(0))
        for node in graph.nodes():
            assert graph.degree(node) == d

    def test_zero_regular(self):
        graph = random_regular_graph(6, 0)
        assert graph.number_of_edges() == 0

    def test_odd_product_raises(self):
        with pytest.raises(ValueError):
            random_regular_graph(7, 3)

    def test_d_too_large_raises(self):
        with pytest.raises(ValueError):
            random_regular_graph(5, 5)

    def test_simple_graph(self):
        graph = random_regular_graph(16, 3, random.Random(5))
        for node in graph.nodes():
            assert node not in graph.neighbors(node)
        assert graph.number_of_edges() == 16 * 3 // 2


class TestDeterministicFamilies:
    def test_hypercube_basicproperties(self):
        cube = hypercube_graph(4)
        assert cube.number_of_nodes() == 16
        assert cube.number_of_edges() == 4 * 16 // 2
        assert diameter(cube) == 4
        assert is_bipartite(cube)

    def test_hypercube_dimension_zero(self):
        cube = hypercube_graph(0)
        assert cube.number_of_nodes() == 1
        assert cube.number_of_edges() == 0

    def test_hypercube_negative_raises(self):
        with pytest.raises(ValueError):
            hypercube_graph(-1)

    def test_complete_bipartite(self):
        graph = complete_bipartite_graph(3, 4)
        assert graph.number_of_nodes() == 7
        assert graph.number_of_edges() == 12
        assert is_bipartite(graph)
        assert diameter(graph) == 2

    def test_complete_bipartite_empty_side(self):
        graph = complete_bipartite_graph(0, 5)
        assert graph.number_of_edges() == 0

    def test_complete_bipartite_negative_raises(self):
        with pytest.raises(ValueError):
            complete_bipartite_graph(-1, 3)

    def test_caterpillar(self):
        graph = caterpillar_tree(spine=5, legs_per_node=2)
        assert is_tree(graph)
        assert graph.number_of_nodes() == 5 + 5 * 2
        # Diameter: leaf - spine end ... spine end - leaf = 1 + 4 + 1.
        assert diameter(graph) == 6

    def test_caterpillar_no_legs_is_path(self):
        graph = caterpillar_tree(spine=6, legs_per_node=0)
        assert is_tree(graph)
        assert diameter(graph) == 5

    def test_caterpillar_invalid(self):
        with pytest.raises(ValueError):
            caterpillar_tree(0, 1)
        with pytest.raises(ValueError):
            caterpillar_tree(3, -1)

    def test_spider(self):
        graph = spider_tree(legs=4, leg_length=3)
        assert is_tree(graph)
        assert graph.number_of_nodes() == 1 + 4 * 3
        assert diameter(graph) == 6
        assert graph.degree(0) == 4

    def test_spider_no_legs(self):
        graph = spider_tree(legs=0, leg_length=5)
        assert graph.number_of_nodes() == 1

    def test_spider_invalid(self):
        with pytest.raises(ValueError):
            spider_tree(-1, 2)

    def test_balanced_tree(self):
        graph = balanced_tree(branching=2, height=3)
        assert is_tree(graph)
        assert graph.number_of_nodes() == 1 + 2 + 4 + 8
        assert diameter(graph) == 6

    def test_balanced_tree_height_zero(self):
        graph = balanced_tree(branching=3, height=0)
        assert graph.number_of_nodes() == 1

    def test_balanced_tree_invalid(self):
        with pytest.raises(ValueError):
            balanced_tree(0, 2)
        with pytest.raises(ValueError):
            balanced_tree(2, -1)


class TestOwnedVariants:
    def test_owned_watts_strogatz_valid_and_connected(self):
        owned = owned_watts_strogatz(30, 4, 0.2, seed=0)
        owned.validate()
        assert is_connected(owned.graph)
        assert owned.metadata["family"] == "watts-strogatz"

    def test_owned_barabasi_albert(self):
        owned = owned_barabasi_albert(40, 2, seed=1)
        owned.validate()
        assert is_connected(owned.graph)
        assert owned.metadata["family"] == "barabasi-albert"

    def test_owned_random_regular(self):
        owned = owned_random_regular(20, 3, seed=2)
        owned.validate()
        assert is_connected(owned.graph)
        for node in owned.graph.nodes():
            assert owned.graph.degree(node) == 3

    def test_seed_reproducibility(self):
        a = owned_barabasi_albert(30, 2, seed=5)
        b = owned_barabasi_albert(30, 2, seed=5)
        assert {frozenset(e) for e in a.graph.edges()} == {
            frozenset(e) for e in b.graph.edges()
        }
        for node in a.graph.nodes():
            assert a.bought_edges(node) == b.bought_edges(node)

    def test_ownership_covers_every_edge_once(self):
        owned = owned_watts_strogatz(25, 4, 0.3, seed=7)
        total_owned = sum(len(targets) for targets in owned.ownership.values())
        assert total_owned == owned.graph.number_of_edges()
