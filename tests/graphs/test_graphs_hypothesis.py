"""Property-based tests for the graph substrate (hypothesis)."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators.erdos_renyi import gnp_random_graph
from repro.graphs.generators.trees import prufer_to_tree, random_tree
from repro.graphs.graph import Graph
from repro.graphs.power import graph_power
from repro.graphs.properties import diameter, eccentricities, girth, is_tree, radius
from repro.graphs.traversal import (
    UNREACHABLE,
    bfs_distances,
    bfs_distances_within,
    connected_components,
    distance_matrix,
    is_connected,
    shortest_path,
)


@st.composite
def random_graphs(draw, max_nodes: int = 12):
    """Arbitrary (possibly disconnected) simple graphs on 1..max_nodes nodes."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.floats(min_value=0.0, max_value=0.7))
    return gnp_random_graph(n, p, random.Random(seed))


@st.composite
def connected_graphs(draw, max_nodes: int = 12):
    """Connected graphs built as a random tree plus random extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    graph = random_tree(n, rng)
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return graph


class TestDistanceProperties:
    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, graph):
        nodes = graph.nodes()
        rng = random.Random(0)
        dist = {node: bfs_distances(graph, node) for node in nodes}
        for _ in range(10):
            a, b, c = (rng.choice(nodes) for _ in range(3))
            assert dist[a][c] <= dist[a][b] + dist[b][c]

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_distance_symmetry(self, graph):
        for u in graph:
            du = bfs_distances(graph, u)
            for v, d in du.items():
                assert bfs_distances(graph, v)[u] == d

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_matrix_agrees_with_bfs(self, graph):
        matrix, order = distance_matrix(graph)
        index = {node: i for i, node in enumerate(order)}
        for u in graph:
            for v, d in bfs_distances(graph, u).items():
                assert matrix[index[u], index[v]] == d

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_unreachable_consistency(self, graph):
        matrix, order = distance_matrix(graph)
        components = connected_components(graph)
        comp_of = {node: i for i, comp in enumerate(components) for node in comp}
        index = {node: i for i, node in enumerate(order)}
        for u in graph:
            for v in graph:
                same = comp_of[u] == comp_of[v]
                assert (matrix[index[u], index[v]] != UNREACHABLE) == same

    @given(connected_graphs(), st.integers(min_value=0, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_bounded_bfs_is_restriction(self, graph, radius_value):
        for source in list(graph)[:3]:
            full = bfs_distances(graph, source)
            bounded = bfs_distances_within(graph, source, radius_value)
            assert bounded == {k: v for k, v in full.items() if v <= radius_value}

    @given(connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_shortest_path_is_valid_walk(self, graph):
        nodes = graph.nodes()
        source, target = nodes[0], nodes[-1]
        path = shortest_path(graph, source, target)
        assert path is not None
        assert path[0] == source and path[-1] == target
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)
        assert len(path) - 1 == bfs_distances(graph, source)[target]


class TestStructuralProperties:
    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_radius_diameter_relation(self, graph):
        r, d = radius(graph), diameter(graph)
        assert r <= d <= 2 * r

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_eccentricity_bounds(self, graph):
        n = graph.number_of_nodes()
        for value in eccentricities(graph).values():
            assert 0 <= value <= n - 1

    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_tree_invariants(self, n, seed):
        tree = random_tree(n, random.Random(seed))
        assert is_tree(tree)
        assert tree.number_of_edges() == n - 1
        assert is_connected(tree)
        assert girth(tree) == math.inf

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=0, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_prufer_always_yields_tree(self, sequence):
        n = len(sequence) + 2
        bounded = [value % n for value in sequence]
        assert is_tree(prufer_to_tree(bounded))

    @given(connected_graphs(max_nodes=9), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_graph_power_monotone(self, graph, h):
        power_h = graph_power(graph, h)
        power_h1 = graph_power(graph, h + 1)
        for u, v in power_h.edges():
            assert power_h1.has_edge(u, v)

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_components_partition_nodes(self, graph):
        components = connected_components(graph)
        seen: set = set()
        for comp in components:
            assert not (seen & comp)
            seen |= comp
        assert seen == set(graph.nodes())


class TestCopySemantics:
    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_copy_equals_original(self, graph):
        assert graph.copy() == graph

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_induced_subgraph_of_all_nodes_is_identity(self, graph):
        assert graph.induced_subgraph(graph.nodes()) == graph

    @given(connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_csr_edge_count(self, graph):
        indptr, indices, nodes = graph.to_csr_arrays()
        assert int(indptr[-1]) == 2 * graph.number_of_edges()
        assert len(indices) == int(indptr[-1])
