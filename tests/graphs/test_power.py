"""Tests for graph powers."""

import numpy as np
import pytest

from repro.graphs.generators.classic import cycle_graph, path_graph
from repro.graphs.power import graph_power, power_adjacency
from repro.graphs.traversal import bfs_distances


class TestGraphPower:
    def test_power_zero_is_edgeless(self, path5):
        power = graph_power(path5, 0)
        assert power.number_of_edges() == 0
        assert set(power.nodes()) == set(path5.nodes())

    def test_power_one_is_copy(self, path5):
        power = graph_power(path5, 1)
        assert power == path5

    def test_path_square(self):
        power = graph_power(path_graph(5), 2)
        assert power.has_edge(0, 2)
        assert not power.has_edge(0, 3)
        assert power.has_edge(2, 4)

    def test_large_power_is_complete(self, path5):
        power = graph_power(path5, 4)
        assert power.number_of_edges() == 5 * 4 // 2

    def test_negative_power_raises(self, path5):
        with pytest.raises(ValueError):
            graph_power(path5, -1)

    def test_power_matches_distances(self, petersen):
        h = 2
        power = graph_power(petersen, h)
        for u in petersen:
            dist = bfs_distances(petersen, u)
            for v in petersen:
                if u == v:
                    continue
                assert power.has_edge(u, v) == (dist[v] <= h)


class TestPowerAdjacency:
    def test_diagonal_true(self, path5):
        matrix, order = power_adjacency(path5, 1)
        assert np.all(np.diag(matrix))

    def test_matches_graph_power(self):
        graph = cycle_graph(7)
        h = 2
        matrix, order = power_adjacency(graph, h)
        power = graph_power(graph, h)
        index = {node: i for i, node in enumerate(order)}
        for u in graph:
            for v in graph:
                if u == v:
                    continue
                assert matrix[index[u], index[v]] == power.has_edge(u, v)

    def test_radius_zero_is_identity(self, path5):
        matrix, _ = power_adjacency(path5, 0)
        assert np.array_equal(matrix, np.eye(5, dtype=bool))

    def test_restricted_node_order(self, path5):
        matrix, order = power_adjacency(path5, 2, nodes=[0, 4])
        assert order == [0, 4]
        assert matrix.shape == (2, 2)
        assert not matrix[0, 1]  # distance 4 > 2

    def test_negative_radius_raises(self, path5):
        with pytest.raises(ValueError):
            power_adjacency(path5, -2)
