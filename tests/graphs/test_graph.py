"""Tests for the Graph container."""

import numpy as np
import pytest

from repro.graphs.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.number_of_nodes() == 0
        assert graph.number_of_edges() == 0
        assert graph.nodes() == []
        assert graph.edges() == []

    def test_from_nodes(self):
        graph = Graph(nodes=[3, 1, 2])
        assert graph.nodes() == [3, 1, 2]
        assert graph.number_of_edges() == 0

    def test_from_edges_adds_endpoints(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        assert set(graph.nodes()) == {0, 1, 2}
        assert graph.number_of_edges() == 2

    def test_empty_classmethod(self):
        graph = Graph.empty(4)
        assert graph.nodes() == [0, 1, 2, 3]
        assert graph.number_of_edges() == 0

    def test_from_edges_classmethod(self):
        graph = Graph.from_edges([(0, 1)])
        assert graph.has_edge(0, 1)

    def test_tuple_nodes_supported(self):
        graph = Graph(edges=[((0, 0), (0, 1))])
        assert graph.has_edge((0, 0), (0, 1))
        assert graph.number_of_nodes() == 2


class TestMutation:
    def test_add_edge_is_symmetric(self):
        graph = Graph()
        graph.add_edge("a", "b")
        assert graph.has_edge("a", "b")
        assert graph.has_edge("b", "a")

    def test_add_duplicate_edge_is_idempotent(self):
        graph = Graph()
        graph.add_edge(0, 1)
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        assert graph.number_of_edges() == 1

    def test_self_loop_rejected(self):
        graph = Graph()
        with pytest.raises(ValueError):
            graph.add_edge(0, 0)

    def test_add_node_idempotent(self):
        graph = Graph()
        graph.add_node(0)
        graph.add_edge(0, 1)
        graph.add_node(0)
        assert graph.has_edge(0, 1)

    def test_remove_edge(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert graph.has_edge(1, 2)
        assert graph.has_node(0)

    def test_remove_missing_edge_raises(self):
        graph = Graph(nodes=[0, 1])
        with pytest.raises(KeyError):
            graph.remove_edge(0, 1)

    def test_remove_node_removes_incident_edges(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        graph.remove_node(1)
        assert not graph.has_node(1)
        assert graph.has_edge(0, 2)
        assert graph.number_of_edges() == 1
        assert 1 not in graph.neighbors(0)

    def test_remove_missing_node_raises(self):
        graph = Graph()
        with pytest.raises(KeyError):
            graph.remove_node(42)


class TestQueries:
    def test_degree_and_degrees(self):
        graph = Graph(edges=[(0, 1), (0, 2), (0, 3)])
        assert graph.degree(0) == 3
        assert graph.degree(1) == 1
        assert graph.degrees() == {0: 3, 1: 1, 2: 1, 3: 1}

    def test_len_iter_contains(self):
        graph = Graph(nodes=[0, 1, 2])
        assert len(graph) == 3
        assert list(iter(graph)) == [0, 1, 2]
        assert 1 in graph
        assert 9 not in graph

    def test_edges_listed_once(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        edges = {frozenset(edge) for edge in graph.edges()}
        assert edges == {frozenset({0, 1}), frozenset({1, 2}), frozenset({0, 2})}
        assert len(graph.edges()) == 3

    def test_equality(self):
        a = Graph(edges=[(0, 1), (1, 2)])
        b = Graph(edges=[(1, 2), (0, 1)])
        c = Graph(edges=[(0, 1)])
        assert a == b
        assert a != c

    def test_equality_non_graph(self):
        assert Graph() != 42


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        graph = Graph(edges=[(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert not graph.has_node(2)
        assert clone.has_edge(1, 2)

    def test_induced_subgraph(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        sub = graph.induced_subgraph([0, 1, 2])
        assert set(sub.nodes()) == {0, 1, 2}
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)
        assert not sub.has_edge(2, 3)
        assert sub.number_of_edges() == 2

    def test_induced_subgraph_ignores_unknown_nodes(self):
        graph = Graph(edges=[(0, 1)])
        sub = graph.induced_subgraph([0, 1, 99])
        assert set(sub.nodes()) == {0, 1}

    def test_without_node(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        reduced = graph.without_node(1)
        assert not reduced.has_node(1)
        assert graph.has_node(1)  # original untouched
        assert reduced.number_of_edges() == 0


class TestExports:
    def test_to_index(self):
        graph = Graph(nodes=["x", "y"])
        nodes, index = graph.to_index()
        assert nodes == ["x", "y"]
        assert index == {"x": 0, "y": 1}

    def test_csr_arrays_roundtrip(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        indptr, indices, nodes = graph.to_csr_arrays()
        assert len(indptr) == len(nodes) + 1
        # Node 1 has two neighbours.
        i = nodes.index(1)
        assert indptr[i + 1] - indptr[i] == 2
        assert int(indptr[-1]) == 2 * graph.number_of_edges()

    def test_adjacency_matrix_symmetric(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        matrix, nodes = graph.adjacency_matrix()
        assert matrix.shape == (3, 3)
        assert np.array_equal(matrix, matrix.T)
        assert matrix.sum() == 2 * graph.number_of_edges()

    def test_networkx_roundtrip(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        nx_graph = graph.to_networkx()
        back = Graph.from_networkx(nx_graph)
        assert back == graph


class TestCsrCache:
    """``to_csr_arrays`` is cached keyed by the monotone ``version`` counter:
    same arrays while the structure is unchanged, invalidated by any edge or
    node delta, never aliased mutably to callers."""

    def test_same_arrays_while_version_unchanged(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        indptr1, indices1, nodes1 = graph.to_csr_arrays()
        indptr2, indices2, nodes2 = graph.to_csr_arrays()
        assert indptr1 is indptr2
        assert indices1 is indices2
        assert nodes1 == nodes2

    def test_version_bump_invalidates(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        indptr1, indices1, _ = graph.to_csr_arrays()
        graph.add_edge(2, 3)
        indptr2, indices2, nodes2 = graph.to_csr_arrays()
        assert indptr2 is not indptr1
        assert indices2 is not indices1
        assert 3 in nodes2
        assert int(indptr2[-1]) == 2 * graph.number_of_edges()

    def test_every_mutation_kind_invalidates(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        for mutate in (
            lambda g: g.remove_edge(2, 3),
            lambda g: g.add_node(9),
            lambda g: g.remove_node(3),
            lambda g: g.add_edge(9, 0),
        ):
            before = graph.to_csr_arrays()[0]
            version = graph.version
            mutate(graph)
            assert graph.version > version
            after, indices, nodes = graph.to_csr_arrays()
            assert after is not before
            assert len(after) == len(nodes) + 1
            assert int(after[-1]) == 2 * graph.number_of_edges() == len(indices)

    def test_noop_mutation_keeps_cache(self):
        graph = Graph(edges=[(0, 1)])
        before = graph.to_csr_arrays()[0]
        graph.add_node(0)  # already present: no version bump
        assert graph.to_csr_arrays()[0] is before

    def test_cached_arrays_are_read_only(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        indptr, indices, _ = graph.to_csr_arrays()
        with pytest.raises(ValueError):
            indptr[0] = 99
        with pytest.raises(ValueError):
            indices[0] = 99

    def test_node_list_is_a_fresh_copy(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        _, _, nodes = graph.to_csr_arrays()
        nodes.append("garbage")
        assert graph.to_csr_arrays()[2] == [0, 1, 2]
