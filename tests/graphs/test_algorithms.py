"""Tests for the structural graph algorithms (bridges, centers, colouring, ...)."""

import random

import networkx as nx
import pytest

from repro.graphs.algorithms import (
    articulation_points,
    betweenness_centrality,
    bfs_layers,
    bfs_tree,
    biconnected_component_count,
    bipartition,
    bridges,
    degeneracy_ordering,
    graph_center,
    graph_median,
    graph_periphery,
    greedy_maximal_independent_set,
    greedy_vertex_coloring,
    is_bipartite,
    k_core,
    spanning_tree,
)
from repro.graphs.generators.classic import (
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
)
from repro.graphs.generators.erdos_renyi import connected_gnp_graph
from repro.graphs.generators.trees import random_tree
from repro.graphs.graph import Graph
from repro.graphs.properties import is_tree
from repro.graphs.traversal import bfs_distances, is_connected


class TestBfsTree:
    def test_parent_of_root_is_none(self, path5):
        parent = bfs_tree(path5, 0)
        assert parent[0] is None

    def test_parent_distances_consistent(self, petersen):
        parent = bfs_tree(petersen, 0)
        dist = bfs_distances(petersen, 0)
        for child, par in parent.items():
            if par is not None:
                assert dist[child] == dist[par] + 1

    def test_covers_component_only(self):
        graph = Graph(nodes=[0, 1, 2, 3], edges=[(0, 1), (2, 3)])
        parent = bfs_tree(graph, 0)
        assert set(parent) == {0, 1}

    def test_missing_source_raises(self, path5):
        with pytest.raises(KeyError):
            bfs_tree(path5, 42)

    def test_tree_edge_count(self, petersen):
        parent = bfs_tree(petersen, 0)
        tree_edges = [(c, p) for c, p in parent.items() if p is not None]
        assert len(tree_edges) == petersen.number_of_nodes() - 1


class TestBfsLayers:
    def test_path_layers(self, path5):
        layers = bfs_layers(path5, 0)
        assert layers == [{0}, {1}, {2}, {3}, {4}]

    def test_layers_partition_component(self, petersen):
        layers = bfs_layers(petersen, 3)
        union = set().union(*layers)
        assert union == set(petersen.nodes())
        assert sum(len(layer) for layer in layers) == petersen.number_of_nodes()

    def test_star_layers(self):
        star = star_graph(7)
        layers = bfs_layers(star, 0)
        assert layers[0] == {0}
        assert layers[1] == set(range(1, 7))


class TestBridgesAndArticulation:
    def test_tree_all_edges_are_bridges(self):
        tree = random_tree(15, random.Random(3))
        assert len(bridges(tree)) == tree.number_of_edges()

    def test_cycle_has_no_bridges(self, cycle6):
        assert bridges(cycle6) == []
        assert articulation_points(cycle6) == set()

    def test_path_internal_nodes_are_articulation(self, path5):
        assert articulation_points(path5) == {1, 2, 3}

    def test_star_center_is_articulation(self):
        star = star_graph(6)
        assert articulation_points(star) == {0}

    def test_complete_graph_has_none(self):
        clique = complete_graph(6)
        assert bridges(clique) == []
        assert articulation_points(clique) == set()

    def test_barbell_bridge(self):
        # Two triangles joined by a single edge: that edge is the only bridge.
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
        found = {frozenset(edge) for edge in bridges(graph)}
        assert found == {frozenset((2, 3))}
        assert articulation_points(graph) == {2, 3}

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_networkx_on_random_graphs(self, seed):
        graph = connected_gnp_graph(20, 0.15, random.Random(seed))
        nx_graph = graph.to_networkx()
        assert {frozenset(e) for e in bridges(graph)} == {
            frozenset(e) for e in nx.bridges(nx_graph)
        }
        assert articulation_points(graph) == set(nx.articulation_points(nx_graph))

    def test_disconnected_graph_supported(self):
        graph = Graph(edges=[(0, 1), (1, 2), (3, 4)])
        found = {frozenset(edge) for edge in bridges(graph)}
        assert frozenset((3, 4)) in found
        assert articulation_points(graph) == {1}


class TestBiconnectedComponents:
    def test_single_cycle_is_one_block(self, cycle6):
        assert biconnected_component_count(cycle6) == 1

    def test_tree_has_one_block_per_edge(self, path5):
        assert biconnected_component_count(path5) == path5.number_of_edges()

    @pytest.mark.parametrize("seed", [0, 5, 9])
    def test_matches_networkx(self, seed):
        graph = connected_gnp_graph(18, 0.15, random.Random(seed))
        expected = sum(1 for _ in nx.biconnected_components(graph.to_networkx()))
        assert biconnected_component_count(graph) == expected


class TestCentrality:
    def test_path_center_and_periphery(self, path5):
        assert graph_center(path5) == {2}
        assert graph_periphery(path5) == {0, 4}

    def test_star_center_is_hub(self):
        star = star_graph(9)
        assert graph_center(star) == {0}
        assert graph_periphery(star) == set(range(1, 9))

    def test_median_of_path(self, path5):
        assert graph_median(path5) == {2}

    def test_median_of_star_is_center(self):
        star = star_graph(9)
        assert graph_median(star) == {0}

    def test_vertex_transitive_graph_everything_central(self, cycle6):
        assert graph_center(cycle6) == set(cycle6.nodes())
        assert graph_median(cycle6) == set(cycle6.nodes())

    def test_disconnected_raises(self):
        graph = Graph(nodes=[0, 1, 2], edges=[(0, 1)])
        with pytest.raises(ValueError):
            graph_center(graph)
        with pytest.raises(ValueError):
            graph_periphery(graph)
        with pytest.raises(ValueError):
            graph_median(graph)

    def test_empty_graph(self):
        assert graph_center(Graph()) == set()
        assert graph_periphery(Graph()) == set()
        assert graph_median(Graph()) == set()


class TestBetweenness:
    def test_star_hub_has_all_betweenness(self):
        star = star_graph(7)
        centrality = betweenness_centrality(star)
        assert centrality[0] == pytest.approx(1.0)
        for leaf in range(1, 7):
            assert centrality[leaf] == pytest.approx(0.0)

    def test_path_midpoint_dominates(self, path5):
        centrality = betweenness_centrality(path5)
        assert centrality[2] == max(centrality.values())
        assert centrality[0] == pytest.approx(0.0)

    @pytest.mark.parametrize("seed", [1, 2, 7])
    def test_matches_networkx(self, seed):
        graph = connected_gnp_graph(14, 0.25, random.Random(seed))
        ours = betweenness_centrality(graph)
        theirs = nx.betweenness_centrality(graph.to_networkx())
        for node in graph.nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-9)

    def test_unnormalized(self, path5):
        centrality = betweenness_centrality(path5, normalized=False)
        # Middle of a path P5: pairs (0,3),(0,4),(1,3),(1,4) pass through 2
        # plus (0,?) ... exact value is 4 for node 2.
        assert centrality[2] == pytest.approx(4.0)


class TestSpanningTree:
    def test_spanning_tree_of_connected_graph(self, petersen):
        tree = spanning_tree(petersen)
        assert is_tree(tree)
        assert set(tree.nodes()) == set(petersen.nodes())
        for u, v in tree.edges():
            assert petersen.has_edge(u, v)

    def test_disconnected_raises(self):
        graph = Graph(nodes=[0, 1, 2], edges=[(0, 1)])
        with pytest.raises(ValueError):
            spanning_tree(graph)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            spanning_tree(Graph())

    def test_tree_is_its_own_spanning_tree(self):
        tree = random_tree(10, random.Random(0))
        spanning = spanning_tree(tree)
        assert {frozenset(e) for e in spanning.edges()} == {frozenset(e) for e in tree.edges()}


class TestBipartite:
    def test_even_cycle_bipartite(self, cycle6):
        assert is_bipartite(cycle6)
        side_a, side_b = bipartition(cycle6)
        assert side_a | side_b == set(cycle6.nodes())
        assert side_a & side_b == set()
        for u, v in cycle6.edges():
            assert (u in side_a) != (v in side_a)

    def test_odd_cycle_not_bipartite(self):
        assert not is_bipartite(cycle_graph(5))
        assert bipartition(cycle_graph(5)) is None

    def test_trees_are_bipartite(self):
        assert is_bipartite(random_tree(20, random.Random(1)))

    def test_petersen_not_bipartite(self, petersen):
        assert not is_bipartite(petersen)

    def test_disconnected_with_isolated_nodes(self):
        graph = Graph(nodes=[0, 1, 2, 3], edges=[(0, 1)])
        assert is_bipartite(graph)
        side_a, side_b = bipartition(graph)
        assert side_a | side_b == {0, 1, 2, 3}

    @pytest.mark.parametrize("seed", [0, 3, 8])
    def test_matches_networkx(self, seed):
        graph = connected_gnp_graph(15, 0.2, random.Random(seed))
        assert is_bipartite(graph) == nx.is_bipartite(graph.to_networkx())


class TestIndependentSetAndColoring:
    def test_independent_set_is_independent(self, petersen):
        independent = greedy_maximal_independent_set(petersen)
        for u in independent:
            for v in independent:
                if u != v:
                    assert not petersen.has_edge(u, v)

    def test_independent_set_is_maximal(self, petersen):
        independent = greedy_maximal_independent_set(petersen)
        for node in petersen.nodes():
            if node in independent:
                continue
            assert any(neigh in independent for neigh in petersen.neighbors(node))

    def test_coloring_is_proper(self, petersen):
        colouring = greedy_vertex_coloring(petersen)
        for u, v in petersen.edges():
            assert colouring[u] != colouring[v]

    def test_coloring_of_bipartite_graph_uses_two_colors(self, cycle6):
        colouring = greedy_vertex_coloring(cycle6)
        assert len(set(colouring.values())) <= 2

    def test_complete_graph_needs_n_colors(self):
        clique = complete_graph(5)
        colouring = greedy_vertex_coloring(clique)
        assert len(set(colouring.values())) == 5

    def test_empty_graph(self):
        assert greedy_maximal_independent_set(Graph()) == set()
        assert greedy_vertex_coloring(Graph()) == {}


class TestCoreAndDegeneracy:
    def test_k_core_of_clique(self):
        clique = complete_graph(6)
        assert set(k_core(clique, 5).nodes()) == set(range(6))
        assert k_core(clique, 6).number_of_nodes() == 0

    def test_k_core_strips_leaves(self, path5):
        core = k_core(path5, 2)
        assert core.number_of_nodes() == 0

    def test_k_core_negative_raises(self, path5):
        with pytest.raises(ValueError):
            k_core(path5, -1)

    def test_k_core_matches_networkx(self):
        graph = connected_gnp_graph(20, 0.25, random.Random(4))
        for k in (1, 2, 3):
            expected = set(nx.k_core(graph.to_networkx(), k).nodes())
            assert set(k_core(graph, k).nodes()) == expected

    def test_degeneracy_ordering_is_permutation(self, petersen):
        order = degeneracy_ordering(petersen)
        assert sorted(order, key=repr) == sorted(petersen.nodes(), key=repr)

    def test_tree_degeneracy_one(self):
        tree = random_tree(12, random.Random(5))
        order = degeneracy_ordering(tree)
        # In a degeneracy ordering of a tree, each removed node has degree <= 1
        # among the not-yet-removed nodes.
        remaining = tree.copy()
        for node in order:
            assert remaining.degree(node) <= 1
            remaining.remove_node(node)
