"""Tests for structural graph properties."""

import math

import pytest

from repro.graphs.generators.classic import complete_graph, grid_2d_graph, star_graph
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    degree_statistics,
    density,
    diameter,
    eccentricities,
    eccentricity,
    girth,
    is_tree,
    radius,
    status,
    statuses,
)


class TestEccentricity:
    def test_path_center_and_ends(self, path5):
        assert eccentricity(path5, 0) == 4
        assert eccentricity(path5, 2) == 2

    def test_star(self, star6):
        assert eccentricity(star6, 0) == 1
        assert eccentricity(star6, 3) == 2

    def test_disconnected_raises(self):
        graph = Graph(nodes=[0, 1, 2], edges=[(0, 1)])
        with pytest.raises(ValueError):
            eccentricity(graph, 0)

    def test_eccentricities_all_nodes(self, cycle6):
        assert eccentricities(cycle6) == {node: 3 for node in range(6)}

    def test_single_node(self):
        assert eccentricity(Graph(nodes=[0]), 0) == 0


class TestStatus:
    def test_star_center(self, star6):
        assert status(star6, 0) == 5

    def test_star_leaf(self, star6):
        assert status(star6, 1) == 1 + 2 * 4

    def test_path_end(self, path5):
        assert status(path5, 0) == 1 + 2 + 3 + 4

    def test_statuses(self, cycle6):
        # On an even cycle of length 6: distances 1,2,3,2,1 -> 9.
        assert statuses(cycle6) == {node: 9 for node in range(6)}

    def test_disconnected_raises(self):
        graph = Graph(nodes=[0, 1, 2], edges=[(0, 1)])
        with pytest.raises(ValueError):
            status(graph, 1)


class TestDiameterRadius:
    def test_path(self, path5):
        assert diameter(path5) == 4
        assert radius(path5) == 2

    def test_cycle(self, cycle6):
        assert diameter(cycle6) == 3
        assert radius(cycle6) == 3

    def test_star(self, star6):
        assert diameter(star6) == 2
        assert radius(star6) == 1

    def test_petersen(self, petersen):
        assert diameter(petersen) == 2

    def test_grid(self):
        grid = grid_2d_graph(3, 4)
        assert diameter(grid) == 2 + 3

    def test_single_node(self):
        single = Graph(nodes=[0])
        assert diameter(single) == 0
        assert radius(single) == 0


class TestGirth:
    def test_tree_has_infinite_girth(self, path5):
        assert girth(path5) == math.inf

    def test_cycle(self, cycle6):
        assert girth(cycle6) == 6

    def test_triangle(self):
        assert girth(complete_graph(3)) == 3

    def test_complete_graph(self):
        assert girth(complete_graph(5)) == 3

    def test_petersen(self, petersen):
        assert girth(petersen) == 5

    def test_even_cycle_with_chord(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)])
        assert girth(graph) == 4

    def test_grid(self):
        assert girth(grid_2d_graph(3, 3)) == 4


class TestDegreeStatistics:
    def test_star(self, star6):
        stats = degree_statistics(star6)
        assert stats.maximum == 5
        assert stats.minimum == 1
        assert stats.mean == pytest.approx(10 / 6)
        assert stats.as_dict()["max"] == 5

    def test_empty(self):
        stats = degree_statistics(Graph())
        assert stats.maximum == 0
        assert stats.minimum == 0


class TestIsTreeAndDensity:
    def test_path_is_tree(self, path5):
        assert is_tree(path5)

    def test_star_is_tree(self, star6):
        assert is_tree(star6)

    def test_cycle_is_not_tree(self, cycle6):
        assert not is_tree(cycle6)

    def test_forest_is_not_tree(self):
        assert not is_tree(Graph(nodes=[0, 1, 2, 3], edges=[(0, 1), (2, 3)]))

    def test_empty_not_tree(self):
        assert not is_tree(Graph())

    def test_density_complete(self):
        assert density(complete_graph(5)) == pytest.approx(1.0)

    def test_density_empty_and_small(self):
        assert density(Graph(nodes=[0])) == 0.0
        assert density(star_graph(5)) == pytest.approx(2 * 4 / (5 * 4))
