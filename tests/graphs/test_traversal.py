"""Tests for BFS traversals and distance computations."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators.erdos_renyi import gnp_random_graph
from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    UNREACHABLE,
    accumulate_bfs_distances,
    all_pairs_distances,
    ball,
    batched_bfs_distances,
    bfs_distances,
    bfs_distances_within,
    connected_components,
    distance_matrix,
    is_connected,
    iter_blocked_bfs_distances,
    shortest_path,
)


class TestBfsDistances:
    def test_path_distances(self, path5):
        dist = bfs_distances(path5, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_cycle_distances(self, cycle6):
        dist = bfs_distances(cycle6, 0)
        assert dist[3] == 3
        assert dist[5] == 1
        assert max(dist.values()) == 3

    def test_unreachable_nodes_absent(self):
        graph = Graph(nodes=[0, 1, 2], edges=[(0, 1)])
        dist = bfs_distances(graph, 0)
        assert 2 not in dist
        assert dist == {0: 0, 1: 1}

    def test_missing_source_raises(self, path5):
        with pytest.raises(KeyError):
            bfs_distances(path5, 99)


class TestBoundedBfs:
    def test_truncation(self, path5):
        dist = bfs_distances_within(path5, 0, 2)
        assert dist == {0: 0, 1: 1, 2: 2}

    def test_radius_zero(self, path5):
        assert bfs_distances_within(path5, 3, 0) == {3: 0}

    def test_negative_radius_raises(self, path5):
        with pytest.raises(ValueError):
            bfs_distances_within(path5, 0, -1)

    def test_matches_full_bfs_when_radius_large(self, petersen):
        full = bfs_distances(petersen, 0)
        bounded = bfs_distances_within(petersen, 0, 10)
        assert bounded == full

    def test_ball(self, path5):
        assert ball(path5, 2, 1) == {1, 2, 3}
        assert ball(path5, 0, 0) == {0}


class TestShortestPath:
    def test_path_endpoints(self, path5):
        assert shortest_path(path5, 0, 4) == [0, 1, 2, 3, 4]

    def test_same_node(self, path5):
        assert shortest_path(path5, 2, 2) == [2]

    def test_disconnected_returns_none(self):
        graph = Graph(nodes=[0, 1], edges=[])
        assert shortest_path(graph, 0, 1) is None

    def test_length_matches_distance(self, petersen):
        dist = bfs_distances(petersen, 0)
        for target in petersen:
            path = shortest_path(petersen, 0, target)
            assert path is not None
            assert len(path) - 1 == dist[target]

    def test_missing_node_raises(self, path5):
        with pytest.raises(KeyError):
            shortest_path(path5, 0, 99)


class TestConnectivity:
    def test_connected_graph(self, cycle6):
        assert is_connected(cycle6)
        assert len(connected_components(cycle6)) == 1

    def test_disconnected_graph(self):
        graph = Graph(edges=[(0, 1), (2, 3)])
        assert not is_connected(graph)
        components = connected_components(graph)
        assert sorted(map(sorted, components)) == [[0, 1], [2, 3]]

    def test_empty_graph_not_connected(self):
        assert not is_connected(Graph())

    def test_single_node_connected(self):
        assert is_connected(Graph(nodes=[0]))


class TestDistanceMatrix:
    def test_matches_dict_of_dicts(self, petersen):
        matrix, order = distance_matrix(petersen)
        table = all_pairs_distances(petersen)
        for i, u in enumerate(order):
            for j, v in enumerate(order):
                assert matrix[i, j] == table[u][v]

    def test_symmetry(self, cycle6):
        matrix, _ = distance_matrix(cycle6)
        assert np.array_equal(matrix, matrix.T)

    def test_unreachable_marker(self):
        graph = Graph(nodes=[0, 1, 2], edges=[(0, 1)])
        matrix, order = distance_matrix(graph)
        i, j = order.index(0), order.index(2)
        assert matrix[i, j] == UNREACHABLE

    def test_diagonal_zero(self, path5):
        matrix, _ = distance_matrix(path5)
        assert np.all(np.diag(matrix) == 0)

    def test_empty_graph(self):
        matrix, order = distance_matrix(Graph())
        assert matrix.shape == (0, 0)
        assert order == []

    def test_explicit_node_order(self, path5):
        matrix, order = distance_matrix(path5, nodes=[4, 0])
        assert order == [4, 0]
        # Restricting the node set also restricts the paths considered: 4 and
        # 0 are not adjacent in the induced subgraph {0, 4}.
        assert matrix[0, 1] == UNREACHABLE


class TestBatchedBfs:
    def test_subset_of_sources_matches_dict_bfs(self, petersen):
        indptr, indices, order = petersen.to_csr_arrays()
        sources = [0, 3, 7]
        dist = batched_bfs_distances(indptr, indices, sources)
        for row, source in enumerate(sources):
            expected = bfs_distances(petersen, order[source])
            for j, node in enumerate(order):
                assert dist[row, j] == expected[node]

    def test_radius_truncation_matches_bounded_bfs(self, petersen):
        indptr, indices, order = petersen.to_csr_arrays()
        dist = batched_bfs_distances(indptr, indices, range(len(order)), radius=1)
        for row, _ in enumerate(order):
            expected = bfs_distances_within(petersen, order[row], 1)
            reached = {order[j] for j in np.flatnonzero(dist[row] != UNREACHABLE)}
            assert reached == set(expected)

    def test_unreachable_marker(self):
        graph = Graph(nodes=[0, 1, 2], edges=[(0, 1)])
        indptr, indices, order = graph.to_csr_arrays()
        dist = batched_bfs_distances(indptr, indices, [order.index(0)])
        assert dist[0, order.index(2)] == UNREACHABLE

    def test_empty_sources(self, path5):
        indptr, indices, _ = path5.to_csr_arrays()
        dist = batched_bfs_distances(indptr, indices, [])
        assert dist.shape == (0, 5)

    def test_out_of_range_source_rejected(self, path5):
        indptr, indices, _ = path5.to_csr_arrays()
        with pytest.raises(IndexError):
            batched_bfs_distances(indptr, indices, [99])

    def test_radius_zero(self, path5):
        indptr, indices, order = path5.to_csr_arrays()
        dist = batched_bfs_distances(indptr, indices, [2], radius=0)
        assert (dist != UNREACHABLE).sum() == 1
        assert dist[0, 2] == 0


@st.composite
def bfs_workloads(draw, max_nodes: int = 14):
    """(graph, sources, radius, block_size) covering the blocked-BFS space.

    Graphs are arbitrary G(n, p) samples, frequently disconnected at the
    low-p end; source lists may be empty, repeat nodes and come in any
    order; block sizes run from degenerate (1) past the source count.
    """
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.floats(min_value=0.0, max_value=0.6))
    graph = gnp_random_graph(n, p, random.Random(seed))
    sources = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=0, max_size=2 * n)
    )
    radius = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=n)))
    block_size = draw(st.integers(min_value=1, max_value=2 * n + 2))
    return graph, sources, radius, block_size


class _CollectBlocks:
    """DistanceBlockConsumer that reassembles the full matrix for checking."""

    def __init__(self) -> None:
        self.blocks: list[tuple[int, np.ndarray]] = []

    def process_block(self, start, sources, dist_block):
        self.blocks.append((start, dist_block.copy()))


class TestBlockedBfsProperties:
    @given(bfs_workloads())
    @settings(max_examples=60, deadline=None)
    def test_blocked_equals_unblocked_equals_naive(self, workload):
        graph, sources, radius, block_size = workload
        indptr, indices, order = graph.to_csr_arrays()
        reference = batched_bfs_distances(indptr, indices, sources, radius=radius)
        stacked = np.full_like(reference, UNREACHABLE)
        for start, block_sources, block in iter_blocked_bfs_distances(
            indptr, indices, sources, radius=radius, block_size=block_size
        ):
            assert block.shape == (len(block_sources), len(order))
            assert len(block_sources) <= block_size
            stacked[start : start + block.shape[0]] = block
        assert np.array_equal(stacked, reference)
        # Naive per-source dict BFS agrees entry by entry (including the
        # UNREACHABLE marker on disconnected graphs).
        for row, source in enumerate(sources):
            expected = (
                bfs_distances(graph, order[source])
                if radius is None
                else bfs_distances_within(graph, order[source], radius)
            )
            for column, node in enumerate(order):
                assert reference[row, column] == expected.get(node, UNREACHABLE)

    @given(bfs_workloads())
    @settings(max_examples=40, deadline=None)
    def test_accumulator_sees_every_row_once(self, workload):
        graph, sources, radius, block_size = workload
        indptr, indices, _ = graph.to_csr_arrays()
        collector = accumulate_bfs_distances(
            indptr, indices, sources, _CollectBlocks(),
            radius=radius, block_size=block_size,
        )
        starts = [start for start, _ in collector.blocks]
        sizes = [block.shape[0] for _, block in collector.blocks]
        assert starts == sorted(starts)
        assert sum(sizes) == len(sources)
        if sources:
            reference = batched_bfs_distances(indptr, indices, sources, radius=radius)
            reassembled = np.concatenate([b for _, b in collector.blocks])
            assert np.array_equal(reassembled, reference)
        else:
            assert collector.blocks == []

    def test_empty_sources_yield_no_blocks(self, path5):
        indptr, indices, _ = path5.to_csr_arrays()
        assert list(iter_blocked_bfs_distances(indptr, indices, [])) == []

    def test_invalid_block_size_rejected_at_call_time(self, path5):
        indptr, indices, _ = path5.to_csr_arrays()
        with pytest.raises(ValueError):
            iter_blocked_bfs_distances(indptr, indices, [0], block_size=0)

    def test_out_of_range_source_rejected_at_call_time(self, path5):
        indptr, indices, _ = path5.to_csr_arrays()
        with pytest.raises(IndexError):
            iter_blocked_bfs_distances(indptr, indices, [99], block_size=2)
