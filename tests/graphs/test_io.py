"""Tests for graph / owned-graph serialization round-trips."""

import json
import random

import pytest

from repro.graphs.generators.classic import owned_cycle, petersen_graph
from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
from repro.graphs.generators.torus import TorusParameters, stretched_torus
from repro.graphs.generators.trees import random_owned_tree
from repro.graphs.graph import Graph
from repro.graphs.io import (
    graph_from_dict,
    graph_from_edge_list,
    graph_to_dict,
    graph_to_edge_list,
    owned_graph_from_dict,
    owned_graph_to_dict,
    read_edge_list,
    read_graph_json,
    read_owned_graph_json,
    write_edge_list,
    write_graph_json,
    write_owned_graph_json,
)


def _assert_same_graph(a: Graph, b: Graph) -> None:
    assert set(a.nodes()) == set(b.nodes())
    assert {frozenset(e) for e in a.edges()} == {frozenset(e) for e in b.edges()}


class TestEdgeListRoundTrip:
    def test_petersen_round_trip(self):
        graph = petersen_graph()
        _assert_same_graph(graph, graph_from_edge_list(graph_to_edge_list(graph)))

    def test_isolated_nodes_survive(self):
        graph = Graph(nodes=[0, 1, 2, 3], edges=[(0, 1)])
        restored = graph_from_edge_list(graph_to_edge_list(graph))
        assert set(restored.nodes()) == {0, 1, 2, 3}
        assert restored.number_of_edges() == 1

    def test_tuple_labels_round_trip(self):
        graph = Graph(edges=[((0, 0), (0, 1)), ((0, 1), (1, 1))])
        restored = graph_from_edge_list(graph_to_edge_list(graph))
        _assert_same_graph(graph, restored)

    def test_empty_graph(self):
        restored = graph_from_edge_list(graph_to_edge_list(Graph()))
        assert restored.number_of_nodes() == 0

    def test_comment_lines_ignored(self):
        text = "# nodes: 0 1 2\n# a comment\n0 1\n\n1 2\n"
        graph = graph_from_edge_list(text)
        assert graph.number_of_edges() == 2

    def test_malformed_edge_line_raises(self):
        with pytest.raises(ValueError):
            graph_from_edge_list("# nodes: 0 1 2\n0 1 2\n")

    def test_file_round_trip(self, tmp_path):
        graph = petersen_graph()
        path = tmp_path / "petersen.edges"
        write_edge_list(graph, path)
        _assert_same_graph(graph, read_edge_list(path))


class TestGraphJson:
    def test_round_trip(self):
        graph = petersen_graph()
        _assert_same_graph(graph, graph_from_dict(graph_to_dict(graph)))

    def test_dict_is_json_serialisable(self):
        payload = graph_to_dict(petersen_graph())
        json.dumps(payload)  # Must not raise.

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            graph_from_dict({"format": "something-else"})

    def test_file_round_trip(self, tmp_path):
        graph = petersen_graph()
        path = tmp_path / "petersen.json"
        write_graph_json(graph, path)
        _assert_same_graph(graph, read_graph_json(path))

    def test_tuple_labels(self):
        params = TorusParameters(stretch=2, deltas=(3, 4))
        owned = stretched_torus(params)
        restored = graph_from_dict(graph_to_dict(owned.graph))
        _assert_same_graph(owned.graph, restored)

    def test_boolean_labels_rejected(self):
        graph = Graph(nodes=[True, 2])
        with pytest.raises(TypeError):
            graph_to_dict(graph)


class TestOwnedGraphJson:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_tree_round_trip(self, seed):
        owned = random_owned_tree(20, seed=seed)
        restored = owned_graph_from_dict(owned_graph_to_dict(owned))
        _assert_same_graph(owned.graph, restored.graph)
        for node in owned.graph.nodes():
            assert owned.bought_edges(node) == restored.bought_edges(node)

    def test_gnp_round_trip(self):
        owned = owned_connected_gnp_graph(25, 0.15, seed=3)
        restored = owned_graph_from_dict(owned_graph_to_dict(owned))
        _assert_same_graph(owned.graph, restored.graph)
        total_original = sum(len(v) for v in owned.ownership.values())
        total_restored = sum(len(v) for v in restored.ownership.values())
        assert total_original == total_restored

    def test_torus_round_trip_with_tuple_nodes(self):
        params = TorusParameters(stretch=2, deltas=(3, 4))
        owned = stretched_torus(params)
        restored = owned_graph_from_dict(owned_graph_to_dict(owned))
        _assert_same_graph(owned.graph, restored.graph)
        for node in owned.graph.nodes():
            assert owned.bought_edges(node) == restored.bought_edges(node)

    def test_metadata_preserved_when_serialisable(self):
        owned = owned_cycle(6)
        owned.metadata["note"] = "cycle fixture"
        payload = owned_graph_to_dict(owned)
        restored = owned_graph_from_dict(payload)
        assert restored.metadata["note"] == "cycle fixture"

    def test_unserialisable_metadata_dropped(self):
        owned = owned_cycle(6)
        owned.metadata["rng"] = random.Random(0)  # not JSON-serialisable
        payload = owned_graph_to_dict(owned)
        assert payload["metadata"] == {"_dropped": True}

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            owned_graph_from_dict({"format": "repro-graph"})

    def test_file_round_trip(self, tmp_path):
        owned = random_owned_tree(15, seed=11)
        path = tmp_path / "tree.json"
        write_owned_graph_json(owned, path)
        restored = read_owned_graph_json(path)
        _assert_same_graph(owned.graph, restored.graph)
        for node in owned.graph.nodes():
            assert owned.bought_edges(node) == restored.bought_edges(node)

    def test_restored_ownership_is_valid(self):
        owned = owned_connected_gnp_graph(20, 0.2, seed=9)
        restored = owned_graph_from_dict(owned_graph_to_dict(owned))
        restored.validate()  # Must not raise.
