"""Tests for the statistics helpers and the closed-form PoA bounds."""

import math

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.analysis.bounds import (
    max_full_knowledge_threshold,
    max_lower_bound_cycle,
    max_lower_bound_high_girth,
    max_lower_bound_torus,
    max_poa_lower_bound,
    max_poa_upper_bound,
    sum_full_knowledge_threshold,
    sum_lower_bound_high_girth,
    sum_lower_bound_torus,
    sum_poa_lower_bound,
    upper_bound_trend_fig7,
)
from repro.analysis.statistics import Summary, confidence_interval, summarize


class TestStatistics:
    def test_mean_and_count(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.count == 3
        assert summary.low < summary.mean < summary.high

    def test_ci_matches_scipy_t_interval(self):
        data = [3.1, 2.9, 3.4, 3.0, 2.8, 3.3]
        half = confidence_interval(data)
        low, high = scipy_stats.t.interval(
            0.95, len(data) - 1, loc=np.mean(data), scale=scipy_stats.sem(data)
        )
        assert half == pytest.approx((high - low) / 2)

    def test_degenerate_samples(self):
        assert confidence_interval([5.0]) == 0.0
        assert confidence_interval([2.0, 2.0, 2.0]) == 0.0
        empty = summarize([])
        assert math.isnan(empty.mean)
        assert empty.count == 0

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            confidence_interval([1, 2, 3], confidence=1.5)

    def test_summary_formatting(self):
        summary = Summary(mean=2.5, half_width=0.5, count=4, std=0.4, confidence=0.95)
        assert str(summary) == "2.50 ± 0.50"
        assert summary.as_dict()["ci_half_width"] == 0.5

    def test_higher_confidence_wider_interval(self):
        data = [1.0, 2.0, 4.0, 3.0, 5.0]
        assert confidence_interval(data, 0.99) > confidence_interval(data, 0.90)


class TestMaxLowerBounds:
    def test_cycle_bound_value_and_applicability(self):
        assert max_lower_bound_cycle(100, alpha=5, k=3) == pytest.approx(100 / 6)
        assert max_lower_bound_cycle(100, alpha=1, k=3) is None  # α < k - 1
        assert max_lower_bound_cycle(4, alpha=5, k=3) is None  # n too small

    def test_high_girth_bound(self):
        assert max_lower_bound_high_girth(10_000, alpha=2, k=3) == pytest.approx(
            10_000 ** (1 / 4)
        )
        assert max_lower_bound_high_girth(100, alpha=0.5, k=3) is None
        assert max_lower_bound_high_girth(100, alpha=2, k=50) is None

    def test_torus_bound_applicability(self):
        # The theorem needs k <= 2^{√(log2 n) - 3}, so a genuinely large n.
        n = 2**40
        value = max_lower_bound_torus(n, alpha=2, k=4)
        assert value is not None and value > 1
        assert max_lower_bound_torus(n, alpha=5, k=4) is None  # α > k
        assert max_lower_bound_torus(100, alpha=2, k=64) is None  # k too large

    def test_torus_bound_decreases_with_k(self):
        # For fixed α, growing k grows the 2^{Θ(log²(k/α))} denominator, so
        # the lower bound weakens as the players see more of the network.
        n = 2**40
        assert max_lower_bound_torus(n, 2, 4) > max_lower_bound_torus(n, 2, 8)

    def test_combined_lower_bound_takes_max(self):
        n, alpha, k = 10_000, 5.0, 3
        combined = max_poa_lower_bound(n, alpha, k)
        assert combined >= max_lower_bound_cycle(n, alpha, k)
        assert combined >= max_lower_bound_high_girth(n, alpha, k)

    def test_no_applicable_bound_returns_one(self):
        assert max_poa_lower_bound(100, alpha=0.5, k=90) == 1.0


class TestMaxUpperBounds:
    def test_upper_bound_above_lower_bound_on_grid(self):
        n = 10_000
        for alpha in (1.5, 2, 4, 8, 32, 128):
            for k in (1, 2, 3, 5, 8, 16, 64):
                lower = max_poa_lower_bound(n, alpha, k)
                upper = max_poa_upper_bound(n, alpha, k)
                assert upper >= lower * 0.999, (alpha, k, lower, upper)

    def test_upper_bound_regimes(self):
        n = 10_000
        # α >= k - 1 branch contains the n/(1+α) diameter term.
        assert max_poa_upper_bound(n, alpha=10, k=2) >= n / 11
        # α <= k - 1 branch is finite and positive.
        assert 0 < max_poa_upper_bound(n, alpha=2, k=50) < math.inf

    def test_full_knowledge_threshold_monotone_in_alpha(self):
        n = 10_000
        assert max_full_knowledge_threshold(n, 4.0) >= max_full_knowledge_threshold(n, 2.0)
        assert max_full_knowledge_threshold(n, 2.0) <= n

    def test_fig7_trend(self):
        assert upper_bound_trend_fig7(1) == 1.0
        assert upper_bound_trend_fig7(2) == pytest.approx(2 / 2**0.25)
        # The trend grows then decays: at large k the 2^{log²k/4} term wins.
        assert upper_bound_trend_fig7(4096) < upper_bound_trend_fig7(16)
        with pytest.raises(ValueError):
            upper_bound_trend_fig7(0)


class TestSumBounds:
    def test_torus_bound(self):
        n, k = 10_000, 2
        assert sum_lower_bound_torus(n, alpha=4 * k**3, k=k) == pytest.approx(n / k)
        assert sum_lower_bound_torus(n, alpha=1.0, k=k) is None
        assert sum_lower_bound_torus(100, alpha=10**6, k=50) is None

    def test_torus_bound_large_alpha_branch(self):
        n, k = 10_000, 2
        huge_alpha = 10 * n
        value = sum_lower_bound_torus(n, alpha=huge_alpha, k=k)
        assert value == pytest.approx(1 + n * n / (k * huge_alpha))

    def test_high_girth_bound(self):
        n, k = 10_000, 3
        assert sum_lower_bound_high_girth(n, alpha=k * n, k=k) == pytest.approx(
            n ** (1 / 4)
        )
        assert sum_lower_bound_high_girth(n, alpha=n, k=k) is None

    def test_full_knowledge_threshold(self):
        assert sum_full_knowledge_threshold(4.0) == pytest.approx(5.0)
        assert sum_full_knowledge_threshold(0.0) == 1.0

    def test_combined(self):
        assert sum_poa_lower_bound(10_000, alpha=40, k=2) >= 10_000 / 2
        assert sum_poa_lower_bound(10_000, alpha=1, k=60) == 1.0
