"""Tests for the region classification and the lower-bound certificates."""

import math

import pytest

from repro.analysis.bounds import max_full_knowledge_threshold
from repro.analysis.certificates import (
    certify_cycle_lemma_3_1,
    certify_high_girth_lemma_3_2,
    certify_profile,
    certify_sum_torus_lemma_4_1,
    certify_torus_theorem_3_12,
)
from repro.analysis.regions import (
    MaxRegion,
    SumRegion,
    classify_max_region,
    classify_sum_region,
    max_region_grid,
    sum_region_grid,
)
from repro.core.games import MaxNCG, SumNCG
from repro.graphs.generators.classic import owned_star


class TestMaxRegions:
    def test_full_knowledge_region(self):
        n = 10_000
        alpha = 4.0
        k = max_full_knowledge_threshold(n, alpha) * 2
        assert classify_max_region(n, alpha, k) is MaxRegion.FULL_KNOWLEDGE

    def test_k_at_least_n_is_full_knowledge(self):
        assert classify_max_region(1000, 500.0, 1000) is MaxRegion.FULL_KNOWLEDGE

    def test_below_diagonal_small_k(self):
        region = classify_max_region(10_000, alpha=50, k=3)
        assert region in {MaxRegion.R2, MaxRegion.R3, MaxRegion.R6}

    def test_region_3_for_huge_alpha(self):
        # Huge α kills the cycle bound; only n^{1/Θ(k)} remains.
        assert classify_max_region(10_000, alpha=9_000, k=3) is MaxRegion.R3

    def test_region_1_above_diagonal_small_k(self):
        assert classify_max_region(10_000, alpha=2, k=5) is MaxRegion.R1

    def test_regions_4_5_7_8_partition(self):
        n = 2 ** 30
        log_n = 30
        mid_k = 2 ** 4  # between log n? no: choose explicit values
        assert classify_max_region(n, alpha=2, k=200) in {
            MaxRegion.R4,
            MaxRegion.R7,
            MaxRegion.FULL_KNOWLEDGE,
        }
        assert classify_max_region(n, alpha=2.0, k=31) in {MaxRegion.R4, MaxRegion.R7}

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            classify_max_region(2, 1.0, 1)

    def test_grid_covers_all_cells(self):
        cells = max_region_grid(1000, alphas=(1.5, 10, 100), ks=(2, 5, 20))
        assert len(cells) == 9
        for cell in cells:
            assert cell.lower_bound >= 1.0
            assert cell.upper_bound is None or cell.upper_bound > 0
            assert cell.region


class TestSumRegions:
    def test_full_knowledge(self):
        assert classify_sum_region(1000, alpha=4, k=10) is SumRegion.FULL_KNOWLEDGE

    def test_torus_region(self):
        assert classify_sum_region(10_000, alpha=40, k=2) is SumRegion.TORUS

    def test_torus_large_alpha(self):
        assert (
            classify_sum_region(100, alpha=10_000_000, k=2)
            in {SumRegion.HIGH_GIRTH, SumRegion.TORUS_LARGE_ALPHA}
        )

    def test_open_region(self):
        # k between ∛α and 1 + 2√α: e.g. α = 1000, k = 25 (∛α = 10, √α ≈ 31.6).
        assert classify_sum_region(10_000, alpha=1000, k=25) is SumRegion.OPEN

    def test_grid(self):
        cells = sum_region_grid(1000, alphas=(2, 50, 5_000), ks=(2, 4, 8))
        assert len(cells) == 9
        assert all(cell.upper_bound is None for cell in cells)


class TestCertificates:
    def test_cycle_certificate(self):
        result = certify_cycle_lemma_3_1(n=14, alpha=3.0, k=3)
        assert result.is_equilibrium
        assert result.players_checked == 14
        assert result.poa_ratio > 1.0
        assert result.diameter == 7
        assert result.predicted_lower_bound == pytest.approx(14 / 4)

    def test_cycle_certificate_requires_large_n(self):
        with pytest.raises(ValueError):
            certify_cycle_lemma_3_1(n=6, alpha=3.0, k=3)

    def test_cycle_not_equilibrium_when_alpha_small_and_k_large(self):
        result = certify_cycle_lemma_3_1(n=30, alpha=0.5, k=6)
        assert not result.is_equilibrium
        assert result.improving_players

    def test_torus_certificate_max(self):
        result = certify_torus_theorem_3_12(alpha=2.0, k=2, n_target=200, max_players=10)
        assert result.is_equilibrium
        assert result.num_players <= 200
        assert result.diameter >= result.notes["diameter_lower_bound"]
        assert result.poa_ratio > 1.0

    def test_sum_torus_certificate(self):
        result = certify_sum_torus_lemma_4_1(alpha=40.0, k=2, n_target=120, max_players=8)
        assert result.is_equilibrium
        assert result.notes["alpha_threshold"] == 32
        assert result.game == SumNCG(40.0, k=2)

    def test_high_girth_certificate(self):
        result = certify_high_girth_lemma_3_2(
            n=40, degree=3, alpha=2.0, k=2, seed=1, max_players=10
        )
        assert result.notes["girth"] >= 6 or math.isinf(result.notes["girth"])
        assert result.players_checked == 10
        assert result.num_players == 40

    def test_certify_profile_on_star(self):
        result = certify_profile(owned_star(8), MaxNCG(2.0), construction="star")
        assert result.is_equilibrium
        assert result.poa_ratio == pytest.approx(1.0)
        assert result.social_optimum == result.social_cost

    def test_max_players_sampling(self):
        result = certify_cycle_lemma_3_1(n=20, alpha=3.0, k=3, max_players=4)
        assert result.players_checked == 4

    def test_as_dict(self):
        result = certify_profile(owned_star(6), MaxNCG(2.0), construction="star")
        payload = result.as_dict()
        assert payload["construction"] == "star"
        assert payload["is_equilibrium"] is True
        assert payload["n"] == 6
