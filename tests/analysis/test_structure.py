"""Tests for the structural anatomy of stable networks."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.structure import (
    StructureReport,
    gini_coefficient,
    structure_report,
    top_share,
)
from repro.core.dynamics import best_response_dynamics
from repro.core.games import MaxNCG, SumNCG
from repro.core.strategies import StrategyProfile
from repro.graphs.generators.classic import owned_cycle, owned_star
from repro.graphs.generators.erdos_renyi import owned_connected_gnp_graph
from repro.graphs.generators.trees import random_owned_tree


class TestGiniCoefficient:
    def test_equal_values_have_zero_gini(self):
        assert gini_coefficient([3.0, 3.0, 3.0, 3.0]) == pytest.approx(0.0)

    def test_single_owner_approaches_one(self):
        values = [0.0] * 9 + [100.0]
        assert gini_coefficient(values) == pytest.approx(0.9)

    def test_empty_and_zero_samples(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0.0, 0.0]) == 0.0

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([1.0, -2.0])

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20))
    def test_gini_is_in_unit_interval(self, values):
        coefficient = gini_coefficient(values)
        assert -1e-9 <= coefficient <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=2, max_size=15),
        scale=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_gini_is_scale_invariant(self, values, scale):
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient([scale * v for v in values]), abs=1e-9
        )


class TestTopShare:
    def test_uniform_values(self):
        assert top_share([1.0] * 10, fraction=0.1) == pytest.approx(0.1)

    def test_concentrated_values(self):
        values = [0.0] * 9 + [10.0]
        assert top_share(values, fraction=0.1) == pytest.approx(1.0)

    def test_fraction_one_is_everything(self):
        assert top_share([1.0, 2.0, 3.0], fraction=1.0) == pytest.approx(1.0)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            top_share([1.0], fraction=0.0)
        with pytest.raises(ValueError):
            top_share([1.0], fraction=1.5)

    def test_empty_and_zero(self):
        assert top_share([]) == 0.0
        assert top_share([0.0, 0.0]) == 0.0


class TestStructureReport:
    def test_star_anatomy(self):
        profile = StrategyProfile.from_owned_graph(owned_star(8))
        report = structure_report(profile, MaxNCG(alpha=2.0))
        assert isinstance(report, StructureReport)
        assert report.num_players == 8
        assert report.num_edges == 7
        assert report.connected
        # Every edge of a star is a bridge, the hub is the only cut vertex.
        assert report.num_bridges == 7
        assert report.bridge_fraction == pytest.approx(1.0)
        assert report.num_articulation_points == 1
        assert report.cyclomatic_number == 0
        assert report.max_degree == 7
        assert report.hubs_in_center
        assert report.hubs_in_median
        # The centre pays all the building cost.
        assert report.total_building_cost == pytest.approx(2.0 * 7)
        assert report.building_gini > 0.8

    def test_cycle_anatomy(self):
        profile = StrategyProfile.from_owned_graph(owned_cycle(10))
        report = structure_report(profile, MaxNCG(alpha=1.0))
        assert report.num_bridges == 0
        assert report.num_articulation_points == 0
        assert report.num_biconnected_components == 1
        assert report.cyclomatic_number == 1
        # Vertex-transitive: perfectly fair degrees and costs.
        assert report.degree_gini == pytest.approx(0.0)
        assert report.building_gini == pytest.approx(0.0)
        assert report.usage_gini == pytest.approx(0.0)

    def test_disconnected_profile(self):
        profile = StrategyProfile({0: {1}, 1: frozenset(), 2: {3}, 3: frozenset()})
        report = structure_report(profile, SumNCG(alpha=1.0))
        assert not report.connected
        assert report.cyclomatic_number == 0
        assert not report.hubs_in_center  # Centers undefined when disconnected.

    def test_single_player(self):
        profile = StrategyProfile({0: frozenset()})
        report = structure_report(profile, MaxNCG(alpha=1.0))
        assert report.num_players == 1
        assert report.num_edges == 0
        assert report.total_building_cost == 0.0

    def test_as_dict_is_flat_and_csv_friendly(self):
        profile = StrategyProfile.from_owned_graph(random_owned_tree(12, seed=0))
        report = structure_report(profile, MaxNCG(alpha=2.0, k=2))
        payload = report.as_dict()
        assert payload["num_players"] == 12
        for value in payload.values():
            assert isinstance(value, (int, float, bool))

    def test_building_plus_usage_share(self):
        profile = StrategyProfile.from_owned_graph(random_owned_tree(15, seed=1))
        report = structure_report(profile, SumNCG(alpha=3.0, k=2))
        assert 0.0 <= report.building_cost_share <= 1.0
        assert report.total_building_cost == pytest.approx(3.0 * 14)

    def test_equilibrium_of_dynamics_is_bridge_rich_for_large_alpha(self):
        # For large alpha the players keep few edges, so the stable network
        # stays tree-like: every edge is a bridge and the cyclomatic number
        # is zero.
        owned = random_owned_tree(20, seed=3)
        game = MaxNCG(alpha=10.0, k=3)
        result = best_response_dynamics(owned, game, solver="branch_and_bound")
        report = structure_report(result.final_profile, game)
        assert report.connected
        assert report.cyclomatic_number == 0
        assert report.bridge_fraction == pytest.approx(1.0)

    def test_hub_formation_under_full_knowledge(self):
        # Full-knowledge MaxNCG on a G(n, p) start with moderate alpha
        # produces hubby equilibria: degree concentration well above the
        # uniform baseline.
        owned = owned_connected_gnp_graph(25, 0.15, seed=4)
        game = MaxNCG(alpha=2.0)
        result = best_response_dynamics(owned, game, solver="greedy")
        report = structure_report(result.final_profile, game)
        assert report.max_degree >= 5
        assert report.degree_top10_share >= 0.15

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=5, max_value=15),
        seed=st.integers(min_value=0, max_value=300),
        alpha=st.sampled_from([0.5, 2.0, 8.0]),
    )
    def test_report_invariants_on_random_trees(self, n, seed, alpha):
        profile = StrategyProfile.from_owned_graph(random_owned_tree(n, seed=seed))
        report = structure_report(profile, MaxNCG(alpha=alpha, k=2))
        # Trees: n-1 edges, all bridges, cyclomatic number 0, blocks = edges.
        assert report.num_edges == n - 1
        assert report.num_bridges == n - 1
        assert report.cyclomatic_number == 0
        assert report.num_biconnected_components == n - 1
        assert 0.0 <= report.degree_gini <= 1.0
        assert 0.0 <= report.betweenness_gini <= 1.0
        assert report.building_cost_share <= 1.0
