"""Property tests: telemetry must never change what the engine computes.

Tracing observes the dynamics; it must not perturb them.  These properties
pin that a traced run produces bit-identical trajectories and sweep rows
to an untraced one, across random instances, prices, radii and schedulers
— the contract that lets ``--telemetry`` be switched on in production
sweeps without invalidating journals or comparisons.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamics import best_response_dynamics
from repro.experiments.runner import RunSpec, run_spec_on_instance
from repro.graphs.generators import random_owned_tree
from repro.obs import Telemetry
from repro.service.tasks import TIMING_FIELDS


def _trajectory(result):
    """Everything a dynamics run decides (profiles canonicalized)."""
    return (
        result.final_profile.canonical_key(),
        result.converged,
        result.cycled,
        result.rounds,
        result.total_changes,
        result.certified,
        [(r.round_index, r.num_changes) for r in result.round_records],
    )


def _strip(row: dict) -> dict:
    return {k: v for k, v in row.items() if k not in TIMING_FIELDS}


@st.composite
def dynamics_cases(draw):
    n = draw(st.integers(min_value=6, max_value=14))
    seed = draw(st.integers(min_value=0, max_value=500))
    alpha = draw(st.sampled_from([0.5, 1.0, 2.0, 4.0]))
    k = draw(st.integers(min_value=1, max_value=3))
    ordering = draw(st.sampled_from(["fixed", "shuffled", "max_improvement"]))
    return n, seed, alpha, k, ordering


class TestTracingIdentity:
    @given(dynamics_cases())
    @settings(max_examples=25, deadline=None)
    def test_dynamics_trajectory_identical(self, case):
        n, seed, alpha, k, ordering = case
        spec = RunSpec(
            family="tree", n=n, alpha=alpha, k=k, seed=seed, ordering=ordering
        )
        owned = random_owned_tree(n, seed=seed)
        game = spec.game()

        def run(telemetry):
            return best_response_dynamics(
                owned,
                game,
                max_rounds=30,
                ordering=ordering,
                seed=seed,
                telemetry=telemetry,
            )

        plain = run(None)
        traced_handle = Telemetry(tracing=True)
        traced = run(traced_handle)
        assert _trajectory(traced) == _trajectory(plain)
        # The traced run actually recorded something — the equality above
        # must not hold because tracing silently degraded to a no-op.
        assert traced_handle.drain_events()

    @given(dynamics_cases())
    @settings(max_examples=15, deadline=None)
    def test_sweep_row_identical(self, case):
        n, seed, alpha, k, ordering = case
        spec = RunSpec(
            family="tree", n=n, alpha=alpha, k=k, seed=seed, ordering=ordering
        )
        owned = random_owned_tree(n, seed=seed)
        plain = run_spec_on_instance(spec, owned)
        traced = run_spec_on_instance(
            spec, owned, telemetry=Telemetry(tracing=True)
        )
        assert _strip(traced.as_row()) == _strip(plain.as_row())
