"""Unit tests for trace spans, the null recorder, and the Chrome export."""

import json

from repro.obs import Telemetry, get_telemetry, set_telemetry
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    chrome_trace_from_summaries,
    validate_chrome_trace,
)


class TestNullTracer:
    def test_span_returns_singleton(self):
        assert NULL_TRACER.span("anything", key=1) is NULL_SPAN
        assert NULL_TRACER.begin("anything") is NULL_SPAN

    def test_null_span_is_inert_context_manager(self):
        with NULL_TRACER.span("x") as span:
            assert span.set(foo=1) is span
        span.finish(bar=2)
        assert NULL_TRACER.drain() == []
        assert NULL_TRACER.enabled is False


class TestTracer:
    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("engine.run", players=5) as span:
            span.set(rounds=2)
        (event,) = tracer.drain()
        assert event["name"] == "engine.run"
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["args"] == {"players": 5, "rounds": 2}
        assert "parent" not in event

    def test_nested_spans_have_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        events = {e["name"]: e for e in tracer.drain()}
        assert events["inner"]["parent"] == outer.span_id
        assert "parent" not in events["outer"]

    def test_event_parented_on_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.event("hit", player="3")
        events = {e["name"]: e for e in tracer.drain()}
        assert events["hit"]["ph"] == "i"
        assert events["hit"]["parent"] == outer.span_id

    def test_begin_span_does_not_join_stack(self):
        tracer = Tracer()
        free = tracer.begin("task.dispatch", worker=0)
        with tracer.span("nested"):
            pass
        free.finish(status="ok")
        events = {e["name"]: e for e in tracer.drain()}
        assert "parent" not in events["nested"]
        assert events["task.dispatch"]["args"]["status"] == "ok"

    def test_drain_clears_and_sorts(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        events = tracer.drain()
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
        assert tracer.drain() == []

    def test_exception_pops_stack(self):
        tracer = Tracer()
        try:
            with tracer.span("outer"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        with tracer.span("after"):
            pass
        events = {e["name"]: e for e in tracer.drain()}
        assert "parent" not in events["after"]


class TestTelemetryHandle:
    def test_default_handle_is_nontracing(self):
        handle = get_telemetry()
        assert handle.tracing is False
        assert handle.span("x") is NULL_SPAN

    def test_set_telemetry_roundtrip(self):
        traced = Telemetry(tracing=True)
        previous = set_telemetry(traced)
        try:
            assert get_telemetry() is traced
            assert get_telemetry().tracing is True
        finally:
            set_telemetry(previous)
        assert get_telemetry() is previous

    def test_drain_events(self):
        handle = Telemetry(tracing=True)
        with handle.span("x"):
            handle.event("y")
        assert {e["name"] for e in handle.drain_events()} == {"x", "y"}


class TestChromeExport:
    def _summary(self, worker=1):
        tracer = Tracer()
        with tracer.span("task.execute", kind="run_spec"):
            with tracer.span("engine.run"):
                tracer.event("engine.best_response", memo_hit=True)
        events = tracer.drain()
        return {
            "worker": worker,
            "index": 0,
            "spec_hash": "abc",
            "kind": "run_spec",
            "wall_s": 0.01,
            "span_count": len(events),
            "events": events,
        }

    def test_export_is_valid_and_json_serializable(self):
        doc = chrome_trace_from_summaries([self._summary(1), self._summary(2)])
        assert validate_chrome_trace(doc) == []
        json.dumps(doc)  # journal/file round-trip safety

    def test_worker_becomes_pid_lane(self):
        doc = chrome_trace_from_summaries([self._summary(1), self._summary(2)])
        events = doc["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert {m["pid"] for m in metadata} == {1, 2}
        assert all(m["name"] == "process_name" for m in metadata)
        pids = {e["pid"] for e in events if e["ph"] != "M"}
        assert pids == {1, 2}

    def test_timestamps_rebased_to_zero(self):
        doc = chrome_trace_from_summaries([self._summary()])
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in spans) == 0.0

    def test_instant_events_carry_scope(self):
        doc = chrome_trace_from_summaries([self._summary()])
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants and all(e["s"] == "t" for e in instants)

    def test_validate_flags_problems(self):
        assert validate_chrome_trace({}) == ["missing traceEvents key"]
        assert validate_chrome_trace({"traceEvents": {}}) == [
            "traceEvents is not a list"
        ]
        problems = validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 1}]}
        )
        assert problems == ["event 0: complete event missing dur"]
