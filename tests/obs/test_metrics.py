"""Unit tests for the metrics primitives and registry."""

import math

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    default_registry,
    render_prometheus,
)


class TestCounterFamily:
    def test_labels_memoized(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "help", labelnames=("op",))
        assert family.labels(op="hit") is family.labels(op="hit")
        assert family.labels(op="hit") is not family.labels(op="miss")

    def test_label_validation(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "help", labelnames=("op",))
        with pytest.raises(ValueError):
            family.labels(wrong="x")
        with pytest.raises(ValueError):
            family.labels()

    def test_child_mirrors_into_aggregate(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "help", labelnames=("op",))
        a = family.child(op="hit")
        b = family.child(op="hit")
        a.inc()
        a.inc(2)
        b.inc()
        assert a.value == 3
        assert b.value == 1
        assert family.labels(op="hit").value == 4

    def test_dropped_child_leaves_contribution(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "help")
        child = family.child()
        child.inc(5)
        del child
        assert family.labels().value == 5

    def test_family_inc_shorthand(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "help", labelnames=("op",))
        family.inc(op="hit")
        family.inc(3, op="hit")
        assert family.labels(op="hit").value == 4


class TestGaugeFamily:
    def test_child_set_mirrors_delta(self):
        registry = MetricsRegistry()
        family = registry.gauge("g", "help", labelnames=("shard",))
        a = family.child(shard="0")
        b = family.child(shard="0")
        a.set(10)
        b.set(4)
        a.set(7)  # delta -3
        assert family.labels(shard="0").value == 11  # 7 + 4

    def test_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "help").labels()
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 3

    def test_set_function_live_read(self):
        registry = MetricsRegistry()
        backing = {"n": 1}
        gauge = registry.gauge("g", "help").labels()
        gauge.set_function(lambda: backing["n"])
        assert gauge.value == 1
        backing["n"] = 9
        assert gauge.value == 9


class TestHistogramFamily:
    def test_observe_buckets(self):
        registry = MetricsRegistry()
        family = registry.histogram("h", "help", buckets=(1.0, 5.0))
        series = family.labels()
        for value in (0.5, 0.9, 3.0, 100.0):
            series.observe(value)
        assert series.bucket_counts() == [2, 1, 1]  # <=1, <=5, +Inf
        assert series.count == 4
        assert series.sum == pytest.approx(104.4)

    def test_child_mirrors(self):
        registry = MetricsRegistry()
        family = registry.histogram("h", "help", buckets=(1.0,))
        child = family.child()
        child.observe(0.5)
        child.observe(2.0)
        aggregate = family.labels()
        assert aggregate.count == 2
        assert aggregate.bucket_counts() == [1, 1]


class TestRegistry:
    def test_same_name_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_snapshot_flat_names(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("op",)).inc(op="hit")
        registry.gauge("g").labels().set(2)
        registry.histogram("h", buckets=(1.0,)).labels().observe(0.5)
        snap = registry.snapshot()
        assert snap['c_total{op="hit"}'] == 1
        assert snap["g"] == 2
        assert snap["h_count"] == 1
        assert snap["h_sum"] == 0.5

    def test_default_registry_is_singleton(self):
        assert default_registry() is default_registry()


class TestPrometheusRender:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "counts things", labelnames=("op",)).inc(
            2, op="hit"
        )
        registry.gauge("g", "a gauge").labels().set(7)
        text = render_prometheus(registry)
        assert "# HELP c_total counts things" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{op="hit"} 2' in text
        assert "# TYPE g gauge" in text
        assert "g 7" in text
        assert text.endswith("\n")

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        family = registry.histogram("h", "hist", buckets=(1.0, 5.0))
        series = family.labels()
        for value in (0.5, 3.0, 100.0):
            series.observe(value)
        text = render_prometheus(registry)
        assert 'h_bucket{le="1.0"} 1' in text
        assert 'h_bucket{le="5.0"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_count 3" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("path",)).inc(
            path='a"b\\c\nd'
        )
        text = render_prometheus(registry)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_nan_and_inf_values(self):
        registry = MetricsRegistry()
        registry.gauge("g_nan").labels().set(math.nan)
        registry.gauge("g_inf").labels().set(math.inf)
        text = render_prometheus(registry)
        assert "g_nan NaN" in text
        assert "g_inf +Inf" in text
