"""Metrics primitives: counters, gauges, histograms, and their registry.

Design notes
------------

Each *family* (one metric name) owns labeled *series*.  ``family.labels(...)``
returns the memoized aggregate series for a label combination;
``family.child(...)`` returns a **private** instrument whose updates also
flow into that aggregate.  Components hold children so per-instance reads
(``cache.views_built``) keep their historical meaning, while the registry
exposes the process-wide aggregate — and a child that is garbage-collected
leaves its contribution behind in the aggregate, so totals never regress.

No locks on the hot path: a counter bump is two integer adds under the
GIL.  Collection walks plain dicts and tolerates concurrent updates (a
scrape may be one increment behind a racing bump, never corrupt).
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "default_registry",
    "render_prometheus",
]

#: Seconds-scale latency buckets (engine rounds to whole sweeps).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


class Counter:
    """Monotonically increasing value; ``sink`` receives mirrored adds."""

    __slots__ = ("_value", "_sink")

    def __init__(self, sink: "Counter | None" = None) -> None:
        self._value = 0
        self._sink = sink

    def inc(self, amount: int | float = 1) -> None:
        self._value += amount
        sink = self._sink
        if sink is not None:
            sink._value += amount

    @property
    def value(self) -> int | float:
        return self._value


class Gauge:
    """Point-in-time value; children mirror *deltas* into the aggregate,
    so the registry series is the sum over live children."""

    __slots__ = ("_value", "_sink", "_fn")

    def __init__(self, sink: "Gauge | None" = None) -> None:
        self._value = 0
        self._sink = sink
        self._fn: Callable[[], int | float] | None = None

    def set(self, value: int | float) -> None:
        delta = value - self._value
        self._value = value
        sink = self._sink
        if sink is not None:
            sink._value += delta

    def inc(self, amount: int | float = 1) -> None:
        self._value += amount
        sink = self._sink
        if sink is not None:
            sink._value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], int | float] | None) -> None:
        """Read ``value`` live from ``fn`` at collection time."""
        self._fn = fn

    @property
    def value(self) -> int | float:
        if self._fn is not None:
            return self._fn()
        return self._value


class Histogram:
    """Fixed-bucket histogram (cumulative at render time, like Prometheus)."""

    __slots__ = ("_bounds", "_counts", "_sum", "_count", "_sink")

    def __init__(
        self,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        sink: "Histogram | None" = None,
    ) -> None:
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot is +Inf
        self._sum = 0.0
        self._count = 0
        self._sink = sink

    def observe(self, value: float) -> None:
        index = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if value <= bound:
                index = i
                break
        self._counts[index] += 1
        self._sum += value
        self._count += 1
        sink = self._sink
        if sink is not None:
            sink._counts[index] += 1
            sink._sum += value
            sink._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    def bucket_counts(self) -> list[int]:
        return list(self._counts)


class _Family:
    """One metric name with labeled series."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labelnames: tuple[str, ...] = (),
    ) -> None:
        self.name = name
        self.help = help
        self.unit = unit
        self.labelnames = tuple(labelnames)
        self._series: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _make(self) -> object:  # pragma: no cover - overridden
        raise NotImplementedError

    def _attach(self, aggregate) -> object:  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labels):
        """The memoized aggregate series for this label combination."""
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.get(key)
                if series is None:
                    series = self._make()
                    self._series[key] = series
        return series

    def child(self, **labels):
        """A private instrument mirroring into :meth:`labels`'s aggregate."""
        return self._attach(self.labels(**labels))

    def samples(self) -> Iterable[tuple[tuple, object]]:
        return list(self._series.items())


class CounterFamily(_Family):
    kind = "counter"

    def _make(self) -> Counter:
        return Counter()

    def _attach(self, aggregate: Counter) -> Counter:
        return Counter(sink=aggregate)

    def inc(self, amount: int | float = 1, **labels) -> None:
        self.labels(**labels).inc(amount)


class GaugeFamily(_Family):
    kind = "gauge"

    def _make(self) -> Gauge:
        return Gauge()

    def _attach(self, aggregate: Gauge) -> Gauge:
        return Gauge(sink=aggregate)

    def set(self, value: int | float, **labels) -> None:
        self.labels(**labels).set(value)


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help=help, unit=unit, labelnames=labelnames)
        self.buckets = tuple(sorted(buckets))

    def _make(self) -> Histogram:
        return Histogram(bounds=self.buckets)

    def _attach(self, aggregate: Histogram) -> Histogram:
        return Histogram(bounds=self.buckets, sink=aggregate)

    def observe(self, value: float, **labels) -> None:
        self.labels(**labels).observe(value)


class MetricsRegistry:
    """Process-wide (or injected) collection of metric families."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory: Callable[[], _Family]) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = factory()
                self._families[name] = family
            return family

    def counter(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labelnames: tuple[str, ...] = (),
    ) -> CounterFamily:
        family = self._get_or_create(
            name, lambda: CounterFamily(name, help, unit, tuple(labelnames))
        )
        if family.kind != "counter":
            raise ValueError(f"{name} already registered as {family.kind}")
        return family  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labelnames: tuple[str, ...] = (),
    ) -> GaugeFamily:
        family = self._get_or_create(
            name, lambda: GaugeFamily(name, help, unit, tuple(labelnames))
        )
        if family.kind != "gauge":
            raise ValueError(f"{name} already registered as {family.kind}")
        return family  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        unit: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> HistogramFamily:
        family = self._get_or_create(
            name,
            lambda: HistogramFamily(name, help, unit, tuple(labelnames), buckets),
        )
        if family.kind != "histogram":
            raise ValueError(f"{name} already registered as {family.kind}")
        return family  # type: ignore[return-value]

    def collect(self) -> list[_Family]:
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def snapshot(self) -> dict[str, int | float]:
        """Flat ``name{labels}`` → value map (histograms as ``_count``/``_sum``)."""
        flat: dict[str, int | float] = {}
        for family in self.collect():
            for key, series in family.samples():
                suffix = _label_suffix(family.labelnames, key)
                if family.kind == "histogram":
                    flat[f"{family.name}_count{suffix}"] = series.count
                    flat[f"{family.name}_sum{suffix}"] = series.sum
                else:
                    flat[f"{family.name}{suffix}"] = series.value
        return flat

    def render_prometheus(self) -> str:
        return render_prometheus(self)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_suffix(labelnames: tuple[str, ...], values: tuple, extra: str = "") -> str:
    pairs = [f'{n}="{_escape(v)}"' for n, v in zip(labelnames, values)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: int | float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every family in the Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key, series in family.samples():
            if family.kind == "histogram":
                cumulative = 0
                counts = series.bucket_counts()
                bounds = [*series.bounds, float("inf")]
                for bound, count in zip(bounds, counts):
                    cumulative += count
                    le = "+Inf" if bound == float("inf") else _format_value(bound)
                    suffix = _label_suffix(
                        family.labelnames, key, extra=f'le="{le}"'
                    )
                    lines.append(f"{family.name}_bucket{suffix} {cumulative}")
                suffix = _label_suffix(family.labelnames, key)
                lines.append(f"{family.name}_sum{suffix} {_format_value(series.sum)}")
                lines.append(f"{family.name}_count{suffix} {series.count}")
            else:
                suffix = _label_suffix(family.labelnames, key)
                lines.append(f"{family.name}{suffix} {_format_value(series.value)}")
    return "\n".join(lines) + "\n"


#: The process-wide registry that `/metrics` scrapes.
_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    return _DEFAULT_REGISTRY
