"""Zero-dependency telemetry: metrics registry, trace spans, profiling export.

The observability layer has three pieces:

* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  with labeled children, collected by a :class:`MetricsRegistry` that
  renders the Prometheus text exposition format.
* :mod:`repro.obs.tracing` — context-manager spans on the monotonic clock
  with parent links, drained as Chrome ``trace_event`` dicts.
* the :class:`Telemetry` handle — the one object threaded through the
  engine, view cache, kernels dispatch and the service layer.

Metrics are always on (a counter bump is two integer adds); tracing is
opt-in.  The disabled tracing path is a single attribute lookup on a
preallocated null span factory — pinned by ``benchmarks/test_bench_obs.py``.

Everything here is stdlib-only so any layer (including the kernels
dispatch wrappers) can import it without cycles.
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    default_registry,
    render_prometheus,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    chrome_trace_from_summaries,
    validate_chrome_trace,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Telemetry",
    "Tracer",
    "chrome_trace_from_summaries",
    "default_registry",
    "get_telemetry",
    "render_prometheus",
    "set_telemetry",
    "validate_chrome_trace",
]


class Telemetry:
    """Handle bundling a metrics registry and a tracer.

    Components accept ``telemetry=None`` and fall back to the process-wide
    handle (:func:`get_telemetry`), whose tracer is the no-op
    :data:`NULL_TRACER`.  Hot paths bind ``telemetry.span`` once so the
    disabled path costs one attribute lookup plus a constant-returning
    call.
    """

    __slots__ = ("registry", "tracer", "span", "event")

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | NullTracer | None = None,
        tracing: bool = False,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        if tracer is None:
            tracer = Tracer() if tracing else NULL_TRACER
        self.tracer = tracer
        # Pre-bound recorder methods: one attribute lookup at the call site.
        self.span = tracer.span
        self.event = tracer.event

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    def drain_events(self) -> list[dict]:
        return self.tracer.drain()


#: Process-wide default: metrics into the default registry, tracing off.
_GLOBAL_TELEMETRY = Telemetry()


def get_telemetry() -> Telemetry:
    """Return the process-wide telemetry handle."""
    return _GLOBAL_TELEMETRY


def set_telemetry(telemetry: Telemetry | None) -> Telemetry:
    """Swap the process-wide handle (``None`` restores the default).

    Returns the previous handle so callers can restore it.
    """
    global _GLOBAL_TELEMETRY
    previous = _GLOBAL_TELEMETRY
    _GLOBAL_TELEMETRY = telemetry if telemetry is not None else Telemetry()
    return previous
