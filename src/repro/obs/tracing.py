"""Trace spans on the monotonic clock, exportable as Chrome ``trace_event``.

A :class:`Tracer` hands out context-manager spans; finished spans land in
an in-memory buffer as plain dicts (JSON-safe, journal-friendly).  Parent
links come from a per-thread span stack, so nested ``with`` blocks produce
a proper tree; manual :meth:`Tracer.begin`/:meth:`Span finish` spans cover
overlapping lifecycles (e.g. many in-flight worker tasks) that do not
nest.

Timing is ``time.perf_counter()`` (monotonic); each tracer anchors its
monotonic origin to one wall-clock reading so events from different
processes line up on a shared timeline when merged — that is what lets
``python -m repro trace`` lay a multi-worker sweep out in Perfetto with
real concurrency visible.

The disabled path is :data:`NULL_TRACER`: ``span()`` returns one
preallocated null span, ``event()`` is a constant no-op.
"""

from __future__ import annotations

import threading
import time

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "chrome_trace_from_summaries",
    "validate_chrome_trace",
]


class _NullSpan:
    """Reusable do-nothing span; also the null manual-span handle."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> "_NullSpan":
        return self

    def finish(self, **args) -> None:
        return None


NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op recorder: every method returns a preallocated constant."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **args) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, **args) -> None:
        return None

    def begin(self, name: str, **args) -> _NullSpan:
        return NULL_SPAN

    def drain(self) -> list[dict]:
        return []

    @property
    def span_count(self) -> int:
        return 0


NULL_TRACER = NullTracer()


class Span:
    """A live span; closed via ``with`` or an explicit :meth:`finish`."""

    __slots__ = ("_tracer", "name", "args", "span_id", "parent_id", "_start", "_stacked")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        args: dict,
        parent_id: int | None,
        stacked: bool,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self.span_id = tracer._next_id()
        self.parent_id = parent_id
        self._stacked = stacked
        self._start = time.perf_counter()

    def set(self, **args) -> "Span":
        """Attach attributes discovered mid-span (e.g. block counts)."""
        self.args.update(args)
        return self

    def finish(self, **args) -> None:
        if args:
            self.args.update(args)
        self._tracer._finish(self, time.perf_counter())

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> bool:
        self.finish()
        return False


class Tracer:
    """Collects spans and instant events as Chrome-compatible dicts."""

    enabled = True

    def __init__(self) -> None:
        # One wall-clock anchor per tracer: monotonic offsets become
        # absolute microseconds, comparable across processes.
        self._wall_origin = time.time() - time.perf_counter()
        self._events: list[dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._id = 0
        self._id_lock = threading.Lock()

    def _next_id(self) -> int:
        with self._id_lock:
            self._id += 1
            return self._id

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _ts_us(self, perf_time: float) -> float:
        return (self._wall_origin + perf_time) * 1e6

    def span(self, name: str, **args) -> Span:
        """Open a nested span (parented on the enclosing span, per thread)."""
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        span = Span(self, name, args, parent_id, stacked=True)
        stack.append(span)
        return span

    def begin(self, name: str, **args) -> Span:
        """Open a free span (no stack participation; for overlapping work)."""
        return Span(self, name, args, parent_id=None, stacked=False)

    def _finish(self, span: Span, end: float) -> None:
        if span._stacked:
            stack = self._stack()
            if stack and stack[-1] is span:
                stack.pop()
            elif span in stack:  # out-of-order exit; keep the tree sane
                stack.remove(span)
        record = {
            "name": span.name,
            "ph": "X",
            "ts": self._ts_us(span._start),
            "dur": self._ts_us(end) - self._ts_us(span._start),
            "tid": threading.get_ident() & 0xFFFF,
            "id": span.span_id,
            "args": span.args,
        }
        if span.parent_id is not None:
            record["parent"] = span.parent_id
        with self._lock:
            self._events.append(record)

    def event(self, name: str, **args) -> None:
        """Record an instant event (zero duration)."""
        stack = self._stack()
        record = {
            "name": name,
            "ph": "i",
            "ts": self._ts_us(time.perf_counter()),
            "tid": threading.get_ident() & 0xFFFF,
            "id": self._next_id(),
            "args": args,
        }
        if stack:
            record["parent"] = stack[-1].span_id
        with self._lock:
            self._events.append(record)

    def drain(self) -> list[dict]:
        """Return buffered events (start-ordered) and clear the buffer."""
        with self._lock:
            events, self._events = self._events, []
        events.sort(key=lambda e: e["ts"])
        return events

    @property
    def span_count(self) -> int:
        with self._lock:
            return len(self._events)


def _category(name: str) -> str:
    return name.split(".", 1)[0] if "." in name else "repro"


def chrome_trace_from_summaries(summaries: list[dict]) -> dict:
    """Render per-task telemetry summaries as a Chrome ``trace_event`` doc.

    Each summary is one journal telemetry record payload: ``{"worker",
    "index", "spec_hash", "kind", "wall_s", "span_count", "events"}``.
    Worker id becomes the Chrome ``pid`` lane, so a multi-worker sweep
    shows its real overlap.  Timestamps are rebased to the earliest event
    so the trace starts at t=0.
    """
    trace_events: list[dict] = []
    metadata: list[dict] = []
    seen_pids: set[int] = set()
    for summary in summaries:
        pid = int(summary.get("worker", 0))
        if pid not in seen_pids:
            seen_pids.add(pid)
            metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"worker {pid}"},
                }
            )
        for event in summary.get("events", ()):
            args = dict(event.get("args", {}))
            if "parent" in event:
                args["parent_span"] = event["parent"]
            record = {
                "name": event["name"],
                "cat": _category(event["name"]),
                "ph": event.get("ph", "X"),
                "ts": float(event["ts"]),
                "pid": pid,
                "tid": int(event.get("tid", 0)),
                "args": args,
            }
            if record["ph"] == "X":
                record["dur"] = float(event.get("dur", 0.0))
            if record["ph"] == "i":
                record["s"] = "t"  # instant scope: thread
            trace_events.append(record)
    if trace_events:
        origin = min(event["ts"] for event in trace_events)
        for event in trace_events:
            event["ts"] -= origin
    trace_events.sort(key=lambda e: (e["pid"], e["ts"]))
    return {"traceEvents": metadata + trace_events, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc: dict) -> list[str]:
    """Schema check for an exported trace; returns a list of problems."""
    problems: list[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["missing traceEvents key"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"event {i}: missing {key!r}")
        ph = event.get("ph")
        if ph in ("X", "i") and "ts" not in event:
            problems.append(f"event {i}: missing ts")
        if ph == "X" and "dur" not in event:
            problems.append(f"event {i}: complete event missing dur")
        ts = event.get("ts")
        if ts is not None and not isinstance(ts, (int, float)):
            problems.append(f"event {i}: ts not numeric")
    return problems
