"""repro — a reproduction of "Locality-based Network Creation Games".

Paper: Davide Bilò, Luciano Gualà, Stefano Leucci, Guido Proietti,
*Locality-based Network Creation Games*, SPAA 2014 (journal version ACM
Transactions on Parallel Computing 3(1):6, 2016).

The package implements, from scratch:

* the two classical network creation games — **MaxNCG** (eccentricity
  usage) and **SumNCG** (sum-of-distances usage) — and their
  **local-knowledge** variants in which each player only sees her
  k-neighbourhood;
* the **Local Knowledge Equilibrium** (LKE) solution concept and the
  worst-case deviation semantics of Propositions 2.1 and 2.2;
* exact best responses through the constrained minimum-dominating-set
  reduction of Section 5.3 (MILP / branch-and-bound / greedy solvers);
* the round-robin best-response **dynamics** of the experimental section,
  with cycle detection and per-round metric collection;
* the **lower-bound constructions** of Sections 3-4 (cycle, high-girth
  graphs, the stretched toroidal grid) together with programmatic
  equilibrium *certificates*;
* the closed-form **PoA bound formulas** and the (α, k) region maps of
  Figures 3-4;
* the full **experiment harness** regenerating Tables I-II and
  Figures 5-10.

Quickstart
----------
>>> from repro import MaxNCG, random_owned_tree, best_response_dynamics
>>> instance = random_owned_tree(30, seed=1)
>>> result = best_response_dynamics(instance, MaxNCG(alpha=2, k=3))
>>> result.converged
True
"""

from repro.core import (
    StrategyProfile,
    GameSpec,
    MaxNCG,
    SumNCG,
    UsageKind,
    FULL_KNOWLEDGE,
    player_cost,
    social_cost,
    all_player_costs,
    View,
    extract_view,
    BestResponse,
    best_response,
    best_response_max,
    is_equilibrium,
    best_response_dynamics,
    DynamicsResult,
    social_optimum,
    price_of_anarchy_ratio,
)
from repro.core.dynamics import best_response_dynamics_reference
from repro.core.equilibria import certify_equilibrium, EquilibriumReport
from repro.core.metrics import ProfileMetrics, compute_profile_metrics
from repro.engine import DynamicsEngine, SCHEDULERS, make_scheduler
from repro.graphs import Graph
from repro.core.swap import (
    swap_dynamics,
    greedy_dynamics,
    is_swap_equilibrium,
    is_greedy_equilibrium,
)
from repro.core.bayesian import (
    EmptyWorldBelief,
    PessimisticBelief,
    GeometricGrowthBelief,
    is_bayesian_equilibrium,
)
from repro.discovery import (
    KNeighborhoodModel,
    TracerouteModel,
    UnionOfBallsModel,
    is_equilibrium_under_model,
)
from repro.graphs.generators import (
    OwnedGraph,
    random_owned_tree,
    owned_connected_gnp_graph,
    owned_watts_strogatz,
    owned_barabasi_albert,
    owned_random_regular,
    stretched_torus,
    TorusParameters,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # games & profiles
    "StrategyProfile",
    "GameSpec",
    "MaxNCG",
    "SumNCG",
    "UsageKind",
    "FULL_KNOWLEDGE",
    # costs
    "player_cost",
    "social_cost",
    "all_player_costs",
    "social_optimum",
    "price_of_anarchy_ratio",
    # local knowledge
    "View",
    "extract_view",
    # best responses & equilibria
    "BestResponse",
    "best_response",
    "best_response_max",
    "is_equilibrium",
    "certify_equilibrium",
    "EquilibriumReport",
    # dynamics
    "best_response_dynamics",
    "best_response_dynamics_reference",
    "DynamicsEngine",
    "SCHEDULERS",
    "make_scheduler",
    "DynamicsResult",
    "ProfileMetrics",
    "compute_profile_metrics",
    # limited-move variants (swap / greedy games)
    "swap_dynamics",
    "greedy_dynamics",
    "is_swap_equilibrium",
    "is_greedy_equilibrium",
    # Bayesian relaxation of the LKE rule
    "EmptyWorldBelief",
    "PessimisticBelief",
    "GeometricGrowthBelief",
    "is_bayesian_equilibrium",
    # network-discovery view models
    "KNeighborhoodModel",
    "TracerouteModel",
    "UnionOfBallsModel",
    "is_equilibrium_under_model",
    # graphs & generators
    "Graph",
    "OwnedGraph",
    "random_owned_tree",
    "owned_connected_gnp_graph",
    "owned_watts_strogatz",
    "owned_barabasi_albert",
    "owned_random_regular",
    "stretched_torus",
    "TorusParameters",
]
