"""Equilibria, best responses and comparisons under alternative view models.

The LKE machinery of :mod:`repro.core` is parameterised by a
:class:`~repro.core.views.View`; this module re-exposes the equilibrium and
best-response entry points with the view supplied by an arbitrary
:class:`~repro.discovery.models.ViewModel`, and adds the summary statistics
used by the view-model comparison experiment (how much of the network each
model reveals, and whether the same starting network is stable under
different information regimes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.best_response import (
    ENGINE_DEFAULT_SOLVER,
    BestResponse,
    best_response_max,
    best_response_sum_exhaustive,
    best_response_sum_local_search,
)
from repro.core.deviations import COST_EPS
from repro.core.games import GameSpec, UsageKind
from repro.core.strategies import StrategyProfile
from repro.discovery.models import ViewModel
from repro.graphs.graph import Node

__all__ = [
    "ModelComparison",
    "best_response_under_model",
    "improving_players_under_model",
    "is_equilibrium_under_model",
    "compare_view_models",
    "view_size_statistics",
]


def best_response_under_model(
    profile: StrategyProfile,
    player: Node,
    game: GameSpec,
    model: ViewModel,
    solver: str = ENGINE_DEFAULT_SOLVER,
    sum_exhaustive_limit: int = 12,
) -> BestResponse:
    """Best response of ``player`` when her knowledge comes from ``model``.

    The dispatch mirrors :func:`repro.core.best_response.best_response`:
    MaxNCG uses the constrained-dominating-set reduction on the model's view,
    SumNCG uses exhaustive enumeration for small strategy spaces and
    hill-climbing otherwise.
    """
    view = model.observe(profile, player)
    if game.usage is UsageKind.MAX:
        return best_response_max(profile, player, game, solver=solver, view=view)
    if len(view.strategy_space) <= sum_exhaustive_limit:
        return best_response_sum_exhaustive(
            profile, player, game, max_candidates=sum_exhaustive_limit, view=view
        )
    return best_response_sum_local_search(profile, player, game, view=view)


def improving_players_under_model(
    profile: StrategyProfile,
    game: GameSpec,
    model: ViewModel,
    solver: str = ENGINE_DEFAULT_SOLVER,
) -> list[Node]:
    """Players that hold a worst-case improving deviation under ``model``."""
    result: list[Node] = []
    for player in profile:
        response = best_response_under_model(profile, player, game, model, solver=solver)
        if response.improvement > COST_EPS:
            result.append(player)
    return result


def is_equilibrium_under_model(
    profile: StrategyProfile,
    game: GameSpec,
    model: ViewModel,
    solver: str = ENGINE_DEFAULT_SOLVER,
) -> bool:
    """Whether ``profile`` is stable when every player observes via ``model``."""
    for player in profile:
        response = best_response_under_model(profile, player, game, model, solver=solver)
        if response.improvement > COST_EPS:
            return False
    return True


@dataclass(frozen=True)
class ModelComparison:
    """Per-model summary for one strategy profile.

    Attributes
    ----------
    model_label:
        The model's :meth:`~repro.discovery.models.ViewModel.label`.
    mean_view_size / min_view_size:
        Number of nodes the players discover (the Figure 5 statistic,
        generalised to arbitrary view models).
    mean_frontier_size:
        Average number of frontier (uncertain) vertices per player.
    stable:
        Whether the profile is an equilibrium under the model, or ``None``
        when the check was skipped.
    improving_players:
        How many players hold an improving deviation (``0`` iff ``stable``),
        or ``None`` when the check was skipped.
    """

    model_label: str
    mean_view_size: float
    min_view_size: int
    mean_frontier_size: float
    stable: bool | None
    improving_players: int | None


def view_size_statistics(
    profile: StrategyProfile, model: ViewModel
) -> tuple[float, int, float]:
    """Return ``(mean view size, min view size, mean frontier size)``."""
    sizes: list[int] = []
    frontier_sizes: list[int] = []
    for player in profile:
        view = model.observe(profile, player)
        sizes.append(view.size)
        frontier_sizes.append(len(view.frontier))
    if not sizes:
        return 0.0, 0, 0.0
    return (
        sum(sizes) / len(sizes),
        min(sizes),
        sum(frontier_sizes) / len(frontier_sizes),
    )


def compare_view_models(
    profile: StrategyProfile,
    game: GameSpec,
    models: list[ViewModel],
    check_stability: bool = True,
    solver: str = ENGINE_DEFAULT_SOLVER,
) -> list[ModelComparison]:
    """Summarise what each model reveals (and whether the profile is stable).

    ``check_stability=False`` skips the (expensive) best-response sweep and
    reports only the knowledge statistics.
    """
    comparisons: list[ModelComparison] = []
    for model in models:
        mean_size, min_size, mean_frontier = view_size_statistics(profile, model)
        if check_stability:
            improving = improving_players_under_model(profile, game, model, solver=solver)
            stable: bool | None = not improving
            improving_count: int | None = len(improving)
        else:
            stable = None
            improving_count = None
        comparisons.append(
            ModelComparison(
                model_label=model.label(),
                mean_view_size=mean_size,
                min_view_size=min_size if not math.isinf(mean_size) else 0,
                mean_frontier_size=mean_frontier,
                stable=stable,
                improving_players=improving_count,
            )
        )
    return comparisons
