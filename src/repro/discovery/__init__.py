"""Network-discovery view models (the follow-up direction of Section 6).

The paper's conclusions point at *network discovery* — reconstructing an
unknown topology through queries at its nodes — as the natural source of
alternative local-knowledge models, and the authors explore exactly that in
the cited follow-up work (Bilò et al., "Network creation games with
traceroute-based strategies", SIROCCO 2014).  This subpackage implements the
three canonical query-based view models on top of the existing LKE machinery:

* :class:`KNeighborhoodModel` — the paper's model: the player sees the full
  subgraph induced by her radius-``k`` ball (a wrapper over
  :func:`repro.core.views.extract_view`);
* :class:`TracerouteModel` — the player knows, for a set of targets, one
  shortest path towards each (what a traceroute probe reveals), and therefore
  the exact distances to those targets but only a path-union of the topology;
* :class:`UnionOfBallsModel` — the player knows the radius-``r`` balls around
  a set of landmark vertices (herself plus, e.g., her neighbours), modelling
  a player that can also query nearby cooperative nodes.

Every model produces a standard :class:`repro.core.views.View`, so the
worst-case deviation semantics, the best-response solvers and the dynamics
engine work unchanged; :mod:`repro.discovery.analysis` adds equilibrium
predicates, best responses and model-comparison summaries.
"""

from repro.discovery.models import (
    ViewModel,
    KNeighborhoodModel,
    TracerouteModel,
    UnionOfBallsModel,
    discovered_view,
)
from repro.discovery.analysis import (
    ModelComparison,
    best_response_under_model,
    improving_players_under_model,
    is_equilibrium_under_model,
    compare_view_models,
    view_size_statistics,
)

__all__ = [
    "ViewModel",
    "KNeighborhoodModel",
    "TracerouteModel",
    "UnionOfBallsModel",
    "discovered_view",
    "ModelComparison",
    "best_response_under_model",
    "improving_players_under_model",
    "is_equilibrium_under_model",
    "compare_view_models",
    "view_size_statistics",
]
