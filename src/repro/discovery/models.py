"""Query-based view models.

A *view model* answers the question "what does player ``u`` know about the
network ``G(σ)``?" and packages the answer as a standard
:class:`repro.core.views.View`:

* ``subgraph`` — the part of the topology the player can certify;
* ``distances`` — her true distances to the nodes she knows about (all the
  models below reveal exact distances to every discovered node);
* ``frontier`` — the discovered nodes behind which *unknown* network may
  hang.  The worst-case deviation rule of Proposition 2.2 and the Bayesian
  beliefs of :mod:`repro.core.bayesian` only interact with the view through
  this set, so getting it right is what makes the LKE machinery carry over.

For the k-neighbourhood model the frontier is the distance-``k`` shell
(exactly as in the paper).  For the query models the frontier is the set of
discovered nodes whose *complete* incident edge set the player cannot
certify: behind such a node an undiscovered edge may lead to an arbitrarily
large undiscovered region, which is precisely the adversary move used in the
proof of Proposition 2.2.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Iterable

from repro.core.games import FULL_KNOWLEDGE
from repro.core.strategies import StrategyProfile
from repro.core.views import View, extract_view
from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances, bfs_distances_within

__all__ = [
    "ViewModel",
    "KNeighborhoodModel",
    "TracerouteModel",
    "UnionOfBallsModel",
    "discovered_view",
]


class ViewModel(ABC):
    """Strategy for building a player's view of the current network."""

    @abstractmethod
    def observe(self, profile: StrategyProfile, player: Node) -> View:
        """Return what ``player`` knows about ``G(σ)`` under this model."""

    def label(self) -> str:
        """Short human-readable identifier (used by experiment records)."""
        return type(self).__name__


def _buyers_within(profile: StrategyProfile, player: Node, visible: set[Node]) -> set[Node]:
    return {buyer for buyer in profile.buyers_of(player) if buyer in visible}


def _uncertified_nodes(graph: Graph, known: Graph, observer: Node) -> set[Node]:
    """Known nodes whose full incident edge set is *not* contained in ``known``.

    These are the frontier of a query-based view: the player has discovered
    the node but cannot rule out further edges (and further network) attached
    to it.  The observer herself is never a frontier vertex — she knows her
    own incident edges exactly.
    """
    frontier: set[Node] = set()
    for node in known.nodes():
        if node == observer:
            continue
        true_degree = graph.degree(node)
        known_degree = known.degree(node)
        if known_degree < true_degree:
            frontier.add(node)
    return frontier


class KNeighborhoodModel(ViewModel):
    """The paper's model: full knowledge of the radius-``k`` ball."""

    def __init__(self, k: float) -> None:
        if not (k == FULL_KNOWLEDGE or (k == int(k) and k >= 1)):
            raise ValueError("k must be a positive integer or FULL_KNOWLEDGE")
        self.k = k

    def observe(self, profile: StrategyProfile, player: Node) -> View:
        return extract_view(profile, player, self.k)

    def label(self) -> str:
        k_label = "inf" if self.k == FULL_KNOWLEDGE else str(int(self.k))
        return f"k-neighborhood(k={k_label})"


class TracerouteModel(ViewModel):
    """The player probes a set of targets and learns one shortest path to each.

    Parameters
    ----------
    num_targets:
        How many targets to probe; ``None`` probes every other reachable
        player (the "all-shortest-path-trees are free" reading of the
        SIROCCO'14 model).  When fewer targets are requested they are the
        nearest ones, with ties broken deterministically by node label —
        probing the neighbourhood first is how an iterative discovery
        strategy would spend a small query budget.
    """

    def __init__(self, num_targets: int | None = None) -> None:
        if num_targets is not None and num_targets < 0:
            raise ValueError("num_targets must be non-negative or None")
        self.num_targets = num_targets

    def observe(self, profile: StrategyProfile, player: Node) -> View:
        graph = profile.graph()
        if player not in graph:
            raise KeyError(f"player {player!r} not in the game")
        distances = bfs_distances(graph, player)
        reachable = [node for node in distances if node != player]
        reachable.sort(key=lambda node: (distances[node], repr(node)))
        if self.num_targets is not None:
            targets = reachable[: self.num_targets]
        else:
            targets = reachable

        # The union of one BFS-tree path per target: walk each target back to
        # the player along BFS parents.
        parent: dict[Node, Node | None] = {player: None}
        order: list[Node] = [player]
        index = 0
        # Deterministic BFS with sorted neighbour expansion.
        while index < len(order):
            node = order[index]
            index += 1
            for neighbour in sorted(graph.neighbors(node), key=repr):
                if neighbour not in parent:
                    parent[neighbour] = node
                    order.append(neighbour)

        known = Graph(nodes=[player])
        known_distances: dict[Node, int] = {player: 0}
        for target in targets:
            node = target
            while node is not None and parent[node] is not None:
                known.add_edge(node, parent[node])
                known_distances[node] = distances[node]
                node = parent[node]
        # The player always knows her own incident edges (she pays for some
        # of them and the rest are physically attached to her).
        for neighbour in graph.neighbors(player):
            known.add_edge(player, neighbour)
            known_distances[neighbour] = 1

        frontier = _uncertified_nodes(graph, known, player)
        return View(
            player=player,
            k=math.inf,
            subgraph=known,
            distances=known_distances,
            frontier=frontier,
            buyers=_buyers_within(profile, player, set(known.nodes())),
        )

    def label(self) -> str:
        suffix = "all" if self.num_targets is None else str(self.num_targets)
        return f"traceroute(targets={suffix})"


class UnionOfBallsModel(ViewModel):
    """The player knows the radius-``r`` balls around herself and her landmarks.

    Parameters
    ----------
    radius:
        Ball radius ``r >= 1``.
    include_neighbors:
        When ``True`` (default) the landmarks are the player's current
        neighbours — the "ask the nodes you are directly connected to" model.
    extra_landmarks:
        Additional landmark nodes (must exist in the profile); unknown nodes
        are ignored silently, because a player cannot be forced to query a
        node she has never heard of.
    """

    def __init__(
        self,
        radius: int,
        include_neighbors: bool = True,
        extra_landmarks: Iterable[Node] = (),
    ) -> None:
        if radius < 1:
            raise ValueError("radius must be at least 1")
        self.radius = radius
        self.include_neighbors = include_neighbors
        self.extra_landmarks = tuple(extra_landmarks)

    def observe(self, profile: StrategyProfile, player: Node) -> View:
        graph = profile.graph()
        if player not in graph:
            raise KeyError(f"player {player!r} not in the game")
        landmarks: list[Node] = [player]
        if self.include_neighbors:
            landmarks.extend(sorted(graph.neighbors(player), key=repr))
        landmarks.extend(node for node in self.extra_landmarks if node in graph)

        visible: set[Node] = set()
        for landmark in landmarks:
            visible.update(bfs_distances_within(graph, landmark, self.radius))
        known = graph.induced_subgraph(visible)
        true_distances = bfs_distances(graph, player)
        known_distances = {node: true_distances[node] for node in visible if node in true_distances}

        frontier = _uncertified_nodes(graph, known, player)
        return View(
            player=player,
            k=math.inf,
            subgraph=known,
            distances=known_distances,
            frontier=frontier,
            buyers=_buyers_within(profile, player, visible),
        )

    def label(self) -> str:
        return (
            f"union-of-balls(radius={self.radius}, "
            f"neighbors={self.include_neighbors}, extra={len(self.extra_landmarks)})"
        )


def discovered_view(profile: StrategyProfile, player: Node, model: ViewModel) -> View:
    """Convenience wrapper: the view of ``player`` under ``model``."""
    return model.observe(profile, player)
