"""Minimum set cover with optional forced (zero-cost) sets.

An instance consists of a boolean coverage matrix ``cover[c, e]`` saying that
candidate ``c`` covers element ``e``, plus an optional list of candidates
that are *forced* into the solution and do not count towards the objective.
The objective is the number of non-forced candidates selected.  This is
exactly the structure of the paper's best-response subproblem: candidates are
potential edge targets, elements are the vertices that must end up within the
guessed eccentricity, and forced candidates are the neighbours whose edge
towards the player was bought by the *other* endpoint (the player cannot
remove it but also does not pay for it).

Three solvers with a common interface are provided; see the package
docstring for the rationale.
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.kernels import KernelBackend, resolve_backend

__all__ = [
    "SetCoverInstance",
    "SetCoverResult",
    "greedy_set_cover",
    "branch_and_bound_set_cover",
    "milp_set_cover",
    "solve_set_cover",
    "SOLVERS",
    "WARM_START_SOLVERS",
]

#: Solvers that actually consume ``warm_start`` / ``upper_bound`` hints.
#: ``milp`` (scipy's HiGHS front-end) exposes neither an incumbent-injection
#: hook nor an objective cutoff, and ``greedy`` rebuilds its cover from
#: scratch deterministically, so hints handed to either are dead weight —
#: :func:`solve_set_cover` warns loudly when an exact solver silently drops
#: them (greedy is exempt: an approximation has no search to prune).
WARM_START_SOLVERS: frozenset[str] = frozenset({"branch_and_bound"})


@dataclass
class SetCoverInstance:
    """A (possibly constrained) minimum set cover instance.

    Attributes
    ----------
    coverage:
        Boolean array of shape ``(num_candidates, num_elements)``.
    forced:
        Indices of candidates that are part of every feasible solution at no
        cost.
    candidate_labels / element_labels:
        Optional labels used to translate solutions back to the caller's
        domain (e.g. graph nodes).
    """

    coverage: np.ndarray
    forced: tuple[int, ...] = ()
    candidate_labels: list = field(default_factory=list)
    element_labels: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self.coverage = np.asarray(self.coverage, dtype=bool)
        if self.coverage.ndim != 2:
            raise ValueError("coverage must be a 2-D boolean matrix")
        num_candidates = self.coverage.shape[0]
        if any(not 0 <= idx < num_candidates for idx in self.forced):
            raise ValueError("forced candidate index out of range")
        if self.candidate_labels and len(self.candidate_labels) != num_candidates:
            raise ValueError("candidate_labels length mismatch")
        if self.element_labels and len(self.element_labels) != self.coverage.shape[1]:
            raise ValueError("element_labels length mismatch")

    @property
    def num_candidates(self) -> int:
        return self.coverage.shape[0]

    @property
    def num_elements(self) -> int:
        return self.coverage.shape[1]

    def residual(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(free_candidates, uncovered_elements)`` after forced sets.

        ``free_candidates`` is an index array of non-forced candidates and
        ``uncovered_elements`` an index array of elements not covered by any
        forced candidate.
        """
        forced_mask = np.zeros(self.num_candidates, dtype=bool)
        if self.forced:
            forced_mask[list(self.forced)] = True
        covered = (
            self.coverage[forced_mask].any(axis=0)
            if forced_mask.any()
            else np.zeros(self.num_elements, dtype=bool)
        )
        free_candidates = np.flatnonzero(~forced_mask)
        uncovered_elements = np.flatnonzero(~covered)
        return free_candidates, uncovered_elements

    def is_feasible_selection(self, selected: set[int]) -> bool:
        """Check that forced + selected candidates cover every element."""
        chosen = set(self.forced) | set(selected)
        if not chosen:
            return self.num_elements == 0
        mask = np.zeros(self.num_candidates, dtype=bool)
        mask[list(chosen)] = True
        return bool(self.coverage[mask].any(axis=0).all()) if self.num_elements else True


@dataclass(frozen=True)
class SetCoverResult:
    """Outcome of a set-cover solve.

    ``selected`` contains only the *paid* (non-forced) candidate indices;
    ``objective`` is ``len(selected)``.  ``optimal`` records whether the
    solver guarantees optimality (greedy does not).  ``feasible`` is False
    when no cover exists at all (some element covered by no candidate).
    """

    selected: tuple[int, ...]
    objective: int
    optimal: bool
    feasible: bool
    solver: str

    def selected_labels(self, instance: SetCoverInstance) -> list:
        if not instance.candidate_labels:
            return list(self.selected)
        return [instance.candidate_labels[idx] for idx in self.selected]


def _infeasible(solver: str) -> SetCoverResult:
    return SetCoverResult(selected=(), objective=0, optimal=True, feasible=False, solver=solver)


def _trivial_or_none(instance: SetCoverInstance, solver: str) -> SetCoverResult | None:
    """Handle the no-element / uncoverable-element corner cases."""
    free, uncovered = instance.residual()
    if uncovered.size == 0:
        return SetCoverResult((), 0, True, True, solver)
    if free.size == 0:
        return _infeasible(solver)
    # An element covered by no candidate at all makes the instance infeasible.
    coverable = instance.coverage[free][:, uncovered].any(axis=0)
    if not bool(coverable.all()):
        return _infeasible(solver)
    return None


def _warm_positions(
    instance: SetCoverInstance,
    free: np.ndarray,
    warm_start: Sequence[int],
) -> list[int] | None:
    """Map a warm-start selection to positions in ``free``, or ``None``.

    A warm start is a set of *original* (non-forced) candidate indices that
    formed a feasible cover of an easier instance — typically the previous
    eccentricity guess's solution in the best-response ``h`` loop, where
    coverage grows monotonically so the old cover stays feasible.  Anything
    that fails validation (out-of-range/forced index, or no longer a cover)
    is silently ignored: a warm start is an optimisation hint, never a
    correctness input.
    """
    selection = {int(idx) for idx in warm_start}
    position_of = {int(original): pos for pos, original in enumerate(free)}
    if not selection or not selection.issubset(position_of):
        return None
    if not instance.is_feasible_selection(selection):
        return None
    return [position_of[idx] for idx in sorted(selection)]


def greedy_set_cover(
    instance: SetCoverInstance,
    upper_bound: int | None = None,
    warm_start: Sequence[int] | None = None,
    backend: str | KernelBackend | None = None,
) -> SetCoverResult:
    """Classical greedy ``H_n``-approximation: repeatedly pick the candidate
    covering the most still-uncovered elements.

    ``warm_start`` and ``upper_bound`` are accepted for interface uniformity
    and ignored: greedy rebuilds its cover from scratch deterministically.
    ``backend`` likewise: greedy has no kernel to accelerate.
    """
    trivial = _trivial_or_none(instance, "greedy")
    if trivial is not None:
        return trivial
    free, uncovered = instance.residual()
    coverage = instance.coverage[free][:, uncovered]
    remaining = np.ones(coverage.shape[1], dtype=bool)
    selected: list[int] = []
    while remaining.any():
        gains = (coverage & remaining).sum(axis=1)
        best = int(np.argmax(gains))
        if gains[best] == 0:  # pragma: no cover - guarded by _trivial_or_none
            return _infeasible("greedy")
        selected.append(int(free[best]))
        remaining &= ~coverage[best]
    return SetCoverResult(tuple(selected), len(selected), False, True, "greedy")


def branch_and_bound_set_cover(
    instance: SetCoverInstance,
    upper_bound: int | None = None,
    warm_start: Sequence[int] | None = None,
    backend: str | KernelBackend | None = None,
) -> SetCoverResult:
    """Exact branch-and-bound solver, kernel-backed.

    Branches on the uncovered element with the fewest covering candidates
    (the most constrained element) and prunes with

    * the best incumbent found so far (initialised from greedy, tightened by
      a feasible ``warm_start`` selection when one is supplied), and
    * the simple lower bound ``ceil(#uncovered / max coverage size)``.

    A warm start never changes the returned objective (the search still
    proves optimality); it only prunes earlier.  When the warm-start cover
    ties the greedy incumbent it is preferred, so repeated solves over a
    monotonically growing coverage (the best-response ``h`` loop) keep
    returning the same selection until a strictly smaller cover appears.

    The recursion itself runs on the selected kernel backend
    (:mod:`repro.kernels`); incumbent seeding, candidate ordering and the
    residual-instance setup stay here, so every backend searches the same
    tree with the same tie-breaks and returns the identical selection.

    Intended for the moderate instance sizes of the experiments (views of at
    most a few hundred vertices); cross-checked against the MILP solver in
    the test suite.
    """
    trivial = _trivial_or_none(instance, "branch_and_bound")
    if trivial is not None:
        return trivial
    free, uncovered = instance.residual()
    coverage = instance.coverage[free][:, uncovered]
    num_free = coverage.shape[0]

    greedy = greedy_set_cover(instance)
    best_size = greedy.objective if greedy.feasible else num_free + 1
    if upper_bound is not None:
        best_size = min(best_size, upper_bound)
    best_selection: list[int] | None = (
        [int(np.flatnonzero(free == idx)[0]) for idx in greedy.selected]
        if greedy.feasible and greedy.objective <= best_size
        else None
    )
    if warm_start is not None:
        warm = _warm_positions(instance, free, warm_start)
        if warm is not None and len(warm) <= best_size:
            best_size = len(warm)
            best_selection = warm

    cover_sizes = coverage.sum(axis=1)
    order_by_size = np.argsort(-cover_sizes)

    kernel = resolve_backend(backend)
    best_size, best_selection = kernel.cover_search(
        coverage, order_by_size, best_size, best_selection
    )
    if best_selection is None:
        return _infeasible("branch_and_bound")
    selected = tuple(int(free[idx]) for idx in best_selection)
    return SetCoverResult(selected, len(selected), True, True, "branch_and_bound")


def milp_set_cover(
    instance: SetCoverInstance,
    upper_bound: int | None = None,
    warm_start: Sequence[int] | None = None,
    backend: str | KernelBackend | None = None,
) -> SetCoverResult:
    """Exact solve through ``scipy.optimize.milp`` (HiGHS backend).

    Formulation: minimise ``sum_c x_c`` subject to
    ``sum_{c covers e} x_c >= 1`` for every residual element ``e``,
    ``x_c in {0, 1}``, over the non-forced candidates only (forced
    candidates are folded into the residual instance).

    ``scipy.optimize.milp`` exposes neither an incumbent-injection hook nor
    an objective cutoff, so ``warm_start``/``upper_bound`` are only
    forwarded to the branch-and-bound fallback taken on a HiGHS failure;
    use ``method="branch_and_bound"`` to actually exploit warm starts.
    """
    trivial = _trivial_or_none(instance, "milp")
    if trivial is not None:
        return trivial
    from scipy import optimize, sparse

    free, uncovered = instance.residual()
    coverage = instance.coverage[free][:, uncovered]
    num_free, num_elements = coverage.shape
    constraint_matrix = sparse.csr_matrix(coverage.T.astype(float))
    constraints = optimize.LinearConstraint(constraint_matrix, lb=np.ones(num_elements))
    integrality = np.ones(num_free)
    bounds = optimize.Bounds(lb=np.zeros(num_free), ub=np.ones(num_free))
    result = optimize.milp(
        c=np.ones(num_free),
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
    )
    if not result.success or result.x is None:
        # HiGHS failure on a feasible instance; fall back to branch and bound.
        return branch_and_bound_set_cover(
            instance, upper_bound=upper_bound, warm_start=warm_start, backend=backend
        )
    chosen = np.flatnonzero(np.round(result.x) >= 0.5)
    selected = tuple(int(free[idx]) for idx in chosen)
    return SetCoverResult(selected, len(selected), True, True, "milp")


#: Registry used by the experiment configuration and the solver ablation.
SOLVERS = {
    "milp": milp_set_cover,
    "branch_and_bound": branch_and_bound_set_cover,
    "greedy": greedy_set_cover,
}


def solve_set_cover(
    instance: SetCoverInstance,
    method: str = "milp",
    upper_bound: int | None = None,
    warm_start: Sequence[int] | None = None,
    backend: str | KernelBackend | None = None,
) -> SetCoverResult:
    """Dispatch to one of the registered solvers (``milp`` by default).

    ``warm_start`` optionally hands the solver a known-feasible selection of
    original candidate indices (e.g. the previous solve of a monotonically
    growing instance).  ``upper_bound`` is honoured by ``branch_and_bound``
    only, where it caps the incumbent: covers *larger* than it are never
    returned, an infeasible result means no cover within the cap exists,
    but a greedy or warm incumbent of exactly the cap size may be returned
    as-is.  ``greedy`` and ``milp`` ignore both hints and may return covers
    of any size, so callers that only profit from covers up to size ``T``
    must pass ``T + 1`` *and* re-check the returned objective regardless of
    method (the best-response loop's cost test does exactly that).  Hints
    never change a within-bound solution's objective.

    ``backend`` selects the kernel backend running the branch-and-bound
    recursion (see :mod:`repro.kernels`); all backends return bit-identical
    selections, so it is purely a speed knob.

    Passing hints to an exact solver that cannot consume them
    (``milp``) raises a :class:`RuntimeWarning`: the caller asked for a
    warm-started solve and would silently get cold re-solves instead.
    ``greedy`` stays quiet — it has no search to prune, so hints are
    meaningless rather than lost performance.
    """
    try:
        solver = SOLVERS[method]
    except KeyError as exc:
        raise ValueError(
            f"unknown solver {method!r}; available: {sorted(SOLVERS)}"
        ) from exc
    if (
        (warm_start is not None or upper_bound is not None)
        and method not in WARM_START_SOLVERS
        and method != "greedy"
    ):
        warnings.warn(
            f"set-cover solver {method!r} cannot consume warm_start/upper_bound "
            "hints (they are only honoured on its branch-and-bound fallback); "
            "use method='branch_and_bound' to exploit warm starts",
            RuntimeWarning,
            stacklevel=2,
        )
    return solver(instance, upper_bound=upper_bound, warm_start=warm_start, backend=backend)
