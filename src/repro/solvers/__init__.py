"""Combinatorial optimization solvers.

The only NP-hard subproblem of the reproduction is the exact best-response
computation of Section 5.3, which the paper reduces to a *constrained minimum
dominating set* (equivalently a set-cover instance with some sets forced into
the solution) and solves with Gurobi.  Since Gurobi is unavailable offline we
provide three interchangeable solvers:

* :func:`~repro.solvers.set_cover.milp_set_cover` — the same 0/1 integer
  program, solved exactly with ``scipy.optimize.milp`` (HiGHS);
* :func:`~repro.solvers.set_cover.branch_and_bound_set_cover` — a from-scratch
  exact branch-and-bound solver used as a cross-check and as a fallback when
  SciPy's MILP backend is unavailable;
* :func:`~repro.solvers.set_cover.greedy_set_cover` — the classical
  ``ln n``-approximation, exposed for the solver-quality ablation bench.

Dominating-set wrappers over these live in
:mod:`repro.solvers.dominating_set`.
"""

from repro.solvers.set_cover import (
    SetCoverInstance,
    SetCoverResult,
    greedy_set_cover,
    branch_and_bound_set_cover,
    milp_set_cover,
    solve_set_cover,
)
from repro.solvers.dominating_set import (
    dominating_set_instance,
    minimum_dominating_set,
    power_dominating_set_instance,
    is_dominating_set,
)
from repro.solvers.facility import (
    FacilityResult,
    greedy_k_center,
    exact_k_center,
    greedy_k_median,
    local_search_k_median,
    exact_k_median,
    solve_k_center,
    solve_k_median,
)

__all__ = [
    "SetCoverInstance",
    "SetCoverResult",
    "greedy_set_cover",
    "branch_and_bound_set_cover",
    "milp_set_cover",
    "solve_set_cover",
    "dominating_set_instance",
    "minimum_dominating_set",
    "power_dominating_set_instance",
    "is_dominating_set",
    "FacilityResult",
    "greedy_k_center",
    "exact_k_center",
    "greedy_k_median",
    "local_search_k_median",
    "exact_k_median",
    "solve_k_center",
    "solve_k_median",
]
