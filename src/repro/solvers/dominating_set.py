"""Minimum (constrained, distance-``h``) dominating sets.

A set ``D`` of vertices dominates a graph if every vertex is in ``D`` or has
a neighbour in ``D``.  The paper's best response reduces to the *distance
version* of this problem: dominate the ``(h-1)``-th power of the player's
view minus the player, with the in-neighbours of the player forced into the
solution at zero cost (Section 5.3).  This module translates those problems
into :class:`~repro.solvers.set_cover.SetCoverInstance` objects and solves
them with any of the registered solvers.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graphs.graph import Graph, Node
from repro.graphs.power import power_adjacency
from repro.graphs.traversal import bfs_distances_within
from repro.solvers.set_cover import SetCoverInstance, SetCoverResult, solve_set_cover

__all__ = [
    "dominating_set_instance",
    "power_dominating_set_instance",
    "minimum_dominating_set",
    "is_dominating_set",
]


def dominating_set_instance(
    graph: Graph, forced: Iterable[Node] = ()
) -> SetCoverInstance:
    """Build the set-cover instance of (1-step) domination.

    Candidates and elements are both the vertex set; a candidate dominates
    itself and its neighbours.  ``forced`` vertices are placed in the
    solution for free.
    """
    return power_dominating_set_instance(graph, radius=1, forced=forced)


def power_dominating_set_instance(
    graph: Graph,
    radius: int,
    forced: Iterable[Node] = (),
    candidates: Iterable[Node] | None = None,
    elements: Iterable[Node] | None = None,
) -> SetCoverInstance:
    """Build the distance-``radius`` domination instance.

    A candidate ``c`` covers an element ``e`` iff ``d_G(c, e) <= radius``.
    ``candidates`` / ``elements`` default to the whole vertex set; restricting
    them is what the best-response reduction needs (candidates are the
    allowed edge targets, elements the vertices that must be reached).
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    candidate_list = list(candidates) if candidates is not None else graph.nodes()
    element_list = list(elements) if elements is not None else graph.nodes()
    element_index = {node: i for i, node in enumerate(element_list)}
    element_set = set(element_list)

    import numpy as np

    coverage = np.zeros((len(candidate_list), len(element_list)), dtype=bool)
    for row, candidate in enumerate(candidate_list):
        if not graph.has_node(candidate):
            raise KeyError(f"candidate {candidate!r} not in graph")
        for node, dist in bfs_distances_within(graph, candidate, radius).items():
            if node in element_set:
                coverage[row, element_index[node]] = True

    candidate_index = {node: i for i, node in enumerate(candidate_list)}
    forced_indices = []
    for node in forced:
        if node not in candidate_index:
            raise KeyError(f"forced vertex {node!r} is not a candidate")
        forced_indices.append(candidate_index[node])
    return SetCoverInstance(
        coverage=coverage,
        forced=tuple(forced_indices),
        candidate_labels=candidate_list,
        element_labels=element_list,
    )


def minimum_dominating_set(
    graph: Graph,
    radius: int = 1,
    forced: Iterable[Node] = (),
    method: str = "milp",
) -> tuple[list[Node], SetCoverResult]:
    """Solve minimum (distance-``radius``) domination.

    Returns the list of *paid* vertices chosen (forced vertices are excluded
    from the list, mirroring the cost structure of the best response) plus
    the raw :class:`SetCoverResult`.
    """
    instance = power_dominating_set_instance(graph, radius=radius, forced=forced)
    result = solve_set_cover(instance, method=method)
    return result.selected_labels(instance), result


def is_dominating_set(graph: Graph, dominators: Iterable[Node], radius: int = 1) -> bool:
    """Check whether ``dominators`` distance-``radius`` dominate the graph."""
    dominator_list = list(dominators)
    for node in dominator_list:
        if not graph.has_node(node):
            raise KeyError(f"dominator {node!r} not in graph")
    covered: set[Node] = set()
    for node in dominator_list:
        covered.update(bfs_distances_within(graph, node, radius))
    return covered >= set(graph.nodes())
