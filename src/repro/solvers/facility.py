"""Facility-location style solvers: k-center and k-median on graphs.

These problems are the "how good could a player possibly do with ``k`` new
edges" primitives:

* a MaxNCG player who buys edges towards a *k-center* of her (reduced) view
  minimises the eccentricity she can reach with ``k`` purchases, which is the
  quantity the ball-growth arguments of Lemma 3.13 reason about;
* a SumNCG player buying towards a *k-median* minimises the resulting status,
  which generalises the "neighbours are medians of their subtrees" argument
  of Theorem 4.3.

The solvers work directly on hop distances of a :class:`Graph` (or on an
explicit distance dictionary) and come in three flavours mirroring the
set-cover stack: exact enumeration for small instances, a classical greedy,
and a swap-based local search.  The SumNCG heuristic best response and the
extension experiments use the greedy/local-search pair; the exact solver is
used by the tests as ground truth.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances

__all__ = [
    "FacilityResult",
    "coverage_radius",
    "total_assignment_cost",
    "greedy_k_center",
    "exact_k_center",
    "greedy_k_median",
    "local_search_k_median",
    "exact_k_median",
    "solve_k_center",
    "solve_k_median",
]

#: Marker distance for clients no candidate can reach.
UNREACHED = math.inf


@dataclass(frozen=True)
class FacilityResult:
    """Outcome of a k-center / k-median computation.

    Attributes
    ----------
    centers:
        The selected facility nodes (at most ``k`` of them).
    objective:
        Covering radius (k-center) or total assignment cost (k-median).
    optimal:
        Whether the solver guarantees optimality.
    method:
        Human-readable solver name (``"greedy"``, ``"exact"``, ...).
    """

    centers: frozenset[Node]
    objective: float
    optimal: bool
    method: str


# ----------------------------------------------------------------------
# Distance plumbing
# ----------------------------------------------------------------------
def _distance_rows(
    graph: Graph, candidates: Sequence[Node]
) -> dict[Node, dict[Node, float]]:
    """Hop distances from every candidate to every node of the graph."""
    rows: dict[Node, dict[Node, float]] = {}
    for candidate in candidates:
        distances = bfs_distances(graph, candidate)
        rows[candidate] = {node: float(dist) for node, dist in distances.items()}
    return rows


def _resolve_inputs(
    graph: Graph | None,
    distances: Mapping[Node, Mapping[Node, float]] | None,
    candidates: Iterable[Node] | None,
    clients: Iterable[Node] | None,
) -> tuple[list[Node], list[Node], dict[Node, dict[Node, float]]]:
    """Normalise the (graph | distances, candidates, clients) triple."""
    if (graph is None) == (distances is None):
        raise ValueError("provide exactly one of graph= or distances=")
    if graph is not None:
        candidate_list = list(candidates) if candidates is not None else graph.nodes()
        client_list = list(clients) if clients is not None else graph.nodes()
        rows = _distance_rows(graph, candidate_list)
    else:
        assert distances is not None
        candidate_list = list(candidates) if candidates is not None else list(distances)
        if clients is not None:
            client_list = list(clients)
        else:
            seen: list[Node] = []
            for row in distances.values():
                for node in row:
                    if node not in seen:
                        seen.append(node)
            client_list = seen
        rows = {
            candidate: {node: float(d) for node, d in distances[candidate].items()}
            for candidate in candidate_list
        }
    if not candidate_list:
        raise ValueError("there must be at least one candidate facility")
    if not client_list:
        raise ValueError("there must be at least one client")
    return candidate_list, client_list, rows


def coverage_radius(
    centers: Iterable[Node],
    rows: Mapping[Node, Mapping[Node, float]],
    clients: Sequence[Node],
) -> float:
    """Max over clients of the distance to the nearest selected center."""
    selected = list(centers)
    if not selected:
        return UNREACHED
    worst = 0.0
    for client in clients:
        best = min(rows[center].get(client, UNREACHED) for center in selected)
        worst = max(worst, best)
        if math.isinf(worst):
            return UNREACHED
    return worst


def total_assignment_cost(
    centers: Iterable[Node],
    rows: Mapping[Node, Mapping[Node, float]],
    clients: Sequence[Node],
) -> float:
    """Sum over clients of the distance to the nearest selected center."""
    selected = list(centers)
    if not selected:
        return UNREACHED
    total = 0.0
    for client in clients:
        best = min(rows[center].get(client, UNREACHED) for center in selected)
        if math.isinf(best):
            return UNREACHED
        total += best
    return total


# ----------------------------------------------------------------------
# k-center
# ----------------------------------------------------------------------
def greedy_k_center(
    k: int,
    graph: Graph | None = None,
    distances: Mapping[Node, Mapping[Node, float]] | None = None,
    candidates: Iterable[Node] | None = None,
    clients: Iterable[Node] | None = None,
) -> FacilityResult:
    """Gonzalez' farthest-point greedy 2-approximation for k-center.

    The first center is the candidate minimising the 1-center radius (rather
    than an arbitrary node) so the ``k = 1`` case is already exact.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    candidate_list, client_list, rows = _resolve_inputs(graph, distances, candidates, clients)

    first = min(candidate_list, key=lambda c: (coverage_radius([c], rows, client_list), repr(c)))
    centers: list[Node] = [first]
    while len(centers) < min(k, len(candidate_list)):
        # Farthest client from the current centers...
        def nearest_center_distance(client: Node) -> float:
            return min(rows[center].get(client, UNREACHED) for center in centers)

        farthest = max(client_list, key=lambda c: (nearest_center_distance(c), repr(c)))
        # ... served by the candidate closest to it that is not yet a center.
        available = [c for c in candidate_list if c not in centers]
        if not available:
            break
        new_center = min(
            available, key=lambda c: (rows[c].get(farthest, UNREACHED), repr(c))
        )
        centers.append(new_center)
    objective = coverage_radius(centers, rows, client_list)
    return FacilityResult(frozenset(centers), objective, optimal=False, method="greedy")


def exact_k_center(
    k: int,
    graph: Graph | None = None,
    distances: Mapping[Node, Mapping[Node, float]] | None = None,
    candidates: Iterable[Node] | None = None,
    clients: Iterable[Node] | None = None,
    max_candidates: int = 20,
) -> FacilityResult:
    """Exact k-center by enumerating candidate subsets (small instances only)."""
    if k < 1:
        raise ValueError("k must be at least 1")
    candidate_list, client_list, rows = _resolve_inputs(graph, distances, candidates, clients)
    if len(candidate_list) > max_candidates:
        raise ValueError(
            f"{len(candidate_list)} candidates exceed max_candidates={max_candidates}; "
            "use greedy_k_center instead"
        )
    best_centers: tuple[Node, ...] | None = None
    best_objective = UNREACHED
    size = min(k, len(candidate_list))
    for combo in itertools.combinations(candidate_list, size):
        objective = coverage_radius(combo, rows, client_list)
        if objective < best_objective:
            best_objective = objective
            best_centers = combo
    assert best_centers is not None
    return FacilityResult(frozenset(best_centers), best_objective, optimal=True, method="exact")


# ----------------------------------------------------------------------
# k-median
# ----------------------------------------------------------------------
def greedy_k_median(
    k: int,
    graph: Graph | None = None,
    distances: Mapping[Node, Mapping[Node, float]] | None = None,
    candidates: Iterable[Node] | None = None,
    clients: Iterable[Node] | None = None,
) -> FacilityResult:
    """Forward greedy for k-median: repeatedly add the best marginal center."""
    if k < 1:
        raise ValueError("k must be at least 1")
    candidate_list, client_list, rows = _resolve_inputs(graph, distances, candidates, clients)
    centers: list[Node] = []
    for _ in range(min(k, len(candidate_list))):
        available = [c for c in candidate_list if c not in centers]
        if not available:
            break
        new_center = min(
            available,
            key=lambda c: (total_assignment_cost(centers + [c], rows, client_list), repr(c)),
        )
        centers.append(new_center)
    objective = total_assignment_cost(centers, rows, client_list)
    return FacilityResult(frozenset(centers), objective, optimal=False, method="greedy")


def local_search_k_median(
    k: int,
    graph: Graph | None = None,
    distances: Mapping[Node, Mapping[Node, float]] | None = None,
    candidates: Iterable[Node] | None = None,
    clients: Iterable[Node] | None = None,
    max_iterations: int = 100,
) -> FacilityResult:
    """Single-swap local search (Arya et al.) seeded with the greedy solution.

    Each iteration tries every (selected, unselected) swap and applies the
    best improving one; stops at a local optimum or after ``max_iterations``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    candidate_list, client_list, rows = _resolve_inputs(graph, distances, candidates, clients)
    seed = greedy_k_median(
        k,
        distances=rows,
        candidates=candidate_list,
        clients=client_list,
    )
    centers = set(seed.centers)
    objective = seed.objective
    for _ in range(max_iterations):
        best_swap: tuple[Node, Node] | None = None
        best_objective = objective
        for out_center in sorted(centers, key=repr):
            for in_center in sorted((c for c in candidate_list if c not in centers), key=repr):
                trial = (centers - {out_center}) | {in_center}
                trial_objective = total_assignment_cost(trial, rows, client_list)
                if trial_objective < best_objective - 1e-12:
                    best_objective = trial_objective
                    best_swap = (out_center, in_center)
        if best_swap is None:
            break
        centers.remove(best_swap[0])
        centers.add(best_swap[1])
        objective = best_objective
    return FacilityResult(frozenset(centers), objective, optimal=False, method="local-search")


def exact_k_median(
    k: int,
    graph: Graph | None = None,
    distances: Mapping[Node, Mapping[Node, float]] | None = None,
    candidates: Iterable[Node] | None = None,
    clients: Iterable[Node] | None = None,
    max_candidates: int = 20,
) -> FacilityResult:
    """Exact k-median by subset enumeration (small instances only)."""
    if k < 1:
        raise ValueError("k must be at least 1")
    candidate_list, client_list, rows = _resolve_inputs(graph, distances, candidates, clients)
    if len(candidate_list) > max_candidates:
        raise ValueError(
            f"{len(candidate_list)} candidates exceed max_candidates={max_candidates}; "
            "use greedy_k_median / local_search_k_median instead"
        )
    best_centers: tuple[Node, ...] | None = None
    best_objective = UNREACHED
    size = min(k, len(candidate_list))
    for combo in itertools.combinations(candidate_list, size):
        objective = total_assignment_cost(combo, rows, client_list)
        if objective < best_objective:
            best_objective = objective
            best_centers = combo
    assert best_centers is not None
    return FacilityResult(frozenset(best_centers), best_objective, optimal=True, method="exact")


# ----------------------------------------------------------------------
# Dispatchers
# ----------------------------------------------------------------------
_K_CENTER_SOLVERS = {
    "greedy": greedy_k_center,
    "exact": exact_k_center,
}

_K_MEDIAN_SOLVERS = {
    "greedy": greedy_k_median,
    "local_search": local_search_k_median,
    "exact": exact_k_median,
}


def solve_k_center(k: int, method: str = "greedy", **kwargs) -> FacilityResult:
    """Solve k-center with the named method (``"greedy"`` or ``"exact"``)."""
    if method not in _K_CENTER_SOLVERS:
        raise ValueError(f"unknown k-center method {method!r}; choose from {sorted(_K_CENTER_SOLVERS)}")
    return _K_CENTER_SOLVERS[method](k, **kwargs)


def solve_k_median(k: int, method: str = "greedy", **kwargs) -> FacilityResult:
    """Solve k-median with the named method (``"greedy"``, ``"local_search"`` or ``"exact"``)."""
    if method not in _K_MEDIAN_SOLVERS:
        raise ValueError(f"unknown k-median method {method!r}; choose from {sorted(_K_MEDIAN_SOLVERS)}")
    return _K_MEDIAN_SOLVERS[method](k, **kwargs)
