"""Serialization of graphs, owned graphs and strategy profiles.

Long experiment sweeps need to checkpoint their instances and the resulting
equilibria so they can be re-analysed without re-running the dynamics.  This
module provides plain-text (edge list) and JSON round-trips for
:class:`~repro.graphs.graph.Graph` and
:class:`~repro.graphs.generators.base.OwnedGraph`.

Node labels are either integers or tuples of integers (the two label kinds
the generators produce); the JSON codec encodes tuples as lists and restores
them on load, so round-trips are exact for every generator in the library.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.graphs.generators.base import OwnedGraph
from repro.graphs.graph import Graph, Node

__all__ = [
    "encode_node",
    "decode_node",
    "graph_to_edge_list",
    "graph_from_edge_list",
    "write_edge_list",
    "read_edge_list",
    "graph_to_dict",
    "graph_from_dict",
    "owned_graph_to_dict",
    "owned_graph_from_dict",
    "write_graph_json",
    "read_graph_json",
    "write_owned_graph_json",
    "read_owned_graph_json",
]


# ----------------------------------------------------------------------
# Node label codec
# ----------------------------------------------------------------------
def _encode_node(node: Node) -> Any:
    """Encode a node label into a JSON-serialisable value.

    Integers pass through; tuples (of ints, possibly nested) become lists.
    Other hashables are rejected loudly rather than silently stringified,
    because a silent conversion would break the load-time equality with the
    original graph.
    """
    if isinstance(node, bool):  # bool is an int subclass; keep it out.
        raise TypeError("boolean node labels are not supported by the codec")
    if isinstance(node, int):
        return node
    if isinstance(node, str):
        return node
    if isinstance(node, tuple):
        return [_encode_node(part) for part in node]
    raise TypeError(f"unsupported node label type: {type(node).__name__}")


def _decode_node(value: Any) -> Node:
    """Inverse of :func:`_encode_node` (lists become tuples)."""
    if isinstance(value, list):
        return tuple(_decode_node(part) for part in value)
    if isinstance(value, (int, str)):
        return value
    raise TypeError(f"unsupported encoded node value: {value!r}")


#: Public aliases of the node-label codec (used by :mod:`repro.core.serialization`).
encode_node = _encode_node
decode_node = _decode_node


def _node_token(node: Node) -> str:
    """Render a node as a whitespace-free token for the edge-list format."""
    if isinstance(node, tuple):
        return "(" + ",".join(_node_token(part) for part in node) + ")"
    return str(node)


def _parse_token(token: str) -> Node:
    """Parse a token produced by :func:`_node_token`."""
    token = token.strip()
    if token.startswith("("):
        if not token.endswith(")"):
            raise ValueError(f"malformed tuple token: {token!r}")
        inner = token[1:-1]
        parts: list[str] = []
        depth = 0
        current = ""
        for char in inner:
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
            if char == "," and depth == 0:
                parts.append(current)
                current = ""
            else:
                current += char
        if current:
            parts.append(current)
        return tuple(_parse_token(part) for part in parts)
    try:
        return int(token)
    except ValueError:
        return token


# ----------------------------------------------------------------------
# Edge-list format
# ----------------------------------------------------------------------
def graph_to_edge_list(graph: Graph) -> str:
    """Render the graph as a plain-text edge list.

    The first line is ``# nodes: <token> <token> ...`` so isolated vertices
    survive the round-trip; every following line is ``<u> <v>``.
    """
    lines = ["# nodes: " + " ".join(_node_token(node) for node in graph.nodes())]
    for u, v in graph.edges():
        lines.append(f"{_node_token(u)} {_node_token(v)}")
    return "\n".join(lines) + "\n"


def graph_from_edge_list(text: str) -> Graph:
    """Parse the format produced by :func:`graph_to_edge_list`."""
    graph = Graph()
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# nodes:"):
            tokens = line[len("# nodes:"):].split()
            for token in tokens:
                graph.add_node(_parse_token(token))
            continue
        if line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"malformed edge line: {raw_line!r}")
        graph.add_edge(_parse_token(parts[0]), _parse_token(parts[1]))
    return graph


def write_edge_list(graph: Graph, path: str | Path) -> None:
    Path(path).write_text(graph_to_edge_list(graph), encoding="utf-8")


def read_edge_list(path: str | Path) -> Graph:
    return graph_from_edge_list(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# JSON format
# ----------------------------------------------------------------------
def graph_to_dict(graph: Graph) -> dict:
    """JSON-serialisable dictionary representation of a graph."""
    return {
        "format": "repro-graph",
        "version": 1,
        "nodes": [_encode_node(node) for node in graph.nodes()],
        "edges": [[_encode_node(u), _encode_node(v)] for u, v in graph.edges()],
    }


def graph_from_dict(payload: dict) -> Graph:
    """Inverse of :func:`graph_to_dict` with format validation."""
    if payload.get("format") != "repro-graph":
        raise ValueError("payload is not a repro-graph document")
    graph = Graph()
    for encoded in payload.get("nodes", []):
        graph.add_node(_decode_node(encoded))
    for encoded_u, encoded_v in payload.get("edges", []):
        graph.add_edge(_decode_node(encoded_u), _decode_node(encoded_v))
    return graph


def owned_graph_to_dict(owned: OwnedGraph) -> dict:
    """JSON-serialisable dictionary representation of an owned graph.

    Generator metadata is stored as-is when JSON-serialisable and dropped
    (with a marker) otherwise — metadata is advisory and never required to
    replay an experiment.
    """
    try:
        json.dumps(owned.metadata)
        metadata = owned.metadata
    except (TypeError, ValueError):
        metadata = {"_dropped": True}
    return {
        "format": "repro-owned-graph",
        "version": 1,
        "graph": graph_to_dict(owned.graph),
        "ownership": [
            [_encode_node(owner), [_encode_node(target) for target in sorted(targets, key=repr)]]
            for owner, targets in owned.ownership.items()
        ],
        "metadata": metadata,
    }


def owned_graph_from_dict(payload: dict) -> OwnedGraph:
    """Inverse of :func:`owned_graph_to_dict` (ownership is re-validated)."""
    if payload.get("format") != "repro-owned-graph":
        raise ValueError("payload is not a repro-owned-graph document")
    graph = graph_from_dict(payload["graph"])
    ownership: dict[Node, set[Node]] = {node: set() for node in graph}
    for encoded_owner, encoded_targets in payload.get("ownership", []):
        owner = _decode_node(encoded_owner)
        ownership.setdefault(owner, set()).update(_decode_node(t) for t in encoded_targets)
    return OwnedGraph(graph=graph, ownership=ownership, metadata=dict(payload.get("metadata", {})))


def write_graph_json(graph: Graph, path: str | Path) -> None:
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2), encoding="utf-8")


def read_graph_json(path: str | Path) -> Graph:
    return graph_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def write_owned_graph_json(owned: OwnedGraph, path: str | Path) -> None:
    Path(path).write_text(json.dumps(owned_graph_to_dict(owned), indent=2), encoding="utf-8")


def read_owned_graph_json(path: str | Path) -> OwnedGraph:
    return owned_graph_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
