"""Graph powers.

The best-response computation of Section 5.3 reduces finding a move of
eccentricity ``h`` to dominating the ``(h - 1)``-th power of the player's
view with the player removed: two vertices are adjacent in the ``h``-th power
iff their distance in the base graph is at most ``h``.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances_within

__all__ = ["graph_power", "power_adjacency"]


def graph_power(graph: Graph, h: int) -> Graph:
    """Return the ``h``-th power of ``graph``.

    The ``h``-th power has the same node set and an edge ``(u, v)`` whenever
    ``0 < d_G(u, v) <= h``.  ``h = 0`` yields an edgeless graph on the same
    nodes and ``h = 1`` a copy of the input.
    """
    if h < 0:
        raise ValueError("power must be non-negative")
    power = Graph(nodes=graph.nodes())
    if h == 0:
        return power
    for node in graph:
        for other, dist in bfs_distances_within(graph, node, h).items():
            if other != node and dist >= 1:
                power.add_edge(node, other)
    return power


def power_adjacency(
    graph: Graph, h: int, nodes: Iterable[Node] | None = None
) -> tuple[np.ndarray, list[Node]]:
    """Return a boolean closed-neighbourhood matrix of the ``h``-th power.

    ``matrix[i, j]`` is ``True`` iff ``d_G(order[i], order[j]) <= h`` (note
    that the diagonal is ``True``: a vertex dominates itself).  This is the
    coverage matrix used directly by the dominating-set solvers.
    """
    if h < 0:
        raise ValueError("power must be non-negative")
    order = list(nodes) if nodes is not None else graph.nodes()
    index = {node: i for i, node in enumerate(order)}
    n = len(order)
    matrix = np.zeros((n, n), dtype=bool)
    for node in order:
        i = index[node]
        matrix[i, i] = True
        for other, dist in bfs_distances_within(graph, node, h).items():
            j = index.get(other)
            if j is not None and dist <= h:
                matrix[i, j] = True
    return matrix, order
