"""Graph substrate used by the network-creation-game engine.

The package provides a small, dependency-light undirected graph type
(:class:`~repro.graphs.graph.Graph`) together with the traversal and
structural primitives the paper's analysis relies on (BFS distances,
eccentricities, diameter, girth, graph powers) and the graph generators used
both by the lower-bound constructions of Sections 3-4 and by the experimental
evaluation of Section 5 (random trees, Erdős–Rényi graphs, the stretched
toroidal grid, high-girth regular graphs).

Everything is implemented from scratch on top of plain Python containers and
NumPy; :mod:`networkx` is only used as an optional interchange format
(:meth:`Graph.to_networkx` / :meth:`Graph.from_networkx`).
"""

from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    bfs_distances,
    bfs_distances_within,
    ball,
    connected_components,
    is_connected,
    shortest_path,
    all_pairs_distances,
    batched_bfs_distances,
    iter_blocked_bfs_distances,
    accumulate_bfs_distances,
    reduce_bfs_distances,
    distance_matrix,
)
from repro.graphs.properties import (
    eccentricity,
    eccentricities,
    diameter,
    radius,
    girth,
    degree_statistics,
    is_tree,
    density,
)
from repro.graphs.power import graph_power, power_adjacency
from repro.graphs.algorithms import (
    bfs_tree,
    bfs_layers,
    bridges,
    articulation_points,
    graph_center,
    graph_periphery,
    graph_median,
    betweenness_centrality,
    spanning_tree,
    is_bipartite,
    bipartition,
)
from repro.graphs.io import (
    write_edge_list,
    read_edge_list,
    write_graph_json,
    read_graph_json,
    write_owned_graph_json,
    read_owned_graph_json,
)

__all__ = [
    "Graph",
    "bfs_distances",
    "bfs_distances_within",
    "ball",
    "connected_components",
    "is_connected",
    "shortest_path",
    "all_pairs_distances",
    "batched_bfs_distances",
    "iter_blocked_bfs_distances",
    "accumulate_bfs_distances",
    "reduce_bfs_distances",
    "distance_matrix",
    "eccentricity",
    "eccentricities",
    "diameter",
    "radius",
    "girth",
    "degree_statistics",
    "is_tree",
    "density",
    "graph_power",
    "power_adjacency",
    "bfs_tree",
    "bfs_layers",
    "bridges",
    "articulation_points",
    "graph_center",
    "graph_periphery",
    "graph_median",
    "betweenness_centrality",
    "spanning_tree",
    "is_bipartite",
    "bipartition",
    "write_edge_list",
    "read_edge_list",
    "write_graph_json",
    "read_graph_json",
    "write_owned_graph_json",
    "read_owned_graph_json",
]
