"""Breadth-first traversals and distance computations.

All game-theoretic quantities in the paper (eccentricity, status, views,
best responses) reduce to unweighted shortest-path distances, so BFS is the
single hot primitive of the whole code base.  Two implementations are
provided:

* a plain ``collections.deque`` BFS used for single sources and bounded
  explorations (view extraction), and
* a frontier-vectorised all-pairs BFS over a dense boolean adjacency matrix
  (:func:`distance_matrix`) which is considerably faster for the
  ``n <= a few hundred`` graphs of the experimental section.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

import numpy as np

from repro.graphs.graph import Graph, Node

__all__ = [
    "bfs_distances",
    "bfs_distances_within",
    "ball",
    "connected_components",
    "is_connected",
    "shortest_path",
    "all_pairs_distances",
    "distance_matrix",
    "UNREACHABLE",
]

#: Sentinel distance used in dense matrices for unreachable pairs.
UNREACHABLE: int = np.iinfo(np.int32).max


def bfs_distances(graph: Graph, source: Node) -> dict[Node, int]:
    """Return the distance from ``source`` to every reachable node.

    Unreachable nodes are absent from the result.
    """
    if not graph.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    dist: dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    adj = graph.adjacency
    while queue:
        node = queue.popleft()
        d = dist[node] + 1
        for neighbour in adj[node]:
            if neighbour not in dist:
                dist[neighbour] = d
                queue.append(neighbour)
    return dist


def bfs_distances_within(graph: Graph, source: Node, radius: int) -> dict[Node, int]:
    """Return distances from ``source`` truncated at ``radius``.

    Only nodes at distance at most ``radius`` appear in the result; this is
    the primitive used to extract the k-neighbourhood views of the players.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if not graph.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    dist: dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    adj = graph.adjacency
    while queue:
        node = queue.popleft()
        d = dist[node]
        if d == radius:
            continue
        for neighbour in adj[node]:
            if neighbour not in dist:
                dist[neighbour] = d + 1
                queue.append(neighbour)
    return dist


def ball(graph: Graph, center: Node, radius: int) -> set[Node]:
    """Return the closed ball ``B_radius(center)`` (the paper's β_{G,h}(v))."""
    return set(bfs_distances_within(graph, center, radius))


def shortest_path(graph: Graph, source: Node, target: Node) -> list[Node] | None:
    """Return one shortest path from ``source`` to ``target`` or ``None``."""
    if not graph.has_node(source) or not graph.has_node(target):
        raise KeyError("source or target not in graph")
    if source == target:
        return [source]
    parent: dict[Node, Node] = {source: source}
    queue: deque[Node] = deque([source])
    adj = graph.adjacency
    while queue:
        node = queue.popleft()
        for neighbour in adj[node]:
            if neighbour not in parent:
                parent[neighbour] = node
                if neighbour == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                queue.append(neighbour)
    return None


def connected_components(graph: Graph) -> list[set[Node]]:
    """Return the connected components as a list of node sets."""
    remaining = set(graph.nodes())
    components: list[set[Node]] = []
    while remaining:
        source = next(iter(remaining))
        component = set(bfs_distances(graph, source))
        components.append(component)
        remaining -= component
    return components


def is_connected(graph: Graph) -> bool:
    """Return ``True`` iff the graph is connected (empty graphs are not)."""
    n = graph.number_of_nodes()
    if n == 0:
        return False
    source = next(iter(graph))
    return len(bfs_distances(graph, source)) == n


def all_pairs_distances(graph: Graph) -> dict[Node, dict[Node, int]]:
    """Return a dict-of-dicts distance table (reachable pairs only)."""
    return {node: bfs_distances(graph, node) for node in graph}


def distance_matrix(
    graph: Graph, nodes: Iterable[Node] | None = None
) -> tuple[np.ndarray, list[Node]]:
    """Dense all-pairs distance matrix via frontier-vectorised BFS.

    Parameters
    ----------
    graph:
        The graph to analyse.
    nodes:
        Optional explicit node ordering; defaults to ``graph.nodes()``.

    Returns
    -------
    (matrix, order):
        ``matrix[i, j]`` is the distance between ``order[i]`` and
        ``order[j]``, or :data:`UNREACHABLE` if no path exists.

    Notes
    -----
    The implementation expands all BFS frontiers simultaneously using a
    boolean reachability matrix and one sparse-style neighbourhood expansion
    per level, which keeps the inner loop in NumPy instead of Python — the
    standard "vectorise the hot loop" advice from the HPC guides.
    """
    order = list(nodes) if nodes is not None else graph.nodes()
    index = {node: i for i, node in enumerate(order)}
    n = len(order)
    dist = np.full((n, n), UNREACHABLE, dtype=np.int32)
    if n == 0:
        return dist, order

    adjacency = np.zeros((n, n), dtype=bool)
    for node in order:
        i = index[node]
        for neighbour in graph.adjacency[node]:
            j = index.get(neighbour)
            if j is not None:
                adjacency[i, j] = True

    reached = np.eye(n, dtype=bool)
    np.fill_diagonal(dist, 0)
    frontier = np.eye(n, dtype=bool)
    level = 0
    while frontier.any():
        level += 1
        # Nodes reachable in exactly `level` steps: expand every current
        # frontier by one hop (boolean matrix product) and drop what was
        # already reached.
        expanded = (frontier.astype(np.uint8) @ adjacency.astype(np.uint8)) > 0
        new_frontier = expanded & ~reached
        if not new_frontier.any():
            break
        dist[new_frontier] = level
        reached |= new_frontier
        frontier = new_frontier
    return dist, order
