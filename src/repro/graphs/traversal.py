"""Breadth-first traversals and distance computations.

All game-theoretic quantities in the paper (eccentricity, status, views,
best responses) reduce to unweighted shortest-path distances, so BFS is the
single hot primitive of the whole code base.  Two implementations are
provided:

* a plain ``collections.deque`` BFS used for single sources and bounded
  explorations (lazy view refreshes), and
* a batched multi-source frontier BFS over a CSR adjacency layout
  (:func:`batched_bfs_distances`), which keeps the inner loop in NumPy and
  backs both :func:`distance_matrix` (all sources) and the incremental
  engine's bulk view extraction (many sources, bounded radius), and
* a blocked/streaming driver on top of it
  (:func:`iter_blocked_bfs_distances` / :func:`accumulate_bfs_distances`)
  for workloads whose source set is too large to materialise a dense
  ``(len(sources), n)`` distance matrix at once.

Memory model of the blocked driver
----------------------------------
``batched_bfs_distances`` over ``s`` sources allocates the full
``(s, n)`` int32 distance matrix up front — ~400 MB for an all-pairs sweep
at ``n = 10^4``, quadratic beyond that.  The blocked driver instead cuts the
source set into blocks of at most ``block_size`` sources and runs one batched
BFS per block, so peak memory is ``O(block_size * n)`` int32 for the live
distance rows plus ``O(frontier incidences)`` transient scratch inside the
kernel, *independent of the total number of sources*.  Every consumer that
only needs per-source reductions (eccentricity, usage sums, view sizes,
diameter — see :func:`repro.core.metrics.compute_profile_metrics`) should go
through the accumulator API instead of :func:`distance_matrix`.

The ``block_size`` knob trades Python-level loop overhead (one kernel call
per block) against peak memory; :data:`DEFAULT_BLOCK_SIZE` (1024 source
rows, i.e. ~40 MB of live rows at ``n = 10^4``) is a good default for
anything from laptops to CI runners.  Results are bit-identical for every
block size because each source's BFS is independent of its batch-mates.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator, Sequence
from typing import Protocol

import numpy as np

from repro.graphs.graph import Graph, Node
from repro.kernels import KernelBackend, resolve_backend
from repro.kernels.common import MAX_EXPANSION_INCIDENCES, UNREACHABLE
from repro.obs import get_telemetry
from repro.obs.metrics import CounterFamily, default_registry

__all__ = [
    "bfs_distances",
    "bfs_distances_within",
    "ball",
    "connected_components",
    "is_connected",
    "shortest_path",
    "all_pairs_distances",
    "batched_bfs_distances",
    "iter_blocked_bfs_distances",
    "accumulate_bfs_distances",
    "reduce_bfs_distances",
    "DistanceBlockConsumer",
    "distance_matrix",
    "UNREACHABLE",
    "DEFAULT_BLOCK_SIZE",
    "MAX_EXPANSION_INCIDENCES",
]

# UNREACHABLE and MAX_EXPANSION_INCIDENCES moved to repro.kernels.common so
# backend modules can share them without importing the graph layer; they are
# re-exported here for backwards compatibility.

#: Default number of source rows processed per blocked-BFS kernel call.
#: Peak live memory of a blocked sweep is ``DEFAULT_BLOCK_SIZE * n`` int32
#: entries (~40 MB at n = 10^4) regardless of the total source count.
DEFAULT_BLOCK_SIZE: int = 1024

# Kernel-call metrics live on the process default registry (the dispatch
# wrappers are module functions with no instance to hang a handle off);
# lazily bound so importing this module never races registry setup.
_KERNEL_CALLS: CounterFamily | None = None
_KERNEL_SOURCES: CounterFamily | None = None


def _kernel_metrics() -> tuple[CounterFamily, CounterFamily]:
    global _KERNEL_CALLS, _KERNEL_SOURCES
    if _KERNEL_CALLS is None:
        registry = default_registry()
        _KERNEL_CALLS = registry.counter(
            "repro_kernel_calls_total",
            help="Kernel dispatches through the traversal wrappers",
            labelnames=("kernel", "backend"),
        )
        _KERNEL_SOURCES = registry.counter(
            "repro_kernel_sources_total",
            help="BFS source rows (frontier batch width) fed to kernels",
            labelnames=("kernel", "backend"),
        )
    return _KERNEL_CALLS, _KERNEL_SOURCES


def bfs_distances(graph: Graph, source: Node) -> dict[Node, int]:
    """Return the distance from ``source`` to every reachable node.

    Unreachable nodes are absent from the result.
    """
    if not graph.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    dist: dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    adj = graph.adjacency
    while queue:
        node = queue.popleft()
        d = dist[node] + 1
        for neighbour in adj[node]:
            if neighbour not in dist:
                dist[neighbour] = d
                queue.append(neighbour)
    return dist


def bfs_distances_within(graph: Graph, source: Node, radius: int) -> dict[Node, int]:
    """Return distances from ``source`` truncated at ``radius``.

    Only nodes at distance at most ``radius`` appear in the result; this is
    the primitive used to extract the k-neighbourhood views of the players.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if not graph.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    dist: dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    adj = graph.adjacency
    while queue:
        node = queue.popleft()
        d = dist[node]
        if d == radius:
            continue
        for neighbour in adj[node]:
            if neighbour not in dist:
                dist[neighbour] = d + 1
                queue.append(neighbour)
    return dist


def ball(graph: Graph, center: Node, radius: int) -> set[Node]:
    """Return the closed ball ``B_radius(center)`` (the paper's β_{G,h}(v))."""
    return set(bfs_distances_within(graph, center, radius))


def shortest_path(graph: Graph, source: Node, target: Node) -> list[Node] | None:
    """Return one shortest path from ``source`` to ``target`` or ``None``."""
    if not graph.has_node(source) or not graph.has_node(target):
        raise KeyError("source or target not in graph")
    if source == target:
        return [source]
    parent: dict[Node, Node] = {source: source}
    queue: deque[Node] = deque([source])
    adj = graph.adjacency
    while queue:
        node = queue.popleft()
        for neighbour in adj[node]:
            if neighbour not in parent:
                parent[neighbour] = node
                if neighbour == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                queue.append(neighbour)
    return None


def connected_components(graph: Graph) -> list[set[Node]]:
    """Return the connected components as a list of node sets."""
    remaining = set(graph.nodes())
    components: list[set[Node]] = []
    while remaining:
        source = next(iter(remaining))
        component = set(bfs_distances(graph, source))
        components.append(component)
        remaining -= component
    return components


def is_connected(graph: Graph) -> bool:
    """Return ``True`` iff the graph is connected (empty graphs are not)."""
    n = graph.number_of_nodes()
    if n == 0:
        return False
    source = next(iter(graph))
    return len(bfs_distances(graph, source)) == n


def all_pairs_distances(graph: Graph) -> dict[Node, dict[Node, int]]:
    """Return a dict-of-dicts distance table (reachable pairs only)."""
    return {node: bfs_distances(graph, node) for node in graph}


def batched_bfs_distances(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: Sequence[int] | np.ndarray,
    radius: int | None = None,
    backend: str | KernelBackend | None = None,
) -> np.ndarray:
    """Multi-source BFS over a CSR adjacency layout, kernel-backed.

    Parameters
    ----------
    indptr, indices:
        CSR arrays as produced by :meth:`Graph.to_csr_arrays`:
        ``indices[indptr[i]:indptr[i + 1]]`` are the neighbours of node ``i``.
    sources:
        Node indices to run BFS from (one row of output per source).
    radius:
        Optional truncation depth; nodes farther than ``radius`` from a
        source keep the :data:`UNREACHABLE` marker in that source's row.
    backend:
        Kernel backend selection — a name, an already-resolved
        :class:`~repro.kernels.KernelBackend`, or ``None`` to follow the
        ``REPRO_KERNEL_BACKEND``/auto-detect chain (see
        :func:`repro.kernels.resolve_backend`).

    Returns
    -------
    ``(len(sources), n)`` int32 matrix of distances, :data:`UNREACHABLE`
    for unreached pairs.

    Notes
    -----
    This wrapper owns validation, allocation and the empty corner cases;
    the per-level expansion is delegated to the selected kernel backend
    (:mod:`repro.kernels`).  Every backend produces bit-identical
    matrices — the numpy reference advances all frontiers together with
    one batch of gather/scatter operations per BFS level (chunked at
    :data:`MAX_EXPANSION_INCIDENCES` incidences to bound scratch); the
    compiled backends run a queue BFS per source.  BFS distances are
    unique, so the traversal strategy cannot show in the output.
    """
    n = len(indptr) - 1
    source_array = np.asarray(sources, dtype=np.int64)
    num_sources = source_array.size
    dist = np.full((num_sources, n), UNREACHABLE, dtype=np.int32)
    if num_sources == 0 or n == 0:
        return dist
    if source_array.size and (source_array.min() < 0 or source_array.max() >= n):
        raise IndexError("source index out of range")
    kernel = resolve_backend(backend)
    calls, srcs = _kernel_metrics()
    calls.labels(kernel="bfs", backend=kernel.name).inc()
    srcs.labels(kernel="bfs", backend=kernel.name).inc(num_sources)
    tracer = get_telemetry().tracer
    if tracer.enabled:
        with tracer.span(
            "kernels.bfs",
            backend=kernel.name,
            threads=kernel.threads,
            sources=int(num_sources),
            n=int(n),
            radius=-1 if radius is None else int(radius),
        ):
            return kernel.bfs(indptr, indices, source_array, radius, dist)
    return kernel.bfs(indptr, indices, source_array, radius, dist)


class DistanceBlockConsumer(Protocol):
    """Accumulator protocol fed by :func:`accumulate_bfs_distances`.

    ``process_block(start, sources, dist_block)`` receives the rows for
    ``sources[start:start + dist_block.shape[0]]`` of the conceptual
    ``(len(sources), n)`` distance matrix: ``dist_block[i, j]`` is the
    distance from source ``start + i`` (in sweep order) to node ``j``, or
    :data:`UNREACHABLE`.  Implementations fold each block into running
    statistics (max/sum/eccentricity/counts) and must not retain a
    reference to ``dist_block`` — the driver may reuse the buffer.
    """

    def process_block(
        self, start: int, sources: np.ndarray, dist_block: np.ndarray
    ) -> None: ...


def iter_blocked_bfs_distances(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: Sequence[int] | np.ndarray,
    radius: int | None = None,
    block_size: int | None = None,
    backend: str | KernelBackend | None = None,
) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
    """Stream :func:`batched_bfs_distances` results block by block.

    Yields ``(start, source_block, dist_block)`` triples where
    ``source_block = sources[start:start + dist_block.shape[0]]`` and
    ``dist_block`` is the corresponding ``(block, n)`` int32 slice of the
    conceptual full distance matrix.  Concatenating the blocks in order is
    bit-identical to one unblocked :func:`batched_bfs_distances` call: each
    source's BFS never interacts with its batch-mates, so blocking changes
    memory usage only (see the module docstring for the memory model).

    ``block_size`` caps the number of source rows live at once and defaults
    to :data:`DEFAULT_BLOCK_SIZE`; it must be positive.  An empty source set
    yields nothing.  Argument validation happens at call time (not on first
    ``next``), so a bad block size or out-of-range source raises at the
    call site.
    """
    if block_size is None:
        block_size = DEFAULT_BLOCK_SIZE
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    source_array = np.asarray(sources, dtype=np.int64)
    n = len(indptr) - 1
    if source_array.size and (source_array.min() < 0 or source_array.max() >= n):
        raise IndexError("source index out of range")
    # Resolve once at call time so every block runs on the same backend even
    # if the process-wide default changes mid-sweep.
    kernel = resolve_backend(backend)

    def blocks() -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        for start in range(0, source_array.size, block_size):
            block = source_array[start : start + block_size]
            yield start, block, batched_bfs_distances(
                indptr, indices, block, radius=radius, backend=kernel
            )

    return blocks()


def accumulate_bfs_distances(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: Sequence[int] | np.ndarray,
    consumer: DistanceBlockConsumer,
    radius: int | None = None,
    block_size: int | None = None,
    backend: str | KernelBackend | None = None,
) -> DistanceBlockConsumer:
    """Drive a blocked BFS sweep through ``consumer`` and return it.

    The streaming counterpart of "compute the full distance matrix, then
    reduce it": ``consumer.process_block`` sees every row of the conceptual
    matrix exactly once, in source order, without more than ``block_size``
    rows ever being materialised (the per-profile metric sweep and the
    large-n CI smoke run sit on this).
    """
    for start, block_sources, dist_block in iter_blocked_bfs_distances(
        indptr, indices, sources, radius=radius, block_size=block_size, backend=backend
    ):
        consumer.process_block(start, block_sources, dist_block)
    return consumer


def reduce_bfs_distances(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: Sequence[int] | np.ndarray,
    radius: int | None = None,
    view_radius: int | None = None,
    block_size: int | None = None,
    backend: str | KernelBackend | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Fused per-source BFS statistics — no distance matrix materialised.

    Runs the ``bfs_reduce`` kernel blockwise over ``sources`` and returns
    four int64 vectors of ``len(sources)``:

    ``(ecc, sums, unreached, view_sizes)``
        Per source: the largest finite distance (eccentricity, 0 when
        nothing else is reached), the sum of finite distances, the number
        of unreached nodes, and — when ``view_radius`` is not ``None`` —
        the number of nodes at distance at most ``view_radius`` (0 vectors
        otherwise).  ``radius`` truncation counts truncated nodes as
        unreached, exactly like folding truncated distance rows.

    Bit-identical, for every backend, block size and thread count, to
    folding the rows of :func:`batched_bfs_distances` — the hypothesis
    suite in ``tests/graphs/test_kernel_backends.py`` pins this.  Backends
    registered without a ``bfs_reduce`` kernel fall back to exactly that
    materialise-then-fold path through their ``bfs``, so the API is safe
    on any backend.  Peak memory on a fused backend is ``O(n)`` scratch
    per thread (compiled) or one boolean ``(block, n)`` visited matrix
    (numpy reference) — never an int32 distance block.
    """
    if block_size is None:
        block_size = DEFAULT_BLOCK_SIZE
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    source_array = np.asarray(sources, dtype=np.int64)
    n = len(indptr) - 1
    num_sources = source_array.size
    if num_sources and (source_array.min() < 0 or source_array.max() >= n):
        raise IndexError("source index out of range")
    ecc = np.zeros(num_sources, dtype=np.int64)
    sums = np.zeros(num_sources, dtype=np.int64)
    unreached = np.zeros(num_sources, dtype=np.int64)
    view_sizes = np.zeros(num_sources, dtype=np.int64)
    if num_sources == 0 or n == 0:
        return ecc, sums, unreached, view_sizes
    kernel = resolve_backend(backend)
    fused = kernel.bfs_reduce
    calls, srcs = _kernel_metrics()
    tracer = get_telemetry().tracer
    sweep_span = (
        tracer.span(
            "kernels.bfs_reduce",
            backend=kernel.name,
            threads=kernel.threads,
            sources=int(num_sources),
            n=int(n),
            fused=fused is not None,
        )
        if tracer.enabled
        else None
    )
    for start in range(0, num_sources, block_size):
        stop = min(start + block_size, num_sources)
        block = source_array[start:stop]
        if fused is not None:
            calls.labels(kernel="bfs_reduce", backend=kernel.name).inc()
            srcs.labels(kernel="bfs_reduce", backend=kernel.name).inc(stop - start)
            # Sliced views of the output vectors are contiguous, so the
            # kernel fills the final arrays in place, block by block.
            fused(
                indptr,
                indices,
                block,
                radius,
                view_radius,
                ecc[start:stop],
                sums[start:stop],
                unreached[start:stop],
                view_sizes[start:stop],
            )
            continue
        # Fallback for backends without a fused kernel: materialise the
        # block's distance rows through their ``bfs`` and fold here.
        dist = batched_bfs_distances(
            indptr, indices, block, radius=radius, backend=kernel
        )
        reachable = dist != UNREACHABLE
        finite = np.where(reachable, dist, 0)
        ecc[start:stop] = finite.max(axis=1, initial=0)
        sums[start:stop] = finite.sum(axis=1, dtype=np.int64)
        unreached[start:stop] = (~reachable).sum(axis=1)
        if view_radius is not None:
            view_sizes[start:stop] = (dist <= view_radius).sum(axis=1)
    if sweep_span is not None:
        sweep_span.finish()
    return ecc, sums, unreached, view_sizes


def _csr_for_order(graph: Graph, order: list[Node]) -> tuple[np.ndarray, np.ndarray]:
    """CSR arrays of the subgraph induced by ``order``, in that node order."""
    index = {node: i for i, node in enumerate(order)}
    indptr = np.zeros(len(order) + 1, dtype=np.int64)
    neighbour_lists: list[list[int]] = []
    adjacency = graph.adjacency
    for i, node in enumerate(order):
        local = [index[v] for v in adjacency[node] if v in index]
        neighbour_lists.append(local)
        indptr[i + 1] = indptr[i] + len(local)
    indices = np.fromiter(
        (j for local in neighbour_lists for j in local),
        dtype=np.int64,
        count=int(indptr[-1]),
    )
    return indptr, indices


def distance_matrix(
    graph: Graph,
    nodes: Iterable[Node] | None = None,
    backend: str | KernelBackend | None = None,
) -> tuple[np.ndarray, list[Node]]:
    """Dense all-pairs distance matrix via the batched CSR BFS kernel.

    Parameters
    ----------
    graph:
        The graph to analyse.
    nodes:
        Optional explicit node ordering; defaults to ``graph.nodes()``.
        When given, paths are restricted to the induced subgraph.
    backend:
        Kernel backend selection, forwarded to
        :func:`batched_bfs_distances`.

    Returns
    -------
    (matrix, order):
        ``matrix[i, j]`` is the distance between ``order[i]`` and
        ``order[j]``, or :data:`UNREACHABLE` if no path exists.
    """
    if nodes is None:
        indptr, indices, order = graph.to_csr_arrays()
    else:
        order = list(nodes)
        indptr, indices = _csr_for_order(graph, order)
    n = len(order)
    if n == 0:
        return np.full((0, 0), UNREACHABLE, dtype=np.int32), order
    dist = batched_bfs_distances(
        indptr, indices, np.arange(n, dtype=np.int64), backend=backend
    )
    return dist, order
