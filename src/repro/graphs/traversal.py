"""Breadth-first traversals and distance computations.

All game-theoretic quantities in the paper (eccentricity, status, views,
best responses) reduce to unweighted shortest-path distances, so BFS is the
single hot primitive of the whole code base.  Two implementations are
provided:

* a plain ``collections.deque`` BFS used for single sources and bounded
  explorations (lazy view refreshes), and
* a batched multi-source frontier BFS over a CSR adjacency layout
  (:func:`batched_bfs_distances`), which keeps the inner loop in NumPy and
  backs both :func:`distance_matrix` (all sources) and the incremental
  engine's bulk view extraction (many sources, bounded radius).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence

import numpy as np

from repro.graphs.graph import Graph, Node

__all__ = [
    "bfs_distances",
    "bfs_distances_within",
    "ball",
    "connected_components",
    "is_connected",
    "shortest_path",
    "all_pairs_distances",
    "batched_bfs_distances",
    "distance_matrix",
    "UNREACHABLE",
]

#: Sentinel distance used in dense matrices for unreachable pairs.
UNREACHABLE: int = np.iinfo(np.int32).max


def bfs_distances(graph: Graph, source: Node) -> dict[Node, int]:
    """Return the distance from ``source`` to every reachable node.

    Unreachable nodes are absent from the result.
    """
    if not graph.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    dist: dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    adj = graph.adjacency
    while queue:
        node = queue.popleft()
        d = dist[node] + 1
        for neighbour in adj[node]:
            if neighbour not in dist:
                dist[neighbour] = d
                queue.append(neighbour)
    return dist


def bfs_distances_within(graph: Graph, source: Node, radius: int) -> dict[Node, int]:
    """Return distances from ``source`` truncated at ``radius``.

    Only nodes at distance at most ``radius`` appear in the result; this is
    the primitive used to extract the k-neighbourhood views of the players.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if not graph.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    dist: dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    adj = graph.adjacency
    while queue:
        node = queue.popleft()
        d = dist[node]
        if d == radius:
            continue
        for neighbour in adj[node]:
            if neighbour not in dist:
                dist[neighbour] = d + 1
                queue.append(neighbour)
    return dist


def ball(graph: Graph, center: Node, radius: int) -> set[Node]:
    """Return the closed ball ``B_radius(center)`` (the paper's β_{G,h}(v))."""
    return set(bfs_distances_within(graph, center, radius))


def shortest_path(graph: Graph, source: Node, target: Node) -> list[Node] | None:
    """Return one shortest path from ``source`` to ``target`` or ``None``."""
    if not graph.has_node(source) or not graph.has_node(target):
        raise KeyError("source or target not in graph")
    if source == target:
        return [source]
    parent: dict[Node, Node] = {source: source}
    queue: deque[Node] = deque([source])
    adj = graph.adjacency
    while queue:
        node = queue.popleft()
        for neighbour in adj[node]:
            if neighbour not in parent:
                parent[neighbour] = node
                if neighbour == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                queue.append(neighbour)
    return None


def connected_components(graph: Graph) -> list[set[Node]]:
    """Return the connected components as a list of node sets."""
    remaining = set(graph.nodes())
    components: list[set[Node]] = []
    while remaining:
        source = next(iter(remaining))
        component = set(bfs_distances(graph, source))
        components.append(component)
        remaining -= component
    return components


def is_connected(graph: Graph) -> bool:
    """Return ``True`` iff the graph is connected (empty graphs are not)."""
    n = graph.number_of_nodes()
    if n == 0:
        return False
    source = next(iter(graph))
    return len(bfs_distances(graph, source)) == n


def all_pairs_distances(graph: Graph) -> dict[Node, dict[Node, int]]:
    """Return a dict-of-dicts distance table (reachable pairs only)."""
    return {node: bfs_distances(graph, node) for node in graph}


def batched_bfs_distances(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: Sequence[int] | np.ndarray,
    radius: int | None = None,
) -> np.ndarray:
    """Multi-source frontier BFS over a CSR adjacency layout.

    Parameters
    ----------
    indptr, indices:
        CSR arrays as produced by :meth:`Graph.to_csr_arrays`:
        ``indices[indptr[i]:indptr[i + 1]]`` are the neighbours of node ``i``.
    sources:
        Node indices to run BFS from (one row of output per source).
    radius:
        Optional truncation depth; nodes farther than ``radius`` from a
        source keep the :data:`UNREACHABLE` marker in that source's row.

    Returns
    -------
    ``(len(sources), n)`` int32 matrix of distances, :data:`UNREACHABLE`
    for unreached pairs.

    Notes
    -----
    All frontiers advance together: one level of every source's BFS is a
    single batch of NumPy gather/scatter operations (``repeat`` to expand
    adjacency runs, a fancy-indexed visited test, ``unique`` to dedupe the
    next frontier), so the Python-level loop runs once per BFS *level*, not
    once per vertex.  This replaces the previous dense ``O(n^2)``
    boolean-matmul expansion and is what both :func:`distance_matrix` and
    the engine's bulk view extraction sit on.
    """
    n = len(indptr) - 1
    source_array = np.asarray(sources, dtype=np.int64)
    num_sources = source_array.size
    dist = np.full((num_sources, n), UNREACHABLE, dtype=np.int32)
    if num_sources == 0 or n == 0:
        return dist
    if source_array.size and (source_array.min() < 0 or source_array.max() >= n):
        raise IndexError("source index out of range")
    row = np.arange(num_sources, dtype=np.int64)
    dist[row, source_array] = 0
    frontier_row = row
    frontier_node = source_array.copy()
    level = 0
    while frontier_node.size:
        level += 1
        if radius is not None and level > radius:
            break
        starts = indptr[frontier_node]
        counts = indptr[frontier_node + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Flat positions of every (frontier vertex, neighbour) incidence:
        # for each frontier entry an arange(start, start + count), vectorised.
        expanded_row = np.repeat(frontier_row, counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        neighbours = indices[np.repeat(starts, counts) + offsets]
        unvisited = dist[expanded_row, neighbours] == UNREACHABLE
        if not unvisited.any():
            break
        expanded_row = expanded_row[unvisited]
        neighbours = neighbours[unvisited]
        # The same (row, neighbour) pair can be produced by several frontier
        # vertices; keep one representative per pair.
        _, first = np.unique(expanded_row * n + neighbours, return_index=True)
        frontier_row = expanded_row[first]
        frontier_node = neighbours[first]
        dist[frontier_row, frontier_node] = level
    return dist


def _csr_for_order(graph: Graph, order: list[Node]) -> tuple[np.ndarray, np.ndarray]:
    """CSR arrays of the subgraph induced by ``order``, in that node order."""
    index = {node: i for i, node in enumerate(order)}
    indptr = np.zeros(len(order) + 1, dtype=np.int64)
    neighbour_lists: list[list[int]] = []
    adjacency = graph.adjacency
    for i, node in enumerate(order):
        local = [index[v] for v in adjacency[node] if v in index]
        neighbour_lists.append(local)
        indptr[i + 1] = indptr[i] + len(local)
    indices = np.fromiter(
        (j for local in neighbour_lists for j in local),
        dtype=np.int64,
        count=int(indptr[-1]),
    )
    return indptr, indices


def distance_matrix(
    graph: Graph, nodes: Iterable[Node] | None = None
) -> tuple[np.ndarray, list[Node]]:
    """Dense all-pairs distance matrix via the batched CSR BFS kernel.

    Parameters
    ----------
    graph:
        The graph to analyse.
    nodes:
        Optional explicit node ordering; defaults to ``graph.nodes()``.
        When given, paths are restricted to the induced subgraph.

    Returns
    -------
    (matrix, order):
        ``matrix[i, j]`` is the distance between ``order[i]`` and
        ``order[j]``, or :data:`UNREACHABLE` if no path exists.
    """
    if nodes is None:
        indptr, indices, order = graph.to_csr_arrays()
    else:
        order = list(nodes)
        indptr, indices = _csr_for_order(graph, order)
    n = len(order)
    if n == 0:
        return np.full((0, 0), UNREACHABLE, dtype=np.int32), order
    dist = batched_bfs_distances(indptr, indices, np.arange(n, dtype=np.int64))
    return dist, order
