"""Structural graph properties used throughout the paper's analysis.

The price-of-anarchy bounds of Sections 3 and 4 are phrased in terms of the
*diameter*, *girth*, *density* and *degree* statistics of equilibrium graphs;
the experimental section additionally reports diameters and maximum degrees
of the generated instances (Tables I and II).  This module provides those
quantities for :class:`repro.graphs.Graph`.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances

__all__ = [
    "eccentricity",
    "eccentricities",
    "diameter",
    "radius",
    "status",
    "statuses",
    "girth",
    "degree_statistics",
    "DegreeStatistics",
    "is_tree",
    "density",
]


def eccentricity(graph: Graph, node: Node) -> int:
    """Return the eccentricity of ``node``.

    Raises
    ------
    ValueError
        If some node is unreachable from ``node`` (the game cost would be
        infinite; the paper assumes connected networks).
    """
    dist = bfs_distances(graph, node)
    if len(dist) != graph.number_of_nodes():
        raise ValueError(f"graph is disconnected from node {node!r}")
    return max(dist.values(), default=0)


def eccentricities(graph: Graph) -> dict[Node, int]:
    """Return the eccentricity of every node (graph must be connected)."""
    return {node: eccentricity(graph, node) for node in graph}


def status(graph: Graph, node: Node) -> int:
    """Return the status of ``node``: the sum of distances to all others."""
    dist = bfs_distances(graph, node)
    if len(dist) != graph.number_of_nodes():
        raise ValueError(f"graph is disconnected from node {node!r}")
    return sum(dist.values())


def statuses(graph: Graph) -> dict[Node, int]:
    """Return the status (sum of distances) of every node."""
    return {node: status(graph, node) for node in graph}


def diameter(graph: Graph) -> int:
    """Return the diameter (maximum eccentricity) of a connected graph."""
    return max(eccentricities(graph).values(), default=0)


def radius(graph: Graph) -> int:
    """Return the radius (minimum eccentricity) of a connected graph."""
    values = eccentricities(graph).values()
    return min(values) if values else 0


def girth(graph: Graph) -> float:
    """Return the girth (length of a shortest cycle), ``math.inf`` if acyclic.

    Uses one truncated BFS per node: the shortest cycle through ``v`` is
    detected when BFS from ``v`` closes a cycle (either a cross edge inside a
    level, giving an odd cycle ``2d + 1``, or between consecutive levels,
    giving an even cycle ``2d``).
    """
    best = math.inf
    adj = graph.adjacency
    for source in graph:
        dist = {source: 0}
        parent = {source: None}
        queue: deque[Node] = deque([source])
        while queue:
            node = queue.popleft()
            if 2 * dist[node] >= best:
                break
            for neighbour in adj[node]:
                if neighbour == parent[node]:
                    continue
                if neighbour in dist:
                    cycle_len = dist[node] + dist[neighbour] + 1
                    if cycle_len < best:
                        best = cycle_len
                else:
                    dist[neighbour] = dist[node] + 1
                    parent[neighbour] = node
                    queue.append(neighbour)
    return best


@dataclass(frozen=True)
class DegreeStatistics:
    """Degree summary of a graph (used for Tables I and II)."""

    minimum: int
    maximum: int
    mean: float

    def as_dict(self) -> dict[str, float]:
        return {"min": self.minimum, "max": self.maximum, "mean": self.mean}


def degree_statistics(graph: Graph) -> DegreeStatistics:
    """Return min / max / mean degree of the graph."""
    degrees = list(graph.degrees().values())
    if not degrees:
        return DegreeStatistics(0, 0, 0.0)
    return DegreeStatistics(min(degrees), max(degrees), sum(degrees) / len(degrees))


def is_tree(graph: Graph) -> bool:
    """Return ``True`` iff the graph is connected and acyclic."""
    n = graph.number_of_nodes()
    if n == 0:
        return False
    if graph.number_of_edges() != n - 1:
        return False
    source = next(iter(graph))
    return len(bfs_distances(graph, source)) == n


def density(graph: Graph) -> float:
    """Return the edge density ``2m / (n (n - 1))`` (0 for n < 2)."""
    n = graph.number_of_nodes()
    if n < 2:
        return 0.0
    return 2.0 * graph.number_of_edges() / (n * (n - 1))
