"""A minimal undirected simple-graph container.

The network-creation games in the paper operate on graphs whose node set is
the player set and whose edges are *owned* by exactly one of their endpoints
(the player that bought them).  Ownership lives in the game layer
(:mod:`repro.core.strategies`); this class only stores the undirected
topology, because every distance-based quantity (eccentricity, status,
views, ...) depends on topology alone.

Nodes may be arbitrary hashable objects: the experimental graphs use plain
integers while the toroidal lower-bound construction of Section 3.1 uses
coordinate tuples.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Any

import numpy as np

Node = Hashable
Edge = tuple[Node, Node]

__all__ = ["Graph", "Node", "Edge"]


class Graph:
    """Undirected simple graph backed by a dict-of-sets adjacency structure.

    The class intentionally supports only the operations the game engine
    needs: node/edge insertion and removal, neighbourhood queries, induced
    subgraphs, copies and conversion to an index-based CSR layout for the
    NumPy-vectorised distance routines in :mod:`repro.graphs.traversal`.

    Parameters
    ----------
    nodes:
        Optional iterable of initial nodes.
    edges:
        Optional iterable of ``(u, v)`` pairs; endpoints are added
        automatically.
    """

    __slots__ = ("_adj", "_version", "_csr_cache", "_csr_aux")

    def __init__(
        self,
        nodes: Iterable[Node] | None = None,
        edges: Iterable[Edge] | None = None,
    ) -> None:
        self._adj: dict[Node, set[Node]] = {}
        self._version: int = 0
        # (version, indptr, indices, nodes) of the last CSR export, or None.
        self._csr_cache: tuple[int, np.ndarray, np.ndarray, list[Node]] | None = None
        # (version, node -> CSR index, object-dtype node array) companion
        # cache; built lazily by csr_node_index()/csr_order_array().
        self._csr_aux: tuple[int, dict[Node, int], np.ndarray] | None = None
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def adjacency(self) -> Mapping[Node, set[Node]]:
        """Read-only view of the adjacency structure (do not mutate)."""
        return self._adj

    @property
    def version(self) -> int:
        """Monotone counter bumped by every structural mutation.

        The incremental dynamics engine (:mod:`repro.engine`) uses it to
        detect staleness of cached artefacts (views, CSR exports) without
        hashing the whole adjacency structure.
        """
        return self._version

    def nodes(self) -> list[Node]:
        """Return the nodes in insertion order."""
        return list(self._adj)

    def number_of_nodes(self) -> int:
        return len(self._adj)

    def number_of_edges(self) -> int:
        return sum(len(neigh) for neigh in self._adj.values()) // 2

    def edges(self) -> list[Edge]:
        """Return each undirected edge exactly once."""
        seen: set[frozenset[Node]] = set()
        result: list[Edge] = []
        for u, neighbours in self._adj.items():
            for v in neighbours:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    result.append((u, v))
        return result

    def has_node(self, node: Node) -> bool:
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, node: Node) -> set[Node]:
        """Return the neighbour set of ``node`` (a copy is *not* made)."""
        return self._adj[node]

    def degree(self, node: Node) -> int:
        return len(self._adj[node])

    def degrees(self) -> dict[Node, int]:
        return {node: len(neigh) for node, neigh in self._adj.items()}

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Graph(n={self.number_of_nodes()}, m={self.number_of_edges()})"
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if set(self._adj) != set(other._adj):
            return False
        return all(self._adj[u] == other._adj[u] for u in self._adj)

    def __hash__(self) -> int:  # Graphs are mutable; identity hash only.
        return id(self)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        if node not in self._adj:
            self._adj[node] = set()
            self._version += 1

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node) -> None:
        """Insert the undirected edge ``(u, v)``; self-loops are rejected."""
        if u == v:
            raise ValueError(f"self-loop on node {u!r} is not allowed")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._version += 1

    def add_edges(self, edges: Iterable[Edge]) -> None:
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: Node, v: Node) -> None:
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u!r}, {v!r}) not present")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._version += 1

    def remove_node(self, node: Node) -> None:
        if node not in self._adj:
            raise KeyError(f"node {node!r} not present")
        for neighbour in self._adj[node]:
            self._adj[neighbour].discard(node)
        del self._adj[node]
        self._version += 1

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        clone = Graph()
        clone._adj = {node: set(neigh) for node, neigh in self._adj.items()}
        return clone

    def induced_subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Return the subgraph induced by ``nodes`` (unknown nodes ignored).

        The node insertion order of the result is canonical (sorted by
        ``repr``), not the iteration order of ``nodes``: downstream
        tie-breaking (view subgraphs feeding the set-cover solvers) must not
        depend on how the caller happened to enumerate the node set, or the
        incremental engine could diverge from the rebuild-from-scratch path.
        """
        keep = {node for node in nodes if node in self._adj}
        sub = Graph()
        for node in sorted(keep, key=repr):
            sub.add_node(node)
        for node in keep:
            for neighbour in self._adj[node]:
                if neighbour in keep:
                    sub._adj[node].add(neighbour)
        return sub

    def without_node(self, node: Node) -> "Graph":
        """Return a copy of the graph with ``node`` (and its edges) removed."""
        clone = self.copy()
        clone.remove_node(node)
        return clone

    # ------------------------------------------------------------------
    # Index-based export (hot path for NumPy kernels)
    # ------------------------------------------------------------------
    def to_index(self) -> tuple[list[Node], dict[Node, int]]:
        """Return ``(nodes, node -> index)`` with a stable ordering."""
        nodes = self.nodes()
        return nodes, {node: i for i, node in enumerate(nodes)}

    def to_csr_arrays(self) -> tuple[np.ndarray, np.ndarray, list[Node]]:
        """Return a CSR-like flat adjacency ``(indptr, indices, nodes)``.

        ``indices[indptr[i]:indptr[i + 1]]`` lists the neighbours of the
        ``i``-th node in ``nodes``.  This is the layout consumed by the
        kernel-backed BFS in :mod:`repro.graphs.traversal`.

        The export is cached keyed by :attr:`version`, so repeated calls on
        an unchanged topology (per-round metric sweeps, per-player view
        refreshes, kernel benchmarks) pay the extraction cost once; any
        structural mutation bumps the version and invalidates the cache.
        The returned arrays are therefore marked read-only and shared
        between calls; the node list is a fresh copy each time.
        """
        cached = self._csr_cache
        if cached is not None and cached[0] == self._version:
            return cached[1], cached[2], list(cached[3])
        nodes, index = self.to_index()
        indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
        for i, node in enumerate(nodes):
            indptr[i + 1] = indptr[i] + len(self._adj[node])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        cursor = 0
        for node in nodes:
            for neighbour in self._adj[node]:
                indices[cursor] = index[neighbour]
                cursor += 1
        indptr.setflags(write=False)
        indices.setflags(write=False)
        self._csr_cache = (self._version, indptr, indices, nodes)
        return indptr, indices, list(nodes)

    def csr_node_index(self) -> dict[Node, int]:
        """The ``node -> CSR row`` map matching :meth:`to_csr_arrays`.

        Cached by :attr:`version` alongside the CSR arrays, so per-call
        consumers (bulk view refreshes run once per dynamics round) stop
        rebuilding an ``O(n)`` dict on an unchanged topology.  The returned
        dict is shared between calls — do not mutate it.
        """
        return self._csr_companions()[0]

    def csr_order_array(self) -> np.ndarray:
        """The CSR node order as a read-only object-dtype array.

        Object dtype because nodes may be tuples (the torus construction),
        which ``np.asarray`` would splat into a 2-D array.  Cached by
        :attr:`version` and shared between calls, like
        :meth:`csr_node_index`.
        """
        return self._csr_companions()[1]

    def _csr_companions(self) -> tuple[dict[Node, int], np.ndarray]:
        cached = self._csr_aux
        if cached is not None and cached[0] == self._version:
            return cached[1], cached[2]
        _, _, order = self.to_csr_arrays()
        index = {node: i for i, node in enumerate(order)}
        order_array = np.empty(len(order), dtype=object)
        order_array[:] = order
        order_array.setflags(write=False)
        self._csr_aux = (self._version, index, order_array)
        return index, order_array

    def adjacency_matrix(self) -> tuple[np.ndarray, list[Node]]:
        """Return a dense boolean adjacency matrix together with node order."""
        nodes, index = self.to_index()
        n = len(nodes)
        matrix = np.zeros((n, n), dtype=bool)
        for node in nodes:
            i = index[node]
            for neighbour in self._adj[node]:
                matrix[i, index[neighbour]] = True
        return matrix, nodes

    # ------------------------------------------------------------------
    # Interchange with networkx
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to :class:`networkx.Graph` (for plotting / cross-checking)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self._adj)
        graph.add_edges_from(self.edges())
        return graph

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        graph = cls()
        graph.add_nodes(nx_graph.nodes())
        graph.add_edges(nx_graph.edges())
        return graph

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Edge]) -> "Graph":
        return cls(edges=edges)

    @classmethod
    def empty(cls, n: int) -> "Graph":
        """Graph on nodes ``0..n-1`` with no edges."""
        return cls(nodes=range(n))
