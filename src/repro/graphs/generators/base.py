"""Shared helpers for generators that also assign edge ownership.

In the paper's games every edge is bought (and paid for) by exactly one of
its endpoints.  For the experimental instances the owner of each initial edge
is chosen "with a fair coin toss" (Section 5.2); the lower-bound
constructions prescribe an explicit ownership (e.g. non-intersection vertices
own all edges of the stretched torus).  :class:`OwnedGraph` bundles a
topology with such an assignment.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.graphs.graph import Edge, Graph, Node

__all__ = [
    "OwnedGraph",
    "assign_ownership_fair_coin",
    "assign_ownership_to_smaller",
]


@dataclass
class OwnedGraph:
    """A graph together with an edge-ownership map.

    Attributes
    ----------
    graph:
        The undirected topology.
    ownership:
        ``owner -> set of targets``; the pair ``(owner, target)`` means the
        player ``owner`` bought the edge towards ``target``.  Every edge of
        ``graph`` must be owned by exactly one endpoint.
    metadata:
        Free-form generator metadata (construction parameters, special vertex
        sets, ...).
    """

    graph: Graph
    ownership: dict[Node, set[Node]]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check that the ownership covers every edge exactly once."""
        owned: set[frozenset[Node]] = set()
        for owner, targets in self.ownership.items():
            if not self.graph.has_node(owner):
                raise ValueError(f"owner {owner!r} is not a node of the graph")
            for target in targets:
                if not self.graph.has_edge(owner, target):
                    raise ValueError(
                        f"ownership ({owner!r}, {target!r}) is not an edge of the graph"
                    )
                key = frozenset((owner, target))
                if key in owned:
                    raise ValueError(f"edge {tuple(key)!r} owned by both endpoints")
                owned.add(key)
        if len(owned) != self.graph.number_of_edges():
            raise ValueError(
                "ownership does not cover every edge: "
                f"{len(owned)} owned vs {self.graph.number_of_edges()} edges"
            )

    def bought_edges(self, node: Node) -> set[Node]:
        """Return the targets of the edges bought by ``node``."""
        return set(self.ownership.get(node, set()))

    def owner_of(self, u: Node, v: Node) -> Node:
        """Return the endpoint that owns the edge ``(u, v)``."""
        if v in self.ownership.get(u, set()):
            return u
        if u in self.ownership.get(v, set()):
            return v
        raise KeyError(f"edge ({u!r}, {v!r}) has no recorded owner")


def assign_ownership_fair_coin(
    graph: Graph, rng: random.Random | None = None
) -> dict[Node, set[Node]]:
    """Assign each edge to one of its endpoints with a fair coin toss.

    This is the initial-ownership rule of the experimental section
    ("the owner of each edge was chosen uniformly at random between its
    endpoints").
    """
    rng = rng if rng is not None else random.Random()
    ownership: dict[Node, set[Node]] = {node: set() for node in graph}
    for u, v in graph.edges():
        if rng.random() < 0.5:
            ownership[u].add(v)
        else:
            ownership[v].add(u)
    return ownership


def assign_ownership_to_smaller(graph: Graph) -> dict[Node, set[Node]]:
    """Deterministically assign each edge to its smaller endpoint.

    Used as an ablation of the fair-coin rule and for constructions where
    the paper leaves the ownership unspecified; nodes must be comparable.
    """
    ownership: dict[Node, set[Node]] = {node: set() for node in graph}
    for u, v in graph.edges():
        small, large = (u, v) if _key(u) <= _key(v) else (v, u)
        ownership[small].add(large)
    return ownership


def _key(node: Node):
    """Sort key that works for both int and tuple node labels."""
    if isinstance(node, tuple):
        return (1, node)
    return (0, (node,))


def edges_from_ownership(ownership: dict[Node, set[Node]]) -> list[Edge]:
    """Return the edge list induced by an ownership map."""
    return [(owner, target) for owner, targets in ownership.items() for target in targets]


def nodes_of(edges: Iterable[Edge]) -> set[Node]:
    """Return the set of endpoints appearing in ``edges``."""
    result: set[Node] = set()
    for u, v in edges:
        result.add(u)
        result.add(v)
    return result
