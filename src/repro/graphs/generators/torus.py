"""The stretched toroidal grid construction of Section 3.1.

This is the paper's main lower-bound gadget for MaxNCG (Theorem 3.12) and,
with ``d = 2`` and ``ℓ = 2``, for SumNCG (Lemma 4.1 / Theorem 4.2).  It
generalises the 2-dimensional torus of Alon et al. in three ways:

1. the number of dimensions is a parameter ``d >= 2``;
2. the dimension lengths ``δ_1, ..., δ_d`` need not be equal (a
   hyper-rectangle rather than a hyper-cube), which is what produces the
   large diameter; and
3. every edge is "stretched" into a path of length ``ℓ`` whose ``ℓ - 1``
   interior vertices ("non-intersection vertices") own all the edges of the
   graph, which is what makes edge deletions unprofitable for large ``α``.

Vertices are named by their coordinate tuples; the ``i``-th coordinate is
read modulo ``2 δ_i ℓ``.  Intersection vertices are the tuples
``(ℓ a_1, ..., ℓ a_d)`` with all ``a_i`` of the same parity; each is joined to
the ``2^d`` intersection vertices ``(x_1 ± ℓ, ..., x_d ± ℓ)`` by a path of
length ``ℓ``.

The module also provides the "open" (non-wrapping) variant used in the
paper's distance arguments (Lemma 3.5) and helpers that pick the parameters
exactly as Theorem 3.12 and Lemma 4.1 prescribe.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.graphs.generators.base import OwnedGraph
from repro.graphs.graph import Graph

__all__ = [
    "TorusParameters",
    "stretched_torus",
    "open_stretched_torus",
    "torus_parameters_for_theorem_3_12",
    "torus_parameters_for_lemma_4_1",
    "torus_lower_bound_distance",
]

Coordinate = tuple[int, ...]


@dataclass(frozen=True)
class TorusParameters:
    """Parameters of the stretched toroidal grid.

    Attributes
    ----------
    stretch:
        ``ℓ >= 1``, the length of the path replacing each grid edge.
    deltas:
        The dimension lengths ``(δ_1, ..., δ_d)``; the number of dimensions
        is ``len(deltas)`` and every ``δ_i`` must be at least 2 so that the
        ``± ℓ`` neighbours are distinct.
    """

    stretch: int
    deltas: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.stretch < 1:
            raise ValueError("stretch (ℓ) must be at least 1")
        if len(self.deltas) < 2:
            raise ValueError("the construction needs at least d = 2 dimensions")
        if any(delta < 2 for delta in self.deltas):
            raise ValueError("every δ_i must be at least 2")

    @property
    def dimensions(self) -> int:
        return len(self.deltas)

    @property
    def num_intersection_vertices(self) -> int:
        """``N = 2 ∏_i δ_i`` (one copy per coordinate parity class)."""
        return 2 * math.prod(self.deltas)

    @property
    def num_vertices(self) -> int:
        """``n = N (2^{d-1} (ℓ - 1) + 1)`` (paper, proof of Theorem 3.12)."""
        d = self.dimensions
        return self.num_intersection_vertices * (2 ** (d - 1) * (self.stretch - 1) + 1)

    @property
    def k_star(self) -> int:
        """The reference coordinate ``k* = ℓ (δ_1 - 1)`` used in the proofs."""
        return self.stretch * (self.deltas[0] - 1)

    @property
    def diameter_lower_bound(self) -> int:
        """``ℓ δ_d``, the diameter lower bound of Corollary 3.4."""
        return self.stretch * self.deltas[-1]

    def modulus(self, axis: int) -> int:
        """The modulus ``2 δ_i ℓ`` of the ``axis``-th coordinate."""
        return 2 * self.deltas[axis] * self.stretch


def _intersection_vertices(params: TorusParameters) -> list[Coordinate]:
    """Enumerate the intersection vertices (same-parity coordinate tuples)."""
    stretch = params.stretch
    vertices: list[Coordinate] = []
    for parity in (0, 1):
        ranges = [
            [stretch * a for a in range(parity, 2 * delta, 2)] for delta in params.deltas
        ]
        vertices.extend(itertools.product(*ranges))
    return vertices


def stretched_torus(params: TorusParameters) -> OwnedGraph:
    """Build the closed (toroidal) construction with the paper's ownership.

    Non-intersection vertices own every edge: walking a path
    ``u = x_0, x_1, ..., x_ℓ = u'`` between two intersection vertices, each
    interior vertex ``x_i`` (``1 <= i <= ℓ - 1``) buys the edge towards
    ``x_{i-1}`` and ``x_{ℓ-1}`` additionally buys the edge towards ``u'``.
    Intersection vertices buy no edges.  For ``ℓ = 1`` there are no interior
    vertices; the edge is then assigned to its lexicographically smaller
    endpoint (an extension of the paper, which always uses ``ℓ = Θ(α) >= 2``
    in the stretched regime).
    """
    stretch = params.stretch
    d = params.dimensions
    moduli = [params.modulus(axis) for axis in range(d)]
    graph = Graph()
    ownership: dict[Coordinate, set[Coordinate]] = {}

    intersections = _intersection_vertices(params)
    intersection_set = set(intersections)
    for vertex in intersections:
        graph.add_node(vertex)
        ownership[vertex] = set()

    seen_pairs: set[frozenset[Coordinate]] = set()
    for origin in intersections:
        for signs in itertools.product((-1, 1), repeat=d):
            target = tuple(
                (origin[axis] + signs[axis] * stretch) % moduli[axis] for axis in range(d)
            )
            pair = frozenset((origin, target))
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            path: list[Coordinate] = [origin]
            for step in range(1, stretch):
                path.append(
                    tuple(
                        (origin[axis] + signs[axis] * step) % moduli[axis]
                        for axis in range(d)
                    )
                )
            path.append(target)
            for node in path[1:-1]:
                graph.add_node(node)
                ownership.setdefault(node, set())
            for left, right in zip(path, path[1:]):
                graph.add_edge(left, right)
            if stretch == 1:
                small = min(origin, target)
                large = target if small == origin else origin
                ownership[small].add(large)
            else:
                for i in range(1, stretch):
                    ownership[path[i]].add(path[i - 1])
                ownership[path[stretch - 1]].add(path[stretch])

    expected = params.num_vertices
    if graph.number_of_nodes() != expected:
        raise RuntimeError(
            "torus construction is inconsistent: built "
            f"{graph.number_of_nodes()} vertices, expected {expected}; "
            f"parameters {params!r}"
        )
    return OwnedGraph(
        graph=graph,
        ownership=ownership,
        metadata={
            "family": "stretched_torus",
            "params": params,
            "intersection_vertices": intersection_set,
            "k_star": params.k_star,
            "diameter_lower_bound": params.diameter_lower_bound,
        },
    )


def open_stretched_torus(params: TorusParameters) -> Graph:
    """Build the "open" (non-wrapping) variant used in Lemma 3.5.

    Coordinates are not reduced modulo anything; intersection vertices are
    the same-parity tuples ``(ℓ a_1, ..., ℓ a_d)`` with ``0 <= a_i <= 2 δ_i - 1``
    and two of them are joined (by a stretched path) only when every
    coordinate differs by exactly ``ℓ`` without wrapping.
    """
    stretch = params.stretch
    d = params.dimensions
    limits = [stretch * (2 * delta - 1) for delta in params.deltas]
    graph = Graph()
    intersections = _intersection_vertices(params)
    for vertex in intersections:
        graph.add_node(vertex)
    intersection_set = set(intersections)
    for origin in intersections:
        for signs in itertools.product((-1, 1), repeat=d):
            target = tuple(origin[axis] + signs[axis] * stretch for axis in range(d))
            if any(target[axis] < 0 or target[axis] > limits[axis] for axis in range(d)):
                continue
            if target not in intersection_set:
                continue
            path: list[Coordinate] = [origin]
            for step in range(1, stretch):
                path.append(
                    tuple(origin[axis] + signs[axis] * step for axis in range(d))
                )
            path.append(target)
            for left, right in zip(path, path[1:]):
                graph.add_edge(left, right)
    return graph


def torus_lower_bound_distance(params: TorusParameters, x: Coordinate, y: Coordinate) -> int:
    """The distance lower bound of Lemma 3.3.

    ``d(x, y) >= max_i min(|x_i - y_i|, 2 δ_i ℓ - |x_i - y_i|)`` in the
    closed construction (strict if one endpoint is an intersection vertex).
    """
    best = 0
    for axis in range(params.dimensions):
        modulus = params.modulus(axis)
        diff = abs(x[axis] - y[axis]) % modulus
        best = max(best, min(diff, modulus - diff))
    return best


def torus_parameters_for_theorem_3_12(alpha: float, k: int, n_target: int) -> TorusParameters:
    """Pick the construction parameters exactly as in Theorem 3.12.

    ``ℓ = ⌈α⌉``, ``d = ⌈log2(k/ℓ + 2)⌉`` and
    ``δ_1 = ... = δ_{d-1} = ⌈k/ℓ⌉ + 1``; the last dimension ``δ_d >= δ_1`` is
    chosen as large as possible so that the total number of vertices does not
    exceed ``n_target``.

    Raises
    ------
    ValueError
        If the requested ``(α, k, n_target)`` triple cannot satisfy
        ``δ_d >= δ_1`` (the theorem's requirement ``k <= 2^{√(log n) - 3}``
        is the asymptotic version of this condition).
    """
    if not alpha > 1:
        raise ValueError("Theorem 3.12 requires α > 1")
    if k < alpha:
        raise ValueError("Theorem 3.12 requires α <= k")
    stretch = math.ceil(alpha)
    d = max(2, math.ceil(math.log2(k / stretch + 2)))
    delta_small = math.ceil(k / stretch) + 1
    per_unit = 2 * delta_small ** (d - 1) * (2 ** (d - 1) * (stretch - 1) + 1)
    delta_last = n_target // per_unit
    if delta_last < delta_small:
        raise ValueError(
            "n_target too small for the requested (α, k): need at least "
            f"{per_unit * delta_small} vertices, got n_target={n_target}"
        )
    deltas = (delta_small,) * (d - 1) + (delta_last,)
    return TorusParameters(stretch=stretch, deltas=deltas)


def torus_parameters_for_lemma_4_1(k: int, n_target: int) -> TorusParameters:
    """Pick the SumNCG parameters of Lemma 4.1: ``d = 2``, ``ℓ = 2``.

    ``δ_1 = ⌈k/2⌉ + 1`` and ``δ_2 >= δ_1`` chosen from ``n_target`` using
    ``n = 6 δ_1 δ_2``.
    """
    if k < 1:
        raise ValueError("k must be positive")
    delta_1 = math.ceil(k / 2) + 1
    delta_2 = n_target // (6 * delta_1)
    if delta_2 < delta_1:
        raise ValueError(
            "n_target too small for the requested k: Lemma 4.1 needs "
            f"k <= sqrt(2 n / 3) - 4 (approximately); got k={k}, n_target={n_target}"
        )
    return TorusParameters(stretch=2, deltas=(delta_1, delta_2))
