"""Additional instance families for the extension experiments.

The paper's experiments start from uniform random trees and Erdős–Rényi
graphs (Section 5.2).  The extension studies in
:mod:`repro.experiments.extensions` re-run the same dynamics on structurally
different families — small-world rings, preferential-attachment trees/graphs,
random regular graphs, hypercubes, and a couple of extremal tree shapes — to
check that the qualitative findings (fast convergence, hub formation, quality
degradation at small k) are not artefacts of the two original families.

Every generator is deterministic given its ``rng``/``seed`` argument and the
``owned_*`` variants attach the fair-coin ownership rule of the paper unless
stated otherwise.
"""

from __future__ import annotations

import random

from repro.graphs.generators.base import (
    OwnedGraph,
    assign_ownership_fair_coin,
)
from repro.graphs.graph import Graph
from repro.graphs.traversal import is_connected

__all__ = [
    "watts_strogatz_graph",
    "barabasi_albert_graph",
    "random_regular_graph",
    "hypercube_graph",
    "complete_bipartite_graph",
    "caterpillar_tree",
    "spider_tree",
    "balanced_tree",
    "owned_watts_strogatz",
    "owned_barabasi_albert",
    "owned_random_regular",
]


# ----------------------------------------------------------------------
# Small-world and preferential attachment
# ----------------------------------------------------------------------
def watts_strogatz_graph(
    n: int, k: int, p: float, rng: random.Random | None = None
) -> Graph:
    """Watts–Strogatz small-world graph on ``n`` nodes.

    Start from a ring lattice where every node is connected to its ``k``
    nearest neighbours (``k`` must be even and ``< n``) and rewire each
    "forward" edge independently with probability ``p`` to a uniformly random
    non-neighbour.  Self-loops and parallel edges are never created.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if k % 2 != 0 or k < 0:
        raise ValueError("k must be a non-negative even integer")
    if k >= n:
        raise ValueError("k must be smaller than n")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    rng = rng if rng is not None else random.Random()
    graph = Graph(nodes=range(n))
    half = k // 2
    for offset in range(1, half + 1):
        for node in range(n):
            graph.add_edge(node, (node + offset) % n)
    if p == 0.0 or k == 0:
        return graph
    for offset in range(1, half + 1):
        for node in range(n):
            if rng.random() >= p:
                continue
            old_target = (node + offset) % n
            if not graph.has_edge(node, old_target):
                continue  # Already rewired away by an earlier pass.
            candidates = [
                target
                for target in range(n)
                if target != node and not graph.has_edge(node, target)
            ]
            if not candidates:
                continue
            new_target = rng.choice(candidates)
            graph.remove_edge(node, old_target)
            graph.add_edge(node, new_target)
    return graph


def barabasi_albert_graph(
    n: int, m: int, rng: random.Random | None = None
) -> Graph:
    """Barabási–Albert preferential-attachment graph.

    Starts from a star on ``m + 1`` nodes and attaches each new node to ``m``
    distinct existing nodes chosen with probability proportional to their
    degree (implemented with the usual repeated-endpoint urn).  ``m = 1``
    yields a random recursive-style tree, which is the shape used by the
    family-robustness experiment.
    """
    if m < 1:
        raise ValueError("m must be at least 1")
    if n <= m:
        raise ValueError("n must exceed m")
    rng = rng if rng is not None else random.Random()
    graph = Graph(nodes=range(n))
    # Seed: a star on nodes 0..m (node 0 at the centre), so every node has
    # positive degree before preferential attachment starts.
    urn: list[int] = []
    for leaf in range(1, m + 1):
        graph.add_edge(0, leaf)
        urn.extend((0, leaf))
    for new_node in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(urn))
        for target in targets:
            graph.add_edge(new_node, target)
            urn.extend((new_node, target))
    return graph


def random_regular_graph(
    n: int, d: int, rng: random.Random | None = None, max_attempts: int = 200
) -> Graph:
    """Random ``d``-regular graph (Steger–Wormald pairing with restarts).

    ``n * d`` must be even and ``d < n``.  Stubs are paired one legal pair at
    a time (never creating self-loops or parallel edges); if the process gets
    stuck with only illegal pairs left, it restarts.  For the modest sizes
    used in the experiments (``n`` up to a few hundred, small ``d``) a handful
    of attempts always suffices.
    """
    if d < 0 or d >= n:
        raise ValueError("need 0 <= d < n")
    if (n * d) % 2 != 0:
        raise ValueError("n * d must be even")
    rng = rng if rng is not None else random.Random()
    if d == 0:
        return Graph(nodes=range(n))
    for _ in range(max_attempts):
        graph = Graph(nodes=range(n))
        stubs = [node for node in range(n) for _ in range(d)]
        rng.shuffle(stubs)
        stuck = False
        while stubs:
            # Draw a uniformly random legal pair among the remaining stubs.
            paired = False
            for _ in range(50):
                i, j = rng.randrange(len(stubs)), rng.randrange(len(stubs))
                if i == j:
                    continue
                u, v = stubs[i], stubs[j]
                if u == v or graph.has_edge(u, v):
                    continue
                graph.add_edge(u, v)
                for index in sorted((i, j), reverse=True):
                    stubs.pop(index)
                paired = True
                break
            if not paired:
                stuck = True
                break
        if not stuck:
            return graph
    raise RuntimeError(
        f"failed to sample a simple {d}-regular graph on {n} nodes "
        f"in {max_attempts} attempts"
    )


# ----------------------------------------------------------------------
# Deterministic structured families
# ----------------------------------------------------------------------
def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-dimensional hypercube on ``2**dimension`` nodes.

    Nodes are integers ``0 .. 2**dimension - 1``; two nodes are adjacent when
    their binary labels differ in exactly one bit.
    """
    if dimension < 0:
        raise ValueError("dimension must be non-negative")
    n = 1 << dimension
    graph = Graph(nodes=range(n))
    for node in range(n):
        for bit in range(dimension):
            neighbour = node ^ (1 << bit)
            if neighbour > node:
                graph.add_edge(node, neighbour)
    return graph


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """Complete bipartite graph ``K_{a,b}`` on nodes ``0..a+b-1``.

    The first ``a`` labels form one side, the remaining ``b`` the other.
    """
    if a < 0 or b < 0:
        raise ValueError("side sizes must be non-negative")
    graph = Graph(nodes=range(a + b))
    for left in range(a):
        for right in range(a, a + b):
            graph.add_edge(left, right)
    return graph


def caterpillar_tree(spine: int, legs_per_node: int) -> Graph:
    """Caterpillar: a path of ``spine`` nodes, each with ``legs_per_node`` leaves.

    Caterpillars are the high-diameter extreme of the tree family; the
    family-robustness experiment uses them to stress the small-k quality
    degradation (long spines keep the usage cost large).
    """
    if spine < 1:
        raise ValueError("spine must have at least one node")
    if legs_per_node < 0:
        raise ValueError("legs_per_node must be non-negative")
    graph = Graph(nodes=range(spine))
    for node in range(spine - 1):
        graph.add_edge(node, node + 1)
    next_label = spine
    for node in range(spine):
        for _ in range(legs_per_node):
            graph.add_edge(node, next_label)
            next_label += 1
    return graph


def spider_tree(legs: int, leg_length: int) -> Graph:
    """Spider: ``legs`` paths of length ``leg_length`` glued at a common centre.

    Node 0 is the centre.  A spider with long legs is the worst case for the
    centre-centric social optimum, and the best case for a single hub.
    """
    if legs < 0 or leg_length < 0:
        raise ValueError("legs and leg_length must be non-negative")
    graph = Graph(nodes=[0])
    next_label = 1
    for _ in range(legs):
        previous = 0
        for _ in range(leg_length):
            graph.add_edge(previous, next_label)
            previous = next_label
            next_label += 1
    return graph


def balanced_tree(branching: int, height: int) -> Graph:
    """Complete ``branching``-ary tree of the given ``height`` (root = node 0)."""
    if branching < 1:
        raise ValueError("branching must be at least 1")
    if height < 0:
        raise ValueError("height must be non-negative")
    graph = Graph(nodes=[0])
    frontier = [0]
    next_label = 1
    for _ in range(height):
        new_frontier: list[int] = []
        for parent in frontier:
            for _ in range(branching):
                graph.add_edge(parent, next_label)
                new_frontier.append(next_label)
                next_label += 1
        frontier = new_frontier
    return graph


# ----------------------------------------------------------------------
# Owned variants (fair-coin ownership, connectivity enforced)
# ----------------------------------------------------------------------
def _owned(graph: Graph, rng: random.Random, metadata: dict) -> OwnedGraph:
    ownership = assign_ownership_fair_coin(graph, rng=rng)
    return OwnedGraph(graph=graph, ownership=ownership, metadata=metadata)


def owned_watts_strogatz(
    n: int, k: int, p: float, seed: int | None = None, max_attempts: int = 50
) -> OwnedGraph:
    """Connected Watts–Strogatz instance with fair-coin ownership.

    Disconnected samples (possible for large ``p``) are rejected and
    re-drawn, mirroring the rejection-sampling rule the paper applies to its
    Erdős–Rényi instances.
    """
    rng = random.Random(seed)
    for _ in range(max_attempts):
        graph = watts_strogatz_graph(n, k, p, rng=rng)
        if is_connected(graph):
            return _owned(graph, rng, {"family": "watts-strogatz", "n": n, "k": k, "p": p, "seed": seed})
    raise RuntimeError("failed to sample a connected Watts-Strogatz graph")


def owned_barabasi_albert(n: int, m: int, seed: int | None = None) -> OwnedGraph:
    """Barabási–Albert instance with fair-coin ownership (always connected)."""
    rng = random.Random(seed)
    graph = barabasi_albert_graph(n, m, rng=rng)
    return _owned(graph, rng, {"family": "barabasi-albert", "n": n, "m": m, "seed": seed})


def owned_random_regular(
    n: int, d: int, seed: int | None = None, max_attempts: int = 50
) -> OwnedGraph:
    """Connected random ``d``-regular instance with fair-coin ownership."""
    rng = random.Random(seed)
    for _ in range(max_attempts):
        graph = random_regular_graph(n, d, rng=rng)
        if is_connected(graph):
            return _owned(graph, rng, {"family": "random-regular", "n": n, "d": d, "seed": seed})
    raise RuntimeError("failed to sample a connected random regular graph")
