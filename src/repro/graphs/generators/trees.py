"""Uniform random labelled trees (Prüfer sequences).

Section 5.2 of the paper: "for a given number n of vertices, we picked a tree
uniformly at random from the set of all possible trees on n vertices", with
edge ownership decided by a fair coin toss per edge.  Sampling a uniformly
random Prüfer sequence of length ``n - 2`` and decoding it yields exactly the
uniform distribution over labelled trees (Cayley's bijection).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.graphs.generators.base import OwnedGraph, assign_ownership_fair_coin
from repro.graphs.graph import Graph

__all__ = ["prufer_to_tree", "random_tree", "random_owned_tree"]


def prufer_to_tree(sequence: Sequence[int]) -> Graph:
    """Decode a Prüfer sequence into the corresponding labelled tree.

    A sequence of length ``L`` over ``{0, ..., L + 1}`` decodes to a tree on
    ``L + 2`` nodes.  The empty sequence decodes to a single edge on 2 nodes.
    """
    n = len(sequence) + 2
    if any(not (0 <= x < n) for x in sequence):
        raise ValueError("Prüfer sequence entries must lie in [0, n)")
    graph = Graph(nodes=range(n))
    degree = [1] * n
    for value in sequence:
        degree[value] += 1

    # Standard linear-time decoding: repeatedly attach the smallest leaf.
    ptr = 0
    leaf = -1
    # Find initial leaf pointer.
    while ptr < n and degree[ptr] != 1:
        ptr += 1
    leaf = ptr
    for value in sequence:
        graph.add_edge(leaf, value)
        degree[value] -= 1
        if degree[value] == 1 and value < ptr:
            leaf = value
        else:
            ptr += 1
            while ptr < n and degree[ptr] != 1:
                ptr += 1
            leaf = ptr
    # Two leaves remain; one of them is `leaf`, the other is node n - 1.
    graph.add_edge(leaf, n - 1)
    return graph


def random_tree(n: int, rng: random.Random | None = None) -> Graph:
    """Sample a labelled tree on ``n`` nodes uniformly at random."""
    if n < 1:
        raise ValueError("a tree needs at least one node")
    rng = rng if rng is not None else random.Random()
    if n == 1:
        return Graph(nodes=[0])
    if n == 2:
        return Graph(nodes=[0, 1], edges=[(0, 1)])
    sequence = [rng.randrange(n) for _ in range(n - 2)]
    return prufer_to_tree(sequence)


def random_owned_tree(n: int, seed: int | None = None) -> OwnedGraph:
    """Sample a uniform random tree with fair-coin edge ownership.

    This is the exact instance family of the paper's tree experiments
    (Table I and Figures 5-7, 10).
    """
    rng = random.Random(seed)
    graph = random_tree(n, rng)
    ownership = assign_ownership_fair_coin(graph, rng)
    return OwnedGraph(
        graph=graph,
        ownership=ownership,
        metadata={"family": "random_tree", "n": n, "seed": seed},
    )
