"""Classic deterministic graph families.

These are used as analytical fixtures: the cycle is the Lemma 3.1 lower
bound, the star is the social optimum for ``α > 1``, the clique is the social
optimum for small ``α`` in SumNCG, and paths/grids/Petersen serve as test
fixtures with known diameters, girths and eccentricities.
"""

from __future__ import annotations

from repro.graphs.generators.base import OwnedGraph
from repro.graphs.graph import Graph

__all__ = [
    "cycle_graph",
    "path_graph",
    "star_graph",
    "complete_graph",
    "grid_2d_graph",
    "petersen_graph",
    "owned_cycle",
    "owned_star",
]


def cycle_graph(n: int) -> Graph:
    """Cycle on nodes ``0..n-1`` (``n >= 3``)."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    return Graph(edges=((i, (i + 1) % n) for i in range(n)))


def path_graph(n: int) -> Graph:
    """Path on nodes ``0..n-1``."""
    if n < 1:
        raise ValueError("a path needs at least 1 node")
    graph = Graph(nodes=range(n))
    graph.add_edges((i, i + 1) for i in range(n - 1))
    return graph


def star_graph(n: int, center: int = 0) -> Graph:
    """Star on ``n`` nodes with the given center (default node 0)."""
    if n < 1:
        raise ValueError("a star needs at least 1 node")
    graph = Graph(nodes=range(n))
    graph.add_edges((center, i) for i in range(n) if i != center)
    return graph


def complete_graph(n: int) -> Graph:
    """Complete graph on ``n`` nodes."""
    if n < 1:
        raise ValueError("a complete graph needs at least 1 node")
    graph = Graph(nodes=range(n))
    graph.add_edges((i, j) for i in range(n) for j in range(i + 1, n))
    return graph


def grid_2d_graph(rows: int, cols: int) -> Graph:
    """``rows x cols`` grid with tuple-labelled nodes ``(r, c)``."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    graph = Graph(nodes=((r, c) for r in range(rows) for c in range(cols)))
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                graph.add_edge((r, c), (r, c + 1))
    return graph


def petersen_graph() -> Graph:
    """The Petersen graph (10 nodes, girth 5, diameter 2) as a test fixture."""
    graph = Graph(nodes=range(10))
    # Outer 5-cycle 0..4, inner 5-star 5..9, spokes i -- i + 5.
    graph.add_edges((i, (i + 1) % 5) for i in range(5))
    graph.add_edges((5 + i, 5 + (i + 2) % 5) for i in range(5))
    graph.add_edges((i, i + 5) for i in range(5))
    return graph


def owned_cycle(n: int) -> OwnedGraph:
    """Cycle where player ``i`` owns the edge towards ``i + 1`` (Lemma 3.1).

    Every player owns exactly one edge, matching the lower-bound instance
    "a cycle on n >= 2k + 2 vertices where each player owns exactly one edge".
    """
    graph = cycle_graph(n)
    ownership = {i: {(i + 1) % n} for i in range(n)}
    return OwnedGraph(graph=graph, ownership=ownership, metadata={"family": "cycle", "n": n})


def owned_star(n: int, center: int = 0, center_owns: bool = True) -> OwnedGraph:
    """Star with all edges owned either by the center or by the leaves.

    The social optimum of both games (for ``α > 1``) is a spanning star; who
    owns the edges does not change the social cost, but both variants are
    useful in tests of the equilibrium checker.
    """
    graph = star_graph(n, center=center)
    ownership: dict[int, set[int]] = {i: set() for i in range(n)}
    for leaf in range(n):
        if leaf == center:
            continue
        if center_owns:
            ownership[center].add(leaf)
        else:
            ownership[leaf].add(center)
    return OwnedGraph(
        graph=graph,
        ownership=ownership,
        metadata={"family": "star", "n": n, "center": center, "center_owns": center_owns},
    )
