"""Dense graphs of large girth (the Lemma 3.2 / Theorem 4.3 gadgets).

The paper invokes the Lazebnik–Ustimenko–Woldar family: for every even girth
``g >= 6`` and prime power ``q`` there is a ``q``-regular graph of girth at
least ``g`` with ``Ω(n^{1 + 1/(g-4)})`` edges.  Reproducing that algebraic
family in full generality is out of scope, so this module substitutes:

* :func:`projective_plane_incidence_graph` — the exact incidence graph of the
  projective plane ``PG(2, q)`` for prime ``q``: ``(q + 1)``-regular, girth 6,
  ``2 (q^2 + q + 1)`` vertices.  This covers the ``g = 6`` (``k = 2``) case
  with the true extremal density.
* :func:`high_girth_regular_graph` — a randomized greedy construction that
  adds edges only between vertices at distance ``>= g - 1``, producing
  near-``q``-regular graphs of girth ``>= g`` for any even ``g``.  The
  density is below the extremal bound, but all structural properties the
  lower-bound proofs actually use (regularity up to ``q``, girth ``>= 2k+2``,
  tree-shaped views) hold and are re-checked by the equilibrium
  certificates in :mod:`repro.analysis.certificates` instead of being assumed.

The substitution is recorded in DESIGN.md (Section 2).
"""

from __future__ import annotations

import random

from repro.graphs.generators.base import OwnedGraph
from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances_within

__all__ = [
    "projective_plane_incidence_graph",
    "high_girth_regular_graph",
    "owned_high_girth_graph",
    "is_prime",
]


def is_prime(q: int) -> bool:
    """Return ``True`` iff ``q`` is a prime number (trial division)."""
    if q < 2:
        return False
    if q < 4:
        return True
    if q % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= q:
        if q % divisor == 0:
            return False
        divisor += 2
    return True


def _normalized_projective_points(q: int) -> list[tuple[int, int, int]]:
    """Return canonical representatives of the points of ``PG(2, q)``.

    Each 1-dimensional subspace of ``GF(q)^3`` is represented by the unique
    vector whose first non-zero coordinate equals 1; there are
    ``q^2 + q + 1`` of them.
    """
    points: list[tuple[int, int, int]] = [(1, y, z) for y in range(q) for z in range(q)]
    points.extend((0, 1, z) for z in range(q))
    points.append((0, 0, 1))
    return points


def projective_plane_incidence_graph(q: int) -> Graph:
    """Incidence graph of the projective plane ``PG(2, q)`` for prime ``q``.

    Nodes are ``("P", point)`` and ``("L", line)`` tuples; a point is joined
    to a line iff their homogeneous coordinates are orthogonal modulo ``q``.
    The result is ``(q + 1)``-regular, bipartite, has girth exactly 6 and
    ``2 (q^2 + q + 1)`` vertices — the densest possible graph of girth 6.
    """
    if not is_prime(q):
        raise ValueError(
            f"q={q} is not prime; this implementation supports prime orders only"
        )
    representatives = _normalized_projective_points(q)
    graph = Graph()
    for rep in representatives:
        graph.add_node(("P", rep))
        graph.add_node(("L", rep))
    for point in representatives:
        for line in representatives:
            inner = (point[0] * line[0] + point[1] * line[1] + point[2] * line[2]) % q
            if inner == 0:
                graph.add_edge(("P", point), ("L", line))
    return graph


def high_girth_regular_graph(
    n: int,
    degree: int,
    girth: int,
    seed: int | None = None,
    max_rounds: int | None = None,
) -> Graph:
    """Randomized greedy graph with girth ``>= girth`` and degrees ``<= degree``.

    The generator repeatedly picks a vertex of minimum current degree and
    joins it to a random vertex that (i) still has residual degree and
    (ii) lies at distance at least ``girth - 1`` (so that the new edge cannot
    close a cycle shorter than ``girth``).  The process stops when no legal
    edge remains; the output is connected whenever enough edges were placed
    and is near-regular rather than exactly regular, which is sufficient for
    the Lemma 3.2 style arguments (see module docstring).

    Parameters
    ----------
    n, degree, girth:
        Number of vertices, target degree ``q`` and required girth
        ``g = 2k + 2``.
    seed:
        Seed for the internal :class:`random.Random`.
    max_rounds:
        Safety cap on edge-insertion attempts (defaults to ``10 n degree``).
    """
    if n < 2:
        raise ValueError("n must be at least 2")
    if degree < 1:
        raise ValueError("degree must be positive")
    if girth < 3:
        raise ValueError("girth must be at least 3")
    rng = random.Random(seed)
    graph = Graph(nodes=range(n))
    max_rounds = max_rounds if max_rounds is not None else 10 * n * degree
    forbidden_radius = girth - 2  # joining u, v with d(u, v) <= g - 2 creates a short cycle

    for _ in range(max_rounds):
        open_nodes = [node for node in range(n) if graph.degree(node) < degree]
        if not open_nodes:
            break
        # Work on a vertex of minimum degree to keep the degree sequence flat.
        min_deg = min(graph.degree(node) for node in open_nodes)
        candidates_u = [node for node in open_nodes if graph.degree(node) == min_deg]
        u = rng.choice(candidates_u)
        near = set(bfs_distances_within(graph, u, forbidden_radius))
        legal = [
            v
            for v in open_nodes
            if v != u and v not in near
        ]
        if not legal:
            # No legal partner for u; retire it by treating it as saturated.
            # (We emulate this by checking global progress below.)
            others = [
                v
                for v in open_nodes
                if v != u and set(bfs_distances_within(graph, v, forbidden_radius)).isdisjoint({u})
            ]
            if not others:
                # u is stuck; check whether any other pair is still legal.
                if not _any_legal_pair(graph, open_nodes, degree, forbidden_radius):
                    break
                continue
            legal = others
        v = rng.choice(legal)
        graph.add_edge(u, v)
    return graph


def _any_legal_pair(graph: Graph, open_nodes: list[Node], degree: int, radius: int) -> bool:
    """Return ``True`` iff some pair of open nodes is at distance > radius."""
    for i, u in enumerate(open_nodes):
        near = set(bfs_distances_within(graph, u, radius))
        for v in open_nodes[i + 1 :]:
            if v not in near:
                return True
    return False


def owned_high_girth_graph(
    n: int, degree: int, girth: int, seed: int | None = None
) -> OwnedGraph:
    """High-girth graph with each edge owned by its smaller endpoint.

    This matches the Lemma 3.2 setting in which "the player u owns at most q
    edges"; assigning every edge to the smaller endpoint bounds the number of
    owned edges by the degree, i.e. by ``q``.
    """
    graph = high_girth_regular_graph(n, degree, girth, seed=seed)
    ownership: dict[Node, set[Node]] = {node: set() for node in graph}
    for u, v in graph.edges():
        small, large = (u, v) if u <= v else (v, u)
        ownership[small].add(large)
    return OwnedGraph(
        graph=graph,
        ownership=ownership,
        metadata={
            "family": "high_girth",
            "n": n,
            "degree": degree,
            "girth": girth,
            "seed": seed,
        },
    )
