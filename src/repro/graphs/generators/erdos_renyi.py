"""Erdős–Rényi ``G(n, p)`` random graphs.

Section 5.2: "we generated random graphs according to the classical G(n, p)
model ... The parameters n and p were chosen so that the resulting graph was
likely to be connected.  Any remaining unconnected graph was discarded and
regenerated from scratch."  Edge ownership is again a fair coin toss.
"""

from __future__ import annotations

import random

from repro.graphs.generators.base import OwnedGraph, assign_ownership_fair_coin
from repro.graphs.graph import Graph
from repro.graphs.traversal import is_connected

__all__ = ["gnp_random_graph", "connected_gnp_graph", "owned_connected_gnp_graph"]

#: The (n, p) pairs used by the paper's Table II.
PAPER_GNP_PARAMETERS: tuple[tuple[int, float], ...] = (
    (100, 0.060),
    (100, 0.100),
    (100, 0.200),
    (200, 0.035),
    (200, 0.050),
    (200, 0.100),
)


def gnp_random_graph(n: int, p: float, rng: random.Random | None = None) -> Graph:
    """Sample a ``G(n, p)`` graph: each of the n(n-1)/2 edges appears w.p. ``p``."""
    if n < 1:
        raise ValueError("n must be positive")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    rng = rng if rng is not None else random.Random()
    graph = Graph(nodes=range(n))
    if p <= 0.0:
        return graph
    if p >= 1.0:
        graph.add_edges((i, j) for i in range(n) for j in range(i + 1, n))
        return graph
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                graph.add_edge(i, j)
    return graph


def connected_gnp_graph(
    n: int, p: float, rng: random.Random | None = None, max_attempts: int = 1000
) -> Graph:
    """Sample ``G(n, p)`` conditioned on connectivity by rejection sampling.

    Raises
    ------
    RuntimeError
        If no connected sample is drawn within ``max_attempts`` attempts
        (this indicates that ``p`` is far below the connectivity threshold
        ``ln(n)/n`` and the caller should pick different parameters).
    """
    rng = rng if rng is not None else random.Random()
    for _ in range(max_attempts):
        graph = gnp_random_graph(n, p, rng)
        if is_connected(graph):
            return graph
    raise RuntimeError(
        f"could not sample a connected G({n}, {p}) graph in {max_attempts} attempts"
    )


def owned_connected_gnp_graph(n: int, p: float, seed: int | None = None) -> OwnedGraph:
    """Connected ``G(n, p)`` with fair-coin ownership (the paper's Table II family)."""
    rng = random.Random(seed)
    graph = connected_gnp_graph(n, p, rng)
    ownership = assign_ownership_fair_coin(graph, rng)
    return OwnedGraph(
        graph=graph,
        ownership=ownership,
        metadata={"family": "erdos_renyi", "n": n, "p": p, "seed": seed},
    )
