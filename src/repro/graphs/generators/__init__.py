"""Graph generators.

Two families live here:

* the **experimental instances** of Section 5 — uniform random labelled
  trees and connected Erdős–Rényi graphs, both with fair-coin edge
  ownership — plus the classic fixtures (cycles, stars, paths, cliques,
  grids) used by the theory and the tests, and
* the **lower-bound constructions** of Sections 3 and 4 — the stretched
  toroidal grid of Section 3.1 (closed and open variants) and high-girth
  (near-)regular graphs standing in for the Lazebnik–Ustimenko–Woldar
  graphs of Lemma 3.2.

Generators that the paper equips with an edge-ownership assignment return an
:class:`OwnedGraph` pairing the topology with a ``owner -> bought targets``
map, ready to be converted into a strategy profile by the game layer.
"""

from repro.graphs.generators.base import OwnedGraph, assign_ownership_fair_coin, assign_ownership_to_smaller
from repro.graphs.generators.classic import (
    cycle_graph,
    path_graph,
    star_graph,
    complete_graph,
    grid_2d_graph,
    petersen_graph,
)
from repro.graphs.generators.trees import random_tree, random_owned_tree, prufer_to_tree
from repro.graphs.generators.erdos_renyi import gnp_random_graph, connected_gnp_graph, owned_connected_gnp_graph
from repro.graphs.generators.torus import (
    TorusParameters,
    stretched_torus,
    open_stretched_torus,
    torus_parameters_for_theorem_3_12,
    torus_parameters_for_lemma_4_1,
)
from repro.graphs.generators.high_girth import (
    projective_plane_incidence_graph,
    high_girth_regular_graph,
    owned_high_girth_graph,
)
from repro.graphs.generators.smallworld import (
    watts_strogatz_graph,
    barabasi_albert_graph,
    random_regular_graph,
    hypercube_graph,
    complete_bipartite_graph,
    caterpillar_tree,
    spider_tree,
    balanced_tree,
    owned_watts_strogatz,
    owned_barabasi_albert,
    owned_random_regular,
)

__all__ = [
    "OwnedGraph",
    "assign_ownership_fair_coin",
    "assign_ownership_to_smaller",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "complete_graph",
    "grid_2d_graph",
    "petersen_graph",
    "random_tree",
    "random_owned_tree",
    "prufer_to_tree",
    "gnp_random_graph",
    "connected_gnp_graph",
    "owned_connected_gnp_graph",
    "TorusParameters",
    "stretched_torus",
    "open_stretched_torus",
    "torus_parameters_for_theorem_3_12",
    "torus_parameters_for_lemma_4_1",
    "projective_plane_incidence_graph",
    "high_girth_regular_graph",
    "owned_high_girth_graph",
    "watts_strogatz_graph",
    "barabasi_albert_graph",
    "random_regular_graph",
    "hypercube_graph",
    "complete_bipartite_graph",
    "caterpillar_tree",
    "spider_tree",
    "balanced_tree",
    "owned_watts_strogatz",
    "owned_barabasi_albert",
    "owned_random_regular",
]
