"""Structural graph algorithms beyond plain traversal.

The experimental harness and the extension studies need a handful of
classical graph routines that the traversal module does not cover:
cut structure (bridges, articulation points), centrality (centers,
medians, betweenness), BFS trees (the backbone of the traceroute-style
view models in :mod:`repro.discovery`), spanning trees, and bipartiteness.
Everything is written from scratch on top of :class:`repro.graphs.graph.Graph`
so the library has no runtime dependency on :mod:`networkx`; the test suite
cross-validates each routine against networkx on random instances.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.graphs.graph import Edge, Graph, Node
from repro.graphs.properties import eccentricities, statuses
from repro.graphs.traversal import bfs_distances, is_connected

__all__ = [
    "bfs_tree",
    "bfs_layers",
    "bridges",
    "articulation_points",
    "biconnected_component_count",
    "graph_center",
    "graph_periphery",
    "graph_median",
    "betweenness_centrality",
    "spanning_tree",
    "is_bipartite",
    "bipartition",
    "greedy_maximal_independent_set",
    "greedy_vertex_coloring",
    "k_core",
    "degeneracy_ordering",
]


# ----------------------------------------------------------------------
# BFS-derived structures
# ----------------------------------------------------------------------
def bfs_tree(graph: Graph, source: Node) -> dict[Node, Node | None]:
    """Return a BFS tree rooted at ``source`` as a ``child -> parent`` map.

    The root maps to ``None``.  Only the connected component of ``source``
    appears in the result.  Ties between possible parents are broken by the
    adjacency iteration order, which is the node insertion order of the
    graph, so the tree is deterministic for a deterministically built graph.
    """
    if source not in graph:
        raise KeyError(f"source {source!r} not in graph")
    parent: dict[Node, Node | None] = {source: None}
    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        for neighbour in graph.neighbors(node):
            if neighbour not in parent:
                parent[neighbour] = node
                queue.append(neighbour)
    return parent


def bfs_layers(graph: Graph, source: Node) -> list[set[Node]]:
    """Return the BFS layers ``[L_0, L_1, ...]`` around ``source``.

    ``L_i`` is the set of nodes at distance exactly ``i``; the union of the
    layers is the connected component of ``source``.
    """
    distances = bfs_distances(graph, source)
    if not distances:
        return []
    radius = max(distances.values())
    layers: list[set[Node]] = [set() for _ in range(radius + 1)]
    for node, dist in distances.items():
        layers[dist].add(node)
    return layers


# ----------------------------------------------------------------------
# Cut structure (iterative Tarjan low-link computations)
# ----------------------------------------------------------------------
def _dfs_lowlinks(graph: Graph) -> tuple[dict[Node, int], dict[Node, int], dict[Node, Node | None], list[Node]]:
    """Iterative DFS computing discovery indices and low-links.

    Returns ``(disc, low, parent, order)`` where ``order`` lists the nodes in
    the order they were discovered.  Works on disconnected graphs.
    """
    disc: dict[Node, int] = {}
    low: dict[Node, int] = {}
    parent: dict[Node, Node | None] = {}
    order: list[Node] = []
    counter = 0

    for root in graph.nodes():
        if root in disc:
            continue
        parent[root] = None
        # Each stack frame is (node, iterator over neighbours).
        stack: list[tuple[Node, Iterable[Node]]] = [(root, iter(list(graph.neighbors(root))))]
        disc[root] = low[root] = counter
        counter += 1
        order.append(root)
        while stack:
            node, neighbours = stack[-1]
            advanced = False
            for neighbour in neighbours:
                if neighbour not in disc:
                    parent[neighbour] = node
                    disc[neighbour] = low[neighbour] = counter
                    counter += 1
                    order.append(neighbour)
                    stack.append((neighbour, iter(list(graph.neighbors(neighbour)))))
                    advanced = True
                    break
                if neighbour != parent[node]:
                    low[node] = min(low[node], disc[neighbour])
            if not advanced:
                stack.pop()
                if stack:
                    parent_node = stack[-1][0]
                    low[parent_node] = min(low[parent_node], low[node])
    return disc, low, parent, order


def bridges(graph: Graph) -> list[Edge]:
    """Return the bridges (cut edges) of the graph.

    An edge is a bridge when removing it disconnects its endpoints.  In the
    network-creation setting every bought bridge is "safe" for its owner in
    the sense that dropping it always disconnects the network (infinite usage
    cost), which is why equilibrium graphs are frequently bridge-rich.
    """
    disc, low, parent, order = _dfs_lowlinks(graph)
    result: list[Edge] = []
    for node in order:
        p = parent.get(node)
        if p is not None and low[node] > disc[p]:
            result.append((p, node))
    return result


def articulation_points(graph: Graph) -> set[Node]:
    """Return the articulation points (cut vertices) of the graph."""
    disc, low, parent, order = _dfs_lowlinks(graph)
    children: dict[Node, int] = {node: 0 for node in graph}
    cut: set[Node] = set()
    for node in order:
        p = parent.get(node)
        if p is None:
            continue
        children[p] += 1
        if parent.get(p) is None:
            # Root rule handled after the loop (needs the child count).
            continue
        if low[node] >= disc[p]:
            cut.add(p)
    for node in order:
        if parent.get(node) is None and children[node] >= 2:
            cut.add(node)
    return cut


def biconnected_component_count(graph: Graph) -> int:
    """Number of biconnected components (blocks) of the graph.

    Counted as the number of maximal bridge-free blocks plus one block per
    bridge; isolated vertices contribute no block.  Used by the robustness
    metrics of the extension experiments.
    """
    # Each bridge is its own block.  The remaining blocks are the connected
    # components of the graph obtained by removing all bridges, restricted to
    # components that still contain at least one edge.
    bridge_set = {frozenset(edge) for edge in bridges(graph)}
    stripped = graph.copy()
    for edge in bridge_set:
        u, v = tuple(edge)
        stripped.remove_edge(u, v)
    blocks = 0
    seen: set[Node] = set()
    for node in stripped.nodes():
        if node in seen:
            continue
        component = _component_of(stripped, node)
        seen.update(component)
        edges_inside = sum(len(stripped.neighbors(x)) for x in component) // 2
        if edges_inside > 0:
            blocks += 1
    return blocks + len(bridge_set)


def _component_of(graph: Graph, source: Node) -> set[Node]:
    return set(bfs_distances(graph, source))


# ----------------------------------------------------------------------
# Centrality
# ----------------------------------------------------------------------
def graph_center(graph: Graph) -> set[Node]:
    """Return the center: nodes whose eccentricity equals the radius.

    Raises :class:`ValueError` on disconnected graphs (eccentricities are
    infinite and the center is not meaningful).
    """
    if graph.number_of_nodes() == 0:
        return set()
    if not is_connected(graph):
        raise ValueError("center is undefined for a disconnected graph")
    ecc = eccentricities(graph)
    radius = min(ecc.values())
    return {node for node, value in ecc.items() if value == radius}


def graph_periphery(graph: Graph) -> set[Node]:
    """Return the periphery: nodes whose eccentricity equals the diameter."""
    if graph.number_of_nodes() == 0:
        return set()
    if not is_connected(graph):
        raise ValueError("periphery is undefined for a disconnected graph")
    ecc = eccentricities(graph)
    diameter = max(ecc.values())
    return {node for node, value in ecc.items() if value == diameter}


def graph_median(graph: Graph) -> set[Node]:
    """Return the median: nodes of minimum status (sum of distances).

    The median is the natural target set of a SumNCG player buying a single
    edge (the paper's Theorem 4.3 argument relies on neighbours being medians
    of their subtrees).
    """
    if graph.number_of_nodes() == 0:
        return set()
    if not is_connected(graph):
        raise ValueError("median is undefined for a disconnected graph")
    status_map = statuses(graph)
    best = min(status_map.values())
    return {node for node, value in status_map.items() if value == best}


def betweenness_centrality(graph: Graph, normalized: bool = True) -> dict[Node, float]:
    """Brandes' exact betweenness centrality for unweighted graphs.

    Used only by the extension experiments to describe the hub structure of
    stable networks (the paper's Figure 8 only looks at degrees); the
    implementation is the standard single-source accumulation, O(n·m).
    """
    centrality: dict[Node, float] = {node: 0.0 for node in graph}
    nodes = graph.nodes()
    for source in nodes:
        # Single-source shortest-path counting (BFS since unweighted).
        stack: list[Node] = []
        predecessors: dict[Node, list[Node]] = {node: [] for node in nodes}
        sigma: dict[Node, float] = {node: 0.0 for node in nodes}
        sigma[source] = 1.0
        dist: dict[Node, int] = {source: 0}
        queue: deque[Node] = deque([source])
        while queue:
            node = queue.popleft()
            stack.append(node)
            for neighbour in graph.neighbors(node):
                if neighbour not in dist:
                    dist[neighbour] = dist[node] + 1
                    queue.append(neighbour)
                if dist[neighbour] == dist[node] + 1:
                    sigma[neighbour] += sigma[node]
                    predecessors[neighbour].append(node)
        delta: dict[Node, float] = {node: 0.0 for node in nodes}
        while stack:
            node = stack.pop()
            for pred in predecessors[node]:
                delta[pred] += (sigma[pred] / sigma[node]) * (1.0 + delta[node])
            if node != source:
                centrality[node] += delta[node]
    # Undirected graphs count each pair twice.
    for node in centrality:
        centrality[node] /= 2.0
    n = graph.number_of_nodes()
    if normalized and n > 2:
        scale = 1.0 / ((n - 1) * (n - 2) / 2.0)
        for node in centrality:
            centrality[node] *= scale
    return centrality


# ----------------------------------------------------------------------
# Spanning structure, bipartiteness, independent sets
# ----------------------------------------------------------------------
def spanning_tree(graph: Graph) -> Graph:
    """Return a BFS spanning tree (as a new :class:`Graph`).

    Raises :class:`ValueError` when the graph is disconnected or empty —
    a spanning tree of the whole node set does not exist in that case.
    """
    nodes = graph.nodes()
    if not nodes:
        raise ValueError("spanning tree of the empty graph is undefined")
    root = nodes[0]
    parent = bfs_tree(graph, root)
    if len(parent) != len(nodes):
        raise ValueError("graph is disconnected; no spanning tree exists")
    tree = Graph(nodes=nodes)
    for child, par in parent.items():
        if par is not None:
            tree.add_edge(par, child)
    return tree


def is_bipartite(graph: Graph) -> bool:
    """Whether the graph is 2-colourable."""
    return bipartition(graph) is not None


def bipartition(graph: Graph) -> tuple[set[Node], set[Node]] | None:
    """Return a 2-colouring ``(side_a, side_b)`` or ``None`` if not bipartite.

    Works on disconnected graphs (each component is coloured independently;
    isolated vertices land on side ``a``).
    """
    colour: dict[Node, int] = {}
    for root in graph.nodes():
        if root in colour:
            continue
        colour[root] = 0
        queue: deque[Node] = deque([root])
        while queue:
            node = queue.popleft()
            for neighbour in graph.neighbors(node):
                if neighbour not in colour:
                    colour[neighbour] = 1 - colour[node]
                    queue.append(neighbour)
                elif colour[neighbour] == colour[node]:
                    return None
    side_a = {node for node, c in colour.items() if c == 0}
    side_b = {node for node, c in colour.items() if c == 1}
    return side_a, side_b


def greedy_maximal_independent_set(graph: Graph) -> set[Node]:
    """Greedy (minimum-degree-first) maximal independent set.

    Not necessarily maximum; used by the high-girth generator tests and by
    the discovery experiments as a cheap "spread-out landmark" selector.
    """
    remaining = graph.copy()
    independent: set[Node] = set()
    while remaining.number_of_nodes() > 0:
        node = min(remaining.nodes(), key=lambda x: (remaining.degree(x), repr(x)))
        independent.add(node)
        to_remove = {node} | set(remaining.neighbors(node))
        for victim in to_remove:
            remaining.remove_node(victim)
    return independent


def greedy_vertex_coloring(graph: Graph) -> dict[Node, int]:
    """Greedy colouring in degeneracy order; returns ``node -> colour index``.

    The number of colours used is at most ``degeneracy + 1``, which for the
    sparse equilibrium graphs of the paper is a small constant.
    """
    ordering = degeneracy_ordering(graph)
    colouring: dict[Node, int] = {}
    for node in reversed(ordering):
        used = {colouring[neighbour] for neighbour in graph.neighbors(node) if neighbour in colouring}
        colour = 0
        while colour in used:
            colour += 1
        colouring[node] = colour
    return colouring


def k_core(graph: Graph, k: int) -> Graph:
    """Return the maximal subgraph in which every node has degree >= ``k``."""
    if k < 0:
        raise ValueError("k must be non-negative")
    core = graph.copy()
    changed = True
    while changed:
        changed = False
        for node in list(core.nodes()):
            if core.degree(node) < k:
                core.remove_node(node)
                changed = True
    return core


def degeneracy_ordering(graph: Graph) -> list[Node]:
    """Return a degeneracy ordering (repeatedly remove a minimum-degree node).

    The list is in removal order, so the *last* nodes are the densest core.
    Deterministic: ties are broken by ``repr`` of the node label.
    """
    remaining = graph.copy()
    order: list[Node] = []
    while remaining.number_of_nodes() > 0:
        node = min(remaining.nodes(), key=lambda x: (remaining.degree(x), repr(x)))
        order.append(node)
        remaining.remove_node(node)
    return order
