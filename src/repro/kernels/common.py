"""Constants shared by every kernel backend.

These live here (not in :mod:`repro.graphs.traversal`) so the backend
modules can import them without pulling in the graph layer — the kernels
operate on flat arrays only and must stay importable from anywhere in the
dependency graph.  :mod:`repro.graphs.traversal` re-exports both names for
backwards compatibility.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UNREACHABLE", "MAX_EXPANSION_INCIDENCES"]

#: Sentinel distance used in dense matrices for unreachable pairs.
UNREACHABLE: int = np.iinfo(np.int32).max

#: Cap on the (frontier vertex, neighbour) incidences expanded per NumPy
#: batch inside the numpy BFS backend.  Wide BFS levels are cut into chunks
#: of at most this many incidences, bounding the kernel's transient scratch
#: (a handful of int64 arrays of this length, ~0.5 MB each at the default)
#: independently of how many sources are in flight; chunking does not change
#: results because pairs discovered by an earlier chunk are marked visited
#: before the next chunk expands.  The compiled backends ignore it — their
#: scratch is O(n) per source by construction.
MAX_EXPANSION_INCIDENCES: int = 1 << 16
