"""Native C kernel backend (the registry's "third backend" slot, filled).

The C sources below are compiled on first use with the platform's C
compiler (``cc``/``gcc``, ``-O2 -shared -fPIC``) into a shared object
cached under ``~/.cache/repro-kernels/`` (override with
``REPRO_KERNEL_CACHE``), keyed by a hash of the source text so edits
invalidate stale builds, and loaded through :mod:`ctypes` — no build-time
dependency, no extension-module packaging, works from a plain source
checkout.  Environments without a working compiler simply report the
backend as unavailable and the registry falls back (see
:func:`repro.kernels.resolve_backend`).

The ``bfs`` and ``cover_search`` kernels implement *exactly* the
algorithms of :mod:`repro.kernels.numpy_backend` — same traversal order,
same branching element, same candidate order, same incumbent updates — so
distances, selected covers and every downstream tie-break are
bit-identical to the numpy reference (pinned by
``tests/graphs/test_kernel_backends.py`` and
``tests/solvers/test_set_cover.py``).  The fused ``bfs_reduce`` kernel is
free to traverse in a different *order* — it is an MS-BFS, advancing 64
sources per uint64-bitmask batch through one level-synchronous sweep —
because its outputs are order-independent aggregates of the unique BFS
distance function; the same parity suites pin its bit-identity.

This module doubles as the template for binding further compiled
backends (Cython, Rust over cffi): implement ``bfs`` / ``cover_search``
with the contracts documented in :mod:`repro.kernels`, raise
:class:`~repro.kernels.KernelUnavailableError` from the factory when the
toolchain is missing, and register the factory.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

__all__ = [
    "load_library",
    "bfs",
    "bfs_reduce",
    "cover_search",
    "make_bfs",
    "make_bfs_reduce",
]

_SOURCE = r"""
#include <stdint.h>
#include <string.h>

/* Per-source queue BFS over a CSR adjacency layout, threaded over
 * contiguous source slabs.
 *
 * dist is a (num_sources, n) row-major int32 matrix pre-filled with the
 * unreachable sentinel; queues is a (num_threads, n) int32 scratch
 * buffer, one queue per slab.  radius < 0 means unbounded.  Each
 * source's row is written by exactly one slab, so the matrix is
 * bit-identical to the serial traversal (and to the numpy level
 * expansion — BFS distances are unique) no matter how the OpenMP
 * runtime schedules slabs.  Without -fopenmp the pragma is ignored and
 * the slab loop runs serially, still correct.
 */
static void bfs_source_range(const int64_t *indptr, const int64_t *indices,
                             int64_t n, const int64_t *sources,
                             int64_t start, int64_t stop, int64_t radius,
                             int32_t unreachable, int32_t *dist,
                             int32_t *queue) {
    for (int64_t s = start; s < stop; ++s) {
        int32_t *row = dist + s * n;
        int64_t head = 0, tail = 0;
        int64_t src = sources[s];
        row[src] = 0;
        queue[tail++] = (int32_t)src;
        while (head < tail) {
            int32_t node = queue[head++];
            int32_t d = row[node];
            if (radius >= 0 && (int64_t)d >= radius)
                continue;
            int64_t estop = indptr[node + 1];
            for (int64_t e = indptr[node]; e < estop; ++e) {
                int32_t nb = (int32_t)indices[e];
                if (row[nb] == unreachable) {
                    row[nb] = d + 1;
                    queue[tail++] = nb;
                }
            }
        }
    }
}

void repro_bfs_batch(const int64_t *indptr, const int64_t *indices,
                     int64_t n, const int64_t *sources, int64_t num_sources,
                     int64_t radius, int32_t unreachable,
                     int32_t *dist, int32_t *queues, int64_t num_threads) {
    if (num_threads < 1)
        num_threads = 1;
    int64_t slab = (num_sources + num_threads - 1) / num_threads;
    int nt = (int)num_threads;
    #pragma omp parallel for num_threads(nt) schedule(static, 1)
    for (int64_t t = 0; t < num_threads; ++t) {
        int64_t start = t * slab;
        int64_t stop = start + slab < num_sources ? start + slab : num_sources;
        if (start < stop)
            bfs_source_range(indptr, indices, n, sources, start, stop,
                             radius, unreachable, dist, queues + t * n);
    }
}

/* Fused multi-source BFS + statistics fold: eccentricity,
 * finite-distance sum, unreached count and radius-view_radius view
 * size, emitted straight from the traversal — no distance matrix.
 *
 * The traversal is an MS-BFS (Then et al., "The More the Merrier",
 * VLDB 2015): 64 sources advance together through one level-synchronous
 * sweep, their frontiers packed into one uint64 bitmask per node, so a
 * level costs O(m) word-ORs for the whole batch instead of one queue
 * traversal per source.  Per-source statistics fall out of the newly
 * set bits at each level.  The traversal *order* differs from the queue
 * BFS, but the outputs are order-independent aggregates of the (unique)
 * BFS distance function, so they stay bit-identical to the numpy
 * reference — pinned by the parity suites.
 *
 * scratch is a (num_threads, 3 * n) uint64 buffer; each slab uses its
 * three n-word sections as the current frontier, next frontier and
 * visited bitmasks.  radius < 0 means unbounded (nodes beyond a
 * non-negative radius count as unreached); view_radius < 0 means "no
 * view counting" (view sizes report 0).
 */
static void bfs_reduce_range(const int64_t *indptr, const int64_t *indices,
                             int64_t n, const int64_t *sources,
                             int64_t start, int64_t stop, int64_t radius,
                             int64_t view_radius,
                             int64_t *ecc_out, int64_t *sum_out,
                             int64_t *unreached_out, int64_t *view_size_out,
                             uint64_t *cur, uint64_t *next, uint64_t *visited) {
    for (int64_t b = start; b < stop; b += 64) {
        int64_t batch = stop - b < 64 ? stop - b : 64;
        memset(cur, 0, (size_t)n * sizeof(uint64_t));
        memset(visited, 0, (size_t)n * sizeof(uint64_t));
        int64_t ecc[64], total[64], in_view[64], reached[64];
        for (int64_t i = 0; i < batch; ++i) {
            int64_t src = sources[b + i];
            cur[src] |= (uint64_t)1 << i;
            visited[src] |= (uint64_t)1 << i;
            ecc[i] = 0;
            total[i] = 0;
            reached[i] = 1;
            in_view[i] = view_radius >= 0 ? 1 : 0;
        }
        int64_t level = 0;
        int nonempty = 1;
        while (nonempty && (radius < 0 || level < radius)) {
            ++level;
            memset(next, 0, (size_t)n * sizeof(uint64_t));
            for (int64_t v = 0; v < n; ++v) {
                uint64_t w = cur[v];
                if (!w)
                    continue;
                int64_t estop = indptr[v + 1];
                for (int64_t e = indptr[v]; e < estop; ++e)
                    next[indices[e]] |= w;
            }
            int64_t cnt[64];
            memset(cnt, 0, sizeof(cnt));
            nonempty = 0;
            for (int64_t v = 0; v < n; ++v) {
                uint64_t fresh = next[v] & ~visited[v];
                cur[v] = fresh;
                if (!fresh)
                    continue;
                visited[v] |= fresh;
                nonempty = 1;
                do {
                    ++cnt[__builtin_ctzll(fresh)];
                    fresh &= fresh - 1;
                } while (fresh);
            }
            for (int64_t i = 0; i < batch; ++i) {
                if (!cnt[i])
                    continue;
                reached[i] += cnt[i];
                total[i] += cnt[i] * level;
                ecc[i] = level;
                if (view_radius >= 0 && level <= view_radius)
                    in_view[i] += cnt[i];
            }
        }
        for (int64_t i = 0; i < batch; ++i) {
            ecc_out[b + i] = ecc[i];
            sum_out[b + i] = total[i];
            unreached_out[b + i] = n - reached[i];
            view_size_out[b + i] = in_view[i];
        }
    }
}

void repro_bfs_reduce(const int64_t *indptr, const int64_t *indices,
                      int64_t n, const int64_t *sources, int64_t num_sources,
                      int64_t radius, int64_t view_radius, int32_t unreachable,
                      int64_t *ecc_out, int64_t *sum_out,
                      int64_t *unreached_out, int64_t *view_size_out,
                      uint64_t *scratch, int64_t num_threads) {
    (void)unreachable;  /* kept in the ABI for contract symmetry with bfs */
    if (num_threads < 1)
        num_threads = 1;
    /* Slab boundaries aligned to the 64-source batch width so no batch
     * straddles two threads. */
    int64_t num_batches = (num_sources + 63) / 64;
    int64_t batches_per_thread = (num_batches + num_threads - 1) / num_threads;
    int64_t slab = batches_per_thread * 64;
    int nt = (int)num_threads;
    #pragma omp parallel for num_threads(nt) schedule(static, 1)
    for (int64_t t = 0; t < num_threads; ++t) {
        int64_t start = t * slab;
        int64_t stop = start + slab < num_sources ? start + slab : num_sources;
        if (start < stop)
            bfs_reduce_range(indptr, indices, n, sources, start, stop,
                             radius, view_radius,
                             ecc_out, sum_out, unreached_out, view_size_out,
                             scratch + t * 3 * n,
                             scratch + t * 3 * n + n,
                             scratch + t * 3 * n + 2 * n);
    }
}

/* Branch-and-bound set-cover recursion, mirroring the numpy reference
 * step for step: most-constrained element (first minimum in element
 * order), candidates tried in order_by_size order, incumbent updated
 * only on strictly smaller covers.
 */
typedef struct {
    const uint8_t *coverage;   /* (num_free, num_elements) row-major 0/1 */
    int64_t num_free;
    int64_t num_elements;
    const int64_t *order_by_size;
    int64_t best_size;
    int64_t best_len;          /* -1 until the search improves the incumbent */
    int32_t *best_selection;   /* out buffer, num_free entries */
    int32_t *chosen;           /* depth buffer, num_free + 1 entries */
    uint8_t *remaining_stack;  /* (num_free + 2, num_elements) row-major */
} cover_ctx;

static void cover_recurse(cover_ctx *ctx, int64_t depth) {
    const int64_t num_elements = ctx->num_elements;
    const uint8_t *remaining = ctx->remaining_stack + depth * num_elements;
    int64_t num_remaining = 0;
    for (int64_t e = 0; e < num_elements; ++e)
        num_remaining += remaining[e];
    if (num_remaining == 0) {
        if (depth < ctx->best_size) {
            ctx->best_size = depth;
            ctx->best_len = depth;
            for (int64_t i = 0; i < depth; ++i)
                ctx->best_selection[i] = ctx->chosen[i];
        }
        return;
    }
    if (depth + 1 > ctx->best_size)
        return;
    int64_t max_gain = 0;
    for (int64_t c = 0; c < ctx->num_free; ++c) {
        const uint8_t *cov = ctx->coverage + c * num_elements;
        int64_t gain = 0;
        for (int64_t e = 0; e < num_elements; ++e)
            gain += (int64_t)(cov[e] & remaining[e]);
        if (gain > max_gain)
            max_gain = gain;
    }
    if (max_gain == 0)
        return;
    int64_t lower = depth + (num_remaining + max_gain - 1) / max_gain;
    if (lower >= ctx->best_size + 1)
        return;
    /* Most-constrained element: fewest covering candidates, first minimum
     * in element order (numpy's argmin over the remaining columns). */
    int64_t element = -1;
    int64_t element_count = -1;
    for (int64_t e = 0; e < num_elements; ++e) {
        if (!remaining[e])
            continue;
        int64_t count = 0;
        for (int64_t c = 0; c < ctx->num_free; ++c)
            count += (int64_t)ctx->coverage[c * num_elements + e];
        if (element_count < 0 || count < element_count) {
            element_count = count;
            element = e;
        }
    }
    uint8_t *next_remaining = ctx->remaining_stack + (depth + 1) * num_elements;
    for (int64_t pos = 0; pos < ctx->num_free; ++pos) {
        int64_t cand = ctx->order_by_size[pos];
        if (!ctx->coverage[cand * num_elements + element])
            continue;
        int already = 0;
        for (int64_t i = 0; i < depth; ++i) {
            if (ctx->chosen[i] == (int32_t)cand) {
                already = 1;
                break;
            }
        }
        if (already)
            continue;
        const uint8_t *cov = ctx->coverage + cand * num_elements;
        for (int64_t e = 0; e < num_elements; ++e)
            next_remaining[e] = (uint8_t)(remaining[e] & !cov[e]);
        ctx->chosen[depth] = (int32_t)cand;
        cover_recurse(ctx, depth + 1);
    }
}

int64_t repro_cover_search(const uint8_t *coverage, int64_t num_free,
                           int64_t num_elements, const int64_t *order_by_size,
                           int64_t best_size, int32_t *best_selection,
                           int32_t *chosen, uint8_t *remaining_stack) {
    cover_ctx ctx;
    ctx.coverage = coverage;
    ctx.num_free = num_free;
    ctx.num_elements = num_elements;
    ctx.order_by_size = order_by_size;
    ctx.best_size = best_size;
    ctx.best_len = -1;
    ctx.best_selection = best_selection;
    ctx.chosen = chosen;
    ctx.remaining_stack = remaining_stack;
    for (int64_t e = 0; e < num_elements; ++e)
        remaining_stack[e] = 1;
    cover_recurse(&ctx, 0);
    return ctx.best_len;
}
"""

_I64 = ctypes.POINTER(ctypes.c_int64)
_I32 = ctypes.POINTER(ctypes.c_int32)
_U8 = ctypes.POINTER(ctypes.c_uint8)
_U64 = ctypes.POINTER(ctypes.c_uint64)

_library: ctypes.CDLL | None = None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-kernels"


def _compile(cache_dir: Path, target: Path, extra_flags: tuple[str, ...]) -> None:
    from repro.kernels import KernelUnavailableError

    cache_dir.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=cache_dir) as workdir:
        source = Path(workdir) / "kernels.c"
        source.write_text(_SOURCE)
        built = Path(workdir) / target.name
        compiler = os.environ.get("CC", "cc")
        command = [compiler, "-O2", "-shared", "-fPIC", *extra_flags]
        command += ["-o", str(built), str(source)]
        try:
            result = subprocess.run(command, capture_output=True, text=True, timeout=120)
        except (OSError, subprocess.TimeoutExpired) as exc:
            raise KernelUnavailableError(
                f"native kernel backend: C compiler {compiler!r} unusable: {exc}"
            ) from exc
        if result.returncode != 0:
            raise KernelUnavailableError(
                f"native kernel backend: compilation failed:\n{result.stderr}"
            )
        # Atomic publish: another process racing the build lands on the same
        # content-addressed name, so a rename collision is a cache hit.
        try:
            built.replace(target)
        except OSError as exc:  # pragma: no cover - exotic filesystems
            raise KernelUnavailableError(
                f"native kernel backend: cannot install {target}: {exc}"
            ) from exc


def load_library() -> ctypes.CDLL:
    """Compile (once, content-addressed) and load the kernel library.

    The build is attempted with ``-fopenmp`` first (threaded slab loops);
    when the compiler rejects the flag or the produced object cannot be
    loaded (no OpenMP runtime), the same source is rebuilt without it —
    the pragmas are then ignored and the kernels run serially, still
    bit-identical.  The cache name hashes source *and* flags, so the two
    variants never collide.
    """
    global _library
    if _library is not None:
        return _library
    from repro.kernels import KernelUnavailableError

    cache_dir = _cache_dir()
    last_error: KernelUnavailableError | None = None
    for extra_flags in (("-fopenmp",), ()):
        tag = _SOURCE + "\x00" + " ".join(extra_flags)
        digest = hashlib.sha256(tag.encode()).hexdigest()[:16]
        target = cache_dir / f"repro-kernels-{digest}.so"
        if not target.exists():
            try:
                _compile(cache_dir, target, extra_flags)
            except KernelUnavailableError as exc:
                last_error = exc
                continue
        try:
            library = ctypes.CDLL(str(target))
        except OSError as exc:
            last_error = KernelUnavailableError(
                f"native kernel backend: cannot load {target}: {exc}"
            )
            continue
        break
    else:
        raise last_error  # type: ignore[misc]  # loop ran at least once
    library.repro_bfs_batch.argtypes = [
        _I64, _I64, ctypes.c_int64, _I64, ctypes.c_int64,
        ctypes.c_int64, ctypes.c_int32, _I32, _I32, ctypes.c_int64,
    ]
    library.repro_bfs_batch.restype = None
    library.repro_bfs_reduce.argtypes = [
        _I64, _I64, ctypes.c_int64, _I64, ctypes.c_int64,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int32,
        _I64, _I64, _I64, _I64, _U64, ctypes.c_int64,
    ]
    library.repro_bfs_reduce.restype = None
    library.repro_cover_search.argtypes = [
        _U8, ctypes.c_int64, ctypes.c_int64, _I64,
        ctypes.c_int64, _I32, _I32, _U8,
    ]
    library.repro_cover_search.restype = ctypes.c_int64
    _library = library
    return library


def _as_ptr(array: np.ndarray, pointer_type):
    return array.ctypes.data_as(pointer_type)


def _bfs_threaded(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: np.ndarray,
    radius: int | None,
    dist: np.ndarray,
    threads: int,
) -> np.ndarray:
    from repro.kernels.common import UNREACHABLE

    library = load_library()
    n = len(indptr) - 1
    threads = max(1, min(int(threads), max(int(sources.size), 1)))
    indptr = np.ascontiguousarray(indptr, dtype=np.int64)
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    sources = np.ascontiguousarray(sources, dtype=np.int64)
    queues = np.empty(threads * max(n, 1), dtype=np.int32)
    library.repro_bfs_batch(
        _as_ptr(indptr, _I64),
        _as_ptr(indices, _I64),
        n,
        _as_ptr(sources, _I64),
        sources.size,
        -1 if radius is None else int(radius),
        UNREACHABLE,
        _as_ptr(dist, _I32),
        _as_ptr(queues, _I32),
        threads,
    )
    return dist


def _bfs_reduce_threaded(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: np.ndarray,
    radius: int | None,
    view_radius: int | None,
    ecc_out: np.ndarray,
    sum_out: np.ndarray,
    unreached_out: np.ndarray,
    view_size_out: np.ndarray,
    threads: int,
) -> None:
    from repro.kernels.common import UNREACHABLE

    library = load_library()
    n = len(indptr) - 1
    threads = max(1, min(int(threads), max(int(sources.size), 1)))
    indptr = np.ascontiguousarray(indptr, dtype=np.int64)
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    sources = np.ascontiguousarray(sources, dtype=np.int64)
    scratch = np.empty(threads * 3 * max(n, 1), dtype=np.uint64)
    library.repro_bfs_reduce(
        _as_ptr(indptr, _I64),
        _as_ptr(indices, _I64),
        n,
        _as_ptr(sources, _I64),
        sources.size,
        -1 if radius is None else int(radius),
        -1 if view_radius is None else int(view_radius),
        UNREACHABLE,
        _as_ptr(ecc_out, _I64),
        _as_ptr(sum_out, _I64),
        _as_ptr(unreached_out, _I64),
        _as_ptr(view_size_out, _I64),
        _as_ptr(scratch, _U64),
        threads,
    )


def bfs(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: np.ndarray,
    radius: int | None,
    dist: np.ndarray,
) -> np.ndarray:
    """Per-source queue BFS in C; same contract as the numpy backend."""
    return _bfs_threaded(indptr, indices, sources, radius, dist, 1)


def bfs_reduce(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: np.ndarray,
    radius: int | None,
    view_radius: int | None,
    ecc_out: np.ndarray,
    sum_out: np.ndarray,
    unreached_out: np.ndarray,
    view_size_out: np.ndarray,
) -> None:
    """Fused BFS + fold in C; same contract as the numpy backend."""
    _bfs_reduce_threaded(
        indptr, indices, sources, radius, view_radius,
        ecc_out, sum_out, unreached_out, view_size_out, 1,
    )


def make_bfs(threads: int):
    """Build the ``bfs`` kernel for ``threads`` (1 => the serial slab loop)."""
    if threads <= 1:
        return bfs

    def threaded_bfs(indptr, indices, sources, radius, dist):
        return _bfs_threaded(indptr, indices, sources, radius, dist, threads)

    return threaded_bfs


def make_bfs_reduce(threads: int):
    """Build the ``bfs_reduce`` kernel for ``threads`` (1 => the serial slab loop)."""
    if threads <= 1:
        return bfs_reduce

    def threaded_bfs_reduce(
        indptr,
        indices,
        sources,
        radius,
        view_radius,
        ecc_out,
        sum_out,
        unreached_out,
        view_size_out,
    ):
        _bfs_reduce_threaded(
            indptr, indices, sources, radius, view_radius,
            ecc_out, sum_out, unreached_out, view_size_out, threads,
        )

    return threaded_bfs_reduce


def cover_search(
    coverage: np.ndarray,
    order_by_size: np.ndarray,
    best_size: int,
    best_selection: list[int] | None,
) -> tuple[int, list[int] | None]:
    """Branch-and-bound recursion in C; same contract as the numpy backend."""
    library = load_library()
    num_free, num_elements = coverage.shape
    cover_bytes = np.ascontiguousarray(coverage, dtype=np.uint8)
    order = np.ascontiguousarray(order_by_size, dtype=np.int64)
    selection = np.empty(num_free + 1, dtype=np.int32)
    chosen = np.empty(num_free + 1, dtype=np.int32)
    remaining_stack = np.empty((num_free + 2) * num_elements, dtype=np.uint8)
    found = int(
        library.repro_cover_search(
            _as_ptr(cover_bytes, _U8),
            num_free,
            num_elements,
            _as_ptr(order, _I64),
            int(best_size),
            _as_ptr(selection, _I32),
            _as_ptr(chosen, _I32),
            _as_ptr(remaining_stack, _U8),
        )
    )
    if found < 0:
        return best_size, best_selection
    return found, [int(idx) for idx in selection[:found]]
