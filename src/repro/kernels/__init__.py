"""Pluggable compiled kernel backends for the hot loops.

Every layer of the code base — views, metrics, robustness, the sweep
service — bottoms out in three primitives: the multi-source BFS level
expansion behind :func:`repro.graphs.traversal.batched_bfs_distances`,
the *fused* BFS reduction behind
:func:`repro.graphs.traversal.reduce_bfs_distances` (per-source
eccentricity / finite-distance sum / unreached count / view size, emitted
without ever materialising a distance row), and the branch-and-bound
recursion behind
:func:`repro.solvers.set_cover.branch_and_bound_set_cover`.  This package
hosts interchangeable implementations of exactly those kernels:

``numpy``
    The reference.  Exactly the chunked-numpy code the repo was built
    on; always available.
``numba``
    ``@njit``-compiled loops (optional dependency, ``pip install
    repro[kernels]``).  Imported lazily; silently falls back to numpy
    when numba is absent.
``native``
    C sources compiled on demand with the system compiler and bound via
    :mod:`ctypes` (see :mod:`repro.kernels.native_backend`).  Opt-in by
    name — never auto-selected — and unavailable (with fallback) when no
    C compiler is present.

**Bit-identity is the contract.**  Whatever backend runs, distance
matrices (including ``radius`` truncation and ``UNREACHABLE`` marks),
selected covers (including warm-start tie-break order) and therefore
entire dynamics trajectories are identical to the numpy reference; the
equivalence suites in ``tests/graphs/test_kernel_backends.py`` and
``tests/solvers/test_set_cover.py`` pin this.

Selection mirrors ``ENGINE_DEFAULT_SOLVER``: explicit argument >
session override (:func:`set_default_backend` / :func:`use_backend`) >
``REPRO_KERNEL_BACKEND`` environment variable > auto-detect (numba if
importable, else numpy).  A *registered but unavailable* choice (numba
not installed, no C compiler) falls back to numpy silently so optional
speed never becomes a hard dependency; an *unknown* name raises
:class:`ValueError` so typos fail loudly.

**Threads.**  The compiled backends additionally take a ``threads`` knob:
the numba kernels gain ``@njit(parallel=True)`` / ``prange`` variants and
the native build carries OpenMP pragmas, both parallelising *over
sources*.  Each source's output row is written by exactly one
thread/slab, so determinism is structural — threaded results are
bit-identical to single-threaded ones, pinned by the parity suites and
the scaling smoke.  Resolution mirrors the backend chain: explicit
``threads`` argument > session override (:func:`set_default_threads` /
:func:`use_threads`) > ``REPRO_KERNEL_THREADS`` environment variable >
1.  ``0`` (or any non-positive value) means "all cores".  The numpy
reference ignores the knob and always reports ``threads == 1``; the
resolved count rides on :attr:`KernelBackend.threads`.

Kernel contracts (wrappers own validation, allocation and trivial
cases; kernels assume validated inputs):

``bfs(indptr, indices, sources, radius, dist) -> dist``
    CSR ``indptr``/``indices`` (int64), ``sources`` int64 vertex ids,
    ``radius`` int or None, ``dist`` a ``(len(sources), n)`` int32
    matrix pre-filled with ``UNREACHABLE``; fills it in place.
``bfs_reduce(indptr, indices, sources, radius, view_radius, ecc_out,
sum_out, unreached_out, view_size_out)``
    The fused counterpart of ``bfs`` + a per-row fold: emits, per
    source, the eccentricity (largest finite distance), the sum of
    finite distances, the unreached-node count and — when
    ``view_radius`` is not None — the number of nodes within
    ``view_radius``; all four outputs are caller-allocated int64
    vectors of ``len(sources)`` filled in place, and *no*
    ``(len(sources), n)`` distance matrix is ever materialised.
    Because the outputs are order-independent aggregates of the unique
    BFS distance function, implementations may traverse however they
    like — the compiled backends run an MS-BFS (64 sources per uint64
    bitmask batch; Then et al., VLDB 2015) — yet stay bit-identical,
    by definition, to folding the rows ``bfs`` would have produced
    (``radius`` truncation counts truncated nodes as unreached,
    exactly like the materialised fold).
``cover_search(coverage, order_by_size, best_size, best_selection)``
    ``coverage`` a ``(num_candidates, num_elements)`` boolean/uint8
    matrix, ``order_by_size`` the candidate iteration order, and the
    incumbent to beat; returns the tightened ``(size, selection)``
    (unchanged objects when nothing smaller exists).

To add another backend (Cython, Rust over cffi, …): implement the
functions above with bit-identical semantics, raise
:class:`KernelUnavailableError` from the factory when the toolchain is
missing, and :func:`register_backend` it —
:mod:`repro.kernels.native_backend` is the worked example.  A factory
may accept one positional ``threads`` argument to build thread-aware
kernels; zero-argument factories register single-threaded backends.  A
backend whose ``bfs_reduce`` is ``None`` still works everywhere — the
reduction driver falls back to materialise-then-fold through its
``bfs``.
"""

from __future__ import annotations

import importlib
import inspect
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "ENV_VAR",
    "THREADS_ENV_VAR",
    "KernelBackend",
    "KernelUnavailableError",
    "available_backends",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "resolve_threads",
    "set_default_backend",
    "set_default_threads",
    "use_backend",
    "use_threads",
]

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Environment variable consulted when no explicit thread count is given.
THREADS_ENV_VAR = "REPRO_KERNEL_THREADS"

#: Probe order for auto-detection.  ``native`` is deliberately absent:
#: compiling C at import time is opt-in, never a surprise.
AUTO_ORDER = ("numba", "numpy")


class KernelUnavailableError(RuntimeError):
    """Raised when a registered backend cannot be built in this environment."""


@dataclass(frozen=True)
class KernelBackend:
    """A bound set of kernels plus identification metadata.

    ``bfs_reduce`` is optional (``None``): backends without it still work
    everywhere because :func:`repro.graphs.traversal.reduce_bfs_distances`
    falls back to materialise-then-fold through ``bfs``.  ``threads`` is
    the resolved thread count the kernels were built for (always 1 for
    the numpy reference).
    """

    name: str
    bfs: Callable = field(repr=False)
    cover_search: Callable = field(repr=False)
    compiled: bool = False
    bfs_reduce: Callable | None = field(default=None, repr=False)
    threads: int = 1


def _normalize_threads(threads: int) -> int:
    """Map the ``threads`` knob to a concrete positive count (0 => all cores)."""
    if threads <= 0:
        return os.cpu_count() or 1
    return threads


def _build_numpy(threads: int = 1) -> KernelBackend:
    from repro.kernels import numpy_backend

    # The reference is single-threaded by construction; the knob is
    # accepted (so the build cache stays uniform) but always reports 1.
    return KernelBackend(
        name="numpy",
        bfs=numpy_backend.bfs,
        cover_search=numpy_backend.cover_search,
        compiled=False,
        bfs_reduce=numpy_backend.bfs_reduce,
        threads=1,
    )


def _build_numba(threads: int = 1) -> KernelBackend:
    try:
        module = importlib.import_module("repro.kernels.numba_backend")
    except ImportError as exc:
        raise KernelUnavailableError(f"numba backend unavailable: {exc}") from exc
    threads = _normalize_threads(threads)
    return KernelBackend(
        name="numba",
        bfs=module.make_bfs(threads),
        cover_search=module.cover_search,
        compiled=True,
        bfs_reduce=module.make_bfs_reduce(threads),
        threads=threads,
    )


def _build_native(threads: int = 1) -> KernelBackend:
    from repro.kernels import native_backend

    native_backend.load_library()  # raises KernelUnavailableError without a compiler
    threads = _normalize_threads(threads)
    return KernelBackend(
        name="native",
        bfs=native_backend.make_bfs(threads),
        cover_search=native_backend.cover_search,
        compiled=True,
        bfs_reduce=native_backend.make_bfs_reduce(threads),
        threads=threads,
    )


_FACTORIES: dict[str, Callable[..., KernelBackend]] = {
    "numpy": _build_numpy,
    "numba": _build_numba,
    "native": _build_native,
}

#: Build results keyed by ``(name, threads)``, including failures
#: (``None``) so a missing toolchain is probed once per process, not once
#: per call.
_BUILT: dict[tuple[str, int], KernelBackend | None] = {}

_default_override: str | None = None

_default_threads_override: int | None = None


def _factory_takes_threads(factory: Callable[..., KernelBackend]) -> bool:
    """Whether a registered factory accepts the positional ``threads`` arg."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins etc.: assume modern shape
        return True
    for parameter in signature.parameters.values():
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.VAR_POSITIONAL,
        ):
            return True
    return False


def register_backend(name: str, factory: Callable[..., KernelBackend]) -> None:
    """Register (or replace) a backend factory under ``name``.

    The factory may accept one positional ``threads`` argument to build
    thread-aware kernels; zero-argument factories register backends that
    are built identically for every requested thread count.
    """
    _FACTORIES[name] = factory
    for key in [key for key in _BUILT if key[0] == name]:
        del _BUILT[key]


def registered_backends() -> tuple[str, ...]:
    """All registered backend names, available in this environment or not."""
    return tuple(_FACTORIES)


def resolve_threads(threads: int | None = None) -> int:
    """Resolve the thread knob: argument > session override > env var > 1.

    Returns the *knob* value (``0`` meaning "all cores" is preserved);
    backend builders normalise it to a concrete count.
    """
    if threads is not None:
        return threads
    if _default_threads_override is not None:
        return _default_threads_override
    raw = os.environ.get(THREADS_ENV_VAR)
    if raw:
        try:
            return int(raw)
        except ValueError as exc:
            raise ValueError(
                f"{THREADS_ENV_VAR} must be an integer, got {raw!r}"
            ) from exc
    return 1


def _try_build(name: str, threads: int = 1) -> KernelBackend | None:
    factory = _FACTORIES[name]
    if not _factory_takes_threads(factory):
        threads = 1
    key = (name, threads)
    if key in _BUILT:
        return _BUILT[key]
    try:
        backend = factory(threads) if _factory_takes_threads(factory) else factory()
    except KernelUnavailableError:
        backend = None
    _BUILT[key] = backend
    return backend


def get_backend(name: str, threads: int | None = None) -> KernelBackend:
    """Build ``name`` strictly: unknown names and unavailable backends raise."""
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered: {sorted(_FACTORIES)}"
        )
    backend = _try_build(name, resolve_threads(threads))
    if backend is None:
        raise KernelUnavailableError(
            f"kernel backend {name!r} is registered but unavailable here"
        )
    return backend


def available_backends() -> tuple[str, ...]:
    """Names of registered backends that actually build in this environment."""
    return tuple(name for name in _FACTORIES if _try_build(name) is not None)


def resolve_backend(
    choice: str | KernelBackend | None = None, threads: int | None = None
) -> KernelBackend:
    """Resolve a backend: argument > session override > env var > auto.

    ``choice`` may be a :class:`KernelBackend` (returned as-is), a
    registered name, or ``None``.  Names that are registered but cannot
    be built here fall back to the numpy reference silently — optional
    acceleration must never turn into a hard dependency — while unknown
    names raise :class:`ValueError` at every resolution tier.  ``threads``
    follows its own chain (:func:`resolve_threads`) and selects the
    thread count the compiled kernels are built for.
    """
    if isinstance(choice, KernelBackend):
        return choice
    thread_knob = resolve_threads(threads)
    name = choice if choice is not None else _default_override
    if name is None:
        name = os.environ.get(ENV_VAR) or None
    if name is not None:
        if name not in _FACTORIES:
            raise ValueError(
                f"unknown kernel backend {name!r}; registered: {sorted(_FACTORIES)}"
            )
        backend = _try_build(name, thread_knob)
        if backend is not None:
            return backend
        return get_backend("numpy", thread_knob)
    for candidate in AUTO_ORDER:
        backend = _try_build(candidate, thread_knob)
        if backend is not None:
            return backend
    return get_backend("numpy", thread_knob)  # pragma: no cover - numpy always builds


def set_default_backend(name: str | None) -> None:
    """Set (or clear, with ``None``) the process-wide backend override.

    The override outranks ``REPRO_KERNEL_BACKEND`` but not explicit
    per-call arguments.  Sweep workers call this with the orchestrator's
    configured backend so shards inherit it.
    """
    global _default_override
    if name is not None and name not in _FACTORIES:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered: {sorted(_FACTORIES)}"
        )
    _default_override = name


def set_default_threads(threads: int | None) -> None:
    """Set (or clear, with ``None``) the process-wide thread-count override.

    Outranks ``REPRO_KERNEL_THREADS`` but not explicit per-call
    arguments; ``0`` means "all cores".  Sweep workers call this with the
    orchestrator's configured count so shards inherit it.
    """
    global _default_threads_override
    _default_threads_override = threads


@contextmanager
def use_backend(name: str | None) -> Iterator[None]:
    """Scoped :func:`set_default_backend`; ``None`` is a no-op scope."""
    global _default_override
    if name is None:
        yield
        return
    previous = _default_override
    set_default_backend(name)
    try:
        yield
    finally:
        _default_override = previous


@contextmanager
def use_threads(threads: int | None) -> Iterator[None]:
    """Scoped :func:`set_default_threads`; ``None`` is a no-op scope."""
    global _default_threads_override
    if threads is None:
        yield
        return
    previous = _default_threads_override
    set_default_threads(threads)
    try:
        yield
    finally:
        _default_threads_override = previous
