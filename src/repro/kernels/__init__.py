"""Pluggable compiled kernel backends for the two hot loops.

Every layer of the code base — views, metrics, robustness, the sweep
service — bottoms out in two primitives: the multi-source BFS level
expansion behind :func:`repro.graphs.traversal.batched_bfs_distances`
and the branch-and-bound recursion behind
:func:`repro.solvers.set_cover.branch_and_bound_set_cover`.  This package
hosts interchangeable implementations of exactly those two kernels:

``numpy``
    The reference.  Exactly the chunked-numpy code the repo was built
    on; always available.
``numba``
    ``@njit``-compiled loops (optional dependency, ``pip install
    repro[kernels]``).  Imported lazily; silently falls back to numpy
    when numba is absent.
``native``
    C sources compiled on demand with the system compiler and bound via
    :mod:`ctypes` (see :mod:`repro.kernels.native_backend`).  Opt-in by
    name — never auto-selected — and unavailable (with fallback) when no
    C compiler is present.

**Bit-identity is the contract.**  Whatever backend runs, distance
matrices (including ``radius`` truncation and ``UNREACHABLE`` marks),
selected covers (including warm-start tie-break order) and therefore
entire dynamics trajectories are identical to the numpy reference; the
equivalence suites in ``tests/graphs/test_kernel_backends.py`` and
``tests/solvers/test_set_cover.py`` pin this.

Selection mirrors ``ENGINE_DEFAULT_SOLVER``: explicit argument >
session override (:func:`set_default_backend` / :func:`use_backend`) >
``REPRO_KERNEL_BACKEND`` environment variable > auto-detect (numba if
importable, else numpy).  A *registered but unavailable* choice (numba
not installed, no C compiler) falls back to numpy silently so optional
speed never becomes a hard dependency; an *unknown* name raises
:class:`ValueError` so typos fail loudly.

Kernel contracts (wrappers own validation, allocation and trivial
cases; kernels assume validated inputs):

``bfs(indptr, indices, sources, radius, dist) -> dist``
    CSR ``indptr``/``indices`` (int64), ``sources`` int64 vertex ids,
    ``radius`` int or None, ``dist`` a ``(len(sources), n)`` int32
    matrix pre-filled with ``UNREACHABLE``; fills it in place.
``cover_search(coverage, order_by_size, best_size, best_selection)``
    ``coverage`` a ``(num_candidates, num_elements)`` boolean/uint8
    matrix, ``order_by_size`` the candidate iteration order, and the
    incumbent to beat; returns the tightened ``(size, selection)``
    (unchanged objects when nothing smaller exists).

To add another backend (Cython, Rust over cffi, …): implement the two
functions above with bit-identical semantics, raise
:class:`KernelUnavailableError` from the factory when the toolchain is
missing, and :func:`register_backend` it —
:mod:`repro.kernels.native_backend` is the worked example.
"""

from __future__ import annotations

import importlib
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "ENV_VAR",
    "KernelBackend",
    "KernelUnavailableError",
    "available_backends",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Probe order for auto-detection.  ``native`` is deliberately absent:
#: compiling C at import time is opt-in, never a surprise.
AUTO_ORDER = ("numba", "numpy")


class KernelUnavailableError(RuntimeError):
    """Raised when a registered backend cannot be built in this environment."""


@dataclass(frozen=True)
class KernelBackend:
    """A bound pair of kernels plus identification metadata."""

    name: str
    bfs: Callable = field(repr=False)
    cover_search: Callable = field(repr=False)
    compiled: bool = False


def _build_numpy() -> KernelBackend:
    from repro.kernels import numpy_backend

    return KernelBackend(
        name="numpy",
        bfs=numpy_backend.bfs,
        cover_search=numpy_backend.cover_search,
        compiled=False,
    )


def _build_numba() -> KernelBackend:
    try:
        module = importlib.import_module("repro.kernels.numba_backend")
    except ImportError as exc:
        raise KernelUnavailableError(f"numba backend unavailable: {exc}") from exc
    return KernelBackend(
        name="numba", bfs=module.bfs, cover_search=module.cover_search, compiled=True
    )


def _build_native() -> KernelBackend:
    from repro.kernels import native_backend

    native_backend.load_library()  # raises KernelUnavailableError without a compiler
    return KernelBackend(
        name="native",
        bfs=native_backend.bfs,
        cover_search=native_backend.cover_search,
        compiled=True,
    )


_FACTORIES: dict[str, Callable[[], KernelBackend]] = {
    "numpy": _build_numpy,
    "numba": _build_numba,
    "native": _build_native,
}

#: Build results, including failures (``None``) so a missing toolchain is
#: probed once per process, not once per call.
_BUILT: dict[str, KernelBackend | None] = {}

_default_override: str | None = None


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _FACTORIES[name] = factory
    _BUILT.pop(name, None)


def registered_backends() -> tuple[str, ...]:
    """All registered backend names, available in this environment or not."""
    return tuple(_FACTORIES)


def _try_build(name: str) -> KernelBackend | None:
    if name in _BUILT:
        return _BUILT[name]
    try:
        backend = _FACTORIES[name]()
    except KernelUnavailableError:
        backend = None
    _BUILT[name] = backend
    return backend


def get_backend(name: str) -> KernelBackend:
    """Build ``name`` strictly: unknown names and unavailable backends raise."""
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered: {sorted(_FACTORIES)}"
        )
    backend = _try_build(name)
    if backend is None:
        raise KernelUnavailableError(
            f"kernel backend {name!r} is registered but unavailable here"
        )
    return backend


def available_backends() -> tuple[str, ...]:
    """Names of registered backends that actually build in this environment."""
    return tuple(name for name in _FACTORIES if _try_build(name) is not None)


def resolve_backend(choice: str | KernelBackend | None = None) -> KernelBackend:
    """Resolve a backend: argument > session override > env var > auto.

    ``choice`` may be a :class:`KernelBackend` (returned as-is), a
    registered name, or ``None``.  Names that are registered but cannot
    be built here fall back to the numpy reference silently — optional
    acceleration must never turn into a hard dependency — while unknown
    names raise :class:`ValueError` at every resolution tier.
    """
    if isinstance(choice, KernelBackend):
        return choice
    name = choice if choice is not None else _default_override
    if name is None:
        name = os.environ.get(ENV_VAR) or None
    if name is not None:
        if name not in _FACTORIES:
            raise ValueError(
                f"unknown kernel backend {name!r}; registered: {sorted(_FACTORIES)}"
            )
        backend = _try_build(name)
        if backend is not None:
            return backend
        return get_backend("numpy")
    for candidate in AUTO_ORDER:
        backend = _try_build(candidate)
        if backend is not None:
            return backend
    return get_backend("numpy")  # pragma: no cover - numpy always builds


def set_default_backend(name: str | None) -> None:
    """Set (or clear, with ``None``) the process-wide backend override.

    The override outranks ``REPRO_KERNEL_BACKEND`` but not explicit
    per-call arguments.  Sweep workers call this with the orchestrator's
    configured backend so shards inherit it.
    """
    global _default_override
    if name is not None and name not in _FACTORIES:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered: {sorted(_FACTORIES)}"
        )
    _default_override = name


@contextmanager
def use_backend(name: str | None) -> Iterator[None]:
    """Scoped :func:`set_default_backend`; ``None`` is a no-op scope."""
    global _default_override
    if name is None:
        yield
        return
    previous = _default_override
    set_default_backend(name)
    try:
        yield
    finally:
        _default_override = previous
