"""Numba JIT kernel backend (optional dependency).

Importing this module raises :class:`ImportError` when numba is not
installed; the registry in :mod:`repro.kernels` performs the import
lazily and falls back to the numpy reference silently, so a numba-free
environment never notices this file exists.  With numba present, both
hot loops run as ``nopython`` machine code:

* the chunked ``repeat``/``searchsorted``/``unique`` level expansion of
  the numpy BFS becomes one per-source queue loop over the CSR arrays
  (BFS distances are unique, so traversal order cannot change the
  output),
* the fused ``bfs_reduce`` runs an MS-BFS — 64 sources advance together
  through one level-synchronous sweep, frontiers packed into uint64
  bitmasks; its outputs are order-independent aggregates, so the batched
  traversal cannot change them — and
* the branch-and-bound set-cover recursion becomes an explicit-stack
  depth-first search replicating the reference's exact traversal order —
  most-constrained element by first minimum in element order, candidates
  in ``order_by_size`` order, strictly-smaller incumbent updates — so the
  selected covers and every warm-start tie-break are bit-identical.

Kernel contracts are documented in :mod:`repro.kernels`; argument
validation and corner cases live in the graph/solver wrappers.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange  # noqa: F401 - ImportError signals "backend unavailable"

from repro.kernels.common import UNREACHABLE

__all__ = ["bfs", "bfs_reduce", "cover_search", "make_bfs", "make_bfs_reduce"]


@njit(cache=True)
def _bfs_sources(indptr, indices, sources, radius, unreachable, dist, start, stop, queue):
    for s in range(start, stop):
        head = 0
        tail = 0
        src = sources[s]
        dist[s, src] = 0
        queue[tail] = np.int32(src)
        tail += 1
        while head < tail:
            node = queue[head]
            head += 1
            d = dist[s, node]
            if radius >= 0 and d >= radius:
                continue
            for e in range(indptr[node], indptr[node + 1]):
                nb = indices[e]
                if dist[s, nb] == unreachable:
                    dist[s, nb] = d + np.int32(1)
                    queue[tail] = np.int32(nb)
                    tail += 1


@njit(cache=True)
def _bfs_impl(indptr, indices, sources, radius, unreachable, dist):
    n = indptr.shape[0] - 1
    queue = np.empty(n, dtype=np.int32)
    _bfs_sources(
        indptr, indices, sources, radius, unreachable, dist, 0, sources.shape[0], queue
    )


@njit(cache=True, parallel=True)
def _bfs_parallel(indptr, indices, sources, radius, unreachable, dist, num_slabs):
    # Contiguous source slabs, one per prange iteration: each source's row
    # of ``dist`` is written by exactly one slab, so the result is
    # bit-identical to the serial loop no matter how slabs are scheduled.
    n = indptr.shape[0] - 1
    num_sources = sources.shape[0]
    slab = (num_sources + num_slabs - 1) // num_slabs
    for t in prange(num_slabs):
        start = t * slab
        stop = min(start + slab, num_sources)
        if start < stop:
            queue = np.empty(n, dtype=np.int32)
            _bfs_sources(
                indptr, indices, sources, radius, unreachable, dist, start, stop, queue
            )


# Branch-free trailing-zero count for the MS-BFS bit extraction: the
# isolated lowest set bit times this de Bruijn multiplier indexes the
# table (verified for all 64 single-bit words).
_CTZ_MULT = np.uint64(0x03F79D71B4CB0A89)
_CTZ_TABLE = np.array(
    [
        0, 1, 48, 2, 57, 49, 28, 3, 61, 58, 50, 42, 38, 29, 17, 4,
        62, 55, 59, 36, 53, 51, 43, 22, 45, 39, 33, 30, 24, 18, 12, 5,
        63, 47, 56, 27, 60, 41, 37, 16, 54, 35, 52, 21, 44, 32, 23, 11,
        46, 26, 40, 15, 34, 20, 31, 10, 25, 14, 19, 9, 13, 8, 7, 6,
    ],
    dtype=np.int64,
)


@njit(cache=True)
def _bfs_reduce_sources(
    indptr,
    indices,
    sources,
    radius,
    view_radius,
    unreachable,
    ecc_out,
    sum_out,
    unreached_out,
    view_size_out,
    start,
    stop,
    cur,
    nxt,
    visited,
):
    # MS-BFS (Then et al., VLDB 2015): 64 sources advance together, their
    # frontiers packed into one uint64 bitmask per node, so one level costs
    # O(m) word-ORs for the whole batch instead of one queue traversal per
    # source; per-source statistics fall out of the newly set bits at each
    # level.  Traversal order differs from the queue BFS, but the outputs
    # are order-independent aggregates of the unique distance function, so
    # they stay bit-identical to the numpy reference.  ``unreachable`` is
    # unused — kept for contract symmetry with ``bfs``.
    n = indptr.shape[0] - 1
    zero = np.uint64(0)
    one = np.uint64(1)
    cnt = np.empty(64, dtype=np.int64)
    ecc = np.empty(64, dtype=np.int64)
    total = np.empty(64, dtype=np.int64)
    in_view = np.empty(64, dtype=np.int64)
    reached = np.empty(64, dtype=np.int64)
    b = start
    while b < stop:
        batch = min(stop - b, 64)
        for v in range(n):
            cur[v] = zero
            visited[v] = zero
        for i in range(batch):
            src = sources[b + i]
            bit = one << np.uint64(i)
            cur[src] |= bit
            visited[src] |= bit
            ecc[i] = 0
            total[i] = 0
            reached[i] = 1
            in_view[i] = 1 if view_radius >= 0 else 0
        level = np.int64(0)
        nonempty = True
        while nonempty and (radius < 0 or level < radius):
            level += 1
            for v in range(n):
                nxt[v] = zero
            for v in range(n):
                w = cur[v]
                if w == zero:
                    continue
                for e in range(indptr[v], indptr[v + 1]):
                    nxt[indices[e]] |= w
            for i in range(64):
                cnt[i] = 0
            nonempty = False
            for v in range(n):
                fresh = nxt[v] & ~visited[v]
                cur[v] = fresh
                if fresh == zero:
                    continue
                visited[v] |= fresh
                nonempty = True
                while fresh != zero:
                    low = fresh & (zero - fresh)
                    cnt[_CTZ_TABLE[(low * _CTZ_MULT) >> np.uint64(58)]] += 1
                    fresh ^= low
            for i in range(batch):
                if cnt[i] == 0:
                    continue
                reached[i] += cnt[i]
                total[i] += cnt[i] * level
                ecc[i] = level
                if view_radius >= 0 and level <= view_radius:
                    in_view[i] += cnt[i]
        for i in range(batch):
            ecc_out[b + i] = ecc[i]
            sum_out[b + i] = total[i]
            unreached_out[b + i] = np.int64(n) - reached[i]
            view_size_out[b + i] = in_view[i]
        b += 64


@njit(cache=True)
def _bfs_reduce_impl(
    indptr,
    indices,
    sources,
    radius,
    view_radius,
    unreachable,
    ecc_out,
    sum_out,
    unreached_out,
    view_size_out,
):
    n = indptr.shape[0] - 1
    cur = np.empty(n, dtype=np.uint64)
    nxt = np.empty(n, dtype=np.uint64)
    visited = np.empty(n, dtype=np.uint64)
    _bfs_reduce_sources(
        indptr,
        indices,
        sources,
        radius,
        view_radius,
        unreachable,
        ecc_out,
        sum_out,
        unreached_out,
        view_size_out,
        0,
        sources.shape[0],
        cur,
        nxt,
        visited,
    )


@njit(cache=True, parallel=True)
def _bfs_reduce_parallel(
    indptr,
    indices,
    sources,
    radius,
    view_radius,
    unreachable,
    ecc_out,
    sum_out,
    unreached_out,
    view_size_out,
    num_slabs,
):
    n = indptr.shape[0] - 1
    num_sources = sources.shape[0]
    # Slab boundaries aligned to the 64-source MS-BFS batch width so every
    # slab works on full batches (any partition is bit-identical — each
    # source's outputs are independent of its batchmates — alignment just
    # avoids fragmenting batches).
    num_batches = (num_sources + 63) // 64
    slab = ((num_batches + num_slabs - 1) // num_slabs) * 64
    for t in prange(num_slabs):
        start = t * slab
        stop = min(start + slab, num_sources)
        if start < stop:
            # Per-slab scratch allocated inside the prange body: no thread-id
            # bookkeeping, no sharing, no ordering sensitivity.
            cur = np.empty(n, dtype=np.uint64)
            nxt = np.empty(n, dtype=np.uint64)
            visited = np.empty(n, dtype=np.uint64)
            _bfs_reduce_sources(
                indptr,
                indices,
                sources,
                radius,
                view_radius,
                unreachable,
                ecc_out,
                sum_out,
                unreached_out,
                view_size_out,
                start,
                stop,
                cur,
                nxt,
                visited,
            )


@njit(cache=True)
def _cover_search_impl(coverage, order_by_size, best_size, selection_out):
    num_free, num_elements = coverage.shape
    remaining_stack = np.empty((num_free + 2, num_elements), dtype=np.uint8)
    chosen = np.empty(num_free + 1, dtype=np.int32)
    pos_stack = np.empty(num_free + 2, dtype=np.int64)
    elem_stack = np.empty(num_free + 2, dtype=np.int64)
    for e in range(num_elements):
        remaining_stack[0, e] = 1
    best_len = np.int64(-1)
    depth = 0
    entering = True
    while depth >= 0:
        if entering:
            num_remaining = 0
            for e in range(num_elements):
                num_remaining += remaining_stack[depth, e]
            if num_remaining == 0:
                if depth < best_size:
                    best_size = depth
                    best_len = depth
                    for i in range(depth):
                        selection_out[i] = chosen[i]
                entering = False
                depth -= 1
                continue
            if depth + 1 > best_size:
                entering = False
                depth -= 1
                continue
            max_gain = 0
            for c in range(num_free):
                gain = 0
                for e in range(num_elements):
                    gain += coverage[c, e] & remaining_stack[depth, e]
                if gain > max_gain:
                    max_gain = gain
            if max_gain == 0:
                entering = False
                depth -= 1
                continue
            lower = depth + (num_remaining + max_gain - 1) // max_gain
            if lower >= best_size + 1:
                entering = False
                depth -= 1
                continue
            # Most-constrained element: fewest covering candidates, first
            # minimum in element order (matches numpy argmin).
            element = np.int64(-1)
            element_count = np.int64(-1)
            for e in range(num_elements):
                if remaining_stack[depth, e] == 0:
                    continue
                count = np.int64(0)
                for c in range(num_free):
                    count += coverage[c, e]
                if element_count < 0 or count < element_count:
                    element_count = count
                    element = e
            elem_stack[depth] = element
            pos_stack[depth] = 0
        pushed = False
        pos = pos_stack[depth]
        element = elem_stack[depth]
        while pos < num_free:
            cand = order_by_size[pos]
            pos += 1
            if coverage[cand, element] == 0:
                continue
            already = False
            for i in range(depth):
                if chosen[i] == cand:
                    already = True
                    break
            if already:
                continue
            pos_stack[depth] = pos
            for e in range(num_elements):
                remaining_stack[depth + 1, e] = remaining_stack[depth, e] & (
                    1 - coverage[cand, e]
                )
            chosen[depth] = np.int32(cand)
            depth += 1
            entering = True
            pushed = True
            break
        if not pushed:
            entering = False
            depth -= 1
    return best_size, best_len


def bfs(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: np.ndarray,
    radius: int | None,
    dist: np.ndarray,
) -> np.ndarray:
    """Per-source queue BFS, JIT-compiled; same contract as numpy ``bfs``."""
    _bfs_impl(
        np.ascontiguousarray(indptr, dtype=np.int64),
        np.ascontiguousarray(indices, dtype=np.int64),
        np.ascontiguousarray(sources, dtype=np.int64),
        np.int64(-1 if radius is None else int(radius)),
        np.int32(UNREACHABLE),
        dist,
    )
    return dist


def bfs_reduce(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: np.ndarray,
    radius: int | None,
    view_radius: int | None,
    ecc_out: np.ndarray,
    sum_out: np.ndarray,
    unreached_out: np.ndarray,
    view_size_out: np.ndarray,
) -> None:
    """Fused MS-BFS + fold, JIT-compiled; same contract as numpy ``bfs_reduce``."""
    _bfs_reduce_impl(
        np.ascontiguousarray(indptr, dtype=np.int64),
        np.ascontiguousarray(indices, dtype=np.int64),
        np.ascontiguousarray(sources, dtype=np.int64),
        np.int64(-1 if radius is None else int(radius)),
        np.int64(-1 if view_radius is None else int(view_radius)),
        np.int32(UNREACHABLE),
        ecc_out,
        sum_out,
        unreached_out,
        view_size_out,
    )


def make_bfs(threads: int):
    """Build the ``bfs`` kernel for ``threads`` (1 => the serial impl)."""
    if threads <= 1:
        return bfs

    def threaded_bfs(indptr, indices, sources, radius, dist):
        _bfs_parallel(
            np.ascontiguousarray(indptr, dtype=np.int64),
            np.ascontiguousarray(indices, dtype=np.int64),
            np.ascontiguousarray(sources, dtype=np.int64),
            np.int64(-1 if radius is None else int(radius)),
            np.int32(UNREACHABLE),
            dist,
            np.int64(threads),
        )
        return dist

    return threaded_bfs


def make_bfs_reduce(threads: int):
    """Build the ``bfs_reduce`` kernel for ``threads`` (1 => the serial impl)."""
    if threads <= 1:
        return bfs_reduce

    def threaded_bfs_reduce(
        indptr,
        indices,
        sources,
        radius,
        view_radius,
        ecc_out,
        sum_out,
        unreached_out,
        view_size_out,
    ):
        _bfs_reduce_parallel(
            np.ascontiguousarray(indptr, dtype=np.int64),
            np.ascontiguousarray(indices, dtype=np.int64),
            np.ascontiguousarray(sources, dtype=np.int64),
            np.int64(-1 if radius is None else int(radius)),
            np.int64(-1 if view_radius is None else int(view_radius)),
            np.int32(UNREACHABLE),
            ecc_out,
            sum_out,
            unreached_out,
            view_size_out,
            np.int64(threads),
        )

    return threaded_bfs_reduce


def cover_search(
    coverage: np.ndarray,
    order_by_size: np.ndarray,
    best_size: int,
    best_selection: list[int] | None,
) -> tuple[int, list[int] | None]:
    """Explicit-stack branch and bound; same contract as numpy ``cover_search``."""
    num_free = coverage.shape[0]
    selection_out = np.empty(num_free + 1, dtype=np.int32)
    found_size, found_len = _cover_search_impl(
        np.ascontiguousarray(coverage, dtype=np.uint8),
        np.ascontiguousarray(order_by_size, dtype=np.int64),
        np.int64(best_size),
        selection_out,
    )
    if found_len < 0:
        return best_size, best_selection
    return int(found_size), [int(idx) for idx in selection_out[:found_len]]
