"""Numba JIT kernel backend (optional dependency).

Importing this module raises :class:`ImportError` when numba is not
installed; the registry in :mod:`repro.kernels` performs the import
lazily and falls back to the numpy reference silently, so a numba-free
environment never notices this file exists.  With numba present, both
hot loops run as ``nopython`` machine code:

* the chunked ``repeat``/``searchsorted``/``unique`` level expansion of
  the numpy BFS becomes one per-source queue loop over the CSR arrays
  (BFS distances are unique, so traversal order cannot change the
  output), and
* the branch-and-bound set-cover recursion becomes an explicit-stack
  depth-first search replicating the reference's exact traversal order —
  most-constrained element by first minimum in element order, candidates
  in ``order_by_size`` order, strictly-smaller incumbent updates — so the
  selected covers and every warm-start tie-break are bit-identical.

Kernel contracts are documented in :mod:`repro.kernels`; argument
validation and corner cases live in the graph/solver wrappers.
"""

from __future__ import annotations

import numpy as np
from numba import njit  # noqa: F401 - ImportError here signals "backend unavailable"

from repro.kernels.common import UNREACHABLE

__all__ = ["bfs", "cover_search"]


@njit(cache=True)
def _bfs_impl(indptr, indices, sources, radius, unreachable, dist):
    n = indptr.shape[0] - 1
    queue = np.empty(n, dtype=np.int32)
    for s in range(sources.shape[0]):
        head = 0
        tail = 0
        src = sources[s]
        dist[s, src] = 0
        queue[tail] = np.int32(src)
        tail += 1
        while head < tail:
            node = queue[head]
            head += 1
            d = dist[s, node]
            if radius >= 0 and d >= radius:
                continue
            for e in range(indptr[node], indptr[node + 1]):
                nb = indices[e]
                if dist[s, nb] == unreachable:
                    dist[s, nb] = d + np.int32(1)
                    queue[tail] = np.int32(nb)
                    tail += 1


@njit(cache=True)
def _cover_search_impl(coverage, order_by_size, best_size, selection_out):
    num_free, num_elements = coverage.shape
    remaining_stack = np.empty((num_free + 2, num_elements), dtype=np.uint8)
    chosen = np.empty(num_free + 1, dtype=np.int32)
    pos_stack = np.empty(num_free + 2, dtype=np.int64)
    elem_stack = np.empty(num_free + 2, dtype=np.int64)
    for e in range(num_elements):
        remaining_stack[0, e] = 1
    best_len = np.int64(-1)
    depth = 0
    entering = True
    while depth >= 0:
        if entering:
            num_remaining = 0
            for e in range(num_elements):
                num_remaining += remaining_stack[depth, e]
            if num_remaining == 0:
                if depth < best_size:
                    best_size = depth
                    best_len = depth
                    for i in range(depth):
                        selection_out[i] = chosen[i]
                entering = False
                depth -= 1
                continue
            if depth + 1 > best_size:
                entering = False
                depth -= 1
                continue
            max_gain = 0
            for c in range(num_free):
                gain = 0
                for e in range(num_elements):
                    gain += coverage[c, e] & remaining_stack[depth, e]
                if gain > max_gain:
                    max_gain = gain
            if max_gain == 0:
                entering = False
                depth -= 1
                continue
            lower = depth + (num_remaining + max_gain - 1) // max_gain
            if lower >= best_size + 1:
                entering = False
                depth -= 1
                continue
            # Most-constrained element: fewest covering candidates, first
            # minimum in element order (matches numpy argmin).
            element = np.int64(-1)
            element_count = np.int64(-1)
            for e in range(num_elements):
                if remaining_stack[depth, e] == 0:
                    continue
                count = np.int64(0)
                for c in range(num_free):
                    count += coverage[c, e]
                if element_count < 0 or count < element_count:
                    element_count = count
                    element = e
            elem_stack[depth] = element
            pos_stack[depth] = 0
        pushed = False
        pos = pos_stack[depth]
        element = elem_stack[depth]
        while pos < num_free:
            cand = order_by_size[pos]
            pos += 1
            if coverage[cand, element] == 0:
                continue
            already = False
            for i in range(depth):
                if chosen[i] == cand:
                    already = True
                    break
            if already:
                continue
            pos_stack[depth] = pos
            for e in range(num_elements):
                remaining_stack[depth + 1, e] = remaining_stack[depth, e] & (
                    1 - coverage[cand, e]
                )
            chosen[depth] = np.int32(cand)
            depth += 1
            entering = True
            pushed = True
            break
        if not pushed:
            entering = False
            depth -= 1
    return best_size, best_len


def bfs(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: np.ndarray,
    radius: int | None,
    dist: np.ndarray,
) -> np.ndarray:
    """Per-source queue BFS, JIT-compiled; same contract as numpy ``bfs``."""
    _bfs_impl(
        np.ascontiguousarray(indptr, dtype=np.int64),
        np.ascontiguousarray(indices, dtype=np.int64),
        np.ascontiguousarray(sources, dtype=np.int64),
        np.int64(-1 if radius is None else int(radius)),
        np.int32(UNREACHABLE),
        dist,
    )
    return dist


def cover_search(
    coverage: np.ndarray,
    order_by_size: np.ndarray,
    best_size: int,
    best_selection: list[int] | None,
) -> tuple[int, list[int] | None]:
    """Explicit-stack branch and bound; same contract as numpy ``cover_search``."""
    num_free = coverage.shape[0]
    selection_out = np.empty(num_free + 1, dtype=np.int32)
    found_size, found_len = _cover_search_impl(
        np.ascontiguousarray(coverage, dtype=np.uint8),
        np.ascontiguousarray(order_by_size, dtype=np.int64),
        np.int64(best_size),
        selection_out,
    )
    if found_len < 0:
        return best_size, best_selection
    return int(found_size), [int(idx) for idx in selection_out[:found_len]]
