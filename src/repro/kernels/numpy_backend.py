"""The numpy reference kernels — the bit-identity baseline.

These are exactly the pure-Python-over-numpy hot loops the rest of the
code base was built on: the chunked multi-source frontier expansion behind
:func:`repro.graphs.traversal.batched_bfs_distances` and the
branch-and-bound recursion behind
:func:`repro.solvers.set_cover.branch_and_bound_set_cover`.  Every other
backend is measured against this module: *bit-identical outputs, faster
machinery*.  The wrappers in the graph/solver layers own all argument
validation and corner cases; the kernels here assume validated inputs
(see :mod:`repro.kernels` for the exact contracts).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.common import MAX_EXPANSION_INCIDENCES, UNREACHABLE

__all__ = ["bfs", "bfs_reduce", "cover_search"]


def bfs(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: np.ndarray,
    radius: int | None,
    dist: np.ndarray,
) -> np.ndarray:
    """Chunked multi-source frontier BFS (one numpy batch per level).

    All frontiers advance together: one level of every source's BFS is a
    batch of NumPy gather/scatter operations (``repeat`` to expand
    adjacency runs, a fancy-indexed visited test, ``unique`` to dedupe the
    next frontier), so the Python-level loop runs once per BFS *level*,
    not once per vertex.  Levels whose total incidence count exceeds
    :data:`~repro.kernels.common.MAX_EXPANSION_INCIDENCES` are expanded
    chunk by chunk, so the transient scratch stays bounded no matter how
    many sources run at once; the distance marks written by one chunk
    deduplicate the next chunk's rediscoveries, making the chunked
    expansion bit-identical to the monolithic one.

    When no frontier row holds more than one vertex, no two incidences of
    a level can produce the same (row, neighbour) pair — each row's
    candidates come from a single adjacency run of a simple graph — so the
    ``np.unique`` dedup sort is skipped outright (common on the sparse
    late-level frontiers of high-girth graphs; the level sets, and with
    them the output, are identical by construction).
    """
    n = len(indptr) - 1
    num_sources = sources.size
    row = np.arange(num_sources, dtype=np.int32)
    dist[row, sources] = 0
    frontier_row = row
    frontier_node = sources.astype(np.int32)
    level = 0
    while frontier_node.size:
        level += 1
        if radius is not None and level > radius:
            break
        starts = indptr[frontier_node]
        counts = indptr[frontier_node + 1] - starts
        if int(counts.sum()) == 0:
            break
        cumulative = np.cumsum(counts)
        # One frontier vertex per row ⇒ per-row candidates are the
        # neighbours of a single vertex, which a simple graph never
        # duplicates — the unique pass below would be a no-op sort.
        rows_unique = bool(np.bincount(frontier_row).max(initial=0) <= 1)
        next_rows: list[np.ndarray] = []
        next_nodes: list[np.ndarray] = []
        chunk_start = 0
        while chunk_start < frontier_node.size:
            base = int(cumulative[chunk_start - 1]) if chunk_start else 0
            chunk_stop = int(
                np.searchsorted(
                    cumulative, base + MAX_EXPANSION_INCIDENCES, side="right"
                )
            )
            # Always advance by at least one frontier vertex, even when a
            # single vertex's adjacency run exceeds the expansion cap.
            chunk_stop = max(chunk_stop, chunk_start + 1)
            sub_counts = counts[chunk_start:chunk_stop]
            total = int(sub_counts.sum())
            if total == 0:
                chunk_start = chunk_stop
                continue
            # Flat positions of every (frontier vertex, neighbour) incidence
            # in this chunk: per frontier entry an arange(start, start +
            # count), vectorised.
            expanded_row = np.repeat(frontier_row[chunk_start:chunk_stop], sub_counts)
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(sub_counts) - sub_counts, sub_counts
            )
            neighbours = indices[
                np.repeat(starts[chunk_start:chunk_stop], sub_counts) + offsets
            ].astype(np.int32)
            unvisited = dist[expanded_row, neighbours] == UNREACHABLE
            chunk_start = chunk_stop
            if not unvisited.any():
                continue
            expanded_row = expanded_row[unvisited]
            neighbours = neighbours[unvisited]
            if rows_unique:
                # No duplicates possible (see above): the visited test
                # against earlier chunks' marks was the whole dedup.
                new_row = expanded_row
                new_node = neighbours
            else:
                # The same (row, neighbour) pair can be produced by several
                # frontier vertices; keep one representative per pair.
                # Across chunks the distance marks just written do the
                # deduplication.
                _, first = np.unique(
                    expanded_row.astype(np.int64) * n + neighbours, return_index=True
                )
                new_row = expanded_row[first]
                new_node = neighbours[first]
            dist[new_row, new_node] = level
            next_rows.append(new_row)
            next_nodes.append(new_node)
        if not next_rows:
            break
        if len(next_rows) == 1:
            frontier_row, frontier_node = next_rows[0], next_nodes[0]
        else:
            frontier_row = np.concatenate(next_rows)
            frontier_node = np.concatenate(next_nodes)
    return dist


def bfs_reduce(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: np.ndarray,
    radius: int | None,
    view_radius: int | None,
    ecc_out: np.ndarray,
    sum_out: np.ndarray,
    unreached_out: np.ndarray,
    view_size_out: np.ndarray,
) -> None:
    """Fused chunked frontier BFS + per-source statistics fold.

    The same level expansion as :func:`bfs`, but instead of writing an
    int32 distance row per source it folds every newly discovered level
    straight into the per-source scalars (eccentricity, finite-distance
    sum, unreached count, radius-``view_radius`` view size) with one
    ``np.bincount`` per expansion chunk.  The only per-node state is a
    boolean visited matrix — a quarter of the distance matrix's footprint
    and never exposed to the caller — so the statistics sweep stops
    materialising ``(len(sources), n)`` distance slices entirely.

    Bit-identity with materialise-then-fold is structural: the visited
    test ``~visited[row, node]`` marks exactly the entries the distance
    test ``dist[row, node] == UNREACHABLE`` would, so the discovered
    level sets — and therefore every fold — are identical.
    """
    n = len(indptr) - 1
    num_sources = sources.size
    visited = np.zeros((num_sources, n), dtype=bool)
    row = np.arange(num_sources, dtype=np.int32)
    visited[row, sources] = True
    ecc_out[:] = 0
    sum_out[:] = 0
    reached = np.ones(num_sources, dtype=np.int64)
    count_views = view_radius is not None
    # The source sits at distance 0 of itself: inside every view of
    # non-negative radius, outside a (degenerate) negative-radius one —
    # exactly the ``dist <= view_radius`` fold on materialised rows.
    view_size_out[:] = 1 if count_views and view_radius >= 0 else 0
    frontier_row = row
    frontier_node = sources.astype(np.int32)
    level = 0
    while frontier_node.size:
        level += 1
        if radius is not None and level > radius:
            break
        starts = indptr[frontier_node]
        counts = indptr[frontier_node + 1] - starts
        if int(counts.sum()) == 0:
            break
        cumulative = np.cumsum(counts)
        rows_unique = bool(np.bincount(frontier_row).max(initial=0) <= 1)
        in_view = count_views and level <= view_radius
        next_rows: list[np.ndarray] = []
        next_nodes: list[np.ndarray] = []
        chunk_start = 0
        while chunk_start < frontier_node.size:
            base = int(cumulative[chunk_start - 1]) if chunk_start else 0
            chunk_stop = int(
                np.searchsorted(
                    cumulative, base + MAX_EXPANSION_INCIDENCES, side="right"
                )
            )
            chunk_stop = max(chunk_stop, chunk_start + 1)
            sub_counts = counts[chunk_start:chunk_stop]
            total = int(sub_counts.sum())
            if total == 0:
                chunk_start = chunk_stop
                continue
            expanded_row = np.repeat(frontier_row[chunk_start:chunk_stop], sub_counts)
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(sub_counts) - sub_counts, sub_counts
            )
            neighbours = indices[
                np.repeat(starts[chunk_start:chunk_stop], sub_counts) + offsets
            ].astype(np.int32)
            unvisited = ~visited[expanded_row, neighbours]
            chunk_start = chunk_stop
            if not unvisited.any():
                continue
            expanded_row = expanded_row[unvisited]
            neighbours = neighbours[unvisited]
            if rows_unique:
                new_row = expanded_row
                new_node = neighbours
            else:
                _, first = np.unique(
                    expanded_row.astype(np.int64) * n + neighbours, return_index=True
                )
                new_row = expanded_row[first]
                new_node = neighbours[first]
            visited[new_row, new_node] = True
            # The fused fold: this chunk's discoveries all sit at ``level``.
            discovered = np.bincount(new_row, minlength=num_sources).astype(np.int64)
            reached += discovered
            sum_out += discovered * level
            ecc_out[discovered > 0] = level
            if in_view:
                view_size_out += discovered
            next_rows.append(new_row)
            next_nodes.append(new_node)
        if not next_rows:
            break
        if len(next_rows) == 1:
            frontier_row, frontier_node = next_rows[0], next_nodes[0]
        else:
            frontier_row = np.concatenate(next_rows)
            frontier_node = np.concatenate(next_nodes)
    unreached_out[:] = n - reached


def cover_search(
    coverage: np.ndarray,
    order_by_size: np.ndarray,
    best_size: int,
    best_selection: list[int] | None,
) -> tuple[int, list[int] | None]:
    """The branch-and-bound set-cover recursion over the residual instance.

    Branches on the uncovered element with the fewest covering candidates
    (the most constrained element), prunes with the incumbent handed in by
    the caller (greedy / warm-start seeded) and the simple lower bound
    ``ceil(#uncovered / max coverage size)``, and tries the candidates
    covering the branching element in ``order_by_size`` order.  Returns the
    tightened ``(best_size, best_selection)`` incumbent — unchanged when
    the search proves nothing smaller exists.
    """

    def recurse(remaining: np.ndarray, chosen: list[int]) -> None:
        nonlocal best_size, best_selection
        num_remaining = int(remaining.sum())
        if num_remaining == 0:
            if len(chosen) < best_size:
                best_size = len(chosen)
                best_selection = list(chosen)
            return
        if len(chosen) + 1 > best_size:
            return
        max_gain = int((coverage & remaining).sum(axis=1).max(initial=0))
        if max_gain == 0:
            return
        lower = len(chosen) + int(np.ceil(num_remaining / max_gain))
        if lower >= best_size + 1:
            return
        # Most-constrained element: fewest candidates cover it.
        candidate_counts = coverage[:, remaining].sum(axis=0)
        target_positions = np.flatnonzero(remaining)
        local_target = int(np.argmin(candidate_counts))
        element = int(target_positions[local_target])
        covering = [int(c) for c in order_by_size if coverage[c, element]]
        for candidate in covering:
            if candidate in chosen:
                continue
            new_remaining = remaining & ~coverage[candidate]
            chosen.append(candidate)
            recurse(new_remaining, chosen)
            chosen.pop()

    recurse(np.ones(coverage.shape[1], dtype=bool), [])
    return best_size, best_selection
