"""Incremental best-response dynamics engine.

The simulation subsystem behind :func:`repro.core.dynamics.best_response_dynamics`:

* :mod:`repro.engine.state` — versioned mutable network state that applies
  strategy changes as edge deltas (no per-activation graph rebuild);
* :mod:`repro.engine.views` — incremental view cache invalidating only the
  players whose k-ball intersects a changed edge (dirty-region BFS);
* :mod:`repro.engine.schedulers` — pluggable activation orderings (the
  paper's ``fixed``/``shuffled`` plus ``random_sequential``,
  ``max_improvement`` and ``parallel_batch``);
* :mod:`repro.engine.core` — the :class:`DynamicsEngine` round loop tying
  state, views and scheduler together, with per-player best-response
  memoisation.

``fixed`` and ``shuffled`` runs are trajectory-identical to the legacy
rebuild-from-scratch loop (kept as
:func:`repro.core.dynamics.best_response_dynamics_reference`); the engine
is just faster.
"""

from repro.engine.core import DynamicsEngine, coerce_profile
from repro.engine.schedulers import (
    SCHEDULERS,
    FixedScheduler,
    MaxImprovementScheduler,
    ParallelBatchScheduler,
    RandomSequentialScheduler,
    Scheduler,
    ShuffledScheduler,
    make_scheduler,
)
from repro.engine.state import NetworkState, StrategyDelta
from repro.engine.views import IncrementalViewCache, ViewStore

__all__ = [
    "DynamicsEngine",
    "coerce_profile",
    "NetworkState",
    "StrategyDelta",
    "IncrementalViewCache",
    "ViewStore",
    "Scheduler",
    "FixedScheduler",
    "ShuffledScheduler",
    "RandomSequentialScheduler",
    "MaxImprovementScheduler",
    "ParallelBatchScheduler",
    "SCHEDULERS",
    "make_scheduler",
]
