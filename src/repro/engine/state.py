"""Versioned mutable network state.

The legacy dynamics loop treated :class:`~repro.core.strategies.StrategyProfile`
as the single source of truth and rebuilt the induced graph from scratch
after every strategy change.  :class:`NetworkState` inverts that: it keeps
*one* mutable :class:`~repro.graphs.graph.Graph` alive for the whole run and
applies strategy changes as edge-level deltas, relying on the graph's
monotone ``version`` counter so downstream caches (views, CSR exports) can
detect staleness cheaply.

Edge semantics follow the game: the undirected edge ``(u, v)`` is present
iff ``v ∈ σ_u`` or ``u ∈ σ_v``, so dropping a target only removes the edge
when the other endpoint does not also buy it — a pure *ownership flip*
leaves the topology untouched (and is reported through
:attr:`StrategyDelta.buyer_changes` instead).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.strategies import StrategyProfile
from repro.graphs.graph import Edge, Graph, Node

__all__ = ["StrategyDelta", "NetworkState"]


@dataclass(frozen=True)
class StrategyDelta:
    """The exact structural effect of one strategy change.

    Attributes
    ----------
    player:
        The player whose strategy changed.
    old_strategy / new_strategy:
        Her strategy before / after the change.
    added_edges / removed_edges:
        Undirected edges actually inserted into / removed from the network
        (double-bought edges do not appear: buying an edge the other
        endpoint already owns changes ownership, not topology).
    buyer_changes:
        Targets whose *buyer set* changed (``old ∆ new``); the views of
        these players must be refreshed even when no edge moved, because a
        view records who bought the edges incident to its observer.
    """

    player: Node
    old_strategy: frozenset[Node]
    new_strategy: frozenset[Node]
    added_edges: tuple[Edge, ...]
    removed_edges: tuple[Edge, ...]
    buyer_changes: tuple[Node, ...]

    @property
    def changes_topology(self) -> bool:
        return bool(self.added_edges or self.removed_edges)


class NetworkState:
    """Mutable mirror of a strategy profile with incremental edge updates.

    Holds the strategies, the induced graph (mutated in place, never
    rebuilt) and the reverse ``buyers`` index ``{player: set of buyers}``
    that :meth:`repro.core.strategies.StrategyProfile.buyers_of` otherwise
    recomputes in ``O(n)`` per call.
    """

    __slots__ = ("_strategies", "_graph", "_buyers", "_revision")

    def __init__(self, strategies: dict[Node, frozenset[Node]]) -> None:
        self._strategies = dict(strategies)
        self._revision = 0
        graph = Graph(nodes=self._strategies)
        buyers: dict[Node, set[Node]] = {node: set() for node in self._strategies}
        for player, targets in self._strategies.items():
            for target in targets:
                graph.add_edge(player, target)
                buyers[target].add(player)
        self._graph = graph
        self._buyers = buyers

    @classmethod
    def from_profile(cls, profile: StrategyProfile) -> "NetworkState":
        return cls({player: profile.strategy(player) for player in profile})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The live induced network (mutated in place by :meth:`apply`)."""
        return self._graph

    @property
    def version(self) -> int:
        return self._graph.version

    @property
    def revision(self) -> int:
        """Monotone strategy-content counter, bumped on every applied delta.

        Unlike :attr:`version` (the graph's structural counter), this also
        moves on pure ownership flips — a double-bought edge changing hands
        alters buyer sets (and therefore view content) without touching the
        topology.  Caches keyed on full state content must key on this.
        """
        return self._revision

    def players(self) -> list[Node]:
        return list(self._strategies)

    def strategy(self, player: Node) -> frozenset[Node]:
        return self._strategies[player]

    def buyers_of(self, player: Node) -> set[Node]:
        """Players currently buying an edge towards ``player`` (live set)."""
        return self._buyers[player]

    def canonical_key(self) -> tuple:
        """Same canonical form as :meth:`StrategyProfile.canonical_key`."""
        return tuple(
            (player, tuple(sorted(targets, key=repr)))
            for player, targets in sorted(
                self._strategies.items(), key=lambda kv: repr(kv[0])
            )
        )

    def to_profile(self) -> StrategyProfile:
        """Materialise an immutable snapshot of the current strategies."""
        return StrategyProfile(dict(self._strategies))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def preview(self, player: Node, new_targets: frozenset[Node]) -> StrategyDelta:
        """The delta :meth:`apply` *would* produce, without applying it.

        Callers that must look at the pre-change graph (dirty-region BFS
        around edges about to disappear) use this before mutating.
        """
        if player not in self._strategies:
            raise KeyError(f"unknown player {player!r}")
        new = frozenset(new_targets)
        if player in new:
            raise ValueError(f"player {player!r} cannot buy an edge to herself")
        unknown = new - self._strategies.keys()
        if unknown:
            raise ValueError(
                f"player {player!r} buys edges to non-players "
                f"{sorted(map(repr, unknown))}"
            )
        old = self._strategies[player]
        added_targets = new - old
        removed_targets = old - new
        added_edges = tuple(
            (player, target)
            for target in added_targets
            if player not in self._strategies[target]
        )
        removed_edges = tuple(
            (player, target)
            for target in removed_targets
            if player not in self._strategies[target]
        )
        return StrategyDelta(
            player=player,
            old_strategy=old,
            new_strategy=new,
            added_edges=added_edges,
            removed_edges=removed_edges,
            buyer_changes=tuple(added_targets | removed_targets),
        )

    def apply(self, delta: StrategyDelta) -> None:
        """Apply a previously previewed delta to strategies, graph and buyers."""
        player = delta.player
        if self._strategies[player] != delta.old_strategy:
            raise ValueError(
                f"stale delta for player {player!r}: strategy changed since preview"
            )
        self._strategies[player] = delta.new_strategy
        self._revision += 1
        for target in delta.buyer_changes:
            if target in delta.new_strategy:
                self._buyers[target].add(player)
            else:
                self._buyers[target].discard(player)
        for u, v in delta.removed_edges:
            self._graph.remove_edge(u, v)
        for u, v in delta.added_edges:
            self._graph.add_edge(u, v)

    def set_strategy(self, player: Node, new_targets: frozenset[Node]) -> StrategyDelta:
        """Preview-and-apply in one step; returns the applied delta."""
        delta = self.preview(player, new_targets)
        self.apply(delta)
        return delta
