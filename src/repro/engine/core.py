"""The incremental best-response dynamics engine.

:class:`DynamicsEngine` replaces the legacy rebuild-the-world inner loop of
:func:`repro.core.dynamics.best_response_dynamics` with stateful,
incremental machinery:

* a :class:`~repro.engine.state.NetworkState` applies strategy changes as
  edge deltas on one live graph (no per-activation profile/graph rebuild);
* an :class:`~repro.engine.views.IncrementalViewCache` re-extracts only the
  views inside the dirty region of each delta;
* best responses are memoised per ``(view token, strategy)`` — a player
  whose neighbourhood did not change since her last activation is skipped
  at ~zero cost, which is where the bulk of the speed-up comes from (the
  certifying final round of every converged run, and most activations of
  the quiet late rounds, become cache hits);
* the intra-round activation policy is delegated to a pluggable
  :class:`~repro.engine.schedulers.Scheduler`.

For the ``fixed`` and ``shuffled`` schedulers the engine reproduces the
legacy trajectories *exactly* (same final profile, rounds, cycled flag,
total changes) — this is enforced by the equivalence suite in
``tests/engine/test_equivalence.py``.
"""

from __future__ import annotations

import random
import warnings

from repro.core.best_response import (
    ENGINE_DEFAULT_SOLVER,
    SUM_EXHAUSTIVE_LIMIT,
    BestResponse,
    MaxCoverContext,
    best_response,
    max_cover_context,
)
from repro.core.dynamics import DynamicsResult, RoundRecord
from repro.core.equilibria import EquilibriumReport
from repro.core.games import GameSpec, UsageKind
from repro.core.metrics import compute_profile_metrics
from repro.core.strategies import StrategyProfile
from repro.engine.schedulers import Scheduler, make_scheduler
from repro.engine.state import NetworkState
from repro.engine.views import IncrementalViewCache, ViewStore
from repro.graphs.generators.base import OwnedGraph
from repro.graphs.graph import Node
from repro.kernels import KernelBackend, resolve_backend
from repro.obs import Telemetry, get_telemetry
from repro.solvers.set_cover import WARM_START_SOLVERS

__all__ = ["coerce_profile", "DynamicsEngine", "COVER_CONTEXT_CACHE_MAX_NODES"]

#: Largest reduced-view node count whose :class:`MaxCoverContext` (a dense
#: ``(v, v)`` int32 distance matrix) is worth pinning per player.  Beyond
#: this the cache would hold up to ``n`` such matrices at once — ``O(n^3)``
#: at full knowledge — so bigger contexts are rebuilt transiently instead.
COVER_CONTEXT_CACHE_MAX_NODES: int = 512


def coerce_profile(initial: StrategyProfile | OwnedGraph) -> StrategyProfile:
    """Accept either a profile or a generator output carrying ownership."""
    if isinstance(initial, StrategyProfile):
        return initial
    if isinstance(initial, OwnedGraph):
        return StrategyProfile.from_owned_graph(initial)
    raise TypeError(
        "initial must be a StrategyProfile or an OwnedGraph, "
        f"got {type(initial).__name__}"
    )


class DynamicsEngine:
    """Stateful simulation engine for best-response dynamics.

    Parameters mirror :func:`repro.core.dynamics.best_response_dynamics`;
    ``scheduler`` accepts either a registry name (see
    :data:`repro.engine.schedulers.SCHEDULERS`) or a ready
    :class:`Scheduler` instance, and ``workers`` is forwarded to the
    ``parallel_batch`` scheduler's process-pool fan-out.
    """

    def __init__(
        self,
        initial: StrategyProfile | OwnedGraph,
        game: GameSpec,
        solver: str = ENGINE_DEFAULT_SOLVER,
        scheduler: str | Scheduler = "fixed",
        max_rounds: int = 100,
        collect_round_metrics: bool = False,
        collect_metrics: bool = True,
        seed: int | None = None,
        player_order: list[Node] | None = None,
        workers: int | None = 1,
        sum_exhaustive_limit: int = SUM_EXHAUSTIVE_LIMIT,
        sum_restarts: int = 1,
        kernel_backend: str | KernelBackend | None = None,
        kernel_threads: int | None = None,
        view_store: ViewStore | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        profile = coerce_profile(initial)
        self.game = game
        self.solver = solver
        #: Kernel backend running the BFS / cover-search hot loops (see
        #: :mod:`repro.kernels`).  Resolved once here, so the whole run —
        #: views, cover contexts, solver calls, metric sweeps — uses one
        #: backend even if the process-wide default changes mid-run.
        #: Backends are bit-identical, so trajectories never depend on it;
        #: ``kernel_threads`` (``None`` = the ``REPRO_KERNEL_THREADS``
        #: chain, ``0`` = all cores) is a pure speed knob for the compiled
        #: backends — threaded results are bit-identical too.
        self.kernel_backend = resolve_backend(kernel_backend, threads=kernel_threads)
        #: SumNCG exact/heuristic dispatch threshold (strategy-space size up
        #: to which best responses are solved exactly; see
        #: :data:`repro.core.best_response.SUM_EXHAUSTIVE_LIMIT`).  Ignored
        #: by MaxNCG games.
        self.sum_exhaustive_limit = sum_exhaustive_limit
        #: Multi-seed climbs of the heuristic SumNCG local search above the
        #: exhaustive limit (deterministic; ``1`` = the single incumbent
        #: climb).  Ignored by MaxNCG games and by the exact dispatch.
        self.sum_restarts = sum_restarts
        if (
            game.usage is UsageKind.MAX
            and solver not in WARM_START_SOLVERS
            and solver != "greedy"
        ):
            # The engine re-solves best responses all run long, which is
            # exactly where the warm-start machinery pays off; an exact
            # solver without an incumbent hook silently forfeits it.
            warnings.warn(
                f"solver {solver!r} cannot consume the warm-start/upper-bound "
                "hints; every activation re-solves its set covers cold (the "
                f"engine default {ENGINE_DEFAULT_SOLVER!r} gets the warm-start "
                "speedup)",
                RuntimeWarning,
                stacklevel=2,
            )
        self.max_rounds = max_rounds
        self.collect_round_metrics = collect_round_metrics
        self.collect_metrics = collect_metrics
        self.rng = random.Random(seed)
        self.state = NetworkState.from_profile(profile)
        #: Optional cross-session view store: engines over the same instance
        #: (an α-grid, a robustness battery) injected with one shared
        #: :class:`~repro.engine.views.ViewStore` adopt each other's
        #: refreshed views instead of re-running the full BFS sweep.
        #: Best-response memos stay per-engine; only views (and their
        #: content tokens) are shared.  Trajectories are bit-identical with
        #: or without a store.
        self.view_store = view_store
        #: Telemetry handle: metrics always record (into the registry the
        #: handle carries — the process default unless injected); trace
        #: spans only when the handle's tracer is enabled.  The tracer is
        #: pre-bound so the disabled path is one attribute lookup.
        self.telemetry = telemetry or get_telemetry()
        self._tracer = self.telemetry.tracer
        responses = self.telemetry.registry.counter(
            "repro_engine_responses_total",
            help="Best-response evaluations: solver calls vs memo hits",
            labelnames=("result",),
        )
        self._m_responses_computed = responses.child(result="computed")
        self._m_responses_reused = responses.child(result="reused")
        contexts = self.telemetry.registry.counter(
            "repro_engine_cover_contexts_total",
            help="MaxNCG set-cover contexts rebuilt vs reused",
            labelnames=("result",),
        )
        self._m_cover_built = contexts.child(result="built")
        self._m_cover_reused = contexts.child(result="reused")
        self._m_rounds = self.telemetry.registry.counter(
            "repro_engine_rounds_total", help="Scheduler rounds executed"
        ).child()
        self.views = IncrementalViewCache(
            self.state,
            game.k,
            kernel_backend=self.kernel_backend,
            store=view_store,
            telemetry=self.telemetry,
        )
        base_order = (
            list(player_order) if player_order is not None else profile.players()
        )
        if set(base_order) != set(profile.players()):
            raise ValueError("player_order must be a permutation of the players")
        self.base_order = base_order
        self.scheduler = (
            scheduler
            if isinstance(scheduler, Scheduler)
            else make_scheduler(scheduler, workers=workers)
        )
        self._responses: dict[Node, tuple[int, frozenset[Node], BestResponse]] = {}
        self._cover_contexts: dict[Node, tuple[int, MaxCoverContext]] = {}

    # ------------------------------------------------------------------
    # Instrumentation (read-through onto the metrics registry children)
    # ------------------------------------------------------------------
    @property
    def responses_computed(self) -> int:
        """Solver invocations actually paid for (memo misses)."""
        return self._m_responses_computed.value

    @property
    def responses_reused(self) -> int:
        """Solver invocations avoided by memoisation."""
        return self._m_responses_reused.value

    @property
    def cover_contexts_built(self) -> int:
        """Reduced-view distance structures rebuilt (MaxNCG only)."""
        return self._m_cover_built.value

    @property
    def cover_contexts_reused(self) -> int:
        """Reduced-view distance structures reused across activations."""
        return self._m_cover_reused.value

    # ------------------------------------------------------------------
    # Per-activation primitives (used by schedulers)
    # ------------------------------------------------------------------
    def view_token(self, player: Node) -> int:
        """Settled content version of the player's view (refreshes if stale)."""
        self.views.get(player)
        return self.views.token(player)

    def cached_response(self, player: Node) -> BestResponse | None:
        """The memoised best response of ``player`` if still valid, else ``None``.

        Valid means neither the player's view content token nor her strategy
        moved since the memo entry was written.  Settles the view first, so
        the answer reflects the current state.
        """
        self.views.get(player)  # settles the content token
        token = self.views.token(player)
        strategy = self.state.strategy(player)
        memo = self._responses.get(player)
        if memo is not None and memo[0] == token and memo[1] == strategy:
            return memo[2]
        return None

    def store_response(self, player: Node, response: BestResponse) -> None:
        """Install an externally computed best response into the memo.

        The response must have been evaluated against the player's *current*
        view content and strategy (the parallel scheduler's worker fan-out
        snapshots exactly that); the memo entry is keyed by the settled
        token so later rounds can skip the player while nothing changes.
        """
        self.views.get(player)
        token = self.views.token(player)
        self._responses[player] = (token, self.state.strategy(player), response)

    def _cover_context(self, player: Node, token: int) -> MaxCoverContext | None:
        """Per-(player, view token) cache of the MaxNCG set-cover context.

        The context (reduced-view distances, candidate order, forced
        buyers) depends on view content only, so it survives strategy-only
        changes that invalidate the best-response memo — e.g. a
        ``set_strategy`` perturbation of the player herself.
        """
        if self.game.usage is not UsageKind.MAX:
            return None
        cached = self._cover_contexts.get(player)
        if cached is not None and cached[0] == token:
            self._m_cover_reused.inc()
            return cached[1]
        view = self.views.get(player)
        if view.size - 1 > COVER_CONTEXT_CACHE_MAX_NODES:
            # One dense (v, v) matrix per player adds up to O(n * v^2)
            # resident memory; let oversized views rebuild transiently (the
            # pre-cache behaviour) instead of pinning them.
            self._cover_contexts.pop(player, None)
            return None
        context = max_cover_context(view, backend=self.kernel_backend)
        self._cover_contexts[player] = (token, context)
        self._m_cover_built.inc()
        return context

    def peek_response(self, player: Node) -> BestResponse:
        """Best response of ``player`` against the current state (memoised).

        A best response is a pure function of (view content, own strategy,
        game, solver), so a memo entry stays valid exactly while the
        player's view content token and strategy both stand still.  The
        game — and with it the cost model deciding what unreachable nodes
        cost — is fixed per engine, so every memo and cover-context entry
        implicitly carries ``self.game.cost_model.key()``; entries can never
        leak across models.  Both MaxNCG regimes (full cover and, under a
        tolerant model, component abandonment) and both SumNCG regimes
        (seeded exhaustive below ``sum_exhaustive_limit``, local search
        above) ride this same memo.
        """
        view = self.views.get(player)  # settles the content token
        token = self.views.token(player)
        strategy = self.state.strategy(player)
        memo = self._responses.get(player)
        if memo is not None and memo[0] == token and memo[1] == strategy:
            self._m_responses_reused.inc()
            if self._tracer.enabled:
                self._tracer.event(
                    "engine.best_response", player=str(player), memo_hit=True
                )
            return memo[2]
        # The tracing-enabled branch duplicates the solver call so the
        # disabled path pays no span bookkeeping at all on this, the
        # engine's hottest call site.
        if self._tracer.enabled:
            with self._tracer.span(
                "engine.best_response",
                player=str(player),
                memo_hit=False,
                solver=self.solver,
            ) as span:
                response = best_response(
                    None,
                    player,
                    self.game,
                    solver=self.solver,
                    sum_exhaustive_limit=self.sum_exhaustive_limit,
                    view=view,
                    current_strategy=strategy,
                    cover_context=self._cover_context(player, token),
                    sum_restarts=self.sum_restarts,
                    backend=self.kernel_backend,
                )
                span.set(exact=response.exact, improving=response.is_improving)
        else:
            response = best_response(
                None,
                player,
                self.game,
                solver=self.solver,
                sum_exhaustive_limit=self.sum_exhaustive_limit,
                view=view,
                current_strategy=strategy,
                cover_context=self._cover_context(player, token),
                sum_restarts=self.sum_restarts,
                backend=self.kernel_backend,
            )
        self._responses[player] = (token, strategy, response)
        self._m_responses_computed.inc()
        return response

    def apply_response(self, player: Node, response: BestResponse) -> None:
        """Commit ``response.strategy`` and invalidate the dirty region."""
        self.set_strategy(player, response.strategy)

    def set_strategy(self, player: Node, strategy: frozenset[Node]) -> None:
        """Externally override a player's strategy (perturbation support).

        Applies the edge delta and invalidates the dirty region exactly like
        a best-response move; a subsequent :meth:`run` then repairs the
        network incrementally, reusing every cached view and memoised
        response outside the perturbed region.  This is the engine's
        "warm replay" mode, exercised by ``benchmarks/test_bench_engine.py``.
        """
        delta = self.state.preview(player, frozenset(strategy))
        region = self.views.region_before_apply(delta)
        self.state.apply(delta)
        region |= self.views.region_after_apply(delta)
        self.views.invalidate(region)

    def restore_profile(self, profile: StrategyProfile) -> int:
        """Warm-replay the engine onto ``profile`` via :meth:`set_strategy`.

        Only the players whose strategy actually differs are touched, so
        restoring to a nearby profile (the robustness suite returning to its
        base equilibrium between operators, a sweep worker rewinding a live
        session) invalidates just the dirty balls around the differences and
        every other cached view / memoised response survives.  Returns the
        number of players whose strategy was rewritten.
        """
        moved = 0
        for player in profile.players():
            if self.state.strategy(player) != profile.strategy(player):
                self.set_strategy(player, profile.strategy(player))
                moved += 1
        return moved

    def activate(self, player: Node) -> bool:
        """One activation: move to the best response iff it strictly improves."""
        response = self.peek_response(player)
        if response.is_improving:
            self.apply_response(player, response)
            return True
        return False

    # ------------------------------------------------------------------
    # Certification
    # ------------------------------------------------------------------
    def certify(self, stop_at_first: bool = False) -> EquilibriumReport:
        """Prove (or refute) that the *current* profile is an equilibrium.

        One sweep over all players that shows no improving deviation exists —
        the LKE certificate for finite ``game.k``, the NE certificate under
        full knowledge.  The sweep rides the engine caches: views settle
        through one blocked batched BFS and every player whose (view token,
        strategy) pair is unchanged since her last evaluation is answered
        from the best-response memo, so certifying a freshly converged run
        costs no additional solver calls at all, and certifying after a
        localized perturbation costs O(dirty ball), not O(n).

        This is the pass that backs ``random_sequential`` (and any other
        ``certifies_convergence = False`` scheduler) inside :meth:`run` — a
        quiet round under randomized activation only means no *sampled*
        player improved — and the robustness scenario suite calls it after
        every recovery so no reported equilibrium is ever uncertified.

        ``stop_at_first=True`` aborts at the first improving player (enough
        to refute).  The report's exactness sets mirror the solver: with an
        approximate solver (``greedy``) a positive answer is heuristic only,
        exactly as in :func:`repro.core.equilibria.certify_equilibrium`.
        """
        with self.telemetry.span("engine.certify", stop_at_first=stop_at_first) as span:
            self.views.refresh_dirty()
            report = EquilibriumReport(is_equilibrium=True)
            for player in self.base_order:
                response = self.peek_response(player)
                if response.exact:
                    report.checked_exactly.add(player)
                else:
                    report.checked_heuristically.add(player)
                if response.is_improving:
                    report.improving[player] = response
                    report.is_equilibrium = False
                    if stop_at_first:
                        span.set(is_equilibrium=False)
                        return report
            span.set(is_equilibrium=report.is_equilibrium)
            return report

    # ------------------------------------------------------------------
    # The round loop
    # ------------------------------------------------------------------
    def run(self, round_observer=None) -> DynamicsResult:
        """Run rounds until convergence, a detected cycle or ``max_rounds``.

        ``round_observer`` is an optional callable invoked as
        ``round_observer(engine, round_index, changes)`` after every
        scheduler round (including the final quiet one), before the engine
        decides about convergence or cycles.  Observers may inspect the live
        state (the robustness suite tracks the component count of a
        splitting shock's recovery this way) but must not mutate it.

        Bookkeeping matches the legacy loop: the paper counts rounds needed
        to *reach* the stable network, so the certifying all-quiet round is
        not counted (``rounds = round_index - 1`` on convergence).

        Convergence is only ever reported with a certificate behind it: for
        schedulers whose quiet round visits every player the round itself is
        the certificate, and for the rest (``certifies_convergence =
        False``, e.g. ``random_sequential``) the quiet round must survive an
        explicit :meth:`certify` sweep — otherwise the run keeps going.  The
        returned :attr:`DynamicsResult.certified` flag records exactly this:
        it is ``True`` iff ``converged`` is, and never on a cycle or a
        ``max_rounds`` bail-out.

        ``run`` may be called again after :meth:`set_strategy`
        perturbations; each call is a fresh dynamics run (own cycle
        detector, own round count) starting from the *current* state, with
        all still-valid caches carried over.  The two full metric sweeps
        bookending every run are O(n · edges) regardless of how local the
        dynamics were — ``collect_metrics=False`` skips them (the result's
        ``initial_metrics`` / ``final_metrics`` are ``None``), which is what
        keeps a warm replay after a localized shock at O(dirty ball).
        """
        game = self.game
        run_span = self.telemetry.span(
            "engine.run",
            players=len(self.base_order),
            scheduler=self.scheduler.name,
            solver=self.solver,
            backend=self.kernel_backend.name,
        ).__enter__()
        initial_profile = self.state.to_profile()
        initial_metrics = (
            compute_profile_metrics(initial_profile, game, backend=self.kernel_backend)
            if self.collect_metrics
            else None
        )
        # Bulk-build all views with one batched CSR BFS instead of n
        # sequential Python traversals.
        self.views.refresh_dirty()
        round_records: list[RoundRecord] = []
        seen_profiles: dict[tuple, int] = {self.state.canonical_key(): 0}
        total_changes = 0
        converged = False
        certified = False
        certified_exact = False
        cycled = False
        rounds_run = 0
        for round_index in range(1, self.max_rounds + 1):
            rounds_run = round_index
            with self.telemetry.span("engine.round", round=round_index) as round_span:
                changes = self.scheduler.run_round(self, round_index)
                round_span.set(changes=changes)
            self._m_rounds.inc()
            total_changes += changes
            if round_observer is not None:
                round_observer(self, round_index, changes)
            if self.collect_round_metrics:
                round_records.append(
                    RoundRecord(
                        round_index=round_index,
                        num_changes=changes,
                        metrics=compute_profile_metrics(
                            self.state.to_profile(), game, backend=self.kernel_backend
                        ),
                    )
                )
            if changes == 0:
                if (
                    not self.scheduler.certifies_convergence
                    and not self.certify(stop_at_first=True).is_equilibrium
                ):
                    # The quiet round was sampling luck, not an equilibrium
                    # (the certification sweep found an improving player):
                    # keep running.  Skips the cycle check on purpose — the
                    # profile did not change, so its key is already in
                    # ``seen_profiles``.
                    continue
                converged = True
                certified = True
                # Certificate strength: exact iff every player's certifying
                # answer came from an exact solver.  The quiet round (or the
                # certify sweep above) just evaluated every player, so these
                # are pure memo rides — no additional solver calls.
                certified_exact = all(
                    self.peek_response(player).exact for player in self.base_order
                )
                rounds_run = round_index - 1
                break
            if self.scheduler.detects_cycles:
                key = self.state.canonical_key()
                if key in seen_profiles:
                    cycled = True
                    break
                seen_profiles[key] = round_index
        final_profile = self.state.to_profile()
        run_span.finish(
            rounds=rounds_run,
            converged=converged,
            cycled=cycled,
            total_changes=total_changes,
        )
        return DynamicsResult(
            game=game,
            initial_profile=initial_profile,
            final_profile=final_profile,
            converged=converged,
            cycled=cycled,
            rounds=rounds_run,
            total_changes=total_changes,
            certified=certified,
            certified_exact=certified_exact,
            round_records=round_records,
            initial_metrics=initial_metrics,
            final_metrics=(
                compute_profile_metrics(final_profile, game, backend=self.kernel_backend)
                if self.collect_metrics
                else None
            ),
        )
