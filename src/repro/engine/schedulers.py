"""Pluggable activation schedulers for the dynamics engine.

The paper studies two activation policies — the deterministic round-robin
(``fixed``) and a per-round reshuffle (``shuffled``).  The engine keeps both
(bit-compatible with the legacy loop) and adds three new scenario modes:

* ``random_sequential`` — each of the ``n`` activations of a round draws a
  player uniformly at random (with replacement), the classic asynchronous
  dynamics model;
* ``max_improvement`` — always activate the player with the largest
  currently available improvement (greedy steepest-descent dynamics);
* ``parallel_batch`` — compute best responses for *all* players against the
  round-start profile (optionally fanning out over a process pool) and
  apply a maximal set of non-conflicting moves, a synchronous-update model.

A scheduler owns the *intra-round* policy only; the engine keeps the
round loop, cycle detection and bookkeeping, so every mode produces a
standard :class:`~repro.core.dynamics.DynamicsResult`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from functools import partial
from typing import TYPE_CHECKING

from repro.core.best_response import BestResponse, best_response
from repro.core.games import GameSpec
from repro.core.strategies import StrategyProfile
from repro.graphs.graph import Node
from repro.parallel.pool import parallel_map, resolve_workers

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.core import DynamicsEngine

__all__ = [
    "Scheduler",
    "FixedScheduler",
    "ShuffledScheduler",
    "RandomSequentialScheduler",
    "MaxImprovementScheduler",
    "ParallelBatchScheduler",
    "SCHEDULERS",
    "make_scheduler",
]


class Scheduler(ABC):
    """Intra-round activation policy.

    ``detects_cycles`` tells the engine whether an end-of-round profile
    repeat is evidence of divergence (deterministic-ish schedules) or just
    bad luck (randomised sequential activation), in which case the run
    keeps going until ``max_rounds``.

    ``certifies_convergence`` says whether a zero-change round proves an
    equilibrium (every player was activated and declined to move).  When
    ``False`` the engine follows a quiet round with an explicit
    :meth:`repro.engine.DynamicsEngine.certify` sweep over all players —
    cheap, since it rides the best-response memo — before declaring
    convergence; either way :attr:`DynamicsResult.certified` is only set
    once a full no-improving-deviation pass stands behind the result.
    """

    name: str = "abstract"
    detects_cycles: bool = True
    certifies_convergence: bool = True

    @abstractmethod
    def run_round(self, engine: "DynamicsEngine", round_index: int) -> int:
        """Execute one round on ``engine`` and return the number of changes."""


class _SequentialScheduler(Scheduler):
    """Common loop for schedulers that activate one player at a time."""

    def round_order(
        self, engine: "DynamicsEngine", round_index: int
    ) -> Sequence[Node]:
        raise NotImplementedError

    def run_round(self, engine: "DynamicsEngine", round_index: int) -> int:
        changes = 0
        for player in self.round_order(engine, round_index):
            if engine.activate(player):
                changes += 1
        return changes


class FixedScheduler(_SequentialScheduler):
    """The paper's deterministic round-robin: same order every round."""

    name = "fixed"

    def round_order(self, engine, round_index):
        return engine.base_order


class ShuffledScheduler(_SequentialScheduler):
    """Round-robin with a fresh random order each round (paper's ablation)."""

    name = "shuffled"

    def round_order(self, engine, round_index):
        order = list(engine.base_order)
        engine.rng.shuffle(order)
        return order


class RandomSequentialScheduler(_SequentialScheduler):
    """``n`` uniform random activations (with replacement) per round.

    A round of all-misses does not certify an equilibrium the way a full
    round-robin pass does (an improving player may simply never have been
    drawn), so ``certifies_convergence = False`` makes the engine confirm a
    quiet round with an explicit ``engine.certify()`` sweep before
    reporting convergence — ``DynamicsResult`` therefore never carries a
    ``converged=True, certified=True`` verdict off the back of sampling
    luck; profile repeats are likewise not evidence of a best-response
    cycle, hence ``detects_cycles = False``.
    """

    name = "random_sequential"
    detects_cycles = False
    certifies_convergence = False

    def round_order(self, engine, round_index):
        players = engine.base_order
        return [engine.rng.choice(players) for _ in players]


class MaxImprovementScheduler(Scheduler):
    """Steepest-descent: repeatedly activate the largest-gain player.

    Each round performs at most ``n`` activations; the round (and the run)
    ends when no player has an improving move, which *does* certify an
    equilibrium.  The per-activation argmax scan is cheap because the
    engine memoises best responses for players whose view region was not
    touched by the previous move.
    """

    name = "max_improvement"

    def run_round(self, engine: "DynamicsEngine", round_index: int) -> int:
        changes = 0
        for _ in engine.base_order:
            best_player: Node | None = None
            best_gain = 0.0
            for player in engine.base_order:
                response = engine.peek_response(player)
                if response.is_improving and response.improvement > best_gain:
                    best_gain = response.improvement
                    best_player = player
            if best_player is None:
                break
            engine.activate(best_player)
            changes += 1
        return changes


def _snapshot_best_response(
    player: Node, profile: StrategyProfile, game: GameSpec, solver: str
) -> BestResponse:
    """Module-level worker for the parallel fan-out (must be picklable)."""
    return best_response(profile, player, game, solver=solver)


class ParallelBatchScheduler(Scheduler):
    """Synchronous updates: batch-compute responses, apply non-conflicting ones.

    All best responses are evaluated against the round-start profile —
    independently, so the computation fans out over
    :func:`repro.parallel.pool.parallel_map` when ``workers != 1``.  Moves
    are then applied in decreasing-improvement order, skipping any player
    whose view region was dirtied by an earlier application in the same
    batch (her round-start response may be stale).  Skipped players simply
    retry next round; a round with no applicable move is an equilibrium
    certificate identical to the sequential case, because every response
    was computed against the same profile nobody managed to change.

    With ``dirty_only=True`` (the default) the fan-out is dirty-region
    aware: a player whose view content token *and* strategy are unchanged
    since her last evaluation still has a valid memoised best response — a
    pure function of exactly that pair — so only invalidated players are
    shipped to the workers.  In quiet late rounds this shrinks the batch to
    the handful of players around the previous round's moves, cutting the
    serial snapshot/pickle fraction along with the solves; trajectories are
    identical to the round-start variant (``dirty_only=False``, the
    pre-scaling behaviour) because the reused responses equal what a worker
    would have recomputed.  ``evaluated_last_round`` / ``reused_last_round``
    expose the split for tests and instrumentation.
    """

    name = "parallel_batch"

    def __init__(self, workers: int | None = 1, dirty_only: bool = True) -> None:
        self.workers = workers
        self.dirty_only = dirty_only
        #: Players whose best response was recomputed in the latest round.
        self.evaluated_last_round: list[Node] = []
        #: Players served from the engine memo in the latest round.
        self.reused_last_round: list[Node] = []

    def run_round(self, engine: "DynamicsEngine", round_index: int) -> int:
        players = engine.base_order
        # Settle every dirty view in one blocked batched BFS up front: the
        # memo validity test below needs settled tokens, and the workers'
        # snapshot must reflect the current state anyway.
        engine.views.refresh_dirty()
        responses: dict[Node, BestResponse] = {}
        stale: list[Node] = []
        if self.dirty_only:
            for player in players:
                cached = engine.cached_response(player)
                if cached is None:
                    stale.append(player)
                else:
                    responses[player] = cached
        else:
            stale = list(players)
        self.evaluated_last_round = list(stale)
        self.reused_last_round = [p for p in players if p in responses]
        engine._m_responses_reused.inc(len(self.reused_last_round))
        if stale:
            if resolve_workers(self.workers) == 1:
                for player in stale:
                    responses[player] = engine.peek_response(player)
            else:
                worker = partial(
                    _snapshot_best_response,
                    profile=engine.state.to_profile(),
                    game=engine.game,
                    solver=engine.solver,
                )
                for player, response in zip(
                    stale, parallel_map(worker, stale, workers=self.workers)
                ):
                    responses[player] = response
                    # Feed the memo so the next round's dirty test can skip
                    # players this batch did not end up disturbing.
                    engine.store_response(player, response)
        rank = {player: position for position, player in enumerate(players)}
        moves = [
            (player, responses[player])
            for player in players
            if responses[player].is_improving
        ]
        moves.sort(key=lambda move: (-move[1].improvement, rank[move[0]]))
        start_tokens = {player: engine.view_token(player) for player, _ in moves}
        applied = 0
        for player, response in moves:
            if engine.view_token(player) != start_tokens[player]:
                continue  # conflict: an earlier move touched this player's view
            engine.apply_response(player, response)
            applied += 1
        return applied


#: Registry keyed by the ``ordering`` string of ``best_response_dynamics``.
SCHEDULERS: dict[str, type[Scheduler]] = {
    FixedScheduler.name: FixedScheduler,
    ShuffledScheduler.name: ShuffledScheduler,
    RandomSequentialScheduler.name: RandomSequentialScheduler,
    MaxImprovementScheduler.name: MaxImprovementScheduler,
    ParallelBatchScheduler.name: ParallelBatchScheduler,
}


def make_scheduler(name: str, workers: int | None = 1) -> Scheduler:
    """Instantiate a scheduler by registry name."""
    try:
        cls = SCHEDULERS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {sorted(SCHEDULERS)}"
        ) from exc
    if cls is ParallelBatchScheduler:
        return ParallelBatchScheduler(workers=workers)
    return cls()
