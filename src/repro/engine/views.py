"""Incremental k-neighbourhood view cache.

``extract_view`` recomputes a player's view from scratch on every call —
one bounded BFS plus one induced-subgraph build per activation, repeated
for every player in every round.  Most of that work is redundant: a
strategy change by player ``q`` can only alter the view of ``p`` when the
k-ball of ``p`` touches an endpoint of an edge that actually changed.

:class:`IncrementalViewCache` exploits exactly that. It keeps one
:class:`~repro.core.views.View` per player and, for each applied
:class:`~repro.engine.state.StrategyDelta`, invalidates only the *dirty
region*:

* for every **removed** edge, the radius-``k`` balls around its endpoints in
  the *pre-change* graph (a lost shortcut can only affect players that could
  reach an endpoint within ``k`` before the removal);
* for every **added** edge, the same balls in the *post-change* graph (a new
  shortcut only helps players that can reach an endpoint within ``k`` now);
* every target whose buyer set changed (its ``View.buyers`` is stale even
  when the topology did not move).

Everything outside the region keeps its cached ``View`` object untouched,
which also lets the engine reuse memoised best responses (a best response
is a pure function of view content and current strategy).

Per-player *tokens* (bumped on invalidation) give downstream caches an O(1)
staleness test without comparing view contents.
"""

from __future__ import annotations

import numpy as np

from repro.core.games import FULL_KNOWLEDGE
from repro.core.views import View
from repro.engine.state import NetworkState, StrategyDelta
from repro.graphs.graph import Node
from repro.graphs.traversal import (
    UNREACHABLE,
    ball,
    bfs_distances,
    bfs_distances_within,
    iter_blocked_bfs_distances,
)
from repro.kernels import KernelBackend

__all__ = ["IncrementalViewCache"]


def _views_equal(a: View, b: View) -> bool:
    """Content equality of two views of the same player at the same radius."""
    return (
        a.distances == b.distances
        and a.frontier == b.frontier
        and a.buyers == b.buyers
        and a.subgraph == b.subgraph
    )


class IncrementalViewCache:
    """Per-player views over a :class:`NetworkState`, invalidated by deltas."""

    __slots__ = ("_state", "_k", "_views", "_tokens", "_dirty", "_kernel_backend")

    def __init__(
        self,
        state: NetworkState,
        k: float,
        kernel_backend: str | KernelBackend | None = None,
    ) -> None:
        self._state = state
        self._k = k
        # Backend for the bulk refresh's blocked BFS (bit-identical across
        # backends; the single-player refresh path stays on dict BFS).
        self._kernel_backend = kernel_backend
        self._views: dict[Node, View] = {}
        self._tokens: dict[Node, int] = {player: 0 for player in state.players()}
        self._dirty: set[Node] = set(state.players())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def k(self) -> float:
        return self._k

    def token(self, player: Node) -> int:
        """Monotone per-player *content* version: unchanged token ⇔ unchanged view.

        Only meaningful after the player's view has been settled by
        :meth:`get` or :meth:`refresh_dirty` — dirty players keep their old
        token until the refresh decides whether the content really moved
        (ball invalidation is conservative: a player on the rim of a dirty
        region often sees nothing change, and her memoised best response
        stays valid).
        """
        return self._tokens[player]

    def is_dirty(self, player: Node) -> bool:
        return player in self._dirty

    def get(self, player: Node) -> View:
        """Return the current view of ``player``, refreshing it if stale."""
        if player in self._dirty or player not in self._views:
            self._install(player, self._build_single(player))
        return self._views[player]

    def _install(self, player: Node, view: View) -> None:
        """Store a freshly built view, bumping the token only on real change."""
        old = self._views.get(player)
        if old is None or not _views_equal(old, view):
            self._views[player] = view
            self._tokens[player] += 1
        self._dirty.discard(player)

    # ------------------------------------------------------------------
    # Bulk refresh (batched CSR BFS)
    # ------------------------------------------------------------------
    def refresh_dirty(self) -> int:
        """Rebuild every stale view with blocked batched multi-source BFS.

        Returns the number of views rebuilt.  One CSR export plus one
        batched kernel call per source block (at most
        :data:`~repro.graphs.traversal.DEFAULT_BLOCK_SIZE` dirty players'
        distance rows live at once) replaces ``len(dirty)`` independent
        Python BFS runs; used at engine start-up (everything is dirty) and
        by schedulers that need all views at once.
        """
        dirty = [p for p in self._state.players() if p in self._dirty or p not in self._views]
        if not dirty:
            return 0
        graph = self._state.graph
        indptr, indices, order = graph.to_csr_arrays()
        index = {node: i for i, node in enumerate(order)}
        radius = None if self._k == FULL_KNOWLEDGE else int(self._k)
        sources = np.fromiter((index[p] for p in dirty), dtype=np.int64, count=len(dirty))
        # Nodes may be tuples (the torus construction), which np.asarray
        # would splat into a 2-D array; fill an object vector instead.
        order_array = np.empty(len(order), dtype=object)
        order_array[:] = order
        for start, _, dist in iter_blocked_bfs_distances(
            indptr, indices, sources, radius=radius, backend=self._kernel_backend
        ):
            for row in range(dist.shape[0]):
                player = dirty[start + row]
                reached = dist[row] != UNREACHABLE
                reached_nodes = order_array[reached]
                distances = dict(
                    zip(reached_nodes.tolist(), dist[row][reached].tolist())
                )
                if radius is None:
                    frontier: set[Node] = set()
                    visible: set[Node] = set(order)
                else:
                    frontier = set(order_array[dist[row] == radius].tolist())
                    visible = set(reached_nodes.tolist())
                self._install(
                    player, self._assemble(player, visible, distances, frontier)
                )
        return len(dirty)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def region_before_apply(self, delta: StrategyDelta) -> set[Node]:
        """Players whose view may change due to ``delta``'s removed edges.

        Must be called *before* the delta is applied: the balls are taken in
        the pre-change graph, where the vanishing shortcuts still exist.
        """
        if not delta.removed_edges:
            return set()
        if self._k == FULL_KNOWLEDGE:
            return set(self._state.players())
        graph = self._state.graph
        radius = int(self._k)
        region: set[Node] = set()
        for u, v in delta.removed_edges:
            region |= ball(graph, u, radius)
            region |= ball(graph, v, radius)
        return region

    def region_after_apply(self, delta: StrategyDelta) -> set[Node]:
        """Players whose view may change due to ``delta``'s added edges.

        Must be called *after* the delta is applied (balls in the new graph,
        where the new shortcuts are live), plus the buyer-set changes which
        are topology-independent.
        """
        region: set[Node] = set(delta.buyer_changes)
        if delta.added_edges:
            if self._k == FULL_KNOWLEDGE:
                return set(self._state.players())
            graph = self._state.graph
            radius = int(self._k)
            for u, v in delta.added_edges:
                region |= ball(graph, u, radius)
                region |= ball(graph, v, radius)
        return region

    def invalidate(self, players: set[Node]) -> None:
        """Mark views stale.  Tokens are *not* bumped here: the next refresh
        compares content and only moves the token on a real change, so
        memoised best responses survive conservative over-invalidation."""
        self._dirty.update(players)

    def invalidate_all(self) -> None:
        self.invalidate(set(self._state.players()))

    # ------------------------------------------------------------------
    # View construction (content-identical to ``extract_view``)
    # ------------------------------------------------------------------
    def _build_single(self, player: Node) -> View:
        graph = self._state.graph
        if self._k == FULL_KNOWLEDGE:
            distances = bfs_distances(graph, player)
            frontier: set[Node] = set()
            visible: set[Node] = set(graph.nodes())
        else:
            radius = int(self._k)
            distances = bfs_distances_within(graph, player, radius)
            frontier = {node for node, d in distances.items() if d == radius}
            visible = set(distances)
        return self._assemble(player, visible, dict(distances), frontier)

    def _assemble(
        self,
        player: Node,
        visible: set[Node],
        distances: dict[Node, int],
        frontier: set[Node],
    ) -> View:
        subgraph = self._state.graph.induced_subgraph(visible)
        buyers = {b for b in self._state.buyers_of(player) if b in visible}
        return View(
            player=player,
            k=self._k,
            subgraph=subgraph,
            distances=distances,
            frontier=frontier,
            buyers=buyers,
        )
